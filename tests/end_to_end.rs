//! Workspace-level integration tests: the full stack — generator → SMC
//! database → queries → compaction → fix-up — exercised through the public
//! API only, plus property-based invariants on the memory manager.

use smc_repro::smc::{ContextConfig, Smc};
use smc_repro::smc_memory::{Decimal, Runtime, Tabular};
use smc_repro::tpch::{self, Generator};

#[derive(Clone, Copy, Debug, PartialEq)]
struct Item {
    key: u64,
    value: Decimal,
}
unsafe impl Tabular for Item {}

#[test]
fn full_pipeline_load_query_refresh_compact() {
    let gen = Generator::new(0.003);
    let db = tpch::smcdb::SmcDb::load(&gen, true);
    let params = tpch::Params::default();

    // Queries run.
    let q1 = tpch::queries::smc_q::q1(&db, &params);
    assert_eq!(q1.len(), 4);
    let q6 = tpch::queries::smc_q::q6(&db, &params);
    assert!(q6 > Decimal::ZERO);

    // Refresh, then requery: results change consistently.
    let mut rng = tpch::workloads::workload_rng(5);
    let victims = tpch::workloads::pick_victims(&mut rng, db.orders.len() as i64, 100);
    let removed = tpch::workloads::smc_removal_stream(&db, &victims);
    assert!(removed > 0);
    let q1_after = tpch::queries::smc_q::q1(&db, &params);
    let total_before: u64 = q1.iter().map(|r| r.count).sum();
    let total_after: u64 = q1_after.iter().map(|r| r.count).sum();
    // Q1 only counts rows with shipdate <= its cutoff, so the delta is
    // bounded by (not equal to) the number of removed lineitems.
    assert!(total_after < total_before);
    assert!(total_before - total_after <= removed as u64);

    // Heavy shrinkage + compaction: results unchanged, memory reclaimed.
    let g = db.runtime.pin();
    let mut extra = Vec::new();
    db.lineitems.for_each_ref(&g, |r, l| {
        if l.orderkey % 4 != 0 {
            extra.push(r);
        }
    });
    drop(g);
    for r in extra {
        db.lineitems.remove(r);
    }
    let q6_sparse = tpch::queries::smc_q::q6(&db, &params);
    let bytes_before = db.lineitems.memory_bytes();
    let report = db.lineitems.compact();
    assert!(report.moved > 0, "sparse blocks must compact");
    db.lineitems.release_retired();
    db.runtime.drain_graveyard_blocking();
    assert!(db.lineitems.memory_bytes() < bytes_before);
    assert_eq!(
        tpch::queries::smc_q::q6(&db, &params),
        q6_sparse,
        "compaction preserves answers"
    );
}

#[test]
fn managed_and_smc_agree_after_everything() {
    let gen = Generator::new(0.002);
    let heap = smc_repro::managed_heap::ManagedHeap::new_batch();
    let smc = tpch::smcdb::SmcDb::load(&gen, false);
    let gc = tpch::gcdb::GcDb::load(&gen, &heap);
    let p = tpch::Params::default();
    use tpch::queries::{gc_q, gc_q::EnumVia, smc_q};
    assert_eq!(smc_q::q1(&smc, &p), gc_q::q1(&gc, &p, EnumVia::List));
    assert_eq!(smc_q::q5(&smc, &p), gc_q::q5(&gc, &p, EnumVia::Dict));
}

#[test]
fn smc_survives_interleaved_concurrent_everything() {
    // Readers + writers + compactions, all at once, on one collection.
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    let rt = Runtime::new();
    let cfg = ContextConfig {
        compaction_patience: std::time::Duration::from_millis(300),
        ..ContextConfig::default()
    };
    let c: Arc<Smc<Item>> = Arc::new(Smc::with_config(&rt, cfg));
    for i in 0..50_000u64 {
        c.add(Item {
            key: i,
            value: Decimal::from_cents(i as i64),
        });
    }
    let stop = Arc::new(AtomicBool::new(false));
    let mut threads = Vec::new();
    // Writers: churn.
    for t in 0..2u64 {
        let c = c.clone();
        let stop = stop.clone();
        threads.push(std::thread::spawn(move || {
            let mut live = Vec::new();
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) {
                live.push(c.add(Item {
                    key: 1_000_000 + t,
                    value: Decimal::ONE,
                }));
                if live.len() > 100 {
                    let r = live.swap_remove((i % 97) as usize % live.len());
                    c.remove(r);
                }
                i += 1;
            }
        }));
    }
    // Readers: continuous scans, checking internal consistency.
    for _ in 0..2 {
        let c = c.clone();
        let rt = rt.clone();
        let stop = stop.clone();
        threads.push(std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let g = rt.pin();
                let mut n = 0u64;
                c.for_each(&g, |item| {
                    assert!(item.key < 1_000_100, "torn object observed");
                    n += 1;
                });
                assert!(n >= 50_000, "scan lost committed objects: {n}");
            }
        }));
    }
    // Compactor.
    for _ in 0..10 {
        let report = c.compact();
        c.release_retired();
        let _ = report;
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    stop.store(true, Ordering::SeqCst);
    for t in threads {
        t.join().unwrap();
    }
}

mod properties {
    use super::*;
    use smc_repro::smc_util::Pcg32;

    /// Random interleavings of add/remove/read keep the collection
    /// consistent with a model HashMap. 64 seeded cases.
    #[test]
    fn collection_matches_model() {
        for case in 0u64..64 {
            let mut rng = Pcg32::seed_from_u64(0xA11CE ^ case);
            let n_ops = rng.gen_range(1..300usize);
            let rt = Runtime::new();
            let c: Smc<Item> = Smc::new(&rt);
            let mut model: std::collections::HashMap<u64, (smc_repro::smc::Ref<Item>, Decimal)> =
                std::collections::HashMap::new();
            for _ in 0..n_ops {
                let op = rng.gen_range(0u8..3);
                let key = rng.gen_range(0u64..64);
                match op {
                    0 => {
                        // add (replacing any previous holder of the key)
                        if let Some((r, _)) = model.remove(&key) {
                            c.remove(r);
                        }
                        let v = Decimal::from_cents(key as i64);
                        let r = c.add(Item { key, value: v });
                        model.insert(key, (r, v));
                    }
                    1 => {
                        // remove
                        if let Some((r, _)) = model.remove(&key) {
                            assert!(c.remove(r));
                        }
                    }
                    _ => {
                        // read
                        let g = rt.pin();
                        if let Some((r, v)) = model.get(&key) {
                            let item = r.get(&g);
                            assert!(item.is_some());
                            assert_eq!(item.unwrap().value, *v);
                        }
                    }
                }
            }
            assert_eq!(c.len(), model.len() as u64);
            let g = rt.pin();
            let mut seen = 0;
            c.for_each(&g, |_| seen += 1);
            assert_eq!(seen, model.len());
        }
    }

    /// Compaction at arbitrary survivor patterns never loses or corrupts
    /// objects. 64 seeded cases.
    #[test]
    fn compaction_preserves_arbitrary_survivors() {
        for case in 0u64..64 {
            let mut rng = Pcg32::seed_from_u64(0xC0FFEE ^ case);
            let keep_mod = rng.gen_range(2u64..16);
            let seed = rng.gen_range(0u64..1000);
            let rt = Runtime::new();
            let cfg = ContextConfig {
                reclamation_threshold: 1.1,
                ..ContextConfig::default()
            };
            let c: Smc<Item> = Smc::with_config(&rt, cfg);
            let cap = c.context().layout().capacity as u64;
            let n = cap * 3;
            let mut kept = Vec::new();
            for i in 0..n {
                let r = c.add(Item {
                    key: i,
                    value: Decimal::from_cents((seed + i) as i64),
                });
                if i % keep_mod == 0 {
                    kept.push((r, i));
                } else {
                    c.remove(r);
                }
            }
            c.compact();
            c.release_retired();
            let g = rt.pin();
            for (r, i) in &kept {
                let item = r.get(&g);
                assert!(item.is_some());
                assert_eq!(item.unwrap().key, *i);
            }
            let mut count = 0u64;
            c.for_each(&g, |_| count += 1);
            assert_eq!(count, kept.len() as u64);
        }
    }
}
