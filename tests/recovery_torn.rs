//! Torn-write matrix for the persistence tier (`smc-persist`).
//!
//! A snapshot can die at three distinct points — while streaming a page,
//! while writing the manifest sidecar, or at the atomic rename that commits
//! it — and a committed snapshot can still rot on disk afterwards. For every
//! case the contract is the same and is the whole point of the tier:
//! **fail closed**. A torn snapshot must leave the previous generation
//! loadable and bit-exact; a rotted page must be rejected with a *named*
//! page error, never materialized into a collection.
//!
//! The mid-write kills use the runtime's seeded failpoints
//! ([`FaultSite::SnapshotPage`] / [`FaultSite::SnapshotManifest`] /
//! [`FaultSite::SnapshotRename`]); the rot cases truncate and byte-flip the
//! page file the committed manifest actually references.

use std::path::PathBuf;
use std::sync::Arc;

use smc_repro::smc::{Smc, Tabular};
use smc_repro::smc_memory::fault::FaultSite;
use smc_repro::smc_memory::Runtime;
use smc_repro::smc_persist::{Persist, PersistError};

/// Checksummed row so a corrupted payload would also be visible to the
/// scanner, not just to the page checksums.
#[derive(Clone, Copy)]
struct Row {
    key: u64,
    check: u64,
}
unsafe impl Tabular for Row {}

fn row(key: u64) -> Row {
    Row {
        key,
        check: key.wrapping_mul(0x9e37_79b9_7f4a_7c15),
    }
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("smc-torn-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Scans `c` and returns `(count, key_sum)`, asserting every row's
/// checksum holds.
fn audit(rt: &Arc<Runtime>, c: &Smc<Row>) -> (u64, u64) {
    let guard = rt.pin();
    let (mut count, mut sum) = (0u64, 0u64);
    c.for_each(&guard, |r| {
        assert_eq!(
            r.check,
            r.key.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            "row payload corrupted in memory"
        );
        count += 1;
        sum = sum.wrapping_add(r.key);
    });
    (count, sum)
}

/// Builds a collection of `n` rows and snapshots it as generation 1,
/// returning the runtime, the live collection, and the model aggregate.
fn committed_generation(dir: &std::path::Path, n: u64) -> (Arc<Runtime>, Smc<Row>, (u64, u64)) {
    let rt = Runtime::new();
    let c: Smc<Row> = Smc::new(&rt);
    for k in 0..n {
        c.add(row(k));
    }
    let report = c.snapshot_to(dir).expect("clean snapshot commits");
    assert_eq!(report.generation, 1);
    assert_eq!(report.objects, n);
    let model = audit(&rt, &c);
    (rt, c, model)
}

/// The committed manifest names its page file; rot probes must corrupt
/// that file, not whatever orphan an earlier torn attempt left behind.
fn referenced_page_file(dir: &std::path::Path) -> PathBuf {
    let manifest = std::fs::read_to_string(dir.join("MANIFEST")).expect("read MANIFEST");
    let name = manifest
        .lines()
        .find_map(|l| l.strip_prefix("page_file "))
        .expect("manifest names its page file")
        .trim();
    dir.join(name)
}

/// One mid-write kill: arm `site` so the *next* snapshot attempt dies,
/// then prove the directory still recovers generation 1 exactly.
fn torn_snapshot_recovers_previous_generation(site: FaultSite, tag: &str) {
    const N: u64 = 5_000;
    let dir = tmpdir(tag);
    let (rt, c, model) = committed_generation(&dir, N);

    // Mutate past the committed generation so "previous generation" and
    // "current heap" are distinguishable, then kill the second snapshot.
    for k in N..N + 500 {
        c.add(row(k));
    }
    rt.faults().set_rate(site, 1024);
    rt.faults().set_limit(Some(1));
    rt.faults().enable(0x7041 ^ site.index() as u64);
    let died = c.snapshot_to(&dir);
    rt.faults().set_rate(site, 0);
    rt.faults().disable();
    assert!(
        died.is_err(),
        "{site:?}: armed failpoint did not kill the snapshot"
    );

    // Fail closed: a fresh runtime recovers generation 1, bit-exact.
    let rt2 = Runtime::new();
    let (recovered, report) =
        Smc::<Row>::recover_from(&rt2, &dir).expect("previous generation must stay loadable");
    assert_eq!(report.generation, 1, "{site:?}: wrong generation recovered");
    assert_eq!(report.objects, N);
    assert_eq!(
        audit(&rt2, &recovered),
        model,
        "{site:?}: recovered aggregate diverged from the committed model"
    );
    recovered.verify().expect("recovered heap verifies");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_page_write_recovers_previous_generation() {
    torn_snapshot_recovers_previous_generation(FaultSite::SnapshotPage, "page");
}

#[test]
fn torn_manifest_write_recovers_previous_generation() {
    torn_snapshot_recovers_previous_generation(FaultSite::SnapshotManifest, "manifest");
}

#[test]
fn torn_rename_recovers_previous_generation() {
    torn_snapshot_recovers_previous_generation(FaultSite::SnapshotRename, "rename");
}

#[test]
fn flipped_byte_in_page_file_is_rejected_with_named_page() {
    let dir = tmpdir("flip");
    let (_rt, _c, _model) = committed_generation(&dir, 5_000);

    let page_file = referenced_page_file(&dir);
    let mut bytes = std::fs::read(&page_file).expect("read page file");
    let flip = bytes.len() - 100;
    bytes[flip] ^= 0xff;
    std::fs::write(&page_file, &bytes).expect("write corrupted page file");

    let rt2 = Runtime::new();
    match Smc::<Row>::recover_from(&rt2, &dir) {
        Err(PersistError::PageChecksum { page }) => {
            // The error must localize the damage: the named page's extent
            // has to contain the byte we flipped.
            assert!(
                page < bytes.len() as u64,
                "named page {page} cannot exceed the file's page count"
            );
        }
        Err(e) => panic!("rejected, but without naming the page: {e}"),
        Ok(_) => panic!("recovery materialized a corrupted snapshot"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncated_page_file_is_rejected_with_named_page() {
    let dir = tmpdir("trunc");
    let (_rt, _c, _model) = committed_generation(&dir, 5_000);

    let page_file = referenced_page_file(&dir);
    let len = std::fs::metadata(&page_file).expect("stat page file").len();
    let f = std::fs::OpenOptions::new()
        .write(true)
        .open(&page_file)
        .expect("open page file");
    f.set_len(len - 100).expect("truncate page file");
    drop(f);

    let rt2 = Runtime::new();
    match Smc::<Row>::recover_from(&rt2, &dir) {
        Err(PersistError::PageTruncated { expected, got, .. }) => {
            assert!(got < expected, "truncation error must show the shortfall");
        }
        // A truncation that beheads a page mid-header can also surface as a
        // checksum failure; both are named, fail-closed rejections.
        Err(PersistError::PageChecksum { .. }) => {}
        Err(e) => panic!("rejected, but without naming the page: {e}"),
        Ok(_) => panic!("recovery materialized a truncated snapshot"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn empty_directory_reports_no_snapshot_not_garbage() {
    let dir = tmpdir("empty");
    std::fs::create_dir_all(&dir).expect("create empty dir");
    let rt = Runtime::new();
    match Smc::<Row>::recover_from(&rt, &dir) {
        Err(PersistError::NoSnapshot) => {}
        Err(e) => panic!("want NoSnapshot, got {e}"),
        Ok(_) => panic!("recovered a collection from an empty directory"),
    }
    std::fs::remove_dir_all(&dir).ok();
}
