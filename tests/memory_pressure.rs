//! Memory-pressure and fault-injection integration tests, spanning the
//! `smc-memory` runtime and the `smc` collection API.
//!
//! These exercise the failure model end to end: a budgeted runtime surfaces
//! `MemError::OutOfMemory` through the collection's `try_` APIs, recovery
//! frees enough to continue, interrupted compactions stay retriable, and the
//! structural validator holds after every injected failure.

use std::sync::Arc;

use smc_repro::smc::{ContextConfig, Smc, Tabular};
use smc_repro::smc_memory::error::MemError;
use smc_repro::smc_memory::fault::FaultSite;
use smc_repro::smc_memory::stats::MemoryStats;
use smc_repro::smc_memory::{Runtime, BLOCK_SIZE};
use smc_repro::smc_util::Pcg32;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct Payload {
    key: u64,
    fill: [u64; 7],
}
unsafe impl Tabular for Payload {}

fn payload(key: u64) -> Payload {
    Payload {
        key,
        fill: [key ^ 0xabcd; 7],
    }
}

fn budgeted_runtime(blocks: u64) -> Arc<Runtime> {
    Runtime::with_budget(Some(blocks * BLOCK_SIZE as u64))
}

#[test]
fn tiny_budget_surfaces_oom_through_collection_api() {
    let rt = budgeted_runtime(1);
    let c: Smc<Payload> = Smc::new(&rt);
    let mut added = 0u64;
    let err = loop {
        match c.try_add(payload(added)) {
            Ok(_) => added += 1,
            Err(e) => break e,
        }
        assert!(added < 100_000, "budget never enforced");
    };
    assert_eq!(err, MemError::OutOfMemory);
    // The failed insert took nothing: the collection still matches what
    // succeeded, and the validator agrees.
    assert_eq!(c.len(), added);
    let report = c.verify().unwrap();
    assert_eq!(report.valid_slots, added);
    rt.verify().unwrap();
    assert!(
        MemoryStats::get(&rt.stats.alloc_retries) > 0,
        "recovery ladder never ran"
    );
}

#[test]
fn freeing_objects_recovers_from_oom() {
    let rt = budgeted_runtime(2);
    let c: Smc<Payload> = Smc::new(&rt);
    let mut refs = Vec::new();
    let mut key = 0u64;
    while let Ok(r) = c.try_add(payload(key)) {
        refs.push(r);
        key += 1;
    }
    // Shed half, then inserts must succeed again: removal puts slots in
    // limbo, the epoch advances inside the recovery ladder, and the
    // allocator reclaims them in place.
    for r in refs.drain(..refs.len() / 2) {
        assert!(c.remove(r));
    }
    for i in 0..64 {
        let r = c
            .try_add(payload(1_000_000 + i))
            .expect("insert after shedding");
        refs.push(r);
    }
    c.verify().unwrap();
    rt.verify().unwrap();
    // The rescue path here is the reclaim queue, reached because the ladder's
    // epoch advances matured the shed slots — both must have fired.
    let snap = rt.stats.snapshot();
    assert!(snap.alloc_retries > 0, "recovery ladder never ran:\n{snap}");
    assert!(
        snap.slots_reclaimed > 0,
        "no limbo slot was reclaimed in place:\n{snap}"
    );
}

#[test]
fn interrupted_compaction_is_retriable_and_loses_nothing() {
    let rt = Runtime::new();
    let config = ContextConfig {
        reclamation_threshold: 1.1, // never reuse limbo slots in place
        compaction_occupancy: 0.9,
        ..ContextConfig::default()
    };
    let c: Smc<Payload> = Smc::with_config(&rt, config);
    let mut rng = Pcg32::seed_from_u64(0xFA11);
    let mut live = Vec::new();
    for key in 0..6000u64 {
        let r = c.add(payload(key));
        if rng.gen_bool(0.3) {
            live.push((key, r));
        } else {
            assert!(c.remove(r));
        }
    }

    // Interrupt relocation on every pass until the injection limit runs out;
    // each interrupted pass must leave the collection fully valid.
    rt.faults().set_rate(FaultSite::Relocation, 1024);
    rt.faults().set_limit(Some(3));
    rt.faults().enable(0xFA11);
    let mut interruptions = 0;
    for _ in 0..8 {
        let report = c.compact();
        if report.interrupted {
            interruptions += 1;
            c.verify()
                .unwrap_or_else(|v| panic!("invalid after interruption: {v:?}"));
        }
        c.release_retired();
    }
    assert_eq!(
        interruptions, 3,
        "injection limit should allow exactly 3 interrupts"
    );
    rt.faults().disable();

    // With faults off, a retry pass completes; the survivors are intact.
    let report = c.compact();
    assert!(!report.interrupted);
    c.release_retired();
    rt.drain_graveyard_blocking();
    assert_eq!(c.len(), live.len() as u64);
    let guard = rt.pin();
    for (key, r) in &live {
        assert_eq!(c.read(*r, &guard), Some(payload(*key)));
    }
    drop(guard);
    c.verify().unwrap();
    rt.verify().unwrap();
    let snap = rt.stats.snapshot();
    assert_eq!(snap.compactions_interrupted, 3);
    assert_eq!(snap.faults_injected, 3);
}

#[test]
fn validator_passes_under_randomized_faults_at_every_site() {
    // Deterministic mixed workload with all four failpoints armed: every
    // error surfaces as Err (never a panic or corruption), and quiescent
    // validation passes after each phase.
    let rt = budgeted_runtime(4);
    let c: Smc<Payload> = Smc::new(&rt);
    rt.faults().set_all_rates(48);
    let mut model = Vec::new();
    let mut key = 0u64;
    for phase in 0..6u64 {
        rt.faults().enable(0x5EED ^ phase);
        let mut rng = Pcg32::seed_from_u64(phase);
        for _ in 0..2000 {
            if model.is_empty() || rng.gen_bool(0.6) {
                match c.try_add(payload(key)) {
                    Ok(r) => {
                        model.push((key, r));
                        key += 1;
                    }
                    Err(MemError::OutOfMemory) | Err(MemError::TooManyThreads) => {}
                    Err(e) => panic!("unexpected error: {e}"),
                }
            } else {
                let i = rng.gen_range(0..model.len());
                let (_, r) = model.swap_remove(i);
                match c.try_remove(r) {
                    Ok(true) => {}
                    Ok(false) => panic!("live ref already removed"),
                    Err(MemError::TooManyThreads) => model.push((key, r)),
                    Err(e) => panic!("unexpected error: {e}"),
                }
            }
        }
        let _ = c.compact();
        c.release_retired();
        rt.faults().disable();
        let report = c
            .verify()
            .unwrap_or_else(|v| panic!("invalid after phase {phase}: {v:?}"));
        assert_eq!(report.valid_slots, model.len() as u64);
        rt.verify().unwrap();
    }
    // Contents, not just counts: every modeled object is still readable.
    let guard = rt.pin();
    for (k, r) in &model {
        assert_eq!(c.read(*r, &guard).map(|p| p.key), Some(*k));
    }
}

#[test]
fn fault_schedule_is_reproducible_from_seed() {
    use smc_repro::smc_memory::fault::FaultInjector;

    // Decision-schedule level: identical seeds produce bit-identical
    // schedules; different seeds produce different ones.
    let schedule = |seed: u64| -> Vec<bool> {
        let f = FaultInjector::detached();
        f.set_all_rates(32);
        f.enable(seed);
        (0..4096)
            .flat_map(|_| FaultSite::ALL.map(|site| f.should_fail(site)))
            .collect()
    };
    let a = schedule(42);
    assert_eq!(a, schedule(42), "same seed must produce the same schedule");
    assert!(
        a.iter().any(|&d| d),
        "rate 32/1024 over 4096 calls should inject"
    );
    assert_ne!(a, schedule(43), "different seeds must diverge somewhere");

    // Workload level: the same seeded run fails the same allocations.
    let run = |seed: u64| -> (u64, Vec<u64>) {
        let rt = budgeted_runtime(2);
        let c: Smc<Payload> = Smc::new(&rt);
        rt.faults().set_all_rates(32);
        rt.faults().enable(seed);
        let mut surviving = Vec::new();
        for key in 0..5000u64 {
            if c.try_add(payload(key)).is_ok() {
                surviving.push(key);
            }
        }
        (rt.faults().injected_total(), surviving)
    };
    let (a_inj, a_keys) = run(42);
    let (b_inj, b_keys) = run(42);
    assert_eq!(a_inj, b_inj, "same seed must inject identically");
    assert_eq!(a_keys, b_keys, "same seed must fail the same allocations");
    assert!(a_inj > 0, "this configuration should inject something");
}
