//! Umbrella crate for the SMC reproduction workspace.
//!
//! Re-exports the member crates so integration tests and examples at the
//! repository root can use one import path.

#![warn(missing_docs)]
pub use columnstore;
pub use managed_heap;
pub use smc;
pub use smc_memory;
pub use smc_persist;
pub use smc_query;
pub use smc_util;
pub use tpch;
