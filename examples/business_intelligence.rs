//! The paper's §1 motivating scenario: a business-intelligence application
//! that loads the company's data into collections of objects on startup and
//! analyses it with language-integrated queries — no external DBMS.
//!
//! Run with: `cargo run --release --example business_intelligence -- [sf]`

fn main() {
    let sf: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.02);
    let gen = tpch::Generator::new(sf);
    println!("loading business data at scale factor {sf}...");
    let t0 = std::time::Instant::now();
    let db = tpch::smcdb::SmcDb::load(&gen, false);
    println!(
        "loaded {} lineitems / {} orders / {} customers in {:.1?} ({} MiB off-heap)",
        db.lineitems.len(),
        db.orders.len(),
        db.customers.len(),
        t0.elapsed(),
        db.memory_bytes() / (1024 * 1024)
    );

    let params = tpch::Params::default();

    // Dashboard panel 1: the pricing summary (TPC-H Q1).
    let t = std::time::Instant::now();
    let q1 = tpch::queries::smc_q::q1(&db, &params);
    println!("\npricing summary ({:.1?}):", t.elapsed());
    println!("  flag status          qty        price   avg_disc    rows");
    for row in &q1 {
        println!(
            "     {}      {} {:>12} {:>12} {:>10} {:>7}",
            row.returnflag as char,
            row.linestatus as char,
            row.sum_qty.trunc_to_i64(),
            row.sum_base_price.trunc_to_i64(),
            row.avg_disc().to_string(),
            row.count
        );
    }

    // Dashboard panel 2: top unshipped orders (TPC-H Q3).
    let t = std::time::Instant::now();
    let q3 = tpch::queries::smc_q::q3(&db, &params);
    println!(
        "\ntop unshipped orders in the {} segment ({:.1?}):",
        params.q3_segment,
        t.elapsed()
    );
    for row in q3.iter().take(5) {
        println!(
            "  order {:>8}  revenue {:>14}  placed {}",
            row.orderkey,
            row.revenue.to_string(),
            tpch::dates::format_date(row.orderdate)
        );
    }

    // Dashboard panel 3: revenue by nation (TPC-H Q5).
    let t = std::time::Instant::now();
    let q5 = tpch::queries::smc_q::q5(&db, &params);
    println!(
        "\n{} revenue by nation, {} ({:.1?}):",
        params.q5_region,
        1994,
        t.elapsed()
    );
    for row in &q5 {
        println!("  {:<16} {:>16}", row.nation, row.revenue.to_string());
    }

    // Interactive refresh: the evening data load arrives.
    let mut rng = tpch::workloads::workload_rng(99);
    let victims = tpch::workloads::pick_victims(&mut rng, db.orders.len() as i64, 200);
    let removed = tpch::workloads::smc_removal_stream(&db, &victims);
    tpch::workloads::smc_insert_stream(&db, &mut rng, 5_000_000_000, 500);
    println!("\nrefresh applied: -{removed} +500 lineitems; rerunning Q1...");
    let t = std::time::Instant::now();
    let q1b = tpch::queries::smc_q::q1(&db, &params);
    println!(
        "updated pricing summary in {:.1?} (row count deltas: {:?})",
        t.elapsed(),
        q1.iter()
            .zip(&q1b)
            .map(|(a, b)| b.count as i64 - a.count as i64)
            .collect::<Vec<_>>()
    );
}
