//! Concurrent refresh pipeline: analytical queries running continuously
//! while writer threads apply TPC-H refresh streams, and a compaction pass
//! reclaiming space after heavy shrinkage — the full concurrency story of
//! §3.4–§5 in one program.
//!
//! Run with: `cargo run --release --example concurrent_refresh`

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

fn main() {
    let gen = tpch::Generator::new(0.02);
    println!("loading TPC-H at SF 0.02...");
    let db = Arc::new(tpch::smcdb::SmcDb::load(&gen, false));
    let params = tpch::Params::default();
    println!("{} lineitems loaded", db.lineitems.len());

    let stop = Arc::new(AtomicBool::new(false));
    let queries_run = Arc::new(AtomicU64::new(0));

    // Two reader threads: continuous Q6-style analytics.
    let mut readers = Vec::new();
    for _ in 0..2 {
        let db = db.clone();
        let stop = stop.clone();
        let counter = queries_run.clone();
        let params = params.clone();
        readers.push(std::thread::spawn(move || {
            let mut last = smc_memory::Decimal::ZERO;
            while !stop.load(Ordering::Relaxed) {
                last = tpch::queries::smc_q::q6(&db, &params);
                counter.fetch_add(1, Ordering::Relaxed);
            }
            last
        }));
    }

    // Two writer threads: alternating insert/removal refresh streams.
    let mut writers = Vec::new();
    let max_orderkey = db.orders.len() as i64;
    for w in 0..2u64 {
        let db = db.clone();
        let stop = stop.clone();
        writers.push(std::thread::spawn(move || {
            let mut rng = tpch::workloads::workload_rng(1000 + w);
            let mut streams = 0u64;
            let mut key_base = 7_000_000_000 + w as i64 * 1_000_000;
            while !stop.load(Ordering::Relaxed) {
                if streams % 2 == 0 {
                    tpch::workloads::smc_insert_stream(&db, &mut rng, key_base, 200);
                    key_base += 200;
                } else {
                    let victims = tpch::workloads::pick_victims(&mut rng, max_orderkey, 50);
                    tpch::workloads::smc_removal_stream(&db, &victims);
                }
                streams += 1;
            }
            streams
        }));
    }

    std::thread::sleep(std::time::Duration::from_millis(1500));
    stop.store(true, Ordering::SeqCst);
    let revenues: Vec<_> = readers.into_iter().map(|r| r.join().unwrap()).collect();
    let streams: u64 = writers.into_iter().map(|w| w.join().unwrap()).sum();
    println!(
        "ran {} queries concurrently with {streams} refresh streams; last Q6 revenue {}",
        queries_run.load(Ordering::Relaxed),
        revenues[0]
    );

    // Heavy shrinkage, then compaction (§5).
    let g = db.runtime.pin();
    let mut victims = Vec::new();
    db.lineitems.for_each_ref(&g, |r, l| {
        if l.orderkey % 10 != 0 {
            victims.push(r);
        }
    });
    drop(g);
    for r in victims {
        db.lineitems.remove(r);
    }
    let before = db.lineitems.memory_bytes();
    let report = db.lineitems.compact();
    db.lineitems.release_retired();
    db.runtime.drain_graveyard_blocking();
    println!(
        "after 90% shrinkage: compaction moved {} objects ({} bailed), {} KiB -> {} KiB",
        report.moved,
        report.bailed,
        before / 1024,
        db.lineitems.memory_bytes() / 1024
    );
    let q6 = tpch::queries::smc_q::q6(&db, &params);
    println!("Q6 over the compacted collection: {q6}");
}
