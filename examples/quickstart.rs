//! Quickstart: the paper's §2 overview example, end to end.
//!
//! Run with: `cargo run --release --example quickstart`

use smc::{Smc, Tabular};
use smc_memory::{InlineStr, Runtime};

/// A `tabular` class (§2): fixed size, no heap references, inline strings.
#[derive(Clone, Copy, Debug)]
struct Person {
    name: InlineStr<24>,
    age: u32,
}
// SAFETY: only primitives and inline strings.
unsafe impl Tabular for Person {}

fn main() {
    // One off-heap memory runtime per application.
    let runtime = Runtime::new();

    // The §2 code excerpt: Collection<Person> persons = new ...
    let persons: Smc<Person> = Smc::new(&runtime);
    let adam = persons.add(Person {
        name: "Adam".into(),
        age: 27,
    });
    for i in 0..1_000_000u32 {
        persons.add(Person {
            name: InlineStr::new(&format!("p{i}")),
            age: i % 95,
        });
    }
    println!(
        "collection holds {} people in {} KiB of off-heap blocks",
        persons.len(),
        persons.memory_bytes() / 1024
    );

    // Language-integrated query, compiled style: enumerate the collection's
    // memory blocks directly, skipping dead slots via the slot directory.
    {
        let guard = runtime.pin(); // enter a critical section (§3.4)
        let mut adults = 0u64;
        let visited = persons.for_each(&guard, |p| {
            if p.age > 17 {
                adults += 1;
            }
        });
        println!("scanned {visited} objects, found {adults} adults");
        println!("adam is {:?}", adam.get(&guard).map(|p| (p.name, p.age)));
    }

    // Containment semantics: removal ends the object's lifetime and every
    // outstanding reference becomes null (§2).
    persons.remove(adam);
    let guard = runtime.pin();
    assert!(adam.get(&guard).is_none());
    println!("after Remove(adam): adam.get() = {:?}", adam.get(&guard));
    drop(guard);

    // Heavy shrinkage triggers compaction (§5): remove 95 % and compact.
    let mut refs = Vec::new();
    let g = runtime.pin();
    persons.for_each_ref(&g, |r, p| {
        if p.age % 20 != 0 {
            refs.push(r);
        }
    });
    drop(g);
    for r in refs {
        persons.remove(r);
    }
    let before = persons.memory_bytes();
    let report = persons.compact();
    persons.release_retired();
    runtime.drain_graveyard_blocking();
    println!(
        "compaction: moved {} objects in {} groups; memory {} KiB -> {} KiB",
        report.moved,
        report.groups,
        before / 1024,
        persons.memory_bytes() / 1024
    );
}
