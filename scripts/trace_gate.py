#!/usr/bin/env python3
"""Chrome-trace gate: validate a trace produced via ``SMC_TRACE_OUT`` before
it is uploaded as a CI artifact (and before anyone wastes time loading a
broken file into Perfetto / chrome://tracing).

The gate checks the *structural contract* of the exporter
(``smc_obs::chrome``), not the content of any particular run:

  * the file is valid JSON of the Trace Event Format object form
    (``{"traceEvents": [...], ...}``) or bare-array form;
  * every event has a string ``ph``, string ``name``, and integer ``pid`` /
    ``tid`` fields, plus a numeric ``ts`` (microseconds; fractional doubles
    allowed) for everything but ``M`` metadata, which carries none;
  * only known phases appear (``B``/``E`` duration, ``X`` complete, ``i``
    instant, ``C`` counter, ``M`` metadata);
  * timestamps are non-decreasing *per (pid, tid) track* — the exporter
    drains each thread's ring in order, so out-of-order stamps mean the
    drain or the clock is broken (``M`` events carry no meaningful ``ts``
    and are exempt);
  * ``B``/``E`` pairs balance per track like a bracket language: every ``E``
    closes the most recent open ``B`` with the *same name*, and no ``B``
    is left open at end of trace (the exporter closes spans before
    draining);
  * the trace contains at least one non-metadata event unless
    ``--allow-empty`` is given (a disabled tracer writes a valid empty
    trace; CI runs with the tracer enabled and wants proof it recorded).

Exit status: 0 = gate passed, 1 = gate failed, 2 = usage/IO error.

``--self-test`` exercises the gate against doctored traces (unbalanced
spans, mismatched span names, time travel within a track, unknown phase,
missing fields, ...) and fails if any doctored trace slips through.
"""

import argparse
import copy
import json
import sys

KNOWN_PHASES = {"B", "E", "X", "i", "C", "M"}


class GateError(Exception):
    """A gate violation (exit status 1)."""


def fail(msg):
    raise GateError(msg)


def events_of(doc):
    """Accepts both Trace Event Format container shapes."""
    if isinstance(doc, list):
        return doc
    if isinstance(doc, dict):
        events = doc.get("traceEvents")
        if isinstance(events, list):
            return events
        fail("trace object has no 'traceEvents' array")
    fail("trace is neither an object with 'traceEvents' nor an array")


def check_trace(doc, allow_empty=False):
    """Raises GateError on the first violation; returns a summary dict."""
    events = events_of(doc)
    tracks = {}   # (pid, tid) -> {"ts": last_ts, "stack": [open B names]}
    counted = 0
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            fail(f"event #{i} is not an object")
        ph = ev.get("ph")
        if not isinstance(ph, str) or ph not in KNOWN_PHASES:
            fail(f"event #{i} has unknown phase {ph!r} "
                 f"(known: {sorted(KNOWN_PHASES)})")
        name = ev.get("name")
        if not isinstance(name, str) or not name:
            fail(f"event #{i} ({ph}) has no name")
        for field in ("pid", "tid"):
            v = ev.get(field)
            if not isinstance(v, int) or isinstance(v, bool):
                fail(f"event #{i} ({ph} {name!r}) field {field!r} is {v!r}, "
                     f"want an integer")
        if ph == "M":
            continue  # metadata: no timestamp, not on the timeline
        # `ts` is microseconds; the exporter emits sub-microsecond precision
        # as fractional doubles, which the format allows.
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or isinstance(ts, bool):
            fail(f"event #{i} ({ph} {name!r}) field 'ts' is {ts!r}, "
                 f"want a number")
        counted += 1
        track = tracks.setdefault((ev["pid"], ev["tid"]),
                                  {"ts": None, "stack": []})
        if track["ts"] is not None and ev["ts"] < track["ts"]:
            fail(f"event #{i} ({ph} {name!r}) goes back in time on track "
                 f"pid={ev['pid']} tid={ev['tid']}: ts {ev['ts']} after "
                 f"{track['ts']} — the ring drain is out of order")
        track["ts"] = ev["ts"]
        if ph == "B":
            track["stack"].append(name)
        elif ph == "E":
            if not track["stack"]:
                fail(f"event #{i}: 'E' {name!r} on track pid={ev['pid']} "
                     f"tid={ev['tid']} closes nothing (no open 'B')")
            opened = track["stack"].pop()
            if opened != name:
                fail(f"event #{i}: 'E' {name!r} closes 'B' {opened!r} on "
                     f"track pid={ev['pid']} tid={ev['tid']} — span "
                     f"begin/end names must match")
        elif ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or isinstance(dur, bool):
                fail(f"event #{i}: 'X' {name!r} has no numeric 'dur'")
    for (pid, tid), track in tracks.items():
        if track["stack"]:
            fail(f"track pid={pid} tid={tid} ends with unclosed span(s): "
                 f"{track['stack']} — the exporter must close 'B' spans "
                 f"before draining")
    if counted == 0 and not allow_empty:
        fail("trace contains no timeline events (metadata only) — the "
             "tracer recorded nothing; pass --allow-empty if intended")
    return {"events": len(events), "timeline": counted, "tracks": len(tracks)}


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"trace_gate: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def run_gate(path, allow_empty):
    doc = load(path)
    try:
        summary = check_trace(doc, allow_empty=allow_empty)
    except GateError as e:
        print(f"trace_gate: FAIL: {path}: {e}", file=sys.stderr)
        return 1
    print(f"trace_gate: PASS — {path}: {summary['events']} events "
          f"({summary['timeline']} on {summary['tracks']} track(s))")
    return 0


# --- self-test ---------------------------------------------------------------

def sample_trace():
    """A minimal well-formed trace in the shape smc_obs::chrome emits."""
    return {
        "traceEvents": [
            {"ph": "M", "name": "thread_name", "pid": 1, "tid": 0,
             "args": {"name": "counters"}},
            {"ph": "B", "name": "compact", "pid": 1, "tid": 1, "ts": 10},
            {"ph": "B", "name": "relocate_group", "pid": 1, "tid": 1,
             "ts": 12},
            {"ph": "E", "name": "relocate_group", "pid": 1, "tid": 1,
             "ts": 20},
            {"ph": "E", "name": "compact", "pid": 1, "tid": 1, "ts": 25},
            {"ph": "X", "name": "scan_block", "pid": 1, "tid": 2, "ts": 11,
             "dur": 5},
            {"ph": "i", "name": "epoch_advance", "pid": 1, "tid": 2, "ts": 30},
            {"ph": "C", "name": "blocks_live", "pid": 1, "tid": 2, "ts": 31,
             "args": {"value": 7}},
        ]
    }


def doctored_traces(base):
    """Yields (description, doctored_trace) pairs the gate MUST reject."""
    d = copy.deepcopy(base)
    del d["traceEvents"][4]  # drop the E that closes "compact"
    yield "unclosed 'B' span", d

    d = copy.deepcopy(base)
    d["traceEvents"][3]["name"] = "compact"  # E name mismatches its B
    yield "mismatched B/E span names", d

    d = copy.deepcopy(base)
    d["traceEvents"].insert(1, {"ph": "E", "name": "compact", "pid": 1,
                                "tid": 1, "ts": 5})
    yield "'E' with no open 'B'", d

    d = copy.deepcopy(base)
    d["traceEvents"][3]["ts"] = 1  # earlier than the B at ts=12, same track
    yield "time travel within a track", d

    d = copy.deepcopy(base)
    d["traceEvents"][1]["ph"] = "Q"
    yield "unknown phase", d

    d = copy.deepcopy(base)
    del d["traceEvents"][1]["ts"]
    yield "missing ts field", d

    d = copy.deepcopy(base)
    d["traceEvents"][1]["tid"] = "worker-1"
    yield "non-integer tid", d

    d = copy.deepcopy(base)
    d["traceEvents"][2]["name"] = ""
    yield "empty event name", d

    d = copy.deepcopy(base)
    del d["traceEvents"][5]["dur"]
    yield "'X' without dur", d

    d = copy.deepcopy(base)
    d["traceEvents"] = [d["traceEvents"][0]]  # metadata only
    yield "metadata-only trace (empty timeline)", d

    yield "not a trace container at all", {"events": []}


def self_test():
    base = sample_trace()
    try:
        check_trace(copy.deepcopy(base))
    except GateError as e:
        print(f"trace_gate self-test: clean trace rejected: {e}",
              file=sys.stderr)
        return 1
    # The bare-array container form must also be accepted.
    try:
        check_trace(copy.deepcopy(base)["traceEvents"])
    except GateError as e:
        print(f"trace_gate self-test: bare-array trace rejected: {e}",
              file=sys.stderr)
        return 1
    print("trace_gate self-test: clean traces accepted")

    bad = 0
    for desc, doctored in doctored_traces(base):
        try:
            check_trace(doctored)
        except GateError as e:
            print(f"trace_gate self-test: correctly rejected [{desc}]: {e}")
        else:
            print(f"trace_gate self-test: FAILED to reject [{desc}]",
                  file=sys.stderr)
            bad += 1
    if bad:
        print(f"trace_gate self-test: {bad} doctored trace(s) slipped "
              f"through", file=sys.stderr)
        return 1
    print("trace_gate self-test: all doctored traces rejected")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("trace", nargs="?", default="trace.json",
                    help="Chrome trace file to validate (default: trace.json)")
    ap.add_argument("--allow-empty", action="store_true",
                    help="accept a trace with no timeline events")
    ap.add_argument("--self-test", action="store_true",
                    help="verify the gate rejects doctored traces, then exit")
    args = ap.parse_args()
    if args.self_test:
        sys.exit(self_test())
    sys.exit(run_gate(args.trace, args.allow_empty))


if __name__ == "__main__":
    main()
