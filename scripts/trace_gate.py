#!/usr/bin/env python3
"""Chrome-trace gate: validate a trace produced via ``SMC_TRACE_OUT`` before
it is uploaded as a CI artifact (and before anyone wastes time loading a
broken file into Perfetto / chrome://tracing).

The gate checks the *structural contract* of the exporter
(``smc_obs::chrome``), not the content of any particular run:

  * the file is valid JSON of the Trace Event Format object form
    (``{"traceEvents": [...], ...}``) or bare-array form;
  * every event has a string ``ph``, string ``name``, and integer ``pid`` /
    ``tid`` fields, plus a numeric ``ts`` (microseconds; fractional doubles
    allowed) for everything but ``M`` metadata, which carries none;
  * only known phases appear (``B``/``E`` duration, ``X`` complete, ``i``
    instant, ``C`` counter, ``M`` metadata);
  * timestamps are non-decreasing *per (pid, tid) track* — the exporter
    drains each thread's ring in order, so out-of-order stamps mean the
    drain or the clock is broken (``M`` events carry no meaningful ``ts``
    and are exempt);
  * ``B``/``E`` pairs balance per track like a bracket language: every ``E``
    closes the most recent open ``B`` with the *same name*, and no ``B``
    is left open at end of trace (the exporter closes spans before
    draining);
  * the trace contains at least one non-metadata event unless
    ``--allow-empty`` is given (a disabled tracer writes a valid empty
    trace; CI runs with the tracer enabled and wants proof it recorded);
  * every ``req.<stage>`` event — a per-request span tagged with the
    originating ``RequestId`` from the wire's span-context header — is an
    ``X`` complete span carrying a positive integer ``args.req``, so
    request flows stay linkable across thread tracks;
  * with ``--require-request-flow N``, at least one request id must have
    spans on >= N distinct ``(pid, tid)`` tracks — the end-to-end proof
    that an id minted at the client crossed the connection thread, the
    shard, and the morsel workers.

Exit status: 0 = gate passed, 1 = gate failed, 2 = usage/IO error.

``--self-test`` exercises the gate against doctored traces (unbalanced
spans, mismatched span names, time travel within a track, unknown phase,
missing fields, ...) and fails if any doctored trace slips through.
"""

import argparse
import copy
import json
import sys

KNOWN_PHASES = {"B", "E", "X", "i", "C", "M"}


class GateError(Exception):
    """A gate violation (exit status 1)."""


def fail(msg):
    raise GateError(msg)


def events_of(doc):
    """Accepts both Trace Event Format container shapes."""
    if isinstance(doc, list):
        return doc
    if isinstance(doc, dict):
        events = doc.get("traceEvents")
        if isinstance(events, list):
            return events
        fail("trace object has no 'traceEvents' array")
    fail("trace is neither an object with 'traceEvents' nor an array")


def check_trace(doc, allow_empty=False, require_request_flow=0):
    """Raises GateError on the first violation; returns a summary dict."""
    events = events_of(doc)
    tracks = {}   # (pid, tid) -> {"ts": last_ts, "stack": [open B names]}
    req_flows = {}  # request id -> set of (pid, tid) tracks its spans touch
    counted = 0
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            fail(f"event #{i} is not an object")
        ph = ev.get("ph")
        if not isinstance(ph, str) or ph not in KNOWN_PHASES:
            fail(f"event #{i} has unknown phase {ph!r} "
                 f"(known: {sorted(KNOWN_PHASES)})")
        name = ev.get("name")
        if not isinstance(name, str) or not name:
            fail(f"event #{i} ({ph}) has no name")
        for field in ("pid", "tid"):
            v = ev.get(field)
            if not isinstance(v, int) or isinstance(v, bool):
                fail(f"event #{i} ({ph} {name!r}) field {field!r} is {v!r}, "
                     f"want an integer")
        if ph == "M":
            continue  # metadata: no timestamp, not on the timeline
        # `ts` is microseconds; the exporter emits sub-microsecond precision
        # as fractional doubles, which the format allows.
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or isinstance(ts, bool):
            fail(f"event #{i} ({ph} {name!r}) field 'ts' is {ts!r}, "
                 f"want a number")
        counted += 1
        track = tracks.setdefault((ev["pid"], ev["tid"]),
                                  {"ts": None, "stack": []})
        if track["ts"] is not None and ev["ts"] < track["ts"]:
            fail(f"event #{i} ({ph} {name!r}) goes back in time on track "
                 f"pid={ev['pid']} tid={ev['tid']}: ts {ev['ts']} after "
                 f"{track['ts']} — the ring drain is out of order")
        track["ts"] = ev["ts"]
        if ph == "B":
            track["stack"].append(name)
        elif ph == "E":
            if not track["stack"]:
                fail(f"event #{i}: 'E' {name!r} on track pid={ev['pid']} "
                     f"tid={ev['tid']} closes nothing (no open 'B')")
            opened = track["stack"].pop()
            if opened != name:
                fail(f"event #{i}: 'E' {name!r} closes 'B' {opened!r} on "
                     f"track pid={ev['pid']} tid={ev['tid']} — span "
                     f"begin/end names must match")
        elif ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or isinstance(dur, bool):
                fail(f"event #{i}: 'X' {name!r} has no numeric 'dur'")
        if name.startswith("req."):
            # Per-request spans: always complete spans, always tagged with
            # the originating RequestId so cross-track flows stay linkable.
            if ph != "X":
                fail(f"event #{i}: request span {name!r} has phase {ph!r}, "
                     f"want 'X' (complete span)")
            req = ev.get("args", {}).get("req") if \
                isinstance(ev.get("args"), dict) else None
            if not isinstance(req, int) or isinstance(req, bool) or req <= 0:
                fail(f"event #{i}: request span {name!r} carries "
                     f"args.req={req!r}, want a positive integer RequestId")
            req_flows.setdefault(req, set()).add((ev["pid"], ev["tid"]))
    for (pid, tid), track in tracks.items():
        if track["stack"]:
            fail(f"track pid={pid} tid={tid} ends with unclosed span(s): "
                 f"{track['stack']} — the exporter must close 'B' spans "
                 f"before draining")
    if counted == 0 and not allow_empty:
        fail("trace contains no timeline events (metadata only) — the "
             "tracer recorded nothing; pass --allow-empty if intended")
    widest = max((len(t) for t in req_flows.values()), default=0)
    if require_request_flow > 0 and widest < require_request_flow:
        fail(f"no request id spans {require_request_flow} distinct tracks "
             f"(widest flow touches {widest}) — span-context propagation "
             f"across conn/shard/exec is broken or no request was traced")
    return {"events": len(events), "timeline": counted,
            "tracks": len(tracks), "request_ids": len(req_flows),
            "widest_flow": widest}


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"trace_gate: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def run_gate(path, allow_empty, require_request_flow=0):
    doc = load(path)
    try:
        summary = check_trace(doc, allow_empty=allow_empty,
                              require_request_flow=require_request_flow)
    except GateError as e:
        print(f"trace_gate: FAIL: {path}: {e}", file=sys.stderr)
        return 1
    print(f"trace_gate: PASS — {path}: {summary['events']} events "
          f"({summary['timeline']} on {summary['tracks']} track(s), "
          f"{summary['request_ids']} traced request(s), widest flow "
          f"{summary['widest_flow']} track(s))")
    return 0


# --- self-test ---------------------------------------------------------------

def sample_trace():
    """A minimal well-formed trace in the shape smc_obs::chrome emits."""
    return {
        "traceEvents": [
            {"ph": "M", "name": "thread_name", "pid": 1, "tid": 0,
             "args": {"name": "counters"}},
            {"ph": "B", "name": "compact", "pid": 1, "tid": 1, "ts": 10},
            {"ph": "B", "name": "relocate_group", "pid": 1, "tid": 1,
             "ts": 12},
            {"ph": "E", "name": "relocate_group", "pid": 1, "tid": 1,
             "ts": 20},
            {"ph": "E", "name": "compact", "pid": 1, "tid": 1, "ts": 25},
            {"ph": "X", "name": "scan_block", "pid": 1, "tid": 2, "ts": 11,
             "dur": 5},
            {"ph": "i", "name": "epoch_advance", "pid": 1, "tid": 2, "ts": 30},
            {"ph": "C", "name": "blocks_live", "pid": 1, "tid": 2, "ts": 31,
             "args": {"value": 7}},
            # One traced request flowing over three tracks: connection
            # thread (tid 3), shard thread (tid 1), exec worker (tid 2).
            {"ph": "X", "name": "req.ring", "pid": 1, "tid": 1, "ts": 26,
             "dur": 2, "args": {"req": 77}},
            {"ph": "X", "name": "req.shard", "pid": 1, "tid": 1, "ts": 28,
             "dur": 4, "args": {"req": 77}},
            {"ph": "X", "name": "req.exec", "pid": 1, "tid": 2, "ts": 32,
             "dur": 3, "args": {"req": 77}},
            {"ph": "X", "name": "req.conn", "pid": 1, "tid": 3, "ts": 36,
             "dur": 9, "args": {"req": 77}},
        ]
    }


def doctored_traces(base):
    """Yields (description, doctored_trace) pairs the gate MUST reject."""
    d = copy.deepcopy(base)
    del d["traceEvents"][4]  # drop the E that closes "compact"
    yield "unclosed 'B' span", d

    d = copy.deepcopy(base)
    d["traceEvents"][3]["name"] = "compact"  # E name mismatches its B
    yield "mismatched B/E span names", d

    d = copy.deepcopy(base)
    d["traceEvents"].insert(1, {"ph": "E", "name": "compact", "pid": 1,
                                "tid": 1, "ts": 5})
    yield "'E' with no open 'B'", d

    d = copy.deepcopy(base)
    d["traceEvents"][3]["ts"] = 1  # earlier than the B at ts=12, same track
    yield "time travel within a track", d

    d = copy.deepcopy(base)
    d["traceEvents"][1]["ph"] = "Q"
    yield "unknown phase", d

    d = copy.deepcopy(base)
    del d["traceEvents"][1]["ts"]
    yield "missing ts field", d

    d = copy.deepcopy(base)
    d["traceEvents"][1]["tid"] = "worker-1"
    yield "non-integer tid", d

    d = copy.deepcopy(base)
    d["traceEvents"][2]["name"] = ""
    yield "empty event name", d

    d = copy.deepcopy(base)
    del d["traceEvents"][5]["dur"]
    yield "'X' without dur", d

    d = copy.deepcopy(base)
    d["traceEvents"] = [d["traceEvents"][0]]  # metadata only
    yield "metadata-only trace (empty timeline)", d

    yield "not a trace container at all", {"events": []}

    d = copy.deepcopy(base)
    d["traceEvents"][9]["ph"] = "B"  # req.shard demoted to an open span
    del d["traceEvents"][9]["dur"]
    d["traceEvents"].append({"ph": "E", "name": "req.shard", "pid": 1,
                             "tid": 1, "ts": 40})
    yield "request span with non-X phase", d

    d = copy.deepcopy(base)
    del d["traceEvents"][9]["args"]
    yield "request span without args.req", d

    d = copy.deepcopy(base)
    d["traceEvents"][9]["args"]["req"] = "0xbeef"
    yield "request span with non-integer args.req", d

    d = copy.deepcopy(base)
    d["traceEvents"][9]["args"]["req"] = 0
    yield "request span with the untraced sentinel id 0", d


def self_test():
    base = sample_trace()
    try:
        check_trace(copy.deepcopy(base))
    except GateError as e:
        print(f"trace_gate self-test: clean trace rejected: {e}",
              file=sys.stderr)
        return 1
    # The bare-array container form must also be accepted.
    try:
        check_trace(copy.deepcopy(base)["traceEvents"])
    except GateError as e:
        print(f"trace_gate self-test: bare-array trace rejected: {e}",
              file=sys.stderr)
        return 1
    print("trace_gate self-test: clean traces accepted")

    bad = 0
    for desc, doctored in doctored_traces(base):
        try:
            check_trace(doctored)
        except GateError as e:
            print(f"trace_gate self-test: correctly rejected [{desc}]: {e}")
        else:
            print(f"trace_gate self-test: FAILED to reject [{desc}]",
                  file=sys.stderr)
            bad += 1
    if bad:
        print(f"trace_gate self-test: {bad} doctored trace(s) slipped "
              f"through", file=sys.stderr)
        return 1
    print("trace_gate self-test: all doctored traces rejected")

    # --require-request-flow: the sample's one request spans 3 tracks, so
    # 3 passes and 4 must fail; a trace whose spans all share one track
    # must fail even at the sample's width.
    try:
        check_trace(copy.deepcopy(base), require_request_flow=3)
    except GateError as e:
        print(f"trace_gate self-test: 3-track request flow rejected: {e}",
              file=sys.stderr)
        return 1
    narrow = copy.deepcopy(base)
    for ev in narrow["traceEvents"]:
        if ev.get("name", "").startswith("req."):
            ev["tid"] = 1
    for desc, doc, width in [
        ("request flow narrower than required", copy.deepcopy(base), 4),
        ("request spans collapsed onto one track", narrow, 3),
    ]:
        try:
            check_trace(doc, require_request_flow=width)
        except GateError as e:
            print(f"trace_gate self-test: correctly rejected [{desc}]: {e}")
        else:
            print(f"trace_gate self-test: FAILED to reject [{desc}]",
                  file=sys.stderr)
            return 1
    print("trace_gate self-test: request-flow width enforced")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("trace", nargs="?", default="trace.json",
                    help="Chrome trace file to validate (default: trace.json)")
    ap.add_argument("--allow-empty", action="store_true",
                    help="accept a trace with no timeline events")
    ap.add_argument("--require-request-flow", type=int, default=0,
                    metavar="N",
                    help="require at least one traced request whose spans "
                         "cover N distinct (pid, tid) tracks")
    ap.add_argument("--self-test", action="store_true",
                    help="verify the gate rejects doctored traces, then exit")
    args = ap.parse_args()
    if args.self_test:
        sys.exit(self_test())
    sys.exit(run_gate(args.trace, args.allow_empty,
                      args.require_request_flow))


if __name__ == "__main__":
    main()
