#!/usr/bin/env python3
"""Bench-report gate: validate a freshly produced bench report (BENCH_fig14.json,
BENCH_fig15.json, ...) against its checked-in baseline in examples/.

The gate does NOT compare absolute timings (CI machines are noisy); it checks
the *structure and correctness signals* of the report:

  * schema is exactly ``smc-bench-report/v1`` (both files);
  * every correctness check passed (``all_checks_passed`` and each
    ``checks[].passed``) — these are the scan/Q1/Q6 parity oracles, so a
    failure here means the parallel engine returned wrong answers;
  * every check *name* present in the baseline is also present in the fresh
    report — a silently dropped parity check must fail the gate;
  * every series has at least one row, and the fresh report covers at least
    the baseline's series names;
  * the figure's required counters are non-zero — for query reports
    (fig14) that is ``pins_taken`` / ``blocks_scanned`` /
    ``morsels_dispatched`` (zero means the epoch machinery / morsel engine
    never did work); for the coordinator soak (fig15) it is ``pins_taken``
    / ``passes_planned`` / ``passes_completed``;
  * fig15 reports must additionally carry the ``slo_p999``,
    ``backpressure_deferred`` and ``post_quiesce_verify`` checks by name
    (passing, via the rule above) and a non-zero ``passes_deferred``
    counter — a soak in which the SLO back-pressure loop never engaged
    proves nothing about back-pressure;
  * fig16 (server load) reports must carry the saturation-free latency
    oracles (``slo_p999_ingest``/``slo_p999_query``/``saturation_free``),
    the tenancy oracles (``no_dropped_tenants``/``drain_verify``), a
    non-zero ``requests_completed`` counter, and a ``shard_requests``
    series in which **every** shard's request counter is non-zero — an
    idle shard means the key-hash router never spread the load;
  * fig16 reports must additionally carry the scraped tail-latency
    attribution: the ``attribution_scraped`` oracle, an ``attribution``
    series with one row per op class (ingest and query), and the six
    ``attr_<class>_<part>`` histograms (total / ring-wait / exec per
    class) each in the full summary shape — with each class's
    ``slow_requests`` row consistent with its total histogram's sample
    count, so the breakdown can't silently describe a different set of
    requests than it counted;
  * fig17 (persistence) reports must carry the ``recover_verify``,
    ``torn_page_rejected`` and ``spill_faults_counted`` oracles by name
    (cold recovery bit-exact, torn/corrupted snapshots rejected with a
    named page, larger-than-memory scans through the spill store exact),
    and non-zero ``snapshot_pages`` / ``recovered_objects`` /
    ``blocks_spilled`` / ``blocks_faulted_in`` counters — a run that
    never spilled or never faulted a page back in proves nothing about
    the larger-than-memory path;
  * fig18 (contended allocator) reports must carry the ``sharded_speedup``,
    ``alloc_parity`` and ``post_churn_verify`` oracles by name, non-zero
    ``allocs_total`` / ``remote_frees_drained`` / ``slab_classes_used``
    counters (the MPSC remote-free queues and the size-class slabs must
    both have carried load), and every ``alloc_churn`` row must clear an
    absolute allocs/sec floor — a mode that "ran" at zero throughput
    never ran;
  * if the report carries tracer counters, it may not claim an empty trace
    (``trace_events`` = 0) while also reporting dropped ring events — that
    combination means the tracer recorded work and the exporter lost all of
    it, so the "empty" trace is a lie.

Exit status: 0 = gate passed, 1 = gate failed, 2 = usage/IO error.

``--self-test`` exercises the gate against doctored copies of the baseline
(drop a parity check, flip a ``passed`` flag, zero a counter, ...) and fails
if any doctored report slips through. CI runs the self-test first so a broken
gate cannot silently pass broken reports.
"""

import argparse
import copy
import json
import sys

SCHEMA = "smc-bench-report/v1"
REQUIRED_COUNTERS = ("pins_taken", "blocks_scanned", "morsels_dispatched")
FIG15_COUNTERS = ("pins_taken", "passes_planned", "passes_completed")
FIG15_CHECKS = ("slo_p999", "backpressure_deferred", "post_quiesce_verify")
FIG16_COUNTERS = ("pins_taken", "blocks_scanned", "morsels_dispatched",
                  "requests_completed")
FIG16_CHECKS = ("slo_p999_ingest", "slo_p999_query", "saturation_free",
                "shard_requests_nonzero", "no_dropped_tenants",
                "drain_verify", "attribution_scraped")
FIG16_ATTR_CLASSES = ("ingest", "query")
FIG16_ATTR_PARTS = ("total_ns", "ring_wait_ns", "exec_ns")
SUMMARY_FIELDS = ("count", "sum_ns", "min_ns", "max_ns", "mean_ns",
                  "p50_ns", "p95_ns", "p99_ns")
FIG17_COUNTERS = ("pins_taken", "snapshot_pages", "recovered_objects",
                  "blocks_spilled", "blocks_faulted_in")
FIG17_CHECKS = ("recover_verify", "torn_page_rejected",
                "spill_faults_counted")
FIG18_COUNTERS = ("allocs_total", "remote_frees_drained",
                  "slab_classes_used")
FIG18_CHECKS = ("sharded_speedup", "alloc_parity", "post_churn_verify")
# Absolute floor on every alloc_churn row's allocs/sec. Deliberately far
# below any real machine (a single serialized core measures ~25k/s): the
# floor rejects zeroed or garbage rows, not slow hardware.
FIG18_MIN_ALLOCS_PER_SEC = 1000


def required_counters(report):
    """The non-zero counters this figure must produce."""
    if report.get("figure") == "fig15":
        return FIG15_COUNTERS
    if report.get("figure") == "fig16":
        return FIG16_COUNTERS
    if report.get("figure") == "fig17":
        return FIG17_COUNTERS
    if report.get("figure") == "fig18":
        return FIG18_COUNTERS
    return REQUIRED_COUNTERS


def fail(msg):
    raise GateError(msg)


class GateError(Exception):
    """A gate violation (exit status 1)."""


def check_report(fresh, baseline):
    """Raises GateError on the first violation; returns a summary dict."""
    for label, rep in (("fresh", fresh), ("baseline", baseline)):
        if not isinstance(rep, dict):
            fail(f"{label} report is not a JSON object")
        if rep.get("schema") != SCHEMA:
            fail(f"{label} report schema is {rep.get('schema')!r}, want {SCHEMA!r}")

    # --- correctness checks -------------------------------------------------
    checks = fresh.get("checks")
    if not isinstance(checks, list) or not checks:
        fail("fresh report has no 'checks' — parity oracles did not run")
    failed = [c.get("name", "<unnamed>") for c in checks if not c.get("passed")]
    if failed:
        fail(f"parity checks failed: {', '.join(failed)}")
    if fresh.get("all_checks_passed") is not True:
        fail("'all_checks_passed' is not true despite individual checks passing "
             "(report is internally inconsistent)")

    # --- no check silently dropped -----------------------------------------
    fresh_names = {c.get("name") for c in checks}
    base_names = {c.get("name") for c in baseline.get("checks", [])}
    missing = sorted(n for n in base_names - fresh_names if n)
    if missing:
        fail(f"checks present in baseline but missing from fresh report: "
             f"{', '.join(missing)} — a parity oracle was dropped")

    # --- series coverage ----------------------------------------------------
    series = fresh.get("series")
    if not isinstance(series, list) or not series:
        fail("fresh report has no 'series'")
    for s in series:
        if not s.get("rows"):
            fail(f"series {s.get('name')!r} has no rows")
    fresh_series = {s.get("name") for s in series}
    base_series = {s.get("name") for s in baseline.get("series", [])}
    missing_series = sorted(n for n in base_series - fresh_series if n)
    if missing_series:
        fail(f"series present in baseline but missing from fresh report: "
             f"{', '.join(missing_series)}")

    # --- required counters --------------------------------------------------
    counters = fresh.get("counters", {})
    required = required_counters(fresh)
    for name in required:
        value = counters.get(name)
        if not isinstance(value, (int, float)) or value <= 0:
            fail(f"counter {name!r} is {value!r} — the machinery this "
                 f"figure measures did no work")

    # --- fig15 coordinator soak rules ----------------------------------------
    # The soak is only evidence if its three load-bearing oracles ran (SLO
    # held, back-pressure engaged, post-quiesce reconcile exact) and the
    # back-pressure path actually deferred work at least once.
    if fresh.get("figure") == "fig15":
        missing_fig15 = sorted(n for n in FIG15_CHECKS if n not in fresh_names)
        if missing_fig15:
            fail(f"fig15 report is missing required checks: "
                 f"{', '.join(missing_fig15)}")
        deferred = counters.get("passes_deferred")
        if not isinstance(deferred, (int, float)) or deferred <= 0:
            fail(f"counter 'passes_deferred' is {deferred!r} — the SLO "
                 f"back-pressure loop never engaged during the soak")

    # --- fig16 server-load rules ---------------------------------------------
    # A load run is only evidence if its latency oracles ran saturation-free,
    # no tenant stopped answering, the embedded server drained verified, and
    # the key-hash router actually spread work: every shard's request counter
    # in the per-shard series must be non-zero.
    if fresh.get("figure") == "fig16":
        missing_fig16 = sorted(n for n in FIG16_CHECKS if n not in fresh_names)
        if missing_fig16:
            fail(f"fig16 report is missing required checks: "
                 f"{', '.join(missing_fig16)}")
        shard_rows = None
        for s in series:
            if s.get("name") == "shard_requests":
                shard_rows = s.get("rows") or []
        if shard_rows is None:
            fail("fig16 report has no 'shard_requests' series")
        for row in shard_rows:
            if (len(row) < 2 or not isinstance(row[1], (int, float))
                    or row[1] <= 0):
                fail(f"shard_requests row {row!r} shows an idle shard — "
                     f"every shard must have served requests")
        # Tail-latency attribution: the scraped per-op-class breakdown must
        # be present in full summary shape, and each class's slow-request
        # count must agree with its total histogram's sample count.
        attr_rows = None
        for s in series:
            if s.get("name") == "attribution":
                attr_rows = s.get("rows") or []
        if attr_rows is None:
            fail("fig16 report has no 'attribution' series — the scrape "
                 "breakdown was dropped")
        slow_by_class = {}
        for row in attr_rows:
            if len(row) >= 2 and isinstance(row[0], str):
                slow_by_class[row[0]] = row[1]
        hists = fresh.get("histograms", {})
        for cls in FIG16_ATTR_CLASSES:
            if cls not in slow_by_class:
                fail(f"attribution series has no {cls!r} row")
            for part in FIG16_ATTR_PARTS:
                name = f"attr_{cls}_{part}"
                h = hists.get(name)
                if not isinstance(h, dict):
                    fail(f"fig16 report is missing attribution histogram "
                         f"{name!r}")
                for field in SUMMARY_FIELDS:
                    v = h.get(field)
                    if not isinstance(v, (int, float)) or isinstance(v, bool):
                        fail(f"attribution histogram {name!r} field "
                             f"{field!r} is {v!r}, want a number")
            total_count = hists[f"attr_{cls}_total_ns"].get("count")
            if slow_by_class[cls] != total_count:
                fail(f"attribution row says {slow_by_class[cls]!r} slow "
                     f"{cls} request(s) but attr_{cls}_total_ns counted "
                     f"{total_count!r} — the breakdown describes a "
                     f"different set of requests than it counted")

    # --- fig17 persistence rules ---------------------------------------------
    # A persistence run is only evidence if all three of its load-bearing
    # oracles ran: cold recovery reproduced the model bit-exact, every torn
    # or corrupted snapshot was rejected with a named error (never loaded),
    # and the budget-constrained phase actually spilled and faulted pages
    # while keeping scans exact. The counter rule above already rejects runs
    # where blocks_spilled / blocks_faulted_in are zero.
    if fresh.get("figure") == "fig17":
        missing_fig17 = sorted(n for n in FIG17_CHECKS if n not in fresh_names)
        if missing_fig17:
            fail(f"fig17 report is missing required checks: "
                 f"{', '.join(missing_fig17)}")

    # --- fig18 contended-allocator rules --------------------------------------
    # A churn run is only evidence if its three oracles ran (sharded speedup
    # or its recorded low-core waiver, exact alloc/free parity, post-churn
    # verify) and the two reworked protocols actually carried load: the
    # counter rule above already rejects runs where remote_frees_drained
    # (MPSC return queues) or slab_classes_used (size-class slabs) is zero.
    # On top of that, every alloc_churn row must clear an absolute
    # throughput floor — a mode that "ran" at zero allocs/sec never ran.
    if fresh.get("figure") == "fig18":
        missing_fig18 = sorted(n for n in FIG18_CHECKS if n not in fresh_names)
        if missing_fig18:
            fail(f"fig18 report is missing required checks: "
                 f"{', '.join(missing_fig18)}")
        churn_rows = None
        for s in series:
            if s.get("name") == "alloc_churn":
                churn_rows = s.get("rows") or []
        if churn_rows is None:
            fail("fig18 report has no 'alloc_churn' series")
        for row in churn_rows:
            rate = row[2] if len(row) > 2 else None
            if (not isinstance(rate, (int, float))
                    or rate < FIG18_MIN_ALLOCS_PER_SEC):
                fail(f"alloc_churn row {row!r} is below the "
                     f"{FIG18_MIN_ALLOCS_PER_SEC} allocs/sec floor — that "
                     f"mode never really ran")

    # --- tracer honesty ------------------------------------------------------
    # Only meaningful when the run traced (SMC_TRACE_OUT set): an exported
    # trace with zero events alongside non-zero ring drops means the tracer
    # was live but every event was lost — the report must not pass that off
    # as a clean empty trace.
    events = counters.get("trace_events")
    dropped = counters.get("trace_events_dropped")
    if (isinstance(events, (int, float)) and events == 0
            and isinstance(dropped, (int, float)) and dropped > 0):
        fail(f"report claims an empty trace (trace_events=0) but the rings "
             f"dropped {dropped} event(s) — the trace silently lost "
             f"everything it recorded")

    return {
        "checks": len(checks),
        "series": sorted(n for n in fresh_series if n),
        "counters": {n: counters[n] for n in required},
    }


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_gate: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def run_gate(fresh_path, baseline_path):
    fresh = load(fresh_path)
    baseline = load(baseline_path)
    try:
        summary = check_report(fresh, baseline)
    except GateError as e:
        print(f"bench_gate: FAIL: {e}", file=sys.stderr)
        return 1
    print(f"bench_gate: PASS — {summary['checks']} checks green, "
          f"series {summary['series']}, counters {summary['counters']}")
    return 0


# --- self-test ---------------------------------------------------------------

def doctored_reports(base):
    """Yields (description, doctored_fresh_report) pairs, each of which the
    gate MUST reject when compared against the clean baseline."""
    d = copy.deepcopy(base)
    dropped = d["checks"][-1]["name"]
    d["checks"] = d["checks"][:-1]
    yield f"dropped check {dropped}", d

    d = copy.deepcopy(base)
    d["checks"][0]["passed"] = False
    yield "flipped checks[0].passed to false", d

    d = copy.deepcopy(base)
    d["all_checks_passed"] = False
    yield "all_checks_passed = false", d

    required = required_counters(base)
    d = copy.deepcopy(base)
    d["counters"][required[-1]] = 0
    yield f"{required[-1]} = 0", d

    d = copy.deepcopy(base)
    del d["counters"][required[1]]
    yield f"{required[1]} counter removed", d

    if "pins_taken" in base.get("counters", {}):
        # fig18 measures the allocator below the epoch layer, so it carries
        # no pin counter; every other figure must.
        d = copy.deepcopy(base)
        d["counters"]["pins_taken"] = 0
        yield "pins_taken = 0", d

    if base.get("figure") == "fig15":
        # Coordinator-soak-specific rules: the gate must reject a soak whose
        # back-pressure loop never engaged or whose load-bearing oracles
        # were silently dropped or failed.
        d = copy.deepcopy(base)
        d["counters"]["passes_deferred"] = 0
        yield "fig15: passes_deferred = 0 (back-pressure never engaged)", d

        d = copy.deepcopy(base)
        d["checks"] = [c for c in d["checks"]
                       if c["name"] != "post_quiesce_verify"]
        yield "fig15: post_quiesce_verify oracle dropped", d

        d = copy.deepcopy(base)
        for c in d["checks"]:
            if c["name"] == "slo_p999":
                c["passed"] = False
        yield "fig15: slo_p999 flipped to failed", d

        d = copy.deepcopy(base)
        d["counters"]["passes_completed"] = 0
        yield "fig15: passes_completed = 0 (coordinator never ran)", d

    if base.get("figure") == "fig16":
        # Server-load-specific rules: an idle shard, a dropped tenancy
        # oracle, a saturated run passed off as clean, or a run that drove
        # no load at all must each be rejected.
        d = copy.deepcopy(base)
        for s in d["series"]:
            if s["name"] == "shard_requests":
                s["rows"][0][1] = 0
        yield "fig16: shard 0 served zero requests", d

        d = copy.deepcopy(base)
        d["checks"] = [c for c in d["checks"]
                       if c["name"] != "no_dropped_tenants"]
        yield "fig16: no_dropped_tenants oracle dropped", d

        d = copy.deepcopy(base)
        for c in d["checks"]:
            if c["name"] == "saturation_free":
                c["passed"] = False
        yield "fig16: saturation_free flipped to failed", d

        d = copy.deepcopy(base)
        d["counters"]["requests_completed"] = 0
        yield "fig16: requests_completed = 0 (no load was driven)", d

        d = copy.deepcopy(base)
        d["series"] = [s for s in d["series"]
                       if s["name"] != "shard_requests"]
        yield "fig16: shard_requests series removed", d

        # Attribution rules: a dropped histogram, a gutted summary, a
        # breakdown that disagrees with its own sample count, and a
        # missing breakdown series must each be rejected.
        d = copy.deepcopy(base)
        del d["histograms"]["attr_query_total_ns"]
        yield "fig16: attr_query_total_ns histogram removed", d

        d = copy.deepcopy(base)
        del d["histograms"]["attr_ingest_ring_wait_ns"]["p99_ns"]
        yield "fig16: attribution summary missing p99_ns", d

        d = copy.deepcopy(base)
        d["histograms"]["attr_ingest_total_ns"]["count"] += 1
        yield "fig16: slow_requests disagrees with total histogram count", d

        d = copy.deepcopy(base)
        d["series"] = [s for s in d["series"] if s["name"] != "attribution"]
        yield "fig16: attribution series removed", d

        d = copy.deepcopy(base)
        d["checks"] = [c for c in d["checks"]
                       if c["name"] != "attribution_scraped"]
        yield "fig16: attribution_scraped oracle dropped", d

    if base.get("figure") == "fig17":
        # Persistence-specific rules: a run that never spilled, never
        # faulted a page back in, silently dropped the torn-write oracle,
        # or whose recovery parity failed must each be rejected.
        d = copy.deepcopy(base)
        d["counters"]["blocks_spilled"] = 0
        yield "fig17: blocks_spilled = 0 (nothing was ever evicted)", d

        d = copy.deepcopy(base)
        d["counters"]["blocks_faulted_in"] = 0
        yield "fig17: blocks_faulted_in = 0 (spilled pages never read back)", d

        d = copy.deepcopy(base)
        d["checks"] = [c for c in d["checks"]
                       if c["name"] != "torn_page_rejected"]
        yield "fig17: torn_page_rejected oracle dropped", d

        d = copy.deepcopy(base)
        for c in d["checks"]:
            if c["name"] == "recover_verify":
                c["passed"] = False
        yield "fig17: recover_verify flipped to failed", d

        d = copy.deepcopy(base)
        d["counters"]["recovered_objects"] = 0
        yield "fig17: recovered_objects = 0 (recovery loaded nothing)", d

    if base.get("figure") == "fig18":
        # Contended-allocator-specific rules: a run whose remote-free queues
        # never drained, whose slab never carved a class, whose speedup
        # oracle was silently dropped, whose verify failed, or whose
        # throughput collapsed to zero must each be rejected.
        d = copy.deepcopy(base)
        d["counters"]["remote_frees_drained"] = 0
        yield "fig18: remote_frees_drained = 0 (return queues never ran)", d

        d = copy.deepcopy(base)
        d["counters"]["slab_classes_used"] = 0
        yield "fig18: slab_classes_used = 0 (slab path never ran)", d

        d = copy.deepcopy(base)
        d["checks"] = [c for c in d["checks"]
                       if c["name"] != "sharded_speedup"]
        yield "fig18: sharded_speedup oracle dropped", d

        d = copy.deepcopy(base)
        for c in d["checks"]:
            if c["name"] == "post_churn_verify":
                c["passed"] = False
        yield "fig18: post_churn_verify flipped to failed", d

        d = copy.deepcopy(base)
        for s in d["series"]:
            if s["name"] == "alloc_churn":
                s["rows"][0][2] = 0
        yield "fig18: alloc_churn row at zero allocs/sec", d

        d = copy.deepcopy(base)
        d["series"] = [s for s in d["series"]
                       if s["name"] != "alloc_churn"]
        yield "fig18: alloc_churn series removed", d

    d = copy.deepcopy(base)
    d["counters"]["trace_events"] = 0
    d["counters"]["trace_events_dropped"] = 17
    yield "empty trace despite dropped ring events", d

    d = copy.deepcopy(base)
    d["series"][0]["rows"] = []
    yield "series rows emptied", d

    d = copy.deepcopy(base)
    d["series"] = []
    yield "series removed entirely", d

    d = copy.deepcopy(base)
    d["schema"] = "smc-bench-report/v0"
    yield "wrong schema version", d

    d = copy.deepcopy(base)
    d["checks"] = []
    d["all_checks_passed"] = True
    yield "no checks at all but all_checks_passed true", d


def self_test(baseline_path):
    base = load(baseline_path)

    # The clean baseline must pass against itself.
    try:
        check_report(copy.deepcopy(base), base)
    except GateError as e:
        print(f"bench_gate self-test: clean baseline rejected: {e}",
              file=sys.stderr)
        return 1
    print("bench_gate self-test: clean baseline accepted")

    bad = 0
    for desc, doctored in doctored_reports(base):
        try:
            check_report(doctored, base)
        except GateError as e:
            print(f"bench_gate self-test: correctly rejected [{desc}]: {e}")
        else:
            print(f"bench_gate self-test: FAILED to reject [{desc}]",
                  file=sys.stderr)
            bad += 1
    if bad:
        print(f"bench_gate self-test: {bad} doctored report(s) slipped through",
              file=sys.stderr)
        return 1
    print("bench_gate self-test: all doctored reports rejected")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--fresh", default="BENCH_fig14.json",
                    help="freshly generated report (default: BENCH_fig14.json)")
    ap.add_argument("--baseline", default="examples/BENCH_fig14.json",
                    help="checked-in baseline report "
                         "(default: examples/BENCH_fig14.json)")
    ap.add_argument("--self-test", action="store_true",
                    help="verify the gate rejects doctored reports, then exit")
    args = ap.parse_args()
    if args.self_test:
        sys.exit(self_test(args.baseline))
    sys.exit(run_gate(args.fresh, args.baseline))


if __name__ == "__main__":
    main()
