#!/usr/bin/env python3
"""Doc-drift gate: the README architecture table must list every workspace
crate.

The table in README.md ("## Architecture") is the first thing a reader uses
to orient themselves; a crate that exists in ``crates/`` but not in the table
is invisible documentation debt. This script:

  * enumerates the workspace members by reading each ``crates/*/Cargo.toml``
    ``[package] name`` (the authoritative list — the workspace manifest uses
    a ``crates/*`` glob, so a directory IS a member);
  * requires each crate to appear in README.md on a line that carries both
    its directory (``persist/``) and its package name (``smc-persist``);
  * exits 1 naming every missing crate.

``--self-test`` verifies the gate actually bites: it re-runs the check
against a README with one crate's row deleted and fails if that slips
through.

Exit status: 0 = in sync, 1 = drift (or self-test failure), 2 = IO error.
"""

import argparse
import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


def workspace_crates():
    """Yields (directory_name, package_name) for every workspace member."""
    crates = []
    for manifest in sorted(ROOT.glob("crates/*/Cargo.toml")):
        text = manifest.read_text()
        m = re.search(r'^name\s*=\s*"([^"]+)"', text, re.MULTILINE)
        if not m:
            print(f"doc_drift: no package name in {manifest}", file=sys.stderr)
            sys.exit(2)
        crates.append((manifest.parent.name, m.group(1)))
    if not crates:
        print("doc_drift: found no crates/*/Cargo.toml", file=sys.stderr)
        sys.exit(2)
    return crates


def missing_from(readme_text, crates):
    """Crates without a README line naming both their dir and package."""
    missing = []
    lines = readme_text.splitlines()
    for dirname, package in crates:
        if not any(f"{dirname}/" in ln and package in ln for ln in lines):
            missing.append((dirname, package))
    return missing


def run_check(readme_path):
    try:
        text = Path(readme_path).read_text()
    except OSError as e:
        print(f"doc_drift: cannot read {readme_path}: {e}", file=sys.stderr)
        sys.exit(2)
    crates = workspace_crates()
    missing = missing_from(text, crates)
    if missing:
        for dirname, package in missing:
            print(f"doc_drift: FAIL: workspace crate {package!r} "
                  f"(crates/{dirname}) is missing from the README "
                  f"architecture table", file=sys.stderr)
        return 1
    print(f"doc_drift: PASS — all {len(crates)} workspace crates listed "
          f"in {readme_path}")
    return 0


def self_test(readme_path):
    text = Path(readme_path).read_text()
    crates = workspace_crates()
    if missing_from(text, crates):
        print("doc_drift self-test: clean README already fails the check",
              file=sys.stderr)
        return 1
    # Delete one crate's row and demand the gate notices.
    dirname, package = crates[-1]
    doctored = "\n".join(
        ln for ln in text.splitlines()
        if not (f"{dirname}/" in ln and package in ln))
    if not missing_from(doctored, crates):
        print(f"doc_drift self-test: FAILED to notice {package!r} "
              f"deleted from the table", file=sys.stderr)
        return 1
    print(f"doc_drift self-test: correctly caught deleted row for "
          f"{package!r}")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--readme", default=str(ROOT / "README.md"),
                    help="README to check (default: repo README.md)")
    ap.add_argument("--self-test", action="store_true",
                    help="verify the gate catches a deleted table row")
    args = ap.parse_args()
    if args.self_test:
        sys.exit(self_test(args.readme))
    sys.exit(run_check(args.readme))


if __name__ == "__main__":
    main()
