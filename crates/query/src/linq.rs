//! The interpreted LINQ-to-objects engine.
//!
//! Operators are boxed trait objects chained by virtual calls; every element
//! crosses one dynamic dispatch per operator and grouping/sorting allocate
//! intermediate collections — the cost model of C#'s LINQ-to-objects that
//! the paper's compiled queries eliminate (§1, §7). Keeping this engine
//! around lets the benchmarks reproduce the "LINQ is 40–400 % slower than
//! compiled C#" observation of §7.
//!
//! The API mirrors the familiar operator names: `where_`, `select`,
//! `group_by`, `order_by`, `sum_by`, `count`, `join`.

use std::collections::HashMap;
use std::hash::Hash;

/// A lazily-evaluated, boxed operator pipeline over `T`.
pub struct LinqIter<'a, T> {
    inner: Box<dyn Iterator<Item = T> + 'a>,
}

impl<'a, T: 'a> LinqIter<'a, T> {
    /// Wraps a source iterator (the collection enumeration).
    pub fn new(source: impl Iterator<Item = T> + 'a) -> Self {
        LinqIter {
            inner: Box::new(source),
        }
    }

    /// Filters by predicate — LINQ `Where`. One virtual call per element.
    pub fn where_(self, pred: impl FnMut(&T) -> bool + 'a) -> LinqIter<'a, T> {
        LinqIter {
            inner: Box::new(self.inner.filter(pred)),
        }
    }

    /// Projects — LINQ `Select`.
    pub fn select<U: 'a>(self, f: impl FnMut(T) -> U + 'a) -> LinqIter<'a, U> {
        LinqIter {
            inner: Box::new(self.inner.map(f)),
        }
    }

    /// Flat-maps — LINQ `SelectMany`.
    pub fn select_many<U: 'a, I>(self, f: impl FnMut(T) -> I + 'a) -> LinqIter<'a, U>
    where
        I: IntoIterator<Item = U> + 'a,
        <I as IntoIterator>::IntoIter: 'a,
    {
        LinqIter {
            inner: Box::new(self.inner.flat_map(f)),
        }
    }

    /// Groups into a hash map — LINQ `GroupBy` (materializes, as LINQ does).
    pub fn group_by<K: Eq + Hash + 'a>(
        self,
        mut key: impl FnMut(&T) -> K + 'a,
    ) -> HashMap<K, Vec<T>> {
        let mut groups: HashMap<K, Vec<T>> = HashMap::new();
        for item in self.inner {
            groups.entry(key(&item)).or_default().push(item);
        }
        groups
    }

    /// Sorts ascending by key — LINQ `OrderBy` (materializes).
    pub fn order_by<K: Ord>(self, mut key: impl FnMut(&T) -> K + 'a) -> Vec<T> {
        let mut v: Vec<T> = self.inner.collect();
        v.sort_by_key(|t| key(t));
        v
    }

    /// Hash join with another pipeline — LINQ `Join`. Builds on the right.
    pub fn join<K, U, R>(
        self,
        right: LinqIter<'a, U>,
        mut left_key: impl FnMut(&T) -> K + 'a,
        mut right_key: impl FnMut(&U) -> K + 'a,
        mut merge: impl FnMut(&T, &U) -> R + 'a,
    ) -> LinqIter<'a, R>
    where
        K: Eq + Hash + 'a,
        T: 'a,
        U: Clone + 'a,
        R: 'a,
    {
        let mut table: HashMap<K, Vec<U>> = HashMap::new();
        for u in right.inner {
            table.entry(right_key(&u)).or_default().push(u);
        }
        let joined = self.inner.flat_map(move |t| {
            let matches: Vec<R> = table
                .get(&left_key(&t))
                .map(|us| us.iter().map(|u| merge(&t, u)).collect())
                .unwrap_or_default();
            matches
        });
        LinqIter {
            inner: Box::new(joined),
        }
    }

    /// Counts the elements — LINQ `Count`.
    pub fn count(self) -> usize {
        self.inner.count()
    }

    /// Sums a projection — LINQ `Sum`.
    pub fn sum_by<S: std::iter::Sum<S> + 'a>(self, f: impl FnMut(T) -> S + 'a) -> S {
        self.inner.map(f).sum()
    }

    /// Materializes — LINQ `ToList`.
    pub fn to_vec(self) -> Vec<T> {
        self.inner.collect()
    }

    /// First element, if any.
    pub fn first(mut self) -> Option<T> {
        self.inner.next()
    }
}

impl<'a, T> Iterator for LinqIter<'a, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.inner.next()
    }
}

/// Entry point: `anything.linq()` starts a pipeline.
pub trait LinqExt<'a, T: 'a>: Iterator<Item = T> + Sized + 'a {
    /// Starts a boxed LINQ pipeline over this iterator.
    fn linq(self) -> LinqIter<'a, T> {
        LinqIter::new(self)
    }
}

impl<'a, T: 'a, I: Iterator<Item = T> + 'a> LinqExt<'a, T> for I {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn where_select_pipeline() {
        let out: Vec<i32> = (1..=10)
            .linq()
            .where_(|x| x % 2 == 0)
            .select(|x| x * 10)
            .to_vec();
        assert_eq!(out, vec![20, 40, 60, 80, 100]);
    }

    #[test]
    fn group_by_partitions() {
        let groups = (0..10).linq().group_by(|x| x % 3);
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[&0], vec![0, 3, 6, 9]);
        assert_eq!(groups[&1].len(), 3);
    }

    #[test]
    fn order_by_sorts() {
        let v = vec![3, 1, 2].into_iter().linq().order_by(|x| *x);
        assert_eq!(v, vec![1, 2, 3]);
    }

    #[test]
    fn join_matches_keys() {
        let orders = vec![(1, "a"), (2, "b"), (1, "c")];
        let customers = vec![(1, "Alice"), (2, "Bob")];
        let mut out: Vec<String> = orders
            .into_iter()
            .linq()
            .join(
                customers.into_iter().linq(),
                |o| o.0,
                |c| c.0,
                |o, c| format!("{}-{}", c.1, o.1),
            )
            .to_vec();
        out.sort();
        assert_eq!(out, vec!["Alice-a", "Alice-c", "Bob-b"]);
    }

    #[test]
    fn aggregates() {
        assert_eq!((1..=4).linq().sum_by(|x| x), 10);
        assert_eq!((1..=4).linq().count(), 4);
        assert_eq!((1..=4).linq().where_(|x| *x > 4).first(), None);
    }

    #[test]
    fn select_many_flattens() {
        let out: Vec<i32> = vec![1, 2, 3]
            .into_iter()
            .linq()
            .select_many(|x| vec![x, x * 10])
            .to_vec();
        assert_eq!(out, vec![1, 10, 2, 20, 3, 30]);
    }
}
