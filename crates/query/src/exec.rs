//! Compiled-style execution helpers.
//!
//! The paper's query compiler generates imperative code with two key
//! properties (§2, refs \[13\], \[14\] therein): operators are fused into loops over the
//! collection's memory blocks (no virtual calls, no per-element intermediate
//! objects), and blocking operators (aggregation, sort, join build) use
//! tight, purpose-built data structures. In Rust, generic functions
//! monomorphize to exactly such code. This module provides the blocking-
//! operator building blocks the hand-specialized TPC-H queries share; the
//! per-query pipelines themselves live with the queries, as the paper's
//! generated functions do.

use std::collections::HashMap;
use std::hash::Hash;

use smc::{Guard, Smc, Tabular};

/// A compiled scan over an SMC: fused scan→filter→for-each, the loop shape
/// of the paper's generated enumeration code (§4).
pub struct BlockScan<'c, T: Tabular> {
    collection: &'c Smc<T>,
}

impl<'c, T: Tabular> BlockScan<'c, T> {
    /// Creates a scan over `collection`.
    pub fn new(collection: &'c Smc<T>) -> Self {
        BlockScan { collection }
    }

    /// Runs `consume` for every object passing `pred`, in one fused loop.
    /// Returns the number of qualifying objects.
    pub fn filter_for_each(
        &self,
        guard: &Guard<'_>,
        mut pred: impl FnMut(&T) -> bool,
        mut consume: impl FnMut(&T),
    ) -> u64 {
        let mut n = 0;
        self.collection.for_each(guard, |obj| {
            if pred(obj) {
                consume(obj);
                n += 1;
            }
        });
        n
    }

    /// Fused scan→filter→aggregate: folds qualifying objects into `acc`.
    pub fn filter_fold<A>(
        &self,
        guard: &Guard<'_>,
        init: A,
        mut pred: impl FnMut(&T) -> bool,
        mut fold: impl FnMut(&mut A, &T),
    ) -> A {
        let mut acc = init;
        self.collection.for_each(guard, |obj| {
            if pred(obj) {
                fold(&mut acc, obj);
            }
        });
        acc
    }

    /// Fused scan→filter→group-by-aggregate: the Q1 shape. Groups are
    /// accumulated in place; no per-element intermediates are built.
    pub fn group_aggregate<K: Eq + Hash, A>(
        &self,
        guard: &Guard<'_>,
        mut pred: impl FnMut(&T) -> bool,
        mut key: impl FnMut(&T) -> K,
        mut new_group: impl FnMut(&T) -> A,
        mut fold: impl FnMut(&mut A, &T),
    ) -> HashMap<K, A> {
        let mut groups: HashMap<K, A> = HashMap::new();
        self.collection.for_each(guard, |obj| {
            if pred(obj) {
                match groups.entry(key(obj)) {
                    std::collections::hash_map::Entry::Occupied(mut e) => fold(e.get_mut(), obj),
                    std::collections::hash_map::Entry::Vacant(e) => {
                        let mut acc = new_group(obj);
                        fold(&mut acc, obj);
                        e.insert(acc);
                    }
                }
            }
        });
        groups
    }
}

/// Hash join for compiled pipelines: builds on `build`, probes with `probe`,
/// emitting merged rows through `out`. Value-based — used by queries that
/// cannot use reference joins and by the columnstore comparison.
pub fn hash_join<B, P, K, R>(
    build: impl IntoIterator<Item = B>,
    probe: impl IntoIterator<Item = P>,
    mut build_key: impl FnMut(&B) -> K,
    mut probe_key: impl FnMut(&P) -> K,
    mut out: impl FnMut(&B, &P) -> R,
) -> Vec<R>
where
    K: Eq + Hash,
{
    let mut table: HashMap<K, Vec<B>> = HashMap::new();
    for b in build {
        table.entry(build_key(&b)).or_default().push(b);
    }
    let mut results = Vec::new();
    for p in probe {
        if let Some(matches) = table.get(&probe_key(&p)) {
            for b in matches {
                results.push(out(b, &p));
            }
        }
    }
    results
}

/// Sorts rows by a key (descending option), the compiled `ORDER BY`.
pub fn sort_by<T, K: Ord>(
    mut rows: Vec<T>,
    mut key: impl FnMut(&T) -> K,
    descending: bool,
) -> Vec<T> {
    if descending {
        rows.sort_by_key(|a| std::cmp::Reverse(key(a)));
    } else {
        rows.sort_by_key(|a| key(a));
    }
    rows
}

/// Keeps the top `n` rows by key without sorting the full input — the
/// compiled `ORDER BY ... LIMIT n` (used by Q2/Q3-style outputs).
pub fn top_n<T, K: Ord + Copy>(rows: Vec<T>, mut key: impl FnMut(&T) -> K, n: usize) -> Vec<T> {
    let mut rows = rows;
    rows.sort_by_key(|a| std::cmp::Reverse(key(a)));
    rows.truncate(n);
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use smc::Runtime;

    #[derive(Clone, Copy)]
    struct Item {
        group: u32,
        qty: i64,
    }
    unsafe impl smc::Tabular for Item {}

    fn sample() -> (std::sync::Arc<Runtime>, Smc<Item>) {
        let rt = Runtime::new();
        let c = Smc::new(&rt);
        for i in 0..1000 {
            c.add(Item {
                group: i % 4,
                qty: i as i64,
            });
        }
        (rt, c)
    }

    #[test]
    fn filter_for_each_counts() {
        let (rt, c) = sample();
        let g = rt.pin();
        let scan = BlockScan::new(&c);
        let mut seen = 0;
        let n = scan.filter_for_each(&g, |i| i.group == 0, |_| seen += 1);
        assert_eq!(n, 250);
        assert_eq!(seen, 250);
    }

    #[test]
    fn filter_fold_aggregates() {
        let (rt, c) = sample();
        let g = rt.pin();
        let scan = BlockScan::new(&c);
        let total = scan.filter_fold(&g, 0i64, |i| i.qty < 10, |acc, i| *acc += i.qty);
        assert_eq!(total, (0..10).sum::<i64>());
    }

    #[test]
    fn group_aggregate_by_key() {
        let (rt, c) = sample();
        let g = rt.pin();
        let scan = BlockScan::new(&c);
        let groups = scan.group_aggregate(
            &g,
            |_| true,
            |i| i.group,
            |_| (0i64, 0u64),
            |acc, i| {
                acc.0 += i.qty;
                acc.1 += 1;
            },
        );
        assert_eq!(groups.len(), 4);
        let total: u64 = groups.values().map(|(_, n)| n).sum();
        assert_eq!(total, 1000);
        assert_eq!(groups[&0].1, 250);
    }

    #[test]
    fn hash_join_pairs_rows() {
        let left = vec![(1, "l1"), (2, "l2"), (1, "l3")];
        let right = vec![(1, "r1"), (3, "r3")];
        let out = hash_join(left, right, |l| l.0, |r| r.0, |l, r| (l.1, r.1));
        assert_eq!(out, vec![("l1", "r1"), ("l3", "r1")]);
    }

    #[test]
    fn sort_and_top_n() {
        let rows = vec![3, 1, 4, 1, 5, 9, 2, 6];
        assert_eq!(
            sort_by(rows.clone(), |x| *x, false),
            vec![1, 1, 2, 3, 4, 5, 6, 9]
        );
        assert_eq!(sort_by(rows.clone(), |x| *x, true)[0], 9);
        assert_eq!(top_n(rows, |x| *x, 3), vec![9, 6, 5]);
    }
}
