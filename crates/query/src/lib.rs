//! # smc-query — query layer for self-managed collections
//!
//! The paper assumes two ways of evaluating a language-integrated query:
//!
//! 1. **The interpreted engine** (LINQ-to-objects): a tree of composable
//!    operators connected by virtual calls, propagating intermediate result
//!    objects one at a time. This is the baseline whose inefficiencies —
//!    virtual dispatch per element, per-operator intermediate allocation —
//!    motivated query compilation in the first place ([12, 13] in the
//!    paper; §7 reports it 40–400 % slower than compiled code). The
//!    [`linq`] module implements it with boxed-`dyn` iterators, which have
//!    exactly the paper's cost structure.
//! 2. **Compiled queries**: the C# compiler expands LINQ expressions into
//!    imperative functions that loop directly over the collection's memory
//!    blocks. Rust's monomorphization *is* this compiler: the [`exec`]
//!    module's generic combinators (filter/map/aggregate/group/sort/join)
//!    inline into tight loops indistinguishable from the paper's generated
//!    code. See DESIGN.md §1 for why runtime codegen (cranelift) was not
//!    used: the paper never measures compilation latency, only generated-
//!    code quality.
//!
//! Both engines run the same logical plans, so the TPC-H queries in the
//! `tpch` crate can be executed interpreted (the "LINQ" series) or compiled
//! (everything else in Figs 11–13).

#![warn(missing_docs)]

pub mod exec;
pub mod linq;

pub use exec::{hash_join, sort_by, BlockScan};
pub use linq::{LinqExt, LinqIter};
