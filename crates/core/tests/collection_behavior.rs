//! Behavioral tests for `Smc<T>`: the §2 semantics (ownership, null-on-
//! remove), §4 enumeration, §5 compaction with live references, and §6
//! direct pointers.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use smc::{ColumnArrays, Columnar, ColumnarSmc, ContextConfig, DirectRef, Ref, Smc};
use smc_memory::{Decimal, InlineStr, Runtime, Tabular};

#[derive(Clone, Copy, Debug, PartialEq)]
struct Person {
    name: InlineStr<16>,
    age: u32,
}
unsafe impl Tabular for Person {}

fn person(name: &str, age: u32) -> Person {
    Person {
        name: name.into(),
        age,
    }
}

#[derive(Clone, Copy)]
struct Order {
    #[allow(dead_code)] // schema mirror; only `customer`/`total` are asserted
    id: u64,
    customer: Ref<Person>,
    total: Decimal,
}
unsafe impl Tabular for Order {}

#[test]
fn paper_overview_example() {
    // The §2 code excerpt: add, use, remove, observe nullness.
    let rt = Runtime::new();
    let persons: Smc<Person> = Smc::new(&rt);
    let adam = persons.add(person("Adam", 27));
    {
        let g = rt.pin();
        assert_eq!(adam.get(&g).unwrap().name, "Adam");
    }
    assert!(persons.remove(adam));
    let g = rt.pin();
    assert!(
        adam.get(&g).is_none(),
        "removed object dereferences to null"
    );
    assert!(!persons.remove(adam), "remove is not double-applied");
}

#[test]
fn enumeration_matches_live_set() {
    let rt = Runtime::new();
    let persons: Smc<Person> = Smc::new(&rt);
    let mut refs = Vec::new();
    for i in 0..1000 {
        refs.push(persons.add(person(&format!("p{i}"), i as u32 % 90)));
    }
    // Remove every third person.
    for (i, r) in refs.iter().enumerate() {
        if i % 3 == 0 {
            assert!(persons.remove(*r));
        }
    }
    let g = rt.pin();
    let mut seen = 0u64;
    let visited = persons.for_each(&g, |_| seen += 1);
    assert_eq!(seen, visited);
    assert_eq!(seen, persons.len());
    assert_eq!(seen, 1000 - 334);
}

#[test]
fn predicate_enumeration_like_generated_query() {
    // The §4 compiled query: age > 17 over the whole collection.
    let rt = Runtime::new();
    let persons: Smc<Person> = Smc::new(&rt);
    for i in 0..500 {
        persons.add(person("x", i % 40));
    }
    let g = rt.pin();
    let mut adults = 0;
    persons.for_each(&g, |p| {
        if p.age > 17 {
            adults += 1;
        }
    });
    // ages cycle 0..39; 22 of every 40 are > 17; 500 = 12*40 + 20.
    let expected = 12 * 22 + 2; // ages 18,19 in the final partial cycle
    assert_eq!(adults, expected);
}

#[test]
fn iterator_yields_usable_refs() {
    let rt = Runtime::new();
    let persons: Smc<Person> = Smc::new(&rt);
    for i in 0..100 {
        persons.add(person("it", i));
    }
    let g = rt.pin();
    let collected: Vec<(Ref<Person>, u32)> = persons.iter(&g).map(|(r, p)| (r, p.age)).collect();
    assert_eq!(collected.len(), 100);
    // Each yielded ref dereferences to the same object.
    for (r, age) in &collected {
        assert_eq!(r.get(&g).unwrap().age, *age);
    }
    drop(g);
    // Refs survive guard churn; removal nulls them.
    let (r0, _) = collected[0];
    persons.remove(r0);
    let g = rt.pin();
    assert!(r0.get(&g).is_none());
}

#[test]
fn references_between_collections_join() {
    // Reference-based joins, the TPC-H adaptation pattern (§7).
    let rt = Runtime::new();
    let persons: Smc<Person> = Smc::new(&rt);
    let orders: Smc<Order> = Smc::new(&rt);
    let alice = persons.add(person("Alice", 30));
    let bob = persons.add(person("Bob", 40));
    for i in 0..10 {
        orders.add(Order {
            id: i,
            customer: if i % 2 == 0 { alice } else { bob },
            total: Decimal::from_int(i as i64 * 10),
        });
    }
    let g = rt.pin();
    // "join" orders to customers through references.
    let mut alice_total = Decimal::ZERO;
    orders.for_each(&g, |o| {
        if let Some(c) = o.customer.get(&g) {
            if c.name == "Alice" {
                alice_total += o.total;
            }
        }
    });
    assert_eq!(alice_total, Decimal::from_int(20 + 40 + 60 + 80));
    drop(g);
    // Removing a customer nulls the reference inside orders.
    persons.remove(alice);
    let g = rt.pin();
    let mut dangling = 0;
    orders.for_each(&g, |o| {
        if o.customer.get(&g).is_none() {
            dangling += 1;
        }
    });
    assert_eq!(dangling, 5);
}

#[test]
fn update_in_place() {
    let rt = Runtime::new();
    let persons: Smc<Person> = Smc::new(&rt);
    let r = persons.add(person("Carol", 20));
    let g = rt.pin();
    persons.update(r, &g, |p| p.age += 1).unwrap();
    assert_eq!(r.get(&g).unwrap().age, 21);
    drop(g);
    persons.remove(r);
    let g = rt.pin();
    assert!(persons.update(r, &g, |p| p.age += 1).is_none());
}

#[test]
fn slot_reuse_does_not_resurrect_references() {
    // Remove objects, advance epochs, allocate replacements into the same
    // slots — the old references must stay null (incarnation protection).
    let rt = Runtime::new();
    let config = ContextConfig {
        reclamation_threshold: 0.0,
        ..ContextConfig::default()
    };
    let persons: Smc<Person> = Smc::with_config(&rt, config);
    let cap = persons.context().layout().capacity as usize;
    let old: Vec<Ref<Person>> = (0..cap * 2)
        .map(|i| persons.add(person("old", i as u32)))
        .collect();
    for r in &old {
        assert!(persons.remove(*r));
    }
    // Let epochs pass so slots are reclaimable.
    rt.epochs.try_advance();
    rt.epochs.try_advance();
    for i in 0..cap * 2 {
        persons.add(person("new", i as u32));
    }
    let g = rt.pin();
    for r in &old {
        assert!(r.get(&g).is_none(), "stale ref must not see slot reuse");
    }
    assert_eq!(persons.len(), (cap * 2) as u64);
}

#[test]
fn compaction_preserves_references_and_values() {
    let rt = Runtime::new();
    // Isolate compaction from reclamation.
    let config = ContextConfig {
        reclamation_threshold: 1.1,
        ..ContextConfig::default()
    };
    let persons: Smc<Person> = Smc::with_config(&rt, config);
    let cap = persons.context().layout().capacity as usize;
    let refs: Vec<Ref<Person>> = (0..cap * 5)
        .map(|i| persons.add(person(&format!("c{i}"), i as u32)))
        .collect();
    // Keep 10%: five sparse blocks.
    let mut kept = Vec::new();
    for (i, r) in refs.iter().enumerate() {
        if i % 10 == 0 {
            kept.push((*r, i as u32));
        } else {
            persons.remove(*r);
        }
    }
    let before_bytes = persons.memory_bytes();
    let report = persons.compact();
    assert!(report.moved > 0, "compaction should move survivors");
    persons.release_retired();
    rt.drain_graveyard_blocking();
    assert!(
        persons.memory_bytes() < before_bytes,
        "memory footprint must shrink"
    );
    let g = rt.pin();
    for (r, age) in &kept {
        let p = r.get(&g).expect("survivor reachable after compaction");
        assert_eq!(p.age, *age);
    }
    // Enumeration sees exactly the survivors.
    let mut n = 0;
    persons.for_each(&g, |_| n += 1);
    assert_eq!(n, kept.len());
}

#[test]
fn direct_refs_fast_path_and_tombstone_healing() {
    let rt = Runtime::new();
    let config = ContextConfig {
        reclamation_threshold: 1.1,
        ..ContextConfig::default()
    };
    let persons: Smc<Person> = Smc::with_config(&rt, config);
    let cap = persons.context().layout().capacity as usize;
    let refs: Vec<Ref<Person>> = (0..cap * 3)
        .map(|i| persons.add(person("d", i as u32)))
        .collect();
    let survivor = refs[7];
    // Direct pointer taken before compaction.
    let mut direct: DirectRef<Person> = {
        let g = rt.pin();
        survivor.to_direct(&g).unwrap()
    };
    for (i, r) in refs.iter().enumerate() {
        if i != 7 {
            persons.remove(*r);
        }
    }
    let report = persons.compact();
    assert!(report.moved >= 1);
    // The direct ref crosses the tombstone and heals itself.
    let g = rt.pin();
    let old_addr = direct.addr();
    let p = direct.get_healing(&g).expect("tombstone must forward");
    assert_eq!(p.age, 7);
    assert_ne!(direct.addr(), old_addr, "pointer rewritten to new location");
    // Subsequent dereferences take the fast path at the new address.
    assert_eq!(direct.get(&g).unwrap().age, 7);
    drop(g);
    persons.remove(survivor);
    let g = rt.pin();
    assert!(direct.get(&g).is_none(), "direct ref nulls after removal");
}

#[derive(Clone, Copy)]
struct Wide {
    #[allow(dead_code)] // padding ahead of the pointer fields under test
    a: u64,
    b: Ref<Person>,
    c: DirectRef<Person>,
}
unsafe impl Tabular for Wide {}

#[test]
fn fix_direct_refs_rewrites_pointers_into_retired_blocks() {
    let rt = Runtime::new();
    let config = ContextConfig {
        reclamation_threshold: 1.1,
        ..ContextConfig::default()
    };
    let persons: Smc<Person> = Smc::with_config(&rt, config);
    let wides: Smc<Wide> = Smc::new(&rt);
    let cap = persons.context().layout().capacity as usize;
    let prefs: Vec<Ref<Person>> = (0..cap * 3)
        .map(|i| persons.add(person("w", i as u32)))
        .collect();
    // Wide objects hold direct pointers to every 20th person.
    {
        let g = rt.pin();
        for (i, pr) in prefs.iter().enumerate().step_by(20) {
            wides.add(Wide {
                a: i as u64,
                b: *pr,
                c: pr.to_direct(&g).unwrap(),
            });
        }
    }
    // Kill everyone not directly referenced.
    for (i, pr) in prefs.iter().enumerate() {
        if i % 20 != 0 {
            persons.remove(*pr);
        }
    }
    let report = persons.compact();
    assert!(!report.retired_bases.is_empty());
    let g = rt.pin();
    let fixed = wides.fix_direct_refs(&report, &g, |w| &mut w.c);
    assert!(fixed > 0, "fix-up must rewrite stale direct pointers");
    // After fix-up every direct pointer resolves on the fast path and agrees
    // with the checked reference.
    let mut checked = 0;
    wides.for_each(&g, |w| {
        let via_direct = w.c.get(&g).expect("fixed pointer resolves");
        let via_ref = w.b.get(&g).expect("checked ref resolves");
        assert_eq!(via_direct.age, via_ref.age);
        checked += 1;
    });
    assert!(checked > 0);
    drop(g);
    persons.release_retired();
    rt.drain_graveyard_blocking();
}

#[test]
fn concurrent_enumeration_during_compaction() {
    // Readers enumerate continuously while compaction runs; every pass must
    // observe exactly the live survivors (bag semantics, §5.2 consistency).
    let rt = Runtime::new();
    let config = ContextConfig {
        reclamation_threshold: 1.1,
        compaction_patience: std::time::Duration::from_millis(500),
        ..ContextConfig::default()
    };
    let persons: Arc<Smc<Person>> = Arc::new(Smc::with_config(&rt, config));
    let cap = persons.context().layout().capacity as usize;
    let refs: Vec<Ref<Person>> = (0..cap * 6)
        .map(|i| persons.add(person("e", i as u32)))
        .collect();
    let mut survivors = 0u64;
    for (i, r) in refs.iter().enumerate() {
        if i % 8 == 0 {
            survivors += 1;
        } else {
            persons.remove(*r);
        }
    }
    let stop = Arc::new(AtomicBool::new(false));
    let mut readers = Vec::new();
    for _ in 0..3 {
        let p = persons.clone();
        let rt = rt.clone();
        let stop = stop.clone();
        readers.push(std::thread::spawn(move || {
            let mut enumerations = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let g = rt.pin();
                let mut n = 0u64;
                p.for_each(&g, |_| n += 1);
                assert_eq!(n, survivors, "enumeration must never miss or duplicate");
                drop(g);
                enumerations += 1;
            }
            enumerations
        }));
    }
    // Run several compaction passes under the readers.
    let mut total_moved = 0;
    for _ in 0..5 {
        let report = persons.compact();
        total_moved += report.moved;
        persons.release_retired();
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    stop.store(true, Ordering::SeqCst);
    for r in readers {
        assert!(r.join().unwrap() > 0);
    }
    assert!(total_moved > 0, "at least one pass should relocate objects");
    rt.drain_graveyard_blocking();
}

// ---------------------------------------------------------------------
// Columnar storage (§4.1)
// ---------------------------------------------------------------------

#[derive(Clone, Copy, Debug, PartialEq)]
struct Point {
    key: u64,
    price: Decimal,
    qty: u32,
}
unsafe impl Tabular for Point {}

unsafe impl Columnar for Point {
    const COLUMN_WIDTHS: &'static [usize] = &[8, 16, 4];

    unsafe fn scatter(&self, cols: &ColumnArrays, slot: usize) {
        cols.cell::<u64>(0, slot).write(self.key);
        cols.cell::<Decimal>(1, slot).write(self.price);
        cols.cell::<u32>(2, slot).write(self.qty);
    }

    unsafe fn gather(cols: &ColumnArrays, slot: usize) -> Self {
        Point {
            key: cols.cell::<u64>(0, slot).read(),
            price: cols.cell::<Decimal>(1, slot).read(),
            qty: cols.cell::<u32>(2, slot).read(),
        }
    }
}

#[test]
fn columnar_round_trip_and_removal() {
    let rt = Runtime::new();
    let points: ColumnarSmc<Point> = ColumnarSmc::new(&rt);
    let mut refs = Vec::new();
    for i in 0..5000u64 {
        refs.push(points.add(Point {
            key: i,
            price: Decimal::from_cents(i as i64),
            qty: (i % 50) as u32,
        }));
    }
    assert_eq!(points.len(), 5000);
    let g = rt.pin();
    let p = points.read(refs[1234], &g).unwrap();
    assert_eq!(
        p,
        Point {
            key: 1234,
            price: Decimal::from_cents(1234),
            qty: 1234 % 50
        }
    );
    drop(g);
    assert!(points.remove(refs[1234]));
    let g = rt.pin();
    assert!(points.read(refs[1234], &g).is_none());
    assert_eq!(points.len(), 4999);
}

#[test]
fn columnar_single_column_scan() {
    // The Fig 12 win: a single-column aggregate reads one array only.
    let rt = Runtime::new();
    let points: ColumnarSmc<Point> = ColumnarSmc::new(&rt);
    for i in 0..10_000u64 {
        points.add(Point {
            key: i,
            price: Decimal::from_cents(100),
            qty: 1,
        });
    }
    let g = rt.pin();
    let mut sum = 0u64;
    points.for_each_block(&g, |cols, block| {
        let cap = block.header().capacity as usize;
        // SAFETY: column 0 is the u64 key column.
        let keys = unsafe { cols.column_slice::<u64>(0, cap) };
        for (slot, key) in keys.iter().enumerate().take(cap) {
            if block.slot_word(slot as u32).state() == smc_memory::SlotState::Valid {
                sum += *key;
            }
        }
    });
    assert_eq!(sum, (0..10_000u64).sum());
}

#[test]
fn columnar_enumeration_gathers_objects() {
    let rt = Runtime::new();
    let points: ColumnarSmc<Point> = ColumnarSmc::new(&rt);
    let refs: Vec<_> = (0..300u64)
        .map(|i| {
            points.add(Point {
                key: i,
                price: Decimal::ZERO,
                qty: i as u32,
            })
        })
        .collect();
    points.remove(refs[0]);
    points.remove(refs[299]);
    let g = rt.pin();
    let mut keys = Vec::new();
    points.for_each(&g, |p| keys.push(p.key));
    keys.sort_unstable();
    assert_eq!(keys.len(), 298);
    assert_eq!(keys[0], 1);
    assert_eq!(*keys.last().unwrap(), 298);
}

#[test]
fn memory_footprint_tracks_block_count() {
    let rt = Runtime::new();
    let persons: Smc<Person> = Smc::new(&rt);
    assert_eq!(persons.memory_bytes(), 0);
    persons.add(person("m", 1));
    assert_eq!(persons.memory_bytes(), smc_memory::BLOCK_SIZE);
}

#[test]
fn iter_size_hint_bounds_remaining_work() {
    let rt = Runtime::new();
    let persons: Smc<Person> = Smc::new(&rt);
    let refs: Vec<Ref<Person>> = (0..500).map(|i| persons.add(person("sh", i))).collect();
    for (i, r) in refs.iter().enumerate() {
        if i % 5 == 0 {
            persons.remove(*r);
        }
    }
    let live = persons.len() as usize;
    let g = rt.pin();
    let mut it = persons.iter(&g);
    // The lower bound must never overpromise under concurrent removal, so
    // it is always 0; the upper bound must cover everything still live.
    let (lo, hi) = it.size_hint();
    assert_eq!(lo, 0);
    assert!(hi.unwrap() >= live, "hint {hi:?} below live count {live}");
    // The upper bound shrinks monotonically as blocks drain.
    let mut prev = hi.unwrap();
    let mut seen = 0usize;
    while it.next().is_some() {
        seen += 1;
        let (lo, hi) = it.size_hint();
        assert_eq!(lo, 0);
        let hi = hi.unwrap();
        assert!(hi <= prev, "upper bound grew: {prev} -> {hi}");
        assert!(
            hi >= live - seen,
            "hint {hi} below remaining {}",
            live - seen
        );
        prev = hi;
    }
    assert_eq!(seen, live);
    assert_eq!(it.size_hint(), (0, Some(0)), "exhausted iterator");
}
