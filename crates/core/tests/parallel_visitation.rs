//! Satellite of the morsel-driven engine PR: exactly-once visitation under
//! concurrency, at the `Smc` layer (no worker pool — plain `for_each`
//! readers on their own threads with their own pins, racing a compactor).
//!
//! Each reader repeatedly snapshots the membership and walks it while the
//! compactor relocates objects with the relocation failpoint armed, so
//! passes regularly abort mid-move (§5.2 pre-state bail). Every walk must
//! still see each live element exactly once: the count and an
//! order-insensitive checksum are compared against the ground truth on
//! every iteration, and `Smc::verify` audits the final structure.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use smc::{ContextConfig, Smc};
use smc_memory::fault::FaultSite;
use smc_memory::{Runtime, Tabular};

#[derive(Clone, Copy)]
struct Item {
    key: u64,
    _pad: [u64; 3],
}
unsafe impl Tabular for Item {}

#[test]
fn concurrent_for_each_sees_live_set_exactly_once_during_compaction() {
    let rt = Runtime::new();
    let cfg = ContextConfig {
        reclamation_threshold: 1.1,
        ..ContextConfig::default()
    };
    let c: Smc<Item> = Smc::with_config(&rt, cfg);
    let cap = c.context().layout().capacity as usize;

    // Sparse population: keep every 4th object so every block is a
    // compaction candidate, and limbo slots are never reclaimed in place.
    let mut expected_count = 0u64;
    let mut expected_sum = 0u64;
    for i in 0..(cap * 10) as u64 {
        let r = c.add(Item {
            key: i,
            _pad: [0; 3],
        });
        if i % 4 == 0 {
            expected_count += 1;
            expected_sum = expected_sum.wrapping_add(i);
        } else {
            c.remove(r);
        }
    }

    rt.faults().enable(99);
    rt.faults().set_rate(FaultSite::Relocation, 64);

    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        let mut readers = Vec::new();
        for reader in 0..3 {
            let c = &c;
            let rt = &rt;
            let stop = stop.clone();
            readers.push(s.spawn(move || {
                let mut walks = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let guard = rt.pin();
                    let mut count = 0u64;
                    let mut sum = 0u64;
                    c.for_each(&guard, |item| {
                        count += 1;
                        sum = sum.wrapping_add(item.key);
                    });
                    assert_eq!(
                        count, expected_count,
                        "reader {reader} walk {walks}: lost or doubled element"
                    );
                    assert_eq!(
                        sum, expected_sum,
                        "reader {reader} walk {walks}: wrong element set"
                    );
                    walks += 1;
                }
                walks
            }));
        }

        // Compactor: keep relocating (and sometimes failing mid-relocation,
        // per the armed failpoint) while the readers walk.
        let mut passes = 0u64;
        while passes < 200 {
            c.compact();
            c.release_retired();
            passes += 1;
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            let walks = r.join().unwrap();
            assert!(walks > 0, "reader never completed a walk");
        }
        assert!(passes > 0);
    });

    rt.faults().disable();
    c.compact();
    c.release_retired();
    rt.drain_graveyard_blocking();
    let report = c.verify().expect("verify after concurrent scans");
    assert_eq!(report.valid_slots, expected_count);
    assert_eq!(report.groups, 0, "no in-flight group after quiescence");
}
