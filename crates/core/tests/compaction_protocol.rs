//! Targeted tests for the §5/§6 compaction protocol edges: repeated
//! passes, bailed relocations retried later, reference stability across
//! multiple generations of moves, and direct-pointer healing chains.

use smc::{ContextConfig, DirectRef, Ref, Smc};
use smc_memory::{Runtime, Tabular};

#[derive(Clone, Copy, Debug, PartialEq)]
struct Obj {
    key: u64,
    payload: [u64; 8],
}
unsafe impl Tabular for Obj {}

fn obj(key: u64) -> Obj {
    Obj {
        key,
        payload: [key; 8],
    }
}

fn sparse_collection(
    rt: &std::sync::Arc<Runtime>,
    blocks: usize,
    keep_mod: usize,
) -> (Smc<Obj>, Vec<(Ref<Obj>, u64)>) {
    let cfg = ContextConfig {
        reclamation_threshold: 1.1,
        ..ContextConfig::default()
    };
    let c: Smc<Obj> = Smc::with_config(rt, cfg);
    let cap = c.context().layout().capacity as usize;
    let mut kept = Vec::new();
    for i in 0..cap * blocks {
        let r = c.add(obj(i as u64));
        if i % keep_mod == 0 {
            kept.push((r, i as u64));
        } else {
            c.remove(r);
        }
    }
    (c, kept)
}

#[test]
fn repeated_compactions_converge() {
    let rt = Runtime::new();
    let (c, kept) = sparse_collection(&rt, 6, 12);
    // Compact repeatedly; each pass must preserve every survivor, and the
    // second-and-later passes find progressively less to do.
    let mut last_moved = usize::MAX;
    for pass in 0..4 {
        let report = c.compact();
        c.release_retired();
        assert!(!report.aborted, "pass {pass} aborted");
        assert!(report.moved <= last_moved || report.moved == 0);
        last_moved = report.moved.max(1);
        let g = rt.pin();
        for (r, key) in &kept {
            assert_eq!(r.get(&g).unwrap().key, *key, "pass {pass}");
        }
    }
    rt.drain_graveyard_blocking();
    assert_eq!(c.len(), kept.len() as u64);
}

#[test]
fn references_survive_multiple_generations_of_moves() {
    // Move survivors, then shrink again and move them a second time: the
    // original references (and their incarnations) must keep resolving.
    let rt = Runtime::new();
    let (c, kept) = sparse_collection(&rt, 4, 10);
    c.compact();
    c.release_retired();
    // Second shrink: remove half the survivors, compact again.
    let survivors: Vec<_> = kept.iter().step_by(2).copied().collect();
    for (i, (r, _)) in kept.iter().enumerate() {
        if i % 2 == 1 {
            c.remove(*r);
        }
    }
    let report = c.compact();
    c.release_retired();
    let _ = report;
    let g = rt.pin();
    for (r, key) in &survivors {
        assert_eq!(r.get(&g).unwrap().key, *key, "second-generation move");
    }
    assert_eq!(c.len(), survivors.len() as u64);
}

#[test]
fn direct_ref_heals_across_two_compactions() {
    let rt = Runtime::new();
    let (c, kept) = sparse_collection(&rt, 4, 50);
    let (target, key) = kept[1];
    let mut direct: DirectRef<Obj> = {
        let g = rt.pin();
        target.to_direct(&g).unwrap()
    };
    // First compaction: the direct ref crosses one tombstone.
    c.compact();
    {
        let g = rt.pin();
        assert_eq!(direct.get_healing(&g).unwrap().key, key);
    }
    // Keep old tombstoned blocks alive until the ref has healed, then
    // release; compact again after another shrink.
    c.release_retired();
    let caps = c.context().layout().capacity as usize;
    let fillers: Vec<_> = (0..caps * 2)
        .map(|i| c.add(obj(900_000 + i as u64)))
        .collect();
    for f in &fillers {
        c.remove(*f);
    }
    c.compact();
    let g = rt.pin();
    assert_eq!(direct.get_healing(&g).unwrap().key, key, "second heal");
    // And the checked reference agrees.
    assert_eq!(target.get(&g).unwrap().key, key);
    drop(g);
    c.release_retired();
    rt.drain_graveyard_blocking();
}

#[test]
fn enumeration_during_pre_state_pin_is_complete() {
    // Take an iterator (which pins group pre-state when it hits a group
    // mid-compaction) and verify counts even when a compaction pass runs
    // between iterator construction and consumption.
    let rt = Runtime::new();
    let (c, kept) = sparse_collection(&rt, 5, 9);
    let g = rt.pin();
    let it = c.iter(&g);
    // The guard pins our epoch, so a concurrent compaction cannot reach
    // its moving phase while `it` is alive; consume and count.
    let seen = it.count();
    assert_eq!(seen, kept.len());
    drop(g);
    c.compact();
    c.release_retired();
    let g = rt.pin();
    assert_eq!(c.iter(&g).count(), kept.len());
}

#[test]
fn compaction_with_zero_occupancy_blocks_retires_them() {
    let rt = Runtime::new();
    let cfg = ContextConfig {
        reclamation_threshold: 1.1,
        ..ContextConfig::default()
    };
    let c: Smc<Obj> = Smc::with_config(&rt, cfg);
    let cap = c.context().layout().capacity as usize;
    // Two completely emptied blocks plus one partially filled.
    let refs: Vec<_> = (0..cap * 2 + 5).map(|i| c.add(obj(i as u64))).collect();
    for r in refs.iter().take(cap * 2) {
        c.remove(*r);
    }
    let before = c.memory_bytes();
    let report = c.compact();
    c.release_retired();
    rt.drain_graveyard_blocking();
    let _ = report;
    assert!(c.memory_bytes() < before, "empty blocks must be reclaimed");
    assert_eq!(c.len(), 5);
}

#[test]
fn update_in_place_survives_compaction() {
    let rt = Runtime::new();
    let (c, kept) = sparse_collection(&rt, 3, 20);
    {
        let g = rt.pin();
        for (r, _) in &kept {
            c.update(*r, &g, |o| o.payload[0] = o.key * 2).unwrap();
        }
    }
    c.compact();
    c.release_retired();
    let g = rt.pin();
    for (r, key) in &kept {
        assert_eq!(
            r.get(&g).unwrap().payload[0],
            key * 2,
            "update preserved by move"
        );
    }
}

#[test]
fn compaction_respects_occupancy_threshold_config() {
    let rt = Runtime::new();
    let cfg = ContextConfig {
        reclamation_threshold: 1.1,
        compaction_occupancy: 0.10, // only compact blocks under 10 % full
        ..ContextConfig::default()
    };
    let c: Smc<Obj> = Smc::with_config(&rt, cfg);
    let cap = c.context().layout().capacity as usize;
    let refs: Vec<_> = (0..cap * 3).map(|i| c.add(obj(i as u64))).collect();
    // Leave blocks 50 % full: above the 10 % threshold, so nothing moves.
    for (i, r) in refs.iter().enumerate() {
        if i % 2 == 0 {
            c.remove(*r);
        }
    }
    let report = c.compact();
    assert_eq!(report.groups, 0);
    assert_eq!(report.moved, 0);
}
