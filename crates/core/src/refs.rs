//! Reference types for self-managed objects.
//!
//! [`Ref`] is the paper's `ObjRef` (Figure 1): a fat pointer holding the
//! address of the object's indirection-table entry plus the incarnation
//! number observed when the reference was created. Dereferencing validates
//! the incarnation and, when compaction flags are set, runs the three-case
//! slow path of §5.1 (`dereference_object` in the paper) — returning the
//! pointer during the freezing epoch, bailing the relocation out during the
//! waiting phase, or helping move the object during the moving phase.
//!
//! [`DirectRef`] is the §6 alternative: a raw pointer to the object's memory
//! slot, validated against the *slot-header* incarnation word. It skips the
//! indirection hop — the optimization Figure 12 measures — at the price of
//! chasing forwarding tombstones after compaction and needing the fix-up
//! scan (`Smc::fix_direct_refs`).
//!
//! Both types are `Copy` plain data: they can be stored inside other tabular
//! objects (that is how reference-based joins work in the TPC-H adaptation)
//! and survive their target's removal — they simply dereference to `None`
//! afterwards, the paper's "implicitly become null" semantics (§2).

use std::marker::PhantomData;
use std::ptr::NonNull;
use std::sync::atomic::Ordering;

use smc_memory::block::BlockRef;
use smc_memory::epoch::Guard;
use smc_memory::incarnation::{FLAG_FORWARD, INC_MASK};
use smc_memory::indirection::EntryRef;
use smc_memory::reloc::{bail_out_relocation, try_move_object};
use smc_memory::spill;
use smc_memory::tabular::Tabular;

/// A checked reference to an object in a self-managed collection.
///
/// 12–16 bytes of plain data; copying it never touches the object.
pub struct Ref<T: Tabular> {
    /// Address of the indirection entry; 0 encodes the null reference.
    entry_addr: usize,
    /// Incarnation of the entry at assignment time.
    inc: u32,
    _marker: PhantomData<fn() -> T>,
}

impl<T: Tabular> Clone for Ref<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T: Tabular> Copy for Ref<T> {}

impl<T: Tabular> PartialEq for Ref<T> {
    fn eq(&self, other: &Self) -> bool {
        self.entry_addr == other.entry_addr && self.inc == other.inc
    }
}
impl<T: Tabular> Eq for Ref<T> {}

impl<T: Tabular> std::hash::Hash for Ref<T> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.entry_addr.hash(state);
        self.inc.hash(state);
    }
}

impl<T: Tabular> std::fmt::Debug for Ref<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ref")
            .field("entry", &(self.entry_addr as *const ()))
            .field("inc", &self.inc)
            .finish()
    }
}

// SAFETY: plain data validated at every dereference.
unsafe impl<T: Tabular> Send for Ref<T> {}
unsafe impl<T: Tabular> Sync for Ref<T> {}
unsafe impl<T: Tabular> Tabular for Ref<T> {}

impl<T: Tabular> Default for Ref<T> {
    fn default() -> Self {
        Self::null()
    }
}

impl<T: Tabular> Ref<T> {
    /// The null reference: dereferences to `None`.
    pub const fn null() -> Ref<T> {
        Ref {
            entry_addr: 0,
            inc: 0,
            _marker: PhantomData,
        }
    }

    /// True for [`null`](Self::null) references.
    pub fn is_null(&self) -> bool {
        self.entry_addr == 0
    }

    /// Builds a reference from an entry and its incarnation. Crate-internal:
    /// collections construct references on `add` and during enumeration.
    pub(crate) fn from_parts(entry: EntryRef, inc: u32) -> Ref<T> {
        Ref {
            entry_addr: entry.addr(),
            inc,
            _marker: PhantomData,
        }
    }

    /// The entry handle, if non-null.
    pub(crate) fn entry(&self) -> Option<EntryRef> {
        if self.entry_addr == 0 {
            None
        } else {
            Some(unsafe { EntryRef::from_addr(self.entry_addr) })
        }
    }

    /// The incarnation this reference was created with.
    pub(crate) fn incarnation(&self) -> u32 {
        self.inc
    }

    /// Dereferences the object — the paper's `dereference_object` (§5.1).
    ///
    /// Returns `None` if the object was removed from its collection (the
    /// `NullReferenceException` rendering of §2). The returned borrow lives
    /// as long as the guard: within a critical section, a checked reference
    /// stays valid without rechecking (§3.4).
    #[inline]
    pub fn get<'g>(&self, guard: &'g Guard<'_>) -> Option<&'g T> {
        // SAFETY: `resolve` validated the incarnation inside the pinned
        // critical section; the slot cannot be reclaimed or relocated while
        // we are pinned (epoch protocol, §3.4/§5.1).
        self.resolve(guard).map(|p| unsafe { &*p })
    }

    /// Resolves the object's current raw pointer — used by compiled queries
    /// that update fields in place (§7's "compiled unsafe C#"). Validation
    /// is identical to [`get`](Self::get); concurrent readers observe such
    /// updates under the collection's read-uncommitted isolation level (§4).
    #[inline]
    pub fn get_ptr(&self, guard: &Guard<'_>) -> Option<*mut T> {
        self.resolve(guard)
    }

    #[inline]
    fn resolve(&self, guard: &Guard<'_>) -> Option<*mut T> {
        let entry = self.entry()?;
        // Bounded retry: each iteration either returns or faults one spilled
        // page back in (repointing the entry at a resident slot). A page can
        // be re-spilled between our fault-in and the re-read only by a
        // concurrent evictor racing this hot object; 8 rounds outlasts any
        // realistic eviction storm, and bailing to `None` afterwards is the
        // same fail-closed answer an unreadable page gets.
        for _ in 0..8 {
            let word = entry.get().inc().load(Ordering::Acquire);
            // Fast path: exact match, no flags set.
            if word == self.inc {
                let payload = entry.get().load_payload(Ordering::Acquire);
                if payload == 0 {
                    return None;
                }
                if spill::is_spill_tagged(payload) {
                    if !spill::fault_in_tagged(payload) {
                        return None; // page unreadable: fail closed
                    }
                    continue;
                }
                return Some(payload as *mut T);
            }
            // Masked match: alive but frozen/locked by compaction.
            if word & INC_MASK == self.inc & INC_MASK {
                return self.slow_path(entry, guard);
            }
            return None;
        }
        None
    }

    /// §5.1 cases a–c. Cold: only reachable while a compaction is in flight.
    #[cold]
    fn slow_path(&self, entry: EntryRef, guard: &Guard<'_>) -> Option<*mut T> {
        let deref = |e: EntryRef| -> Option<*mut T> {
            let payload = e.get().load_payload(Ordering::Acquire);
            // A spill tag cannot coexist with compaction flags (eviction
            // skips compacting blocks), so seeing one here means the world
            // changed under us — fail closed rather than deref a stub.
            if payload == 0 || spill::is_spill_tagged(payload) {
                None
            } else {
                Some(payload as *mut T)
            }
        };
        // Case a: we are not in the relocation epoch (e.g. the freezing
        // epoch). No relocation can happen this epoch; the current pointer
        // is safe for the rest of our critical section.
        if !guard.in_relocation_epoch() {
            return deref(entry);
        }
        // Locate the relocation-list entry for this object.
        let payload = entry.get().load_payload(Ordering::Acquire);
        if payload == 0 {
            return None;
        }
        let block = unsafe { BlockRef::from_interior_ptr(payload as *const u8) };
        let slot = unsafe { block.slot_of_payload(payload) };
        let list = block.header().reloc_list.load(Ordering::Acquire);
        let reloc = if list.is_null() {
            None
        } else {
            unsafe { (*list).find(slot) }
        };
        let Some(reloc) = reloc else {
            // Not actually scheduled (e.g. flags from an aborted pass).
            return deref(entry);
        };
        if !guard.manager().in_moving_phase() {
            // Case b: waiting phase — relocations must not start while we
            // hold this pointer, and we may not perform them either. Bail
            // the relocation out.
            unsafe { bail_out_relocation(block, reloc) };
        } else {
            // Case c: moving phase — help move the object, then proceed at
            // its new location.
            unsafe { try_move_object(block, reloc) };
        }
        // Re-validate: the object may have been freed while we negotiated.
        let word = entry.get().inc().load(Ordering::Acquire);
        if word & INC_MASK != self.inc & INC_MASK {
            return None;
        }
        deref(entry)
    }

    /// Copies the object out (`None` if removed).
    #[inline]
    pub fn read(&self, guard: &Guard<'_>) -> Option<T> {
        self.get(guard).copied()
    }

    /// Converts to a direct pointer (§6), resolving the current memory
    /// location and capturing the slot-header incarnation.
    pub fn to_direct(&self, guard: &Guard<'_>) -> Option<DirectRef<T>> {
        let obj = self.get(guard)?;
        let addr = obj as *const T as usize;
        let block = unsafe { BlockRef::from_interior_ptr(addr as *const u8) };
        let slot = unsafe { block.slot_of_payload(addr) };
        let inc = block.payload_inc(slot).incarnation();
        Some(DirectRef {
            ptr: NonNull::new(addr as *mut u8)?,
            inc,
            _marker: PhantomData,
        })
    }
}

/// A direct pointer between self-managed objects (§6): the object's slot
/// address plus the slot-header incarnation.
pub struct DirectRef<T: Tabular> {
    ptr: NonNull<u8>,
    inc: u32,
    _marker: PhantomData<fn() -> T>,
}

impl<T: Tabular> Clone for DirectRef<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T: Tabular> Copy for DirectRef<T> {}

impl<T: Tabular> std::fmt::Debug for DirectRef<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DirectRef")
            .field("ptr", &self.ptr)
            .field("inc", &self.inc)
            .finish()
    }
}

unsafe impl<T: Tabular> Send for DirectRef<T> {}
unsafe impl<T: Tabular> Sync for DirectRef<T> {}

/// An optional direct pointer, suitable as a field type inside tabular
/// objects (`DirectRef` itself has no null state).
pub type OptDirectRef<T> = Option<DirectRef<T>>;

unsafe impl<T: Tabular> Tabular for DirectRef<T> {}

impl<T: Tabular> DirectRef<T> {
    /// Raw slot address (for the fix-up scan's block-address probe, §6).
    #[inline]
    pub fn addr(&self) -> usize {
        self.ptr.as_ptr() as usize
    }

    /// Dereferences through the slot-header incarnation; follows forwarding
    /// tombstones left by compaction (§6).
    #[inline]
    pub fn get<'g>(&self, guard: &'g Guard<'_>) -> Option<&'g T> {
        self.resolve(guard).map(|(r, _)| r)
    }

    /// Dereferences and rewrites `self` to the object's new location if a
    /// tombstone was crossed — the paper's "the query also updates the
    /// direct pointer to the object's new memory location" (§6).
    #[inline]
    pub fn get_healing<'g>(&mut self, guard: &'g Guard<'_>) -> Option<&'g T> {
        let (obj, healed) = self.resolve(guard)?;
        if let Some(new) = healed {
            *self = new;
        }
        Some(obj)
    }

    fn resolve<'g>(&self, guard: &'g Guard<'_>) -> Option<(&'g T, Option<DirectRef<T>>)> {
        let mut addr = self.ptr.as_ptr() as usize;
        let mut healed = None;
        // Tombstones can chain across successive compactions; bounded by
        // the number of passes since the pointer was written.
        for _ in 0..64 {
            let block = unsafe { BlockRef::from_interior_ptr(addr as *const u8) };
            let slot = unsafe { block.slot_of_payload(addr) };
            let word = block.payload_inc(slot).load(Ordering::Acquire);
            if word == self.inc {
                // SAFETY: slot-header incarnation matched inside a critical
                // section; same argument as `Ref::get`.
                return Some((unsafe { &*(addr as *const T) }, healed));
            }
            if word & INC_MASK != self.inc & INC_MASK {
                return None; // freed
            }
            if word & FLAG_FORWARD != 0 {
                // Tombstone: the back-pointer leads to the indirection entry,
                // which holds the new location (§6).
                let back = block.back_ptr(slot).load(Ordering::Acquire);
                if back == 0 {
                    return None;
                }
                let entry = unsafe { EntryRef::from_addr(back) };
                let payload = entry.get().load_payload(Ordering::Acquire);
                // A forwarded object that was then spilled has no resident
                // address to heal to — fail closed (re-resolve via `Ref`).
                if payload == 0 || spill::is_spill_tagged(payload) {
                    return None;
                }
                addr = payload;
                healed = Some(DirectRef {
                    ptr: NonNull::new(addr as *mut u8)?,
                    inc: self.inc & INC_MASK,
                    _marker: PhantomData,
                });
                continue;
            }
            // Frozen (compaction in flight): mirror the §5.1 cases through
            // the relocation list, then retry.
            if guard.in_relocation_epoch() {
                let list = block.header().reloc_list.load(Ordering::Acquire);
                if !list.is_null() {
                    if let Some(reloc) = unsafe { (*list).find(slot) } {
                        if guard.manager().in_moving_phase() {
                            unsafe { try_move_object(block, reloc) };
                        } else {
                            unsafe { bail_out_relocation(block, reloc) };
                        }
                        continue;
                    }
                }
            }
            // Freezing epoch (case a): the current location stays valid.
            return Some((unsafe { &*(addr as *const T) }, healed));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_ref_behaves() {
        let r: Ref<u64> = Ref::null();
        assert!(r.is_null());
        assert_eq!(r, Ref::default());
        let rt = smc_memory::Runtime::new();
        let g = rt.pin();
        assert!(r.get(&g).is_none());
        assert!(r.read(&g).is_none());
        assert!(r.to_direct(&g).is_none());
    }

    #[test]
    fn refs_are_small_plain_data() {
        assert!(std::mem::size_of::<Ref<u64>>() <= 16);
        assert!(std::mem::size_of::<DirectRef<u64>>() <= 16);
        // DirectRef has a NonNull niche: Option<DirectRef> costs nothing.
        assert_eq!(
            std::mem::size_of::<DirectRef<u64>>(),
            std::mem::size_of::<Option<DirectRef<u64>>>()
        );
    }

    #[test]
    fn ref_equality_and_hash() {
        use std::collections::HashSet;
        let a: Ref<u64> = Ref::null();
        let b: Ref<u64> = Ref::null();
        assert_eq!(a, b);
        let mut s = HashSet::new();
        s.insert(a);
        assert!(s.contains(&b));
    }
}
