//! Columnar storage for self-managed collections (§4.1).
//!
//! Because an SMC's blocks contain only objects of one type from one
//! collection, the collection may store them column-wise instead of
//! row-wise: each block's object store becomes a bundle of parallel column
//! arrays, led by the incarnation column. Queries that touch few columns
//! then read only those arrays — the Fig 12 optimization.
//!
//! Per the paper, the indirection entry of a columnar object does not hold
//! an object address (there is no contiguous object); it holds a locator.
//! We use the address of the object's incarnation cell, from which the block
//! (mask) and slot (offset arithmetic) are recovered — equivalent to the
//! paper's `(block id, slot id)` pair with one less lookup.

use std::marker::PhantomData;
use std::sync::Arc;

use smc_memory::block::{type_id_of, BlockRef};
use smc_memory::context::{Allocation, ContextConfig, MemoryContext};
use smc_memory::epoch::Guard;
use smc_memory::error::MemError;
use smc_memory::runtime::Runtime;
use smc_memory::slot::SlotState;
use smc_memory::tabular::Tabular;

use crate::refs::Ref;

/// Maximum number of columns a columnar type may declare.
pub const MAX_COLUMNS: usize = 24;

/// Types that can be shredded into parallel column arrays.
///
/// # Safety
/// `COLUMN_WIDTHS` must exactly describe the bytes written by
/// [`scatter`](Columnar::scatter) and read by [`gather`](Columnar::gather):
/// column `i`'s cell for slot `s` is the `WIDTHS[i]` bytes at
/// `cols.column(i) + s * WIDTHS[i]`, and both methods must stay within
/// their cells. Widths must be powers of two (they double as alignment).
pub unsafe trait Columnar: Tabular {
    /// Byte width of every column, in storage order.
    const COLUMN_WIDTHS: &'static [usize];

    /// Writes `self` into the column cells for `slot`.
    ///
    /// # Safety
    /// `cols` must describe a block of this type and `slot` a claimed slot.
    unsafe fn scatter(&self, cols: &ColumnArrays, slot: usize);

    /// Reads the object back from the column cells for `slot`.
    ///
    /// # Safety
    /// Same contract as [`scatter`](Columnar::scatter); the slot must hold
    /// a valid object.
    unsafe fn gather(cols: &ColumnArrays, slot: usize) -> Self;
}

/// Resolved base pointers of one block's column arrays.
#[derive(Clone, Copy)]
pub struct ColumnArrays {
    bases: [*mut u8; MAX_COLUMNS],
    len: usize,
}

impl ColumnArrays {
    /// Base pointer of column `i`.
    #[inline]
    pub fn column(&self, i: usize) -> *mut u8 {
        debug_assert!(i < self.len);
        self.bases[i]
    }

    /// Typed cell pointer: column `i`, slot `s`.
    ///
    /// # Safety
    /// `V` must be exactly `COLUMN_WIDTHS[i]` bytes and the slot in range.
    #[inline]
    pub unsafe fn cell<V>(&self, i: usize, slot: usize) -> *mut V {
        self.column(i).cast::<V>().add(slot)
    }

    /// Typed column slice covering all `capacity` slots.
    ///
    /// # Safety
    /// Same contract as [`cell`](Self::cell); the returned slice aliases
    /// concurrently-updated memory under the collection's isolation level.
    #[inline]
    pub unsafe fn column_slice<'a, V>(&self, i: usize, capacity: usize) -> &'a [V] {
        std::slice::from_raw_parts(self.column(i).cast::<V>(), capacity)
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no columns (never the case for real schemas).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// A self-managed collection with columnar storage (§4.1).
pub struct ColumnarSmc<T: Columnar> {
    ctx: Arc<MemoryContext>,
    /// Byte offset of each column array from the block's store base.
    offsets: Vec<usize>,
    _marker: PhantomData<fn() -> T>,
}

impl<T: Columnar> Clone for ColumnarSmc<T> {
    fn clone(&self) -> Self {
        ColumnarSmc {
            ctx: self.ctx.clone(),
            offsets: self.offsets.clone(),
            _marker: PhantomData,
        }
    }
}

/// Computes per-column offsets for a given capacity; returns the total store
/// bytes consumed.
fn column_offsets(widths: &[usize], capacity: usize, out: &mut Vec<usize>) -> usize {
    out.clear();
    // Incarnation column leads the store.
    let mut cursor = 4 * capacity;
    for &w in widths {
        let align = w.clamp(4, 16);
        cursor = (cursor + align - 1) & !(align - 1);
        out.push(cursor);
        cursor += w * capacity;
    }
    cursor
}

impl<T: Columnar> ColumnarSmc<T> {
    /// Creates a columnar collection on `runtime`.
    pub fn new(runtime: &Arc<Runtime>) -> ColumnarSmc<T> {
        Self::with_config(runtime, ContextConfig::default())
    }

    /// Creates a columnar collection with explicit tunables.
    pub fn with_config(runtime: &Arc<Runtime>, config: ContextConfig) -> ColumnarSmc<T> {
        assert!(T::COLUMN_WIDTHS.len() <= MAX_COLUMNS, "too many columns");
        assert!(!T::COLUMN_WIDTHS.is_empty(), "columnar type needs columns");
        let per_slot: usize = 4 + T::COLUMN_WIDTHS.iter().sum::<usize>();
        let mut offsets = Vec::new();
        // Grow the per-slot estimate until the aligned column arrays fit the
        // store region the layout grants for that estimate.
        let mut pad = 0usize;
        let ctx = loop {
            let ctx = MemoryContext::new_columnar(
                runtime.clone(),
                per_slot + pad,
                type_id_of::<T>(),
                config,
            )
            .expect("columnar row too large for a memory block");
            let cap = ctx.layout().capacity as usize;
            let needed = column_offsets(T::COLUMN_WIDTHS, cap, &mut offsets);
            if needed <= ctx.layout().store_len as usize {
                break ctx;
            }
            pad += 16;
            assert!(pad < 4096, "column alignment padding runaway");
        };
        ColumnarSmc {
            ctx: Arc::new(ctx),
            offsets,
            _marker: PhantomData,
        }
    }

    /// The runtime this collection allocates from.
    pub fn runtime(&self) -> &Arc<Runtime> {
        self.ctx.runtime()
    }

    /// The collection's private memory context (§3.3).
    pub fn context(&self) -> &Arc<MemoryContext> {
        &self.ctx
    }

    /// Hands this collection's maintenance to a background
    /// [`Coordinator`](smc_maint::Coordinator); see
    /// [`Smc::register_maintenance`](crate::Smc::register_maintenance).
    pub fn register_maintenance(
        &self,
        coordinator: &smc_maint::Coordinator,
        policy: smc_maint::MaintPolicy,
    ) {
        coordinator.register(self.ctx.clone(), policy);
    }

    /// Captures a lock-free observatory snapshot of this collection's heap;
    /// see [`smc_memory::inspect`] for the consistency model. Does not
    /// require quiescence.
    pub fn heap_snapshot(&self) -> smc_memory::inspect::HeapSnapshot {
        smc_memory::inspect::HeapSnapshot::capture(self.runtime(), &[&self.ctx])
    }

    /// Slots per block.
    pub fn capacity_per_block(&self) -> usize {
        self.ctx.layout().capacity as usize
    }

    /// Resolves the column arrays of one block.
    #[inline]
    pub fn arrays(&self, block: &BlockRef) -> ColumnArrays {
        let base = block.store_base();
        let mut bases = [std::ptr::null_mut(); MAX_COLUMNS];
        for (i, &off) in self.offsets.iter().enumerate() {
            bases[i] = unsafe { base.add(off) };
        }
        ColumnArrays {
            bases,
            len: self.offsets.len(),
        }
    }

    /// Inserts an object, shredding it into the block's columns.
    pub fn add(&self, value: T) -> Ref<T> {
        self.try_add(value).expect("allocation failed")
    }

    /// Fallible [`add`](Self::add).
    pub fn try_add(&self, value: T) -> Result<Ref<T>, MemError> {
        let Allocation {
            entry, entry_inc, ..
        } = self.ctx.alloc_with(|block, slot| {
            let cols = self.arrays(block);
            // SAFETY: exclusive claimed slot; Columnar contract bounds the
            // writes to this slot's cells.
            unsafe { value.scatter(&cols, slot as usize) };
        })?;
        Ok(Ref::from_parts(entry, entry_inc))
    }

    /// Removes the referenced object.
    pub fn remove(&self, r: Ref<T>) -> bool {
        match r.entry() {
            Some(entry) => self.ctx.free(entry, r.incarnation()),
            None => false,
        }
    }

    /// Gathers a copy of the referenced object from its columns. This is the
    /// §4.1 reference path: "the JIT compiler injects the code required to
    /// access columnarly stored data when following references".
    pub fn read(&self, r: Ref<T>, _guard: &Guard<'_>) -> Option<T> {
        let entry = r.entry()?;
        let word = entry.get().inc().load(std::sync::atomic::Ordering::Acquire);
        if word & smc_memory::INC_MASK != r.incarnation() & smc_memory::INC_MASK {
            return None;
        }
        let payload = entry
            .get()
            .load_payload(std::sync::atomic::Ordering::Acquire);
        if payload == 0 {
            return None;
        }
        let (block, slot) = unsafe { self.ctx.locate(payload) };
        let cols = self.arrays(&block);
        // SAFETY: incarnation validated inside the caller's critical section.
        Some(unsafe { T::gather(&cols, slot as usize) })
    }

    /// Number of live objects.
    pub fn len(&self) -> u64 {
        self.ctx.live_objects()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total off-heap bytes held.
    pub fn memory_bytes(&self) -> usize {
        self.ctx.bytes()
    }

    /// Visits each block's column arrays together with its slot-validity
    /// predicate — the columnar compiled-query loop. `f` receives the
    /// arrays, the block capacity, and a callback to test slot validity;
    /// it reads only the columns the query needs (§4.1).
    pub fn for_each_block(&self, _guard: &Guard<'_>, mut f: impl FnMut(&ColumnArrays, &BlockRef)) {
        let m = self.ctx.membership_snapshot();
        for block in &m.blocks {
            let cols = self.arrays(block);
            f(&cols, block);
        }
        // Columnar contexts do not participate in compaction (see DESIGN.md);
        // groups never form.
        debug_assert!(m.groups.is_empty());
    }

    /// Applies `f` to every live object, gathered from its columns.
    pub fn for_each(&self, guard: &Guard<'_>, mut f: impl FnMut(&T)) -> u64 {
        let mut n = 0;
        self.for_each_block(guard, |cols, block| {
            for slot in 0..block.header().capacity {
                if block.slot_word(slot).state() == SlotState::Valid {
                    let v = unsafe { T::gather(cols, slot as usize) };
                    f(&v);
                    n += 1;
                }
            }
        });
        n
    }
}

impl<T: Columnar> std::fmt::Debug for ColumnarSmc<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ColumnarSmc")
            .field("type", &std::any::type_name::<T>())
            .field("len", &self.len())
            .field("columns", &T::COLUMN_WIDTHS.len())
            .finish()
    }
}
