//! # smc — self-managed collections
//!
//! A Rust implementation of *self-managed collections* from Nagel et al.,
//! "Self-managed collections: Off-heap memory management for scalable
//! query-dominated collections" (EDBT 2017).
//!
//! A self-managed collection ([`Smc`]) owns the memory of its contained
//! objects: objects live in private, off-heap, type-homogeneous memory
//! blocks managed by the [`smc_memory`] crate, excluded from any garbage
//! collector. The collection's semantics are those of a database table —
//! objects are created by insertion and destroyed by removal, and every
//! outstanding reference to a removed object dereferences to `None` (§2).
//!
//! What this buys, per the paper's evaluation:
//!
//! * **Enumeration speed** — objects sit densely in blocks in insertion
//!   order, so query scans run at memory bandwidth instead of chasing
//!   pointers across a fragmented heap (Fig 10);
//! * **Allocation throughput** — thread-local block allocation costs ~one
//!   atomic per ten thousand objects (Fig 7);
//! * **No GC pauses** — collection data never stresses a garbage collector
//!   (Fig 9);
//! * **Compiled-query access** — query code operates directly on the
//!   collection's memory blocks ([`Smc::for_each`], [`ColumnarSmc`]), with
//!   [`DirectRef`] skipping even the indirection hop for inter-collection
//!   joins (Figs 11–12).
//!
//! ## Quick start
//!
//! ```
//! use smc::{Smc, Tabular};
//! use smc_memory::{InlineStr, Runtime};
//!
//! #[derive(Clone, Copy)]
//! struct Person {
//!     name: InlineStr<16>,
//!     age: u32,
//! }
//! // SAFETY: only primitives and inline strings — no heap references.
//! unsafe impl Tabular for Person {}
//!
//! let runtime = Runtime::new();
//! let persons: Smc<Person> = Smc::new(&runtime);
//! let adam = persons.add(Person { name: "Adam".into(), age: 27 });
//!
//! {
//!     let guard = runtime.pin();
//!     assert_eq!(adam.get(&guard).unwrap().age, 27);
//!     // Enumerate like a compiled query: straight over the blocks.
//!     let mut adults = 0;
//!     persons.for_each(&guard, |p| if p.age > 17 { adults += 1 });
//!     assert_eq!(adults, 1);
//! }
//!
//! persons.remove(adam);
//! let guard = runtime.pin();
//! assert!(adam.get(&guard).is_none(), "references go null on removal");
//! ```

#![warn(missing_docs)]

pub mod collection;
pub mod columnar;
pub mod refs;

pub use collection::{visit_group, Iter, Smc};
pub use columnar::{ColumnArrays, Columnar, ColumnarSmc, MAX_COLUMNS};
pub use refs::{DirectRef, OptDirectRef, Ref};

// Re-export the memory runtime surface users need.
pub use smc_memory::context::{CompactionReport, ContextConfig};
pub use smc_memory::epoch::Guard;
pub use smc_memory::{Decimal, InlineStr, Runtime, Tabular};
pub use smc_memory::{HeapSnapshot, Watermark};
