//! The self-managed collection type (§2, §4).
//!
//! An [`Smc<T>`] owns its contained objects: objects are created by
//! [`Smc::add`] and their lifetime ends with [`Smc::remove`] — the
//! database-table-inspired containment semantics of §2. Every object lives
//! in the collection's private [`MemoryContext`]; `Add` and `Remove` map
//! directly onto the memory manager's `alloc` and `free` (§4).
//!
//! Enumeration follows the paper's compiled-query pattern: iterate the
//! blocks of the collection's memory context, skip dead slots via the slot
//! directory, and touch object data only for valid slots (§4's generated
//! code listing). Enumeration honors the §5.2 compaction-group protocol:
//! groups are read either entirely in their pre-relocation state (holding
//! the group's query counter) or entirely post-relocation (helping the move
//! first).
//!
//! # Isolation
//!
//! Objects concurrently removed during an enumeration may or may not be
//! included, and in-place updates may be observed partially — "smcs use a
//! lower isolation level than database systems, in line with other managed
//! collections" (§4). APIs that expose shared borrows document this.

use std::collections::VecDeque;
use std::marker::PhantomData;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use smc_memory::block::{type_id_of, BlockRef};
use smc_memory::context::{
    Allocation, CompactionGroup, CompactionReport, ContextConfig, MemoryContext,
};
use smc_memory::epoch::Guard;
use smc_memory::error::MemError;
use smc_memory::inspect::HeapSnapshot;
use smc_memory::runtime::Runtime;
use smc_memory::slot::{SlotId, SlotState};
use smc_memory::stats::MemoryStats;
use smc_memory::tabular::Tabular;
use smc_memory::verify::VerifyReport;

use crate::refs::{DirectRef, Ref};

/// A self-managed collection of tabular objects.
///
/// Cloning the handle is cheap and shares the underlying collection.
pub struct Smc<T: Tabular> {
    ctx: Arc<MemoryContext>,
    _marker: PhantomData<fn() -> T>,
}

impl<T: Tabular> Clone for Smc<T> {
    fn clone(&self) -> Self {
        Smc {
            ctx: self.ctx.clone(),
            _marker: PhantomData,
        }
    }
}

impl<T: Tabular> std::fmt::Debug for Smc<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Smc")
            .field("type", &std::any::type_name::<T>())
            .field("len", &self.len())
            .field("blocks", &self.ctx.block_count())
            .finish()
    }
}

impl<T: Tabular> Smc<T> {
    /// Creates a collection backed by `runtime` with default configuration.
    pub fn new(runtime: &Arc<Runtime>) -> Smc<T> {
        Self::with_config(runtime, ContextConfig::default())
    }

    /// Creates a collection with explicit tunables (reclamation threshold,
    /// compaction occupancy — the Fig 6 knobs).
    pub fn with_config(runtime: &Arc<Runtime>, config: ContextConfig) -> Smc<T> {
        let ctx = MemoryContext::new_rows(
            runtime.clone(),
            std::mem::size_of::<T>(),
            std::mem::align_of::<T>(),
            type_id_of::<T>(),
            config,
        )
        .expect("object type too large for a memory block");
        Smc {
            ctx: Arc::new(ctx),
            _marker: PhantomData,
        }
    }

    /// The runtime this collection allocates from.
    pub fn runtime(&self) -> &Arc<Runtime> {
        self.ctx.runtime()
    }

    /// The collection's private memory context (§3.3).
    pub fn context(&self) -> &Arc<MemoryContext> {
        &self.ctx
    }

    /// Inserts an object: allocates a slot in the collection's context,
    /// writes the value, and returns a checked reference — the paper's
    /// `persons.Add("Adam", 27)` (§2).
    pub fn add(&self, value: T) -> Ref<T> {
        self.try_add(value).expect("allocation failed")
    }

    /// Fallible [`add`](Self::add).
    pub fn try_add(&self, value: T) -> Result<Ref<T>, MemError> {
        let Allocation {
            entry, entry_inc, ..
        } = self.ctx.alloc_with(|block, slot| {
            // SAFETY: the context claimed this slot exclusively for us; the
            // write happens before the slot is published as Valid.
            unsafe { block.obj_ptr(slot).cast::<T>().write(value) };
        })?;
        Ok(Ref::from_parts(entry, entry_inc))
    }

    /// Removes the referenced object. All references to it become null
    /// (dereference to `None`) from this point on (§2). Returns false if it
    /// was already removed.
    pub fn remove(&self, r: Ref<T>) -> bool {
        self.try_remove(r).expect("thread registry full")
    }

    /// Fallible [`remove`](Self::remove): surfaces
    /// [`MemError::TooManyThreads`] instead of panicking when the calling
    /// thread cannot claim an epoch slot.
    pub fn try_remove(&self, r: Ref<T>) -> Result<bool, MemError> {
        match r.entry() {
            Some(entry) => self.ctx.try_free(entry, r.incarnation()),
            None => Ok(false),
        }
    }

    /// Number of live objects.
    pub fn len(&self) -> u64 {
        self.ctx.live_objects()
    }

    /// True if no live objects remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total off-heap bytes held by the collection's blocks.
    pub fn memory_bytes(&self) -> usize {
        self.ctx.bytes()
    }

    /// Attaches a page store and enables the larger-than-memory tier: under
    /// budget pressure the collection evicts cold blocks to the store, and
    /// touching an evicted object faults its page back in transparently.
    /// Returns false for layouts that cannot spill (columnar contexts).
    pub fn enable_spill(&self, store: Arc<dyn smc_memory::PageStore>) -> bool {
        self.ctx.enable_spill(store)
    }

    /// Blocks currently evicted to the page store.
    pub fn spilled_blocks(&self) -> u64 {
        self.ctx.spilled_blocks()
    }

    /// Live objects resident only in spilled pages (counted in
    /// [`len`](Self::len)).
    pub fn spilled_objects(&self) -> u64 {
        self.ctx.spilled_objects()
    }

    /// Reads a copy of the referenced object.
    pub fn read(&self, r: Ref<T>, guard: &Guard<'_>) -> Option<T> {
        r.read(guard)
    }

    /// Mutates the referenced object in place.
    ///
    /// This is the §7 "compiled unsafe C#" capability: operating on object
    /// fields through pointers, possible only because the collection — not a
    /// moving garbage collector — owns the memory. Concurrent readers may
    /// observe the update partially (the collection's documented isolation
    /// level, §4).
    pub fn update<R>(
        &self,
        r: Ref<T>,
        guard: &Guard<'_>,
        f: impl FnOnce(&mut T) -> R,
    ) -> Option<R> {
        let ptr = r.get_ptr(guard)?;
        // SAFETY: the object is alive for the guard's critical section; the
        // collection's isolation level permits racy field updates (§4).
        Some(f(unsafe { &mut *ptr }))
    }

    /// Applies `f` to every live object — the collection's compiled-query
    /// enumeration loop (§4): block by block, skipping dead slots through
    /// the slot directory, never materializing references.
    ///
    /// When the collection has a spill store attached
    /// ([`enable_spill`](Self::enable_spill)), spilled pages are scanned
    /// *in place* — objects are read out of the page images without
    /// promoting them back into memory, so a scan does not thrash the
    /// working set it displaced. Panics if a spilled page cannot be read;
    /// use [`try_for_each`](Self::try_for_each) where that must be an error.
    ///
    /// Returns the number of objects visited.
    pub fn for_each(&self, guard: &Guard<'_>, f: impl FnMut(&T)) -> u64 {
        self.try_for_each(guard, f)
            .expect("spilled page unreadable")
    }

    /// Fallible [`for_each`](Self::for_each):
    /// `Err(MemError::SpillFault)` when a spilled page cannot be read back
    /// (the scan stops — fail closed, no partial page is surfaced).
    pub fn try_for_each(&self, guard: &Guard<'_>, mut f: impl FnMut(&T)) -> Result<u64, MemError> {
        let mut n = 0;
        // Spilled pages first: the membership snapshot is taken under the
        // same spill mutex, so a page faulted in mid-scan cannot be seen
        // twice (as page *and* block) or missed entirely.
        let m = self
            .ctx
            .scan_spilled_then_snapshot(&mut |_entry_addr, obj| {
                // SAFETY: the callback's pointer addresses `size_of::<T>()`
                // bytes of a decoded page record of this typed context.
                f(unsafe { &*obj.cast::<T>() });
                n += 1;
            })?;
        for block in m.blocks {
            n += self.scan_block(block, &mut f);
        }
        for group in m.groups {
            visit_group(&group, guard, self.ctx.runtime(), &mut |block| {
                n += self.scan_block(block, &mut f);
            });
        }
        Ok(n)
    }

    fn scan_block(&self, block: BlockRef, f: &mut impl FnMut(&T)) -> u64 {
        let mut n = 0;
        let cap = block.header().capacity;
        for slot in 0..cap {
            if block.slot_word(slot).state() == SlotState::Valid {
                // SAFETY: valid slot in a pinned critical section.
                f(unsafe { &*block.obj_ptr(slot).cast::<T>() });
                n += 1;
            }
        }
        n
    }

    /// Like [`for_each`](Self::for_each) but also hands out the checked
    /// reference of each object (built from the slot's back-pointer, exactly
    /// as the paper's generated code yields `ObjRef`s, §4). Spilled objects
    /// yield working references too — dereferencing one faults its page in.
    pub fn for_each_ref(&self, guard: &Guard<'_>, f: impl FnMut(Ref<T>, &T)) -> u64 {
        self.try_for_each_ref(guard, f)
            .expect("spilled page unreadable")
    }

    /// Fallible [`for_each_ref`](Self::for_each_ref); see
    /// [`try_for_each`](Self::try_for_each) for the error contract.
    pub fn try_for_each_ref(
        &self,
        guard: &Guard<'_>,
        mut f: impl FnMut(Ref<T>, &T),
    ) -> Result<u64, MemError> {
        let mut n = 0;
        let m = self
            .ctx
            .scan_spilled_then_snapshot(&mut |entry_addr, obj| {
                let entry = unsafe { smc_memory::indirection::EntryRef::from_addr(entry_addr) };
                let r = Ref::from_parts(entry, entry.get().inc().incarnation());
                // SAFETY: as in `try_for_each`.
                f(r, unsafe { &*obj.cast::<T>() });
                n += 1;
            })?;
        let mut scan = |block: BlockRef| {
            let cap = block.header().capacity;
            for slot in 0..cap {
                if block.slot_word(slot).state() == SlotState::Valid {
                    let back = block.back_ptr(slot).load(Ordering::Acquire);
                    if back == 0 {
                        continue;
                    }
                    let entry = unsafe { smc_memory::indirection::EntryRef::from_addr(back) };
                    let r = Ref::from_parts(entry, entry.get().inc().incarnation());
                    f(r, unsafe { &*block.obj_ptr(slot).cast::<T>() });
                    n += 1;
                }
            }
        };
        for block in m.blocks {
            scan(block);
        }
        for group in m.groups {
            visit_group(&group, guard, self.ctx.runtime(), &mut scan);
        }
        Ok(n)
    }

    /// Lazily iterates `(Ref<T>, &T)` pairs. Prefer [`for_each`](Smc::for_each) in
    /// performance-critical query code; the pull iterator exists for
    /// ergonomic composition.
    ///
    /// **Resident objects only**: spilled pages are not visited (a lazy
    /// pull iterator cannot hold the spill mutex across `next` calls). Use
    /// [`for_each`](Self::for_each) for scans that must see spilled data.
    pub fn iter<'g, 'e>(&self, guard: &'g Guard<'e>) -> Iter<'g, 'e, T> {
        let m = self.ctx.membership_snapshot();
        let mut work: VecDeque<WorkItem> = m.blocks.into_iter().map(WorkItem::Block).collect();
        work.extend(m.groups.into_iter().map(WorkItem::Group));
        Iter {
            guard,
            work,
            cursor: None,
            pinned: None,
            runtime: self.ctx.runtime().clone(),
            capacity: self.ctx.layout().capacity,
            _marker: PhantomData,
        }
    }

    /// Walks every block the enumeration must visit, implementing the §5.2
    /// compaction-group protocol (pin pre-state or help-and-read-post).
    fn visit_blocks(&self, guard: &Guard<'_>, mut f: impl FnMut(BlockRef)) {
        let m = self.ctx.membership_snapshot();
        for block in m.blocks {
            f(block);
        }
        for group in m.groups {
            visit_group(&group, guard, self.ctx.runtime(), &mut f);
        }
    }

    // ------------------------------------------------------------------
    // Compaction (§5) and direct-pointer fix-up (§6)
    // ------------------------------------------------------------------

    /// Runs one compaction pass over this collection's blocks (§5). After
    /// compacting, rewrite direct pointers held by referencing collections
    /// ([`fix_direct_refs`](Self::fix_direct_refs)) and then call
    /// [`release_retired`](Self::release_retired).
    pub fn compact(&self) -> CompactionReport {
        self.ctx.compact()
    }

    /// Returns retired (emptied) blocks to the OS once direct pointers have
    /// been fixed up. Tombstones inside them stay readable until then.
    pub fn release_retired(&self) {
        self.ctx.release_retired()
    }

    /// Hands this collection's maintenance to a background
    /// [`Coordinator`](smc_maint::Coordinator): the coordinator plans and
    /// runs compaction passes for it under `policy`, instead of the
    /// application calling [`compact`](Self::compact) by hand.
    pub fn register_maintenance(
        &self,
        coordinator: &smc_maint::Coordinator,
        policy: smc_maint::MaintPolicy,
    ) {
        coordinator.register(self.ctx.clone(), policy);
    }

    /// Validates the collection's structural invariants (block headers, slot
    /// directories, indirection back-pointers, incarnation flags) and
    /// cross-checks the recount against [`len`](Self::len). Requires
    /// quiescence: no concurrent mutators or in-flight compaction. See
    /// [`MemoryContext::verify`].
    pub fn verify(&self) -> Result<VerifyReport, Vec<String>> {
        let report = self.ctx.verify()?;
        let len = self.len();
        if report.valid_slots + report.spilled_slots != len {
            return Err(vec![format!(
                "recounted {} valid + {} spilled slots but collection len() is {len}",
                report.valid_slots, report.spilled_slots
            )]);
        }
        Ok(report)
    }

    /// Captures a lock-free observatory snapshot of this collection's heap
    /// (per-block occupancy, limbo dead space, holes, incarnation churn,
    /// indirection load, epoch lag). Unlike [`verify`](Self::verify) it does
    /// **not** require quiescence — it pins an epoch guard and tolerates
    /// concurrent mutation and relocation; see
    /// [`smc_memory::inspect`] for the consistency model.
    pub fn heap_snapshot(&self) -> HeapSnapshot {
        HeapSnapshot::capture(self.runtime(), &[&self.ctx])
    }

    /// The §6 fix-up scan, run on a *referencing* collection after a
    /// *referenced* collection was compacted: for every live object, probe
    /// whether the direct pointer selected by `field` points into a retired
    /// block (hash-set probe on the block base address — "instead of
    /// following a direct pointer to see if the forwarding flag is set, we
    /// first compute the address of the corresponding block \[and\] probe it
    /// in the hash table"), and if so chase the tombstone and rewrite it.
    pub fn fix_direct_refs<U: Tabular>(
        &self,
        report: &CompactionReport,
        guard: &Guard<'_>,
        field: impl Fn(&mut T) -> &mut DirectRef<U>,
    ) -> u64 {
        if report.retired_bases.is_empty() {
            return 0;
        }
        let retired: std::collections::HashSet<usize> =
            report.retired_bases.iter().copied().collect();
        let mut fixed = 0;
        self.visit_blocks(guard, |block| {
            let cap = block.header().capacity;
            for slot in 0..cap {
                if block.slot_word(slot).state() != SlotState::Valid {
                    continue;
                }
                // SAFETY: valid slot, pinned critical section; field updates
                // race benignly under the collection's isolation level.
                let obj = unsafe { &mut *block.obj_ptr(slot).cast::<T>() };
                let dref = field(obj);
                let base = dref.addr() & !(smc_memory::BLOCK_SIZE - 1);
                if !retired.contains(&base) {
                    continue;
                }
                if dref.get_healing(guard).is_some() {
                    fixed += 1;
                }
            }
        });
        MemoryStats::add(&self.ctx.runtime().stats.direct_pointers_fixed, fixed);
        fixed
    }
}

/// §5.2 group visiting, shared by `for_each`, the pull iterator, and the
/// parallel scan workers of `smc-exec`: reads the group either entirely in
/// its pre-relocation state (sources only, holding the group's query counter
/// so the mover cannot start) or entirely post-relocation (helping the move
/// first, then dest plus bailed-out sources). Calls `f` once per block the
/// enumeration must visit; the union of visited valid slots is exact.
pub fn visit_group(
    group: &Arc<CompactionGroup>,
    guard: &Guard<'_>,
    runtime: &Arc<Runtime>,
    f: &mut impl FnMut(BlockRef),
) {
    if !group.settled.load(Ordering::Acquire) && guard.in_relocation_epoch() {
        if group.try_pin_pre_state(runtime) {
            // Pre-relocation state: sources only (dest is still empty), with
            // the query counter held so the mover cannot start under us.
            for &src in &group.sources {
                f(src);
            }
            group.unpin_pre_state();
            return;
        }
        // Relocation already started; help finish it if moves are currently
        // permitted, then read the post-state.
        if runtime.in_moving_phase() {
            group.help_relocate(&runtime.stats);
        }
    }
    // Post-state (or quiescent): moved objects are valid only in the dest,
    // bailed-out objects only in their source — the union is exact.
    f(group.dest);
    for &src in &group.sources {
        f(src);
    }
}

enum WorkItem {
    Block(BlockRef),
    Group(Arc<CompactionGroup>),
}

/// Pull iterator over `(Ref<T>, &T)`.
pub struct Iter<'g, 'e, T: Tabular> {
    guard: &'g Guard<'e>,
    work: VecDeque<WorkItem>,
    cursor: Option<(BlockRef, SlotId)>,
    /// A group whose pre-state we hold pinned while its sources drain.
    pinned: Option<(Arc<CompactionGroup>, usize)>,
    runtime: Arc<Runtime>,
    /// Slots per block (constant for the collection's layout).
    capacity: u32,
    _marker: PhantomData<fn() -> T>,
}

impl<'g, 'e, T: Tabular> Iterator for Iter<'g, 'e, T> {
    type Item = (Ref<T>, &'g T);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some((block, slot)) = self.cursor {
                let cap = block.header().capacity;
                let mut s = slot;
                while s < cap {
                    // Interleaving point for the smc-check model checker: a
                    // pinned iteration can be preempted between slots, which
                    // is exactly where concurrent compaction races live.
                    smc_memory::sync::yield_point();
                    if block.slot_word(s).state() == SlotState::Valid {
                        let back = block.back_ptr(s).load(Ordering::Acquire);
                        if back != 0 {
                            let entry =
                                unsafe { smc_memory::indirection::EntryRef::from_addr(back) };
                            let r = Ref::from_parts(entry, entry.get().inc().incarnation());
                            let obj = unsafe { &*block.obj_ptr(s).cast::<T>() };
                            self.cursor = Some((block, s + 1));
                            return Some((r, obj));
                        }
                    }
                    s += 1;
                }
                self.cursor = None;
                self.advance_pinned();
                continue;
            }
            match self.work.pop_front() {
                None => return None,
                Some(WorkItem::Block(b)) => {
                    self.cursor = Some((b, 0));
                }
                Some(WorkItem::Group(g)) => self.begin_group(g),
            }
        }
    }

    /// Lower bound 0, upper bound the remaining slot *capacity*.
    ///
    /// The lower bound must stay 0 and the iterator cannot be
    /// `ExactSizeIterator`: other threads may remove objects (or the
    /// iterator may skip limbo slots) at any point, so any count derived
    /// from `len()` could overstate what `next` will actually yield. The
    /// capacity bound, by contrast, is exact arithmetic over the snapshot:
    /// a block never yields more items than it has slots.
    fn size_hint(&self) -> (usize, Option<usize>) {
        let cap = self.capacity as usize;
        let cursor = self
            .cursor
            .map_or(0, |(b, s)| b.header().capacity.saturating_sub(s) as usize);
        // Remaining sources of a group whose pre-state we hold pinned (the
        // current source is already counted by the cursor).
        let pinned = self
            .pinned
            .as_ref()
            .map_or(0, |(g, idx)| g.sources.len().saturating_sub(idx + 1) * cap);
        let work: usize = self
            .work
            .iter()
            .map(|w| match w {
                WorkItem::Block(_) => cap,
                // Worst case the group is read post-state: dest + sources.
                WorkItem::Group(g) => (g.sources.len() + 1) * cap,
            })
            .sum();
        (0, Some(cursor + pinned + work))
    }
}

impl<'g, 'e, T: Tabular> Iter<'g, 'e, T> {
    fn begin_group(&mut self, group: Arc<CompactionGroup>) {
        let runtime = self.runtime.clone();
        if !group.settled.load(Ordering::Acquire) && self.guard.in_relocation_epoch() {
            if group.try_pin_pre_state(&runtime) {
                // Enumerate sources under the pin; unpinned once drained.
                if let Some(&first) = group.sources.first() {
                    self.cursor = Some((first, 0));
                    self.pinned = Some((group, 0));
                } else {
                    group.unpin_pre_state();
                }
                return;
            }
            if runtime.in_moving_phase() {
                group.help_relocate(&runtime.stats);
            }
        }
        // Post-state: dest then sources, as plain blocks.
        for &src in group.sources.iter().rev() {
            self.work.push_front(WorkItem::Block(src));
        }
        self.work.push_front(WorkItem::Block(group.dest));
    }

    /// Called when a block cursor drains: steps to the pinned group's next
    /// source, or releases the pin.
    fn advance_pinned(&mut self) {
        if let Some((group, idx)) = self.pinned.take() {
            let next = idx + 1;
            if next < group.sources.len() {
                self.cursor = Some((group.sources[next], 0));
                self.pinned = Some((group, next));
            } else {
                group.unpin_pre_state();
            }
        }
    }
}

impl<'g, 'e, T: Tabular> Drop for Iter<'g, 'e, T> {
    fn drop(&mut self) {
        if let Some((group, _)) = self.pinned.take() {
            group.unpin_pre_state();
        }
    }
}
