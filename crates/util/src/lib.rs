//! # smc-util — zero-dependency workspace utilities
//!
//! The workspace builds fully offline: no crates.io dependencies. This crate
//! supplies the two things third-party crates used to provide:
//!
//! * [`sync`] — `Mutex`/`RwLock` wrappers over `std::sync` with a
//!   `parking_lot`-style API (no poison `Result`s at every call site);
//! * [`rng`] — a small, seeded PCG pseudo-random generator standing in for
//!   `rand::StdRng` in the TPC-H generator, workloads, and tests.
//!
//! Plus [`backoff`] — bounded exponential retry backoff with deterministic
//! seeded jitter, shared by the maintenance coordinator and the allocator's
//! OOM recovery ladder — and [`spsc`], the bounded lock-free
//! single-producer/single-consumer ring the serve layer uses to route
//! requests from connection threads to shard threads.

#![warn(missing_docs)]

pub mod backoff;
pub mod rng;
pub mod spsc;
pub mod sync;

pub use backoff::Backoff;
pub use rng::Pcg32;
pub use sync::{Mutex, RwLock};
