//! Thin wrappers over [`std::sync`] locks with a `parking_lot`-flavored API.
//!
//! Lock poisoning is deliberately ignored: the memory manager's locks guard
//! plain bookkeeping data whose invariants are re-established on every
//! acquisition, and a panicking test thread must not cascade poison errors
//! through unrelated tests. `lock()`/`read()`/`write()` therefore return the
//! guard directly, recovering the inner data from a poisoned lock.

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock that never surfaces poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new unlocked mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock that never surfaces poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new unlocked rwlock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the rwlock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires the exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let mut l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
        l.get_mut().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn poisoned_mutex_still_locks() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn poisoned_rwlock_still_reads() {
        let l = Arc::new(RwLock::new(7));
        let l2 = l.clone();
        let _ = std::thread::spawn(move || {
            let _g = l2.write();
            panic!("poison it");
        })
        .join();
        assert_eq!(*l.read(), 7);
    }
}
