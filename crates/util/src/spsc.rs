//! A bounded, lock-free single-producer/single-consumer ring.
//!
//! The serve layer routes requests from connection threads to shard threads
//! over these rings: each connection owns one [`Producer`] per shard, each
//! shard polls the matching [`Consumer`]s. The SPSC restriction is enforced
//! statically — [`channel`] returns exactly one producer and one consumer
//! handle, neither of which is [`Clone`] — so both endpoints run a single
//! atomic load plus a single atomic store per operation, with no CAS loops
//! and no locks on the hot path.
//!
//! The ring is a classic Lamport queue: `head` (consumer cursor) and `tail`
//! (producer cursor) only ever advance, slot occupancy is `tail - head`, and
//! the Release store of the advancing cursor publishes the slot contents to
//! the other side. Dropping the producer closes the channel; the consumer
//! drains what remains and then observes [`Consumer::is_closed`].
//!
//! ```
//! let (tx, mut rx) = smc_util::spsc::channel::<u64>(8);
//! tx.push(1).unwrap();
//! tx.push(2).unwrap();
//! assert_eq!(rx.pop(), Some(1));
//! drop(tx);
//! assert_eq!(rx.pop(), Some(2));
//! assert_eq!(rx.pop(), None);
//! assert!(rx.is_closed());
//! ```

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// Shared ring storage behind one producer/consumer pair.
struct Ring<T> {
    /// Power-of-two slot array; index = cursor & (capacity - 1).
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// Consumer cursor: next slot to pop. Only the consumer stores it.
    head: AtomicUsize,
    /// Producer cursor: next slot to fill. Only the producer stores it.
    tail: AtomicUsize,
    /// Set when the producer handle drops.
    closed: AtomicBool,
}

// SAFETY: slots are only touched by the single producer (writes at `tail`)
// and the single consumer (reads at `head`), synchronized by the
// Release/Acquire cursor handoff; the handles are Send but not Clone, so no
// role is ever shared.
unsafe impl<T: Send> Send for Ring<T> {}
unsafe impl<T: Send> Sync for Ring<T> {}

impl<T> Ring<T> {
    #[inline]
    fn mask(&self) -> usize {
        self.slots.len() - 1
    }
}

impl<T> Drop for Ring<T> {
    fn drop(&mut self) {
        // Both handles are gone (the Arc refcount reached zero), so plain
        // loads are race-free: drop whatever was pushed but never popped.
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Relaxed);
        let mask = self.mask();
        for i in head..tail {
            // SAFETY: slots in [head, tail) hold initialized values.
            unsafe { (*self.slots[i & mask].get()).assume_init_drop() };
        }
    }
}

/// Sending half of an SPSC ring — exactly one exists per channel.
pub struct Producer<T> {
    ring: Arc<Ring<T>>,
}

impl<T> std::fmt::Debug for Producer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Producer")
            .field("len", &self.len())
            .field("capacity", &self.capacity())
            .finish()
    }
}

/// Receiving half of an SPSC ring — exactly one exists per channel.
pub struct Consumer<T> {
    ring: Arc<Ring<T>>,
}

impl<T> std::fmt::Debug for Consumer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Consumer")
            .field("len", &self.len())
            .field("closed", &self.is_closed())
            .finish()
    }
}

/// Creates a bounded SPSC channel holding at least `capacity` items
/// (rounded up to a power of two, minimum 2).
pub fn channel<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    let cap = capacity.max(2).next_power_of_two();
    let slots = (0..cap)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect::<Vec<_>>()
        .into_boxed_slice();
    let ring = Arc::new(Ring {
        slots,
        head: AtomicUsize::new(0),
        tail: AtomicUsize::new(0),
        closed: AtomicBool::new(false),
    });
    (Producer { ring: ring.clone() }, Consumer { ring })
}

impl<T> Producer<T> {
    /// Enqueues `value`, or returns it when the ring is full (the caller
    /// decides whether to retry, back off, or shed load).
    pub fn push(&self, value: T) -> Result<(), T> {
        let ring = &*self.ring;
        let tail = ring.tail.load(Ordering::Relaxed);
        let head = ring.head.load(Ordering::Acquire);
        if tail - head == ring.slots.len() {
            return Err(value);
        }
        // SAFETY: the slot at `tail` is unoccupied (checked above) and only
        // this producer writes slots; Release on `tail` publishes the write.
        unsafe { (*ring.slots[tail & ring.mask()].get()).write(value) };
        ring.tail.store(tail + 1, Ordering::Release);
        Ok(())
    }

    /// Items currently enqueued (racy — advisory only).
    pub fn len(&self) -> usize {
        let ring = &*self.ring;
        ring.tail.load(Ordering::Relaxed) - ring.head.load(Ordering::Acquire)
    }

    /// True when nothing is enqueued (racy — advisory only).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Slot capacity of the ring.
    pub fn capacity(&self) -> usize {
        self.ring.slots.len()
    }
}

impl<T> Drop for Producer<T> {
    fn drop(&mut self) {
        self.ring.closed.store(true, Ordering::Release);
    }
}

impl<T> Consumer<T> {
    /// Dequeues the oldest item, or `None` when the ring is empty.
    pub fn pop(&mut self) -> Option<T> {
        let ring = &*self.ring;
        let head = ring.head.load(Ordering::Relaxed);
        let tail = ring.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        // SAFETY: the slot at `head` was published by the producer's Release
        // store of `tail` (Acquire-loaded above); only this consumer reads
        // slots out.
        let value = unsafe { (*ring.slots[head & ring.mask()].get()).assume_init_read() };
        ring.head.store(head + 1, Ordering::Release);
        Some(value)
    }

    /// True once the producer dropped. Items pushed before the drop are
    /// still poppable; `is_closed() && pop().is_none()` means fully drained.
    pub fn is_closed(&self) -> bool {
        self.ring.closed.load(Ordering::Acquire)
    }

    /// Items currently enqueued (racy — advisory only).
    pub fn len(&self) -> usize {
        let ring = &*self.ring;
        ring.tail.load(Ordering::Acquire) - ring.head.load(Ordering::Relaxed)
    }

    /// True when nothing is enqueued (racy — advisory only).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_capacity() {
        let (tx, mut rx) = channel::<u32>(3); // rounds up to 4
        assert_eq!(tx.capacity(), 4);
        for i in 0..4 {
            tx.push(i).unwrap();
        }
        assert_eq!(tx.push(99), Err(99), "full ring rejects");
        for i in 0..4 {
            assert_eq!(rx.pop(), Some(i));
        }
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn close_drains_then_signals() {
        let (tx, mut rx) = channel::<String>(4);
        tx.push("a".into()).unwrap();
        drop(tx);
        assert!(rx.is_closed());
        assert_eq!(rx.pop().as_deref(), Some("a"));
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn unread_items_are_dropped_with_the_ring() {
        let (tx, rx) = channel::<Arc<u64>>(4);
        let probe = Arc::new(7u64);
        tx.push(probe.clone()).unwrap();
        tx.push(probe.clone()).unwrap();
        drop(tx);
        drop(rx);
        assert_eq!(Arc::strong_count(&probe), 1, "ring drop released items");
    }

    #[test]
    fn cross_thread_handoff_loses_nothing() {
        let (tx, mut rx) = channel::<u64>(64);
        const N: u64 = 100_000;
        let producer = std::thread::spawn(move || {
            for i in 0..N {
                let mut v = i;
                loop {
                    match tx.push(v) {
                        Ok(()) => break,
                        Err(back) => {
                            v = back;
                            std::thread::yield_now();
                        }
                    }
                }
            }
        });
        let mut expect = 0u64;
        loop {
            match rx.pop() {
                Some(v) => {
                    assert_eq!(v, expect, "FIFO order violated");
                    expect += 1;
                    if expect == N {
                        break;
                    }
                }
                None => std::thread::yield_now(),
            }
        }
        producer.join().unwrap();
        assert_eq!(rx.pop(), None);
    }
}
