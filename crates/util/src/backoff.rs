//! Bounded exponential backoff with deterministic, seeded jitter.
//!
//! Retry loops across the workspace — the maintenance coordinator's
//! transient-failure handling and SLO resume path, and the allocator's OOM
//! recovery ladder — share this one policy so their behavior is reproducible
//! from a seed instead of depending on wall-clock entropy. The envelope is
//! the classic decorrelated-ish scheme: attempt `n` draws a delay uniformly
//! from `[base·2ⁿ/2, base·2ⁿ)`, capped at `cap`. Jitter comes from a
//! [`Pcg32`] stream seeded by the caller, so a fixed seed reproduces the
//! exact same delay sequence on every machine.

use std::time::Duration;

use crate::rng::Pcg32;

/// Stateful bounded-exponential backoff with seeded jitter.
///
/// ```
/// use std::time::Duration;
/// use smc_util::backoff::Backoff;
///
/// let mut b = Backoff::new(7, Duration::from_millis(1), Duration::from_millis(64));
/// let first = b.next_delay();
/// assert!(first >= Duration::from_micros(500) && first < Duration::from_millis(1));
/// let mut again = Backoff::new(7, Duration::from_millis(1), Duration::from_millis(64));
/// assert_eq!(again.next_delay(), first, "same seed, same sequence");
/// ```
#[derive(Debug, Clone)]
pub struct Backoff {
    rng: Pcg32,
    base: Duration,
    cap: Duration,
    attempt: u32,
}

impl Backoff {
    /// A backoff whose whole delay sequence is a pure function of `seed`.
    /// `base` is the attempt-0 envelope; `cap` bounds every delay.
    pub fn new(seed: u64, base: Duration, cap: Duration) -> Backoff {
        Backoff {
            rng: Pcg32::seed_from_u64(seed),
            base,
            cap,
            attempt: 0,
        }
    }

    /// The next delay: uniform in `[envelope/2, envelope)` where the
    /// envelope doubles per attempt, both halves capped at `cap`.
    pub fn next_delay(&mut self) -> Duration {
        let base_ns = self.base.as_nanos().max(1).min(u64::MAX as u128) as u64;
        let cap_ns = self.cap.as_nanos().max(1).min(u64::MAX as u128) as u64;
        let envelope = base_ns
            .saturating_mul(1u64.checked_shl(self.attempt).unwrap_or(u64::MAX))
            .min(cap_ns);
        self.attempt = self.attempt.saturating_add(1);
        let lo = (envelope / 2).max(1);
        let jittered = if envelope > lo {
            self.rng.gen_range(lo..envelope)
        } else {
            lo
        };
        Duration::from_nanos(jittered)
    }

    /// Attempts drawn since construction or the last [`reset`](Self::reset).
    pub fn attempt(&self) -> u32 {
        self.attempt
    }

    /// Rewinds the envelope to the base (the jitter stream keeps advancing,
    /// staying a pure function of the seed and total draws).
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

/// Deterministic spin bound for backoff sites that cannot sleep (the OOM
/// recovery ladder spins between allocation retries): `2ⁿ` pauses, capped at
/// `2⁶`. Shared here so the ladder and any future spin-retry loop agree on
/// one envelope.
#[inline]
pub fn spin_bound(attempt: u32) -> u32 {
    1u32 << attempt.min(6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_delay_sequence() {
        let base = Duration::from_micros(100);
        let cap = Duration::from_millis(10);
        let mut a = Backoff::new(42, base, cap);
        let mut b = Backoff::new(42, base, cap);
        let seq_a: Vec<Duration> = (0..32).map(|_| a.next_delay()).collect();
        let seq_b: Vec<Duration> = (0..32).map(|_| b.next_delay()).collect();
        assert_eq!(seq_a, seq_b, "fixed seed must reproduce the sequence");
    }

    #[test]
    fn different_seeds_jitter_differently() {
        let base = Duration::from_micros(100);
        let cap = Duration::from_secs(1);
        let mut a = Backoff::new(1, base, cap);
        let mut b = Backoff::new(2, base, cap);
        let same = (0..32).filter(|_| a.next_delay() == b.next_delay()).count();
        assert!(
            same < 4,
            "seeds should decorrelate the jitter ({same} equal)"
        );
    }

    #[test]
    fn delays_respect_envelope_and_cap() {
        let base = Duration::from_micros(100);
        let cap = Duration::from_millis(2);
        let mut b = Backoff::new(9, base, cap);
        for n in 0..20u32 {
            let envelope = (base * 2u32.pow(n.min(16))).min(cap);
            let d = b.next_delay();
            assert!(
                d < envelope.max(Duration::from_nanos(2)),
                "attempt {n}: {d:?}"
            );
            assert!(d >= envelope / 2, "attempt {n}: {d:?} under half-envelope");
            assert!(d <= cap, "attempt {n}: {d:?} over cap");
        }
    }

    #[test]
    fn reset_rewinds_envelope() {
        let base = Duration::from_millis(1);
        let cap = Duration::from_secs(1);
        let mut b = Backoff::new(5, base, cap);
        for _ in 0..8 {
            b.next_delay();
        }
        assert_eq!(b.attempt(), 8);
        b.reset();
        assert_eq!(b.attempt(), 0);
        assert!(
            b.next_delay() < base,
            "post-reset delay back inside attempt-0 envelope"
        );
    }

    #[test]
    fn spin_bound_is_capped_power_of_two() {
        assert_eq!(spin_bound(0), 1);
        assert_eq!(spin_bound(3), 8);
        assert_eq!(spin_bound(6), 64);
        assert_eq!(spin_bound(60), 64, "bound must cap, not overflow");
    }
}
