//! A small, deterministic PRNG: PCG-XSH-RR 64/32 (O'Neill 2014) seeded
//! through SplitMix64.
//!
//! This is the in-repo replacement for `rand::StdRng` used by the TPC-H data
//! generator, the refresh-stream workloads, and randomized tests. It is
//! emphatically **not** cryptographic; it exists so that a fixed seed
//! reproduces the exact same data set and operation interleavings on every
//! machine with zero external dependencies.

/// SplitMix64 step — used for seeding and for stateless hash-style draws.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

const PCG_MULT: u64 = 6_364_136_223_846_793_005;

/// A PCG-XSH-RR 64/32 generator: 64-bit state, 32-bit output.
#[derive(Debug, Clone)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

impl Pcg32 {
    /// Creates a generator whose whole stream is a pure function of `seed`
    /// (API-compatible with `rand::SeedableRng::seed_from_u64`).
    pub fn seed_from_u64(seed: u64) -> Pcg32 {
        let s0 = splitmix64(seed);
        let s1 = splitmix64(s0);
        let mut rng = Pcg32 {
            state: 0,
            inc: (s1 << 1) | 1,
        };
        rng.state = rng.state.wrapping_mul(PCG_MULT).wrapping_add(rng.inc);
        rng.state = rng.state.wrapping_add(s0);
        rng.next_u32();
        rng
    }

    /// Next 32 random bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Next 64 random bits (two PCG outputs).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        ((self.next_u32() as u64) << 32) | self.next_u32() as u64
    }

    /// A uniform value in the given range (half-open `a..b` or inclusive
    /// `a..=b`), mirroring `rand::Rng::gen_range`. Panics on empty ranges.
    #[inline]
    pub fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: IntoSampleBounds<T>,
    {
        let (lo, hi) = range.sample_bounds();
        T::sample_inclusive(self, lo, hi)
    }

    /// `true` with probability `p` (mirroring `rand::Rng::gen_bool`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

/// Integer types [`Pcg32::gen_range`] can sample.
pub trait SampleUniform: Copy {
    /// Uniform sample from the inclusive range `[lo, hi]`.
    fn sample_inclusive(rng: &mut Pcg32, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_signed {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_inclusive(rng: &mut Pcg32, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty sample range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as i64 as Self;
                }
                (lo as i64).wrapping_add((rng.next_u64() % (span + 1)) as i64) as Self
            }
        }
    )*};
}

macro_rules! impl_sample_unsigned {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_inclusive(rng: &mut Pcg32, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty sample range");
                let span = (hi as u64) - (lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as Self;
                }
                ((lo as u64) + rng.next_u64() % (span + 1)) as Self
            }
        }
    )*};
}

impl_sample_signed!(i8, i16, i32, i64, isize);
impl_sample_unsigned!(u8, u16, u32, u64, usize);

/// Range forms accepted by [`Pcg32::gen_range`].
pub trait IntoSampleBounds<T> {
    /// The inclusive `(lo, hi)` bounds of the range.
    fn sample_bounds(self) -> (T, T);
}

macro_rules! impl_bounds {
    ($($t:ty => $one:expr),*) => {$(
        impl IntoSampleBounds<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample_bounds(self) -> ($t, $t) {
                assert!(self.start < self.end, "empty sample range");
                (self.start, self.end - $one)
            }
        }
        impl IntoSampleBounds<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_bounds(self) -> ($t, $t) {
                (*self.start(), *self.end())
            }
        }
    )*};
}

impl_bounds!(i8 => 1, i16 => 1, i32 => 1, i64 => 1, isize => 1,
             u8 => 1, u16 => 1, u32 => 1, u64 => 1, usize => 1);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Pcg32::seed_from_u64(42);
        let mut b = Pcg32::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Pcg32::seed_from_u64(1);
        let mut b = Pcg32::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should be (almost entirely) different");
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = Pcg32::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: i64 = r.gen_range(-5..=10);
            assert!((-5..=10).contains(&v));
            let w: usize = r.gen_range(3..9);
            assert!((3..9).contains(&w));
            let x: i32 = r.gen_range(0..2);
            assert!((0..2).contains(&x));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut r = Pcg32::seed_from_u64(3);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[r.gen_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn gen_range_handles_negative_spans() {
        let mut r = Pcg32::seed_from_u64(9);
        for _ in 0..1000 {
            let v: i64 = r.gen_range(-99_999..=999_999);
            assert!((-99_999..=999_999).contains(&v));
        }
    }

    #[test]
    fn gen_bool_respects_probability_roughly() {
        let mut r = Pcg32::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}/10000 at p=0.25");
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn uniformity_chi_square_smoke() {
        // 16 buckets, 16k draws: each bucket should be near 1000.
        let mut r = Pcg32::seed_from_u64(5);
        let mut buckets = [0u32; 16];
        for _ in 0..16_000 {
            buckets[(r.next_u32() & 15) as usize] += 1;
        }
        for (i, b) in buckets.iter().enumerate() {
            assert!((800..1200).contains(b), "bucket {i} = {b}");
        }
    }

    #[test]
    fn splitmix_is_stateless_hash() {
        assert_eq!(splitmix64(0), splitmix64(0));
        assert_ne!(splitmix64(0), splitmix64(1));
    }
}
