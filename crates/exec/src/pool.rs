//! A reusable scoped worker pool with per-worker epoch registration.
//!
//! The pool spawns its threads once and reuses them across queries: a query
//! installs a job (a `Fn(worker_index)` closure borrowing the query's local
//! state), wakes every worker, and blocks until all of them report done —
//! which is what makes handing out a *borrowed* closure sound despite the
//! threads being `'static`.
//!
//! Workers of a runtime-bound pool ([`WorkerPool::for_runtime`]) claim their
//! epoch-registry slot at spawn time, so [`MemError::TooManyThreads`] is
//! returned from the constructor instead of panicking inside a worker
//! mid-query. Slots are released when the pool drops (thread-exit TLS
//! cleanup), making them reusable by later pools.

use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

use smc_memory::error::MemError;
use smc_memory::runtime::Runtime;

/// Lifetime-erased pointer to the job closure. Sound because
/// [`WorkerPool::run`] does not return until every worker finished calling
/// it, and workers never touch a job outside a `run` call (the generation
/// check).
#[derive(Clone, Copy)]
struct JobPtr(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (callable from any thread through a shared
// reference) and outlives every use — see `JobPtr`.
unsafe impl Send for JobPtr {}

struct JobState {
    job: Option<JobPtr>,
    /// Bumped once per installed job; workers run each generation once.
    generation: u64,
    /// Workers finished with the current generation.
    completed: usize,
    shutdown: bool,
}

struct Shared {
    state: Mutex<JobState>,
    work_cv: Condvar,
    done_cv: Condvar,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn wait<'a, T>(cv: &Condvar, g: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(g).unwrap_or_else(|e| e.into_inner())
}

/// A fixed-size pool of persistent worker threads for morsel-driven scans.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    threads: usize,
    runtime: Option<Arc<Runtime>>,
    /// Serializes concurrent `run` callers.
    run_lock: Mutex<()>,
}

impl WorkerPool {
    /// Spawns `threads` plain workers (no epoch registration) — for backends
    /// without a memory [`Runtime`], e.g. the managed-heap and columnstore
    /// baselines. At least one worker is always spawned.
    pub fn new(threads: usize) -> WorkerPool {
        Self::build(threads.max(1), None).expect("plain workers register nothing")
    }

    /// Spawns `threads` workers, each pre-registered with `runtime`'s epoch
    /// manager. If the thread registry cannot accommodate every worker (or an
    /// injected `ThreadClaim` fault fires), all spawned workers are torn down
    /// and the error is returned cleanly.
    pub fn for_runtime(runtime: &Arc<Runtime>, threads: usize) -> Result<WorkerPool, MemError> {
        Self::build(threads.max(1), Some(runtime.clone()))
    }

    fn build(threads: usize, runtime: Option<Arc<Runtime>>) -> Result<WorkerPool, MemError> {
        let shared = Arc::new(Shared {
            state: Mutex::new(JobState {
                job: None,
                generation: 0,
                completed: 0,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let (tx, rx) = mpsc::channel::<Result<(), MemError>>();
        let mut handles = Vec::with_capacity(threads);
        for index in 0..threads {
            let shared = shared.clone();
            let runtime = runtime.clone();
            let tx = tx.clone();
            let handle = std::thread::Builder::new()
                .name(format!("smc-exec-{index}"))
                .spawn(move || {
                    // Claim the epoch slot before reporting ready, so registry
                    // exhaustion surfaces from the constructor.
                    let claimed = match &runtime {
                        Some(rt) => rt.epochs.thread_index().map(|_| ()),
                        None => Ok(()),
                    };
                    let ok = claimed.is_ok();
                    let _ = tx.send(claimed);
                    if ok {
                        worker_loop(&shared, index, threads, runtime.as_deref());
                    }
                })
                .expect("failed to spawn worker thread");
            handles.push(handle);
        }
        drop(tx);
        let mut first_err: Option<MemError> = None;
        for _ in 0..threads {
            if let Ok(Err(e)) = rx.recv() {
                first_err.get_or_insert(e);
            }
        }
        let pool = WorkerPool {
            shared,
            handles,
            threads,
            runtime,
            run_lock: Mutex::new(()),
        };
        match first_err {
            // Dropping joins the successfully-registered workers, releasing
            // their slots.
            Some(e) => Err(e),
            None => Ok(pool),
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The runtime the workers registered with, if any.
    pub fn runtime(&self) -> Option<&Arc<Runtime>> {
        self.runtime.as_ref()
    }

    /// Runs `job` on every worker (passing each its worker index) and blocks
    /// until all of them return. Concurrent callers are serialized.
    pub fn run(&self, job: &(dyn Fn(usize) + Sync)) {
        let _serial = lock(&self.run_lock);
        // Clock reads only happen while tracing is on; the disabled path
        // stays untimed.
        let t0 = smc_obs::trace::is_enabled().then(std::time::Instant::now);
        // SAFETY: erase the closure's borrow lifetime. Sound because this
        // function blocks below until `completed == threads`, i.e. no worker
        // can still be executing (or later observe) the job once we return.
        let ptr = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(job)
        };
        let mut st = lock(&self.shared.state);
        st.job = Some(JobPtr(ptr));
        st.generation = st.generation.wrapping_add(1);
        st.completed = 0;
        // Interleaving point matching the workers' pickup yield: the
        // dispatch/pickup pair is the pool's model-checkable surface.
        smc_memory::sync::yield_point();
        self.shared.work_cv.notify_all();
        while st.completed < self.threads {
            st = wait(&self.shared.done_cv, st);
        }
        st.job = None;
        if let Some(t0) = t0 {
            smc_obs::trace::emit(smc_obs::Event::PoolBroadcast {
                threads: self.threads as u64,
                nanos: t0.elapsed().as_nanos().min(u64::MAX as u128) as u64,
            });
        }
    }

    /// Monomorphized convenience wrapper over [`run`](Self::run).
    pub fn broadcast(&self, job: impl Fn(usize) + Sync) {
        self.run(&job);
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = lock(&self.shared.state);
            st.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads)
            .field("registered", &self.runtime.is_some())
            .finish()
    }
}

fn worker_loop(shared: &Shared, index: usize, threads: usize, runtime: Option<&Runtime>) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut st = lock(&shared.state);
            while !st.shutdown && st.generation == seen {
                st = wait(&shared.work_cv, st);
            }
            if st.shutdown {
                return;
            }
            seen = st.generation;
            st.job.expect("generation bumped without a job")
        };
        // Interleaving point for the smc-check model checker: job pickup is
        // where a worker's view of dispatched state can race the coordinator.
        smc_memory::sync::yield_point();
        // SAFETY: `run` keeps the closure alive until every worker completed.
        (unsafe { &*job.0 })(index);
        // Maintenance tick: pull blocks other workers freed back to this
        // worker's allocation shard while the coordinator is still
        // collecting results — off every morsel's critical path.
        if let Some(rt) = runtime {
            rt.alloc_maintenance();
        }
        let mut st = lock(&shared.state);
        st.completed += 1;
        if st.completed == threads {
            shared.done_cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn pool_runs_scoped_jobs_repeatedly() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.threads(), 4);
        for round in 1..=3usize {
            let counter = AtomicUsize::new(0);
            pool.broadcast(|idx| {
                counter.fetch_add(idx + round, Ordering::Relaxed);
            });
            assert_eq!(counter.load(Ordering::Relaxed), 6 + 4 * round);
        }
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.threads(), 1);
        let hits = AtomicUsize::new(0);
        pool.broadcast(|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn runtime_pool_preregisters_workers() {
        let rt = Runtime::new();
        let pool = WorkerPool::for_runtime(&rt, 3).unwrap();
        let pins = AtomicUsize::new(0);
        pool.broadcast(|_| {
            // Pre-registered workers must be able to pin without claiming.
            let _g = rt.try_pin().expect("worker slot claimed at spawn");
            pins.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(pins.load(Ordering::Relaxed), 3);
    }
}
