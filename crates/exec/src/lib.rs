//! # smc-exec — morsel-driven parallel query execution over SMC blocks
//!
//! The paper's enumeration protocol (§5) is explicitly multi-reader: any
//! number of queries may scan a collection while compaction relocates
//! objects. This crate turns that property into intra-query parallelism,
//! in the style of morsel-driven execution engines: the collection's
//! memory blocks (and the columnar store's row groups) become *morsels*
//! handed out to a reusable pool of worker threads through an atomic
//! cursor, each worker pins its own epoch [`Guard`](smc::Guard) and runs
//! the same fused scan→filter→fold loops the sequential `BlockScan`
//! compiles, and thread-local accumulators are merged in a final reduce
//! step.
//!
//! Three layers:
//!
//! * [`WorkerPool`] — persistent scoped workers, pre-registered with the
//!   runtime's epoch manager so thread-registry exhaustion is a
//!   constructor error, never a mid-query panic;
//! * [`ParScan`] / [`ParColumnarScan`] — parallel scans over [`Smc`](smc::Smc)
//!   and [`ColumnarSmc`](smc::ColumnarSmc), mirroring the sequential
//!   `BlockScan` API (`filter_count`, `filter_fold`, `group_aggregate`);
//! * [`par_fold_chunks`] — the same morsel loop over plain slices, for the
//!   baseline backends (managed handle lists, columnstore row ranges).
//!
//! Scans are linearizable with concurrent compaction: in-flight §5.2
//! compaction groups travel as single morsels, so exactly one worker makes
//! the pre-state/post-state decision per group, and every live object is
//! visited exactly once (see the safety argument in [`par`]).

#![warn(missing_docs)]

pub mod par;
pub mod pool;

pub use par::{par_fold_chunks, ParColumnarScan, ParScan};
pub use pool::WorkerPool;
