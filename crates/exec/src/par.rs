//! Morsel-driven parallel scans ([`ParScan`], [`ParColumnarScan`]) and the
//! generic chunked fold used by the slice-shaped baseline backends.
//!
//! A scan turns the collection's membership snapshot into morsels
//! ([`MemoryContext::morsels`](smc_memory::context::MemoryContext::morsels)):
//! one per regular block, one per in-flight compaction group. Workers claim
//! morsels from a shared atomic cursor (work stealing degenerates to a
//! single fetch-add over a shared queue, as in morsel-driven execution
//! engines), fold matches into thread-local accumulators, and the
//! coordinator merges the per-worker partials at the end.
//!
//! # Why a scan is safe while `compact()` runs
//!
//! The coordinating thread pins its own guard *before* taking the morsel
//! snapshot and holds it until every worker has finished. While any reader
//! sits pinned in epoch `e`, the global epoch can advance at most to
//! `e + 1`; a compaction announced after the snapshot must wait for its
//! relocation epoch plus one (`≥ e + 2`) before moving objects, so plain
//! blocks in the snapshot cannot have objects relocated out mid-scan.
//! Groups already in flight at snapshot time are each claimed by exactly
//! one worker, which applies the §5.2 protocol: read the whole group
//! pre-relocation under its query counter, or help finish the move and read
//! the post-state — either way every live object of the group is visited
//! exactly once.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use smc::{visit_group, ColumnArrays, Columnar, ColumnarSmc, Smc, Tabular};
use smc_memory::block::BlockRef;
use smc_memory::context::Morsel;
use smc_memory::slot::SlotState;
use smc_memory::stats::MemoryStats;

use crate::pool::WorkerPool;

/// Scans one block's valid slots — the same fused loop `Smc::for_each`
/// runs, executed by a worker on its claimed morsel.
fn scan_block<T: Tabular>(block: &BlockRef, stats: &MemoryStats, mut f: impl FnMut(&T)) {
    MemoryStats::inc(&stats.blocks_scanned);
    let cap = block.header().capacity;
    for slot in 0..cap {
        if block.slot_word(slot).state() == SlotState::Valid {
            // SAFETY: valid slot, read inside the worker's pinned critical
            // section; the coordinator guard prevents relocation out of
            // snapshot blocks for the duration of the scan (module docs).
            f(unsafe { &*block.obj_ptr(slot).cast::<T>() });
        }
    }
}

fn take_partials<A>(slots: Vec<Mutex<Option<A>>>) -> Vec<A> {
    slots
        .into_iter()
        .filter_map(|m| m.into_inner().unwrap_or_else(|e| e.into_inner()))
        .collect()
}

/// A parallel scan over an [`Smc`], mirroring the sequential
/// `BlockScan` API with per-worker accumulators and a final merge step.
pub struct ParScan<'a, T: Tabular> {
    collection: &'a Smc<T>,
    pool: &'a WorkerPool,
}

impl<'a, T: Tabular + Sync> ParScan<'a, T> {
    /// Creates a scan running on `pool`'s workers.
    ///
    /// # Panics
    ///
    /// The pool must have been built with [`WorkerPool::for_runtime`] against
    /// the collection's runtime: workers pin epoch guards, so they must be
    /// registered with the right epoch manager.
    pub fn new(collection: &'a Smc<T>, pool: &'a WorkerPool) -> Self {
        let rt = pool
            .runtime()
            .expect("ParScan needs a runtime-bound pool (WorkerPool::for_runtime)");
        assert!(
            Arc::ptr_eq(rt, collection.runtime()),
            "worker pool is registered with a different runtime than the collection"
        );
        ParScan { collection, pool }
    }

    /// Runs the morsel loop, returning each worker's accumulator.
    fn partials<A>(
        &self,
        make: &(impl Fn() -> A + Sync),
        body: impl Fn(&mut A, &T) + Sync,
    ) -> Vec<A>
    where
        A: Send,
    {
        let runtime = self.collection.runtime();
        // Coordinator guard: pinned before the snapshot, held until every
        // worker is done (the safety argument in the module docs).
        let _coord = runtime.pin();
        // Spilled pages first, on the coordinating thread: they are the cold
        // tail, read sequentially from the page store while the membership
        // snapshot is taken under the same spill mutex (a page faulted in
        // mid-scan can't be seen twice or missed). Resident morsels then fan
        // out to the workers as usual.
        let mut spilled_acc = make();
        let morsels = self
            .collection
            .context()
            .morsels_spilled_then_snapshot(&mut |_entry_addr, obj| {
                // SAFETY: the callback's pointer addresses size_of::<T>()
                // initialized bytes of a record this collection spilled.
                body(&mut spilled_acc, unsafe { &*obj.cast::<T>() });
            })
            .expect("spilled page unreadable");
        let cursor = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<A>>> =
            (0..self.pool.threads()).map(|_| Mutex::new(None)).collect();
        // Capture the dispatching thread's span context so each worker can
        // re-enter it: the request id crosses the pool boundary with the
        // scan, and every worker's share shows up as a `req.exec` span.
        let req = smc_obs::trace::current_request();
        self.pool.broadcast(|widx| {
            let _scope = req.map(smc_obs::trace::RequestScope::enter);
            let worker_start = std::time::Instant::now();
            let mut claimed = 0u64;
            let guard = runtime
                .try_pin()
                .expect("pool workers pre-register with the runtime");
            let stats = &runtime.stats;
            let mut acc = make();
            loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(morsel) = morsels.get(i) else { break };
                claimed += 1;
                MemoryStats::inc(&stats.morsels_dispatched);
                smc_obs::trace::emit(smc_obs::Event::MorselDispatch {
                    worker: widx as u64,
                    morsel: i as u64,
                });
                match morsel {
                    Morsel::Block(block) => scan_block(block, stats, |obj| body(&mut acc, obj)),
                    Morsel::Group(group) => visit_group(group, &guard, runtime, &mut |block| {
                        scan_block(&block, stats, |obj| body(&mut acc, obj))
                    }),
                }
            }
            if claimed > 0 {
                if let Some(id) = req {
                    smc_obs::trace::emit_stage(
                        id,
                        "exec",
                        worker_start.elapsed().as_nanos() as u64,
                    );
                }
            }
            *slots[widx].lock().unwrap_or_else(|e| e.into_inner()) = Some(acc);
        });
        let mut partials = take_partials(slots);
        partials.push(spilled_acc);
        partials
    }

    /// Counts objects passing `pred` — parallel `filter_for_each` without a
    /// consumer.
    pub fn filter_count(&self, pred: impl Fn(&T) -> bool + Sync) -> u64 {
        self.partials(&|| 0u64, |acc, obj| {
            if pred(obj) {
                *acc += 1;
            }
        })
        .into_iter()
        .sum()
    }

    /// Parallel fused scan→filter→fold: each worker folds into its own
    /// accumulator (from `init`); `merge` combines the per-worker partials.
    pub fn filter_fold<A: Send>(
        &self,
        init: impl Fn() -> A + Sync,
        pred: impl Fn(&T) -> bool + Sync,
        fold: impl Fn(&mut A, &T) + Sync,
        mut merge: impl FnMut(&mut A, A),
    ) -> A {
        let partials = self.partials(&init, |acc, obj| {
            if pred(obj) {
                fold(acc, obj);
            }
        });
        let mut out = init();
        for p in partials {
            merge(&mut out, p);
        }
        out
    }

    /// Parallel scan→filter→group-by-aggregate: per-worker hash tables,
    /// merged group-wise with `merge` in the final reduce step.
    pub fn group_aggregate<K, A>(
        &self,
        pred: impl Fn(&T) -> bool + Sync,
        key: impl Fn(&T) -> K + Sync,
        new_group: impl Fn(&T) -> A + Sync,
        fold: impl Fn(&mut A, &T) + Sync,
        mut merge: impl FnMut(&mut A, A),
    ) -> HashMap<K, A>
    where
        K: Eq + Hash + Send,
        A: Send,
    {
        let partials = self.partials(&HashMap::new, |groups: &mut HashMap<K, A>, obj| {
            if pred(obj) {
                match groups.entry(key(obj)) {
                    Entry::Occupied(mut e) => fold(e.get_mut(), obj),
                    Entry::Vacant(e) => {
                        let mut acc = new_group(obj);
                        fold(&mut acc, obj);
                        e.insert(acc);
                    }
                }
            }
        });
        let mut out: HashMap<K, A> = HashMap::new();
        for part in partials {
            for (k, v) in part {
                match out.entry(k) {
                    Entry::Occupied(mut e) => merge(e.get_mut(), v),
                    Entry::Vacant(e) => {
                        e.insert(v);
                    }
                }
            }
        }
        out
    }
}

/// A parallel scan over a [`ColumnarSmc`]: blocks (row groups) are the
/// morsels; the body sees each block's column arrays, exactly like
/// `ColumnarSmc::for_each_block`.
pub struct ParColumnarScan<'a, T: Columnar> {
    collection: &'a ColumnarSmc<T>,
    pool: &'a WorkerPool,
}

impl<'a, T: Columnar> ParColumnarScan<'a, T> {
    /// Creates a scan running on `pool`'s workers; same registration
    /// requirements as [`ParScan::new`].
    pub fn new(collection: &'a ColumnarSmc<T>, pool: &'a WorkerPool) -> Self {
        let rt = pool
            .runtime()
            .expect("ParColumnarScan needs a runtime-bound pool (WorkerPool::for_runtime)");
        assert!(
            Arc::ptr_eq(rt, collection.runtime()),
            "worker pool is registered with a different runtime than the collection"
        );
        ParColumnarScan { collection, pool }
    }

    /// Folds every block's column arrays into per-worker accumulators; the
    /// body checks slot validity itself (as the sequential columnar queries
    /// do) so it can read only the columns it needs.
    pub fn fold_blocks<A: Send>(
        &self,
        make: impl Fn() -> A + Sync,
        body: impl Fn(&mut A, &ColumnArrays, &BlockRef) + Sync,
        mut merge: impl FnMut(&mut A, A),
    ) -> A {
        let runtime = self.collection.runtime();
        let _coord = runtime.pin();
        let morsels = self.collection.context().morsels();
        let cursor = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<A>>> =
            (0..self.pool.threads()).map(|_| Mutex::new(None)).collect();
        let req = smc_obs::trace::current_request();
        self.pool.broadcast(|widx| {
            let _scope = req.map(smc_obs::trace::RequestScope::enter);
            let worker_start = std::time::Instant::now();
            let mut claimed = 0u64;
            let guard = runtime
                .try_pin()
                .expect("pool workers pre-register with the runtime");
            let stats = &runtime.stats;
            let mut acc = make();
            let visit = |block: BlockRef, acc: &mut A| {
                MemoryStats::inc(&stats.blocks_scanned);
                let cols = self.collection.arrays(&block);
                body(acc, &cols, &block);
            };
            loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(morsel) = morsels.get(i) else { break };
                claimed += 1;
                MemoryStats::inc(&stats.morsels_dispatched);
                smc_obs::trace::emit(smc_obs::Event::MorselDispatch {
                    worker: widx as u64,
                    morsel: i as u64,
                });
                match morsel {
                    Morsel::Block(block) => visit(*block, &mut acc),
                    // Columnar contexts do not compact today, but route
                    // through the §5.2 protocol anyway should that change.
                    Morsel::Group(group) => {
                        visit_group(group, &guard, runtime, &mut |block| visit(block, &mut acc))
                    }
                }
            }
            if claimed > 0 {
                if let Some(id) = req {
                    smc_obs::trace::emit_stage(
                        id,
                        "exec",
                        worker_start.elapsed().as_nanos() as u64,
                    );
                }
            }
            *slots[widx].lock().unwrap_or_else(|e| e.into_inner()) = Some(acc);
        });
        let mut out = make();
        for p in take_partials(slots) {
            merge(&mut out, p);
        }
        out
    }
}

/// Parallel chunked fold over a plain slice — the morsel loop for backends
/// whose scan target is an array rather than SMC blocks (the managed
/// handle list, the columnstore's row ranges). Chunks of `chunk` items are
/// claimed from an atomic cursor; `merge` combines per-worker partials.
pub fn par_fold_chunks<T, A>(
    pool: &WorkerPool,
    items: &[T],
    chunk: usize,
    make: impl Fn() -> A + Sync,
    fold_chunk: impl Fn(&mut A, &[T]) + Sync,
    mut merge: impl FnMut(&mut A, A),
) -> A
where
    T: Sync,
    A: Send,
{
    let chunk = chunk.max(1);
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<A>>> = (0..pool.threads()).map(|_| Mutex::new(None)).collect();
    let req = smc_obs::trace::current_request();
    pool.broadcast(|widx| {
        let _scope = req.map(smc_obs::trace::RequestScope::enter);
        let worker_start = std::time::Instant::now();
        let mut claimed = 0u64;
        let mut acc = make();
        loop {
            let start = cursor.fetch_add(chunk, Ordering::Relaxed);
            if start >= items.len() {
                break;
            }
            claimed += 1;
            smc_obs::trace::emit(smc_obs::Event::MorselDispatch {
                worker: widx as u64,
                morsel: (start / chunk) as u64,
            });
            let end = (start + chunk).min(items.len());
            fold_chunk(&mut acc, &items[start..end]);
        }
        if claimed > 0 {
            if let Some(id) = req {
                smc_obs::trace::emit_stage(id, "exec", worker_start.elapsed().as_nanos() as u64);
            }
        }
        *slots[widx].lock().unwrap_or_else(|e| e.into_inner()) = Some(acc);
    });
    let mut out = make();
    for p in take_partials(slots) {
        merge(&mut out, p);
    }
    out
}
