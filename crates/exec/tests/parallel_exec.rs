//! Integration tests for the morsel-driven engine: parity with the
//! sequential enumeration, clean thread-registry exhaustion from the pool
//! constructor, and the paper's headline concurrency claim — a parallel
//! scan running *while* `compact()` relocates objects visits every live
//! element exactly once.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use smc::{ContextConfig, Smc};
use smc_exec::{ParScan, WorkerPool};
use smc_memory::error::MemError;
use smc_memory::fault::{FaultSite, RATE_DENOMINATOR};
use smc_memory::{Runtime, Tabular};

#[derive(Clone, Copy)]
struct Obj {
    key: u64,
    group: u32,
    _pad: [u64; 6],
}
unsafe impl Tabular for Obj {}

fn obj(key: u64) -> Obj {
    Obj {
        key,
        group: (key % 5) as u32,
        _pad: [key; 6],
    }
}

#[test]
fn parallel_results_match_sequential() {
    let rt = Runtime::new();
    let c: Smc<Obj> = Smc::new(&rt);
    let total = 10_000u64;
    for i in 0..total {
        let r = c.add(obj(i));
        if i % 7 == 0 {
            c.remove(r);
        }
    }
    // Sequential ground truth.
    let guard = rt.pin();
    let mut seq_count = 0u64;
    let mut seq_sum = 0u64;
    let mut seq_groups = std::collections::HashMap::new();
    c.for_each(&guard, |o| {
        if o.key % 2 == 0 {
            seq_count += 1;
            seq_sum = seq_sum.wrapping_add(o.key);
            *seq_groups.entry(o.group).or_insert(0u64) += 1;
        }
    });
    drop(guard);

    for threads in [1, 3, 8] {
        let pool = WorkerPool::for_runtime(&rt, threads).unwrap();
        let scan = ParScan::new(&c, &pool);
        assert_eq!(scan.filter_count(|o| o.key % 2 == 0), seq_count);
        let sum = scan.filter_fold(
            || 0u64,
            |o| o.key % 2 == 0,
            |acc, o| *acc = acc.wrapping_add(o.key),
            |a, b| *a = a.wrapping_add(b),
        );
        assert_eq!(sum, seq_sum, "{threads} threads");
        let groups = scan.group_aggregate(
            |o| o.key % 2 == 0,
            |o| o.group,
            |_| 0u64,
            |acc, _| *acc += 1,
            |a, b| *a += b,
        );
        assert_eq!(groups, seq_groups, "{threads} threads");
    }
}

#[test]
fn parallel_scan_counts_reader_stats() {
    let rt = Runtime::new();
    let c: Smc<Obj> = Smc::new(&rt);
    for i in 0..5_000 {
        c.add(obj(i));
    }
    let pool = WorkerPool::for_runtime(&rt, 4).unwrap();
    let scan = ParScan::new(&c, &pool);
    let before = rt.stats.snapshot();
    let n = scan.filter_count(|_| true);
    let after = rt.stats.snapshot();
    assert_eq!(n, c.len());
    let blocks = c.context().block_count() as u64;
    assert_eq!(after.morsels_dispatched - before.morsels_dispatched, blocks);
    assert_eq!(after.blocks_scanned - before.blocks_scanned, blocks);
    assert!(
        after.pins_taken > before.pins_taken,
        "coordinator and workers pin guards"
    );
}

#[test]
fn registry_exhaustion_is_a_constructor_error() {
    // Injected exhaustion: every claim fails, so even a 1-worker pool must
    // report TooManyThreads from the constructor (not panic in the worker).
    let rt = Runtime::new();
    rt.faults().enable(7);
    rt.faults()
        .set_rate(FaultSite::ThreadClaim, RATE_DENOMINATOR);
    match WorkerPool::for_runtime(&rt, 2) {
        Err(MemError::TooManyThreads) => {}
        other => panic!("expected TooManyThreads, got {other:?}"),
    }
    rt.faults().disable();
    // With faults off the same runtime accepts a pool again.
    let pool = WorkerPool::for_runtime(&rt, 2).unwrap();
    assert_eq!(pool.threads(), 2);
}

#[test]
fn real_registry_exhaustion_is_a_constructor_error() {
    // No faults: genuinely exhaust the 128-slot registry. Workers that did
    // claim a slot are torn down by the failed constructor, so the follow-up
    // pool finds free slots again.
    let rt = Runtime::new();
    let oversubscribed = smc_memory::epoch::MAX_THREADS + 1;
    match WorkerPool::for_runtime(&rt, oversubscribed) {
        Err(MemError::TooManyThreads) => {}
        Ok(_) => panic!("pool larger than the registry must fail"),
        Err(e) => panic!("expected TooManyThreads, got {e:?}"),
    }
    let pool = WorkerPool::for_runtime(&rt, 8).expect("slots released after failed construction");
    assert_eq!(pool.threads(), 8);
}

#[test]
fn parallel_scan_during_compaction_visits_live_set_exactly_once() {
    let rt = Runtime::new();
    // Keep limbo slots unreclaimed so compaction always has sparse blocks
    // to work on, and arm the relocation failpoint so some passes die
    // mid-move (bailed objects must still be visited exactly once, in
    // their source block).
    let cfg = ContextConfig {
        reclamation_threshold: 1.1,
        ..ContextConfig::default()
    };
    let c: Smc<Obj> = Smc::with_config(&rt, cfg);
    let cap = c.context().layout().capacity as usize;
    let mut expected_count = 0u64;
    let mut expected_sum = 0u64;
    for i in 0..(cap * 12) as u64 {
        let r = c.add(obj(i));
        if i % 4 == 0 {
            expected_count += 1;
            expected_sum = expected_sum.wrapping_add(i);
        } else {
            c.remove(r);
        }
    }
    rt.faults().enable(1234);
    rt.faults().set_rate(FaultSite::Relocation, 48);

    let pool = WorkerPool::for_runtime(&rt, 4).unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        let compactor_stop = stop.clone();
        let cc = &c;
        let compactor = s.spawn(move || {
            let mut passes = 0u64;
            while !compactor_stop.load(Ordering::Relaxed) {
                cc.compact();
                cc.release_retired();
                passes += 1;
            }
            passes
        });
        let scan = ParScan::new(&c, &pool);
        for round in 0..60 {
            let (n, sum) = scan.filter_fold(
                || (0u64, 0u64),
                |_| true,
                |acc, o| {
                    acc.0 += 1;
                    acc.1 = acc.1.wrapping_add(o.key);
                },
                |a, b| {
                    a.0 += b.0;
                    a.1 = a.1.wrapping_add(b.1);
                },
            );
            assert_eq!(n, expected_count, "round {round}: lost or doubled visit");
            assert_eq!(sum, expected_sum, "round {round}: wrong element set");
        }
        stop.store(true, Ordering::Relaxed);
        let passes = compactor.join().unwrap();
        assert!(passes > 0, "compactor never ran");
    });

    rt.faults().disable();
    // Let a final clean pass settle any faulted group, then verify the
    // structure end-to-end.
    c.compact();
    c.release_retired();
    rt.drain_graveyard_blocking();
    let report = c.verify().expect("structure intact after concurrent scans");
    assert_eq!(report.valid_slots, expected_count);
}
