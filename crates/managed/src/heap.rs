//! The managed heap: allocation budget, safepoints, and the collector.
//!
//! Mutators interact with the heap through [`HeapGuard`]s (shared "the world
//! is running" locks); the collector stops the world by taking the lock
//! exclusively. Allocation debits a nursery budget and, when the budget is
//! exhausted, runs a collection at the next safepoint — so allocation-heavy
//! phases periodically stall on GC work whose cost scales with the live
//! object graph, which is precisely the managed-runtime behaviour the
//! paper's Figures 7–9 measure.
//!
//! Two modes mirror the paper's .NET settings (§7):
//!
//! * [`GcMode::Batch`] — each collection runs fully stop-the-world:
//!   highest throughput, pauses grow with the live set.
//! * [`GcMode::Interactive`] — the mark phase runs in bounded increments
//!   interleaved with mutator work (allocations perform mark slices):
//!   shorter pauses, lower overall throughput.

use std::any::TypeId;
use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Weak};
use std::time::Instant;

use smc_util::sync::{Mutex, RwLock, RwLockReadGuard};

use crate::arena::{AnyArena, Arena, ArenaOccupancy, Handle, Marker, Trace};
use crate::pause::PauseStats;

/// Collector scheduling mode (the paper's batch vs interactive, §7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GcMode {
    /// Non-concurrent: full stop-the-world collections.
    Batch,
    /// Concurrent-ish: incremental mark slices at safepoints.
    Interactive,
}

/// Heap tunables.
#[derive(Debug, Clone, Copy)]
pub struct HeapConfig {
    /// Collector mode.
    pub mode: GcMode,
    /// Objects allocated between collections (the nursery budget).
    pub nursery_budget: u64,
    /// Every n-th collection is a major (full-heap) one.
    pub major_every: u64,
    /// Objects marked per incremental slice (interactive mode).
    pub mark_slice: u64,
}

impl Default for HeapConfig {
    fn default() -> Self {
        HeapConfig {
            mode: GcMode::Batch,
            nursery_budget: 64 * 1024,
            major_every: 8,
            mark_slice: 16 * 1024,
        }
    }
}

/// Objects that act as GC roots (the collections themselves).
pub trait HeapRoot: Send + Sync {
    /// Marks every handle the root holds.
    fn trace_root(&self, marker: &mut Marker<'_>);
}

/// A mutator's "world is running" token. Object dereferences borrow it; the
/// collector stops the world by excluding all guards.
pub struct HeapGuard<'h> {
    _world: RwLockReadGuard<'h, ()>,
}

/// A point-in-time occupancy snapshot of the whole managed heap; see
/// [`ManagedHeap::occupancy_snapshot`].
#[derive(Debug, Clone)]
pub struct HeapOccupancy {
    /// Per-arena figures (one entry per object type, unordered).
    pub arenas: Vec<ArenaOccupancy>,
    /// Sum over all arenas.
    pub totals: ArenaOccupancy,
    /// Total objects ever allocated.
    pub allocated: u64,
    /// Collections completed.
    pub collections: u64,
    /// Nursery allocation budget left before the next safepoint collection.
    pub nursery_budget_remaining: u64,
}

/// An in-flight incremental mark cycle (interactive mode).
struct MarkCycle {
    stack: Vec<(TypeId, u32)>,
    roots_traced: bool,
    major: bool,
    traced: u64,
}

/// The simulated managed heap.
pub struct ManagedHeap {
    world: RwLock<()>,
    arenas: Mutex<HashMap<TypeId, Arc<dyn AnyArena>>>,
    /// Arena map snapshot used during marking (rebuilt when arenas change).
    roots: Mutex<Vec<Weak<dyn HeapRoot>>>,
    config: HeapConfig,
    /// Remaining nursery budget; collections run when it goes negative.
    budget: AtomicI64,
    /// Current mark parity (0/1), flipped at each cycle start.
    parity: AtomicU8,
    collections_run: AtomicU64,
    cycle: Mutex<Option<MarkCycle>>,
    /// Pause statistics (Fig 9).
    pub pauses: PauseStats,
    /// Total objects ever allocated.
    pub allocated: AtomicU64,
}

impl ManagedHeap {
    /// Creates a heap with the given configuration.
    pub fn new(config: HeapConfig) -> Arc<ManagedHeap> {
        Arc::new(ManagedHeap {
            world: RwLock::new(()),
            arenas: Mutex::new(HashMap::new()),
            roots: Mutex::new(Vec::new()),
            config,
            budget: AtomicI64::new(config.nursery_budget as i64),
            parity: AtomicU8::new(0),
            collections_run: AtomicU64::new(0),
            cycle: Mutex::new(None),
            pauses: PauseStats::new(),
            allocated: AtomicU64::new(0),
        })
    }

    /// Creates a heap with default (batch) configuration.
    pub fn new_batch() -> Arc<ManagedHeap> {
        Self::new(HeapConfig::default())
    }

    /// Creates an interactive-mode heap.
    pub fn new_interactive() -> Arc<ManagedHeap> {
        Self::new(HeapConfig {
            mode: GcMode::Interactive,
            ..HeapConfig::default()
        })
    }

    /// The configuration in effect.
    pub fn config(&self) -> &HeapConfig {
        &self.config
    }

    /// Enters mutator mode. Dereferences borrow the guard; the collector
    /// cannot stop the world while guards are held, so treat a guard like a
    /// critical section and drop it between batches of work (a safepoint).
    pub fn enter(&self) -> HeapGuard<'_> {
        HeapGuard {
            _world: self.world.read(),
        }
    }

    /// The arena for type `T`, created on first use.
    pub fn arena<T: Trace>(&self) -> Arc<Arena<T>> {
        let mut arenas = self.arenas.lock();
        let any = arenas
            .entry(TypeId::of::<T>())
            .or_insert_with(|| Arc::new(Arena::<T>::new()) as Arc<dyn AnyArena>)
            .clone();
        drop(arenas);
        // SAFETY of downcast: the map is keyed by TypeId, entries are only
        // ever created as Arena<T> for that exact T.
        unsafe { Arc::from_raw(Arc::into_raw(any) as *const Arena<T>) }
    }

    /// Registers a collection as a GC root.
    pub fn add_root(&self, root: Weak<dyn HeapRoot>) {
        self.roots.lock().push(root);
    }

    /// Allocates `value` on the heap. This is a safepoint: the allocation
    /// may first perform collector work (a full collection in batch mode, a
    /// bounded mark slice in interactive mode).
    ///
    /// Must not be called while the calling thread holds a [`HeapGuard`]
    /// (the world could never stop — a real runtime would deadlock its GC
    /// the same way).
    pub fn alloc<T: Trace>(&self, arena: &Arena<T>, value: T) -> Handle<T> {
        self.allocated.fetch_add(1, Ordering::Relaxed);
        if self.budget.fetch_sub(1, Ordering::Relaxed) <= 0 {
            self.safepoint_collect();
        }
        // Hold the world lock (shared) across the slot write so a collection
        // triggered by another thread cannot mark/sweep a half-written slot.
        let _world = self.world.read();
        let parity = self.parity.load(Ordering::Relaxed);
        arena.alloc_value(value, parity)
    }

    /// Live objects across all arenas.
    pub fn live_objects(&self) -> u64 {
        self.arenas.lock().values().map(|a| a.live_objects()).sum()
    }

    /// Number of collections completed.
    pub fn collections(&self) -> u64 {
        self.collections_run.load(Ordering::Relaxed)
    }

    /// Explicitly runs a full (major) collection, stop-the-world.
    pub fn collect_full(&self) {
        self.run_batch_collection(true);
    }

    /// Captures a generation/nursery occupancy snapshot of every arena —
    /// the managed-heap analogue of the off-heap observatory's
    /// `HeapSnapshot` (`smc_memory::inspect`), for SMC-vs-GC comparison in
    /// `smc-top`. Walks slot atomics without stopping mutators, so the
    /// figures are racy-but-bounded the same way.
    pub fn occupancy_snapshot(&self) -> HeapOccupancy {
        let arenas: Vec<Arc<dyn AnyArena>> = self.arenas.lock().values().cloned().collect();
        let per_arena: Vec<ArenaOccupancy> = arenas.iter().map(|a| a.occupancy()).collect();
        let mut totals = ArenaOccupancy::default();
        for occ in &per_arena {
            totals.merge(occ);
        }
        HeapOccupancy {
            arenas: per_arena,
            totals,
            allocated: self.allocated.load(Ordering::Relaxed),
            collections: self.collections(),
            nursery_budget_remaining: self.budget.load(Ordering::Relaxed).max(0) as u64,
        }
    }

    // ------------------------------------------------------------------
    // Collector
    // ------------------------------------------------------------------

    fn safepoint_collect(&self) {
        match self.config.mode {
            GcMode::Batch => {
                let n = self.collections_run.load(Ordering::Relaxed);
                let major = self.config.major_every > 0 && (n + 1) % self.config.major_every == 0;
                self.run_batch_collection(major);
            }
            GcMode::Interactive => {
                self.run_incremental_slice();
            }
        }
    }

    fn reset_budget(&self) {
        self.budget
            .store(self.config.nursery_budget as i64, Ordering::Relaxed);
    }

    /// Collects live roots, dropping dead weak references.
    fn live_roots(&self) -> Vec<Arc<dyn HeapRoot>> {
        let mut roots = self.roots.lock();
        let mut live = Vec::with_capacity(roots.len());
        roots.retain(|w| match w.upgrade() {
            Some(r) => {
                live.push(r);
                true
            }
            None => false,
        });
        live
    }

    fn run_batch_collection(&self, major: bool) {
        let roots = self.live_roots();
        let arenas: HashMap<TypeId, Arc<dyn AnyArena>> = self.arenas.lock().clone();
        // Stop the world. If this thread (or another) holds a guard, the
        // write acquisition blocks until the world reaches a safepoint.
        smc_obs::trace::emit(smc_obs::Event::GcPauseBegin { major });
        let t0 = Instant::now();
        let world = self.world.write();
        let parity = self.parity.fetch_xor(1, Ordering::AcqRel) ^ 1;
        let mut marker = Marker::new(&arenas, parity);
        for root in &roots {
            root.trace_root(&mut marker);
        }
        marker.drain(u64::MAX);
        let traced = marker.traced;
        drop(marker);
        let mut swept = 0;
        for arena in arenas.values() {
            swept += arena.sweep(!major, parity);
        }
        drop(world);
        let pause = t0.elapsed();
        self.pauses.record(pause);
        self.pauses.record_cycle(major, traced, swept);
        smc_obs::trace::emit(smc_obs::Event::GcPauseEnd {
            major,
            nanos: pause.as_nanos().min(u64::MAX as u128) as u64,
            traced,
            swept,
        });
        self.collections_run.fetch_add(1, Ordering::Relaxed);
        self.reset_budget();
    }

    /// Interactive mode: perform one bounded slice of collector work.
    fn run_incremental_slice(&self) {
        let mut cycle_slot = self.cycle.lock();
        let arenas: HashMap<TypeId, Arc<dyn AnyArena>> = self.arenas.lock().clone();
        let parity = match cycle_slot.as_ref() {
            Some(_) => self.parity.load(Ordering::Relaxed),
            None => {
                // Start a new cycle: flip parity; objects allocated from now
                // on are allocated black (marked).
                let n = self.collections_run.load(Ordering::Relaxed);
                let major = self.config.major_every > 0 && (n + 1) % self.config.major_every == 0;
                *cycle_slot = Some(MarkCycle {
                    stack: Vec::new(),
                    roots_traced: false,
                    major,
                    traced: 0,
                });
                self.parity.fetch_xor(1, Ordering::AcqRel) ^ 1
            }
        };
        let cycle = cycle_slot.as_mut().expect("cycle just ensured");

        // One short stop-the-world slice.
        smc_obs::trace::emit(smc_obs::Event::GcPauseBegin { major: cycle.major });
        let slice_major = cycle.major;
        let t0 = Instant::now();
        let world = self.world.write();
        let mut marker = Marker::new(&arenas, parity);
        marker.stack = std::mem::take(&mut cycle.stack);
        if !cycle.roots_traced {
            for root in self.live_roots() {
                root.trace_root(&mut marker);
            }
            cycle.roots_traced = true;
        }
        let done = marker.drain(self.config.mark_slice);
        cycle.traced += marker.traced;
        cycle.stack = std::mem::take(&mut marker.stack);
        drop(marker);
        let mut slice_traced = 0;
        let mut slice_swept = 0;
        if done {
            // Final slice: sweep and finish the cycle.
            let mut swept = 0;
            for arena in arenas.values() {
                swept += arena.sweep(!cycle.major, parity);
            }
            self.pauses.record_cycle(cycle.major, cycle.traced, swept);
            slice_traced = cycle.traced;
            slice_swept = swept;
            self.collections_run.fetch_add(1, Ordering::Relaxed);
            *cycle_slot = None;
            self.reset_budget();
        } else {
            // Mid-cycle: grant a small budget so mutators keep running and
            // the next safepoint performs the next slice.
            self.budget.store(
                (self.config.nursery_budget / 8).max(1024) as i64,
                Ordering::Relaxed,
            );
        }
        drop(world);
        let pause = t0.elapsed();
        self.pauses.record(pause);
        smc_obs::trace::emit(smc_obs::Event::GcPauseEnd {
            major: slice_major,
            nanos: pause.as_nanos().min(u64::MAX as u128) as u64,
            traced: slice_traced,
            swept: slice_swept,
        });
    }
}

impl std::fmt::Debug for ManagedHeap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ManagedHeap")
            .field("mode", &self.config.mode)
            .field("live", &self.live_objects())
            .field("collections", &self.collections())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct VecRoot {
        arena: Arc<Arena<u64>>,
        items: Mutex<Vec<Handle<u64>>>,
    }

    impl HeapRoot for VecRoot {
        fn trace_root(&self, marker: &mut Marker<'_>) {
            for &h in self.items.lock().iter() {
                marker.mark(h);
            }
        }
    }

    fn small_heap(mode: GcMode) -> Arc<ManagedHeap> {
        ManagedHeap::new(HeapConfig {
            mode,
            nursery_budget: 1000,
            major_every: 4,
            mark_slice: 500,
        })
    }

    #[test]
    fn unreachable_objects_are_collected() {
        let heap = small_heap(GcMode::Batch);
        let arena = heap.arena::<u64>();
        let root = Arc::new(VecRoot {
            arena: arena.clone(),
            items: Mutex::new(Vec::new()),
        });
        heap.add_root(Arc::downgrade(&root) as Weak<dyn HeapRoot>);
        // Rooted objects survive; unrooted garbage does not.
        for i in 0..500u64 {
            let h = heap.alloc(&arena, i);
            if i % 2 == 0 {
                root.items.lock().push(h);
            }
        }
        heap.collect_full();
        assert_eq!(arena.live(), 250);
        // Every rooted handle still dereferences.
        for &h in root.items.lock().iter() {
            assert!(root.arena.get(h).is_some());
        }
    }

    #[test]
    fn allocation_triggers_collections() {
        let heap = small_heap(GcMode::Batch);
        let arena = heap.arena::<u64>();
        for i in 0..10_000u64 {
            heap.alloc(&arena, i); // all garbage
        }
        assert!(
            heap.collections() >= 5,
            "collections: {}",
            heap.collections()
        );
        assert!(arena.live() < 10_000, "garbage must have been reclaimed");
        assert!(heap.pauses.report().pauses > 0);
    }

    #[test]
    fn reachable_graph_survives_through_trace() {
        #[allow(dead_code)]
        struct Node {
            next: Option<Handle<Node>>,
            v: u64,
        }
        impl Trace for Node {
            fn trace(&self, m: &mut Marker<'_>) {
                if let Some(n) = self.next {
                    m.mark(n);
                }
            }
        }
        struct OneRoot(Mutex<Option<Handle<Node>>>);
        impl HeapRoot for OneRoot {
            fn trace_root(&self, m: &mut Marker<'_>) {
                if let Some(h) = *self.0.lock() {
                    m.mark(h);
                }
            }
        }
        let heap = small_heap(GcMode::Batch);
        let arena = heap.arena::<Node>();
        let root = Arc::new(OneRoot(Mutex::new(None)));
        heap.add_root(Arc::downgrade(&root) as Weak<dyn HeapRoot>);
        // Build a 100-node chain rooted only at its head.
        let mut head: Option<Handle<Node>> = None;
        for i in 0..100 {
            head = Some(heap.alloc(&arena, Node { next: head, v: i }));
        }
        *root.0.lock() = head;
        heap.collect_full();
        assert_eq!(arena.live(), 100, "whole chain reachable through trace");
        // Cut the chain in half: the tail becomes garbage.
        let g = heap.enter();
        let mut cur = head.unwrap();
        for _ in 0..49 {
            cur = arena.get(cur).unwrap().next.unwrap();
        }
        drop(g);
        arena.get_mut(cur).unwrap().next = None;
        heap.collect_full();
        assert_eq!(arena.live(), 50);
    }

    #[test]
    fn interactive_mode_completes_cycles_with_short_slices() {
        let heap = small_heap(GcMode::Interactive);
        let arena = heap.arena::<u64>();
        let root = Arc::new(VecRoot {
            arena: arena.clone(),
            items: Mutex::new(Vec::new()),
        });
        heap.add_root(Arc::downgrade(&root) as Weak<dyn HeapRoot>);
        for i in 0..20_000u64 {
            let h = heap.alloc(&arena, i);
            if i % 4 == 0 {
                root.items.lock().push(h);
            }
        }
        // Drive remaining slices to completion.
        for _ in 0..100 {
            heap.alloc(&arena, 0);
        }
        assert!(heap.collections() >= 1);
        // Rooted objects survived incremental cycles.
        for &h in root.items.lock().iter().take(100) {
            assert!(arena.get(h).is_some());
        }
    }

    #[test]
    fn guard_blocks_collection_until_dropped() {
        let heap = small_heap(GcMode::Batch);
        let arena = heap.arena::<u64>();
        let h = heap.alloc(&arena, 42);
        let guard = heap.enter();
        // Dereference stays valid while the guard pins the world.
        assert_eq!(arena.get(h), Some(&42));
        drop(guard);
        heap.collect_full(); // h unrooted: now reclaimed
        assert_eq!(arena.get(h), None);
    }

    #[test]
    fn occupancy_snapshot_tracks_generations() {
        let heap = small_heap(GcMode::Batch);
        let arena = heap.arena::<u64>();
        let root = Arc::new(VecRoot {
            arena: arena.clone(),
            items: Mutex::new(Vec::new()),
        });
        heap.add_root(Arc::downgrade(&root) as Weak<dyn HeapRoot>);
        for i in 0..300u64 {
            let h = heap.alloc(&arena, i);
            root.items.lock().push(h);
        }
        let occ = heap.occupancy_snapshot();
        assert_eq!(occ.totals.live_slots, 300);
        assert_eq!(occ.totals.nursery_slots, 300, "nothing promoted yet");
        assert!(occ.totals.capacity_slots >= 300);
        assert!(occ.totals.occupancy() > 0.0);
        assert_eq!(occ.arenas.len(), 1);
        // After a collection the rooted survivors stay live (promotion to
        // gen 1 happens on minor sweeps; a major sweep keeps gen as-is).
        heap.collect_full();
        let before = heap.occupancy_snapshot();
        assert_eq!(before.totals.live_slots, 300);
        for i in 0..300u64 {
            heap.alloc(&arena, i); // unrooted garbage, stays in the nursery
        }
        let occ = heap.occupancy_snapshot();
        assert_eq!(occ.totals.live_slots, 600);
        assert_eq!(occ.totals.mature_slots + occ.totals.nursery_slots, 600);
        assert!(occ.allocated >= 600);
    }

    #[test]
    fn concurrent_allocation_from_many_threads() {
        let heap = small_heap(GcMode::Batch);
        let mut joins = Vec::new();
        for t in 0..4 {
            let heap = heap.clone();
            joins.push(std::thread::spawn(move || {
                let arena = heap.arena::<u64>();
                for i in 0..20_000u64 {
                    heap.alloc(&arena, t * 1_000_000 + i);
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(heap.allocated.load(Ordering::Relaxed), 80_000);
        assert!(heap.collections() > 0);
    }
}
