//! Typed arenas, handles, and the tracing infrastructure.
//!
//! Objects live in segmented slabs (segments never move once allocated, so
//! dereferences stay valid across arena growth). A [`Handle`] is a slot
//! index — the managed-reference stand-in. Dereferencing costs an index
//! translation plus a data-dependent load, and after churn the slots a
//! collection's handles point at are scattered across segments: the
//! pointer-chasing, locality-degrading access pattern the paper measures
//! for managed collections (Fig 10).

use std::any::TypeId;
use std::cell::UnsafeCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;

use smc_util::sync::{Mutex, RwLock};

/// Objects per segment.
pub const SEGMENT_SLOTS: usize = 1024;

/// A managed reference: a typed slot index into the object's arena.
pub struct Handle<T> {
    pub(crate) id: u32,
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T> Handle<T> {
    pub(crate) fn new(id: u32) -> Self {
        Handle {
            id,
            _marker: std::marker::PhantomData,
        }
    }

    /// The raw slot index.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// A placeholder handle for padding 1-based key tables. Must never be
    /// dereferenced or traced.
    pub fn new_invalid() -> Self {
        Handle::new(u32::MAX)
    }
}

impl<T> Clone for Handle<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Handle<T> {}
impl<T> PartialEq for Handle<T> {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
    }
}
impl<T> Eq for Handle<T> {}
impl<T> std::hash::Hash for Handle<T> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.id.hash(state)
    }
}
impl<T> std::fmt::Debug for Handle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Handle({})", self.id)
    }
}

/// Types whose values may live on the managed heap. `trace` must mark every
/// [`Handle`] the value holds, or the referenced objects will be collected.
pub trait Trace: Send + Sync + 'static {
    /// Marks all handles reachable from `self`.
    fn trace(&self, marker: &mut Marker<'_>) {
        let _ = marker;
    }
}

macro_rules! impl_trace_leaf {
    ($($t:ty),* $(,)?) => {
        $(impl Trace for $t {})*
    };
}

impl_trace_leaf!(
    u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64, bool, char, String
);

impl<T: Trace> Trace for Option<T> {
    fn trace(&self, marker: &mut Marker<'_>) {
        if let Some(v) = self {
            v.trace(marker);
        }
    }
}

impl<T: Trace> Trace for Vec<T> {
    fn trace(&self, marker: &mut Marker<'_>) {
        for v in self {
            v.trace(marker);
        }
    }
}

/// Marks a handle field: `marker.mark(self.customer)`.
impl<'h> Marker<'h> {
    /// Marks the object behind `handle` live and schedules it for tracing.
    /// Placeholder handles ([`Handle::new_invalid`]) are ignored.
    pub fn mark<T: Trace>(&mut self, handle: Handle<T>) {
        if handle.id != u32::MAX {
            self.stack.push((TypeId::of::<T>(), handle.id));
        }
    }
}

const MARK_NONE: u8 = 2;

struct SlotCell<T> {
    /// 0 = empty, 1 = live.
    occupied: AtomicU8,
    /// Mark parity (0/1) or [`MARK_NONE`].
    mark: AtomicU8,
    /// Generation: 0 = nursery, 1 = mature.
    gen: AtomicU8,
    value: UnsafeCell<Option<T>>,
}

// SAFETY: value mutations happen only (a) on empty slots owned by a single
// allocator and (b) during sweeps, which run while mutators are stopped.
unsafe impl<T: Send + Sync> Send for SlotCell<T> {}
unsafe impl<T: Send + Sync> Sync for SlotCell<T> {}

struct ArenaAllocState {
    free: Vec<u32>,
    nursery: Vec<u32>,
    next_fresh: u32,
}

/// A typed object arena: segmented slab plus allocation and GC state.
pub struct Arena<T: Trace> {
    segments: RwLock<Vec<Box<[SlotCell<T>]>>>,
    alloc: Mutex<ArenaAllocState>,
    live: AtomicU64,
}

impl<T: Trace> Arena<T> {
    pub(crate) fn new() -> Arena<T> {
        Arena {
            segments: RwLock::new(Vec::new()),
            alloc: Mutex::new(ArenaAllocState {
                free: Vec::new(),
                nursery: Vec::new(),
                next_fresh: 0,
            }),
            live: AtomicU64::new(0),
        }
    }

    /// Raw pointer to a slot; the cell itself never moves. `None` for ids
    /// this arena never allocated (e.g. placeholder handles).
    fn try_cell(&self, id: u32) -> Option<*const SlotCell<T>> {
        let segs = self.segments.read();
        let seg = id as usize / SEGMENT_SLOTS;
        let idx = id as usize % SEGMENT_SLOTS;
        segs.get(seg).map(|s| &s[idx] as *const SlotCell<T>)
    }

    /// Raw pointer to a slot; the cell itself never moves.
    fn cell(&self, id: u32) -> *const SlotCell<T> {
        self.try_cell(id).expect("handle outside arena")
    }

    /// Allocates a slot for `value`, reusing a free slot when available
    /// (slot reuse is what "wears" locality, Fig 10). `parity` is the
    /// current mark parity so new objects are allocated marked.
    pub(crate) fn alloc_value(&self, value: T, parity: u8) -> Handle<T> {
        let id = {
            let mut st = self.alloc.lock();
            if let Some(id) = st.free.pop() {
                st.nursery.push(id);
                id
            } else {
                let id = st.next_fresh;
                st.next_fresh += 1;
                st.nursery.push(id);
                if id as usize / SEGMENT_SLOTS >= self.segments.read().len() {
                    let mut segs = self.segments.write();
                    while id as usize / SEGMENT_SLOTS >= segs.len() {
                        let seg: Box<[SlotCell<T>]> = (0..SEGMENT_SLOTS)
                            .map(|_| SlotCell {
                                occupied: AtomicU8::new(0),
                                mark: AtomicU8::new(MARK_NONE),
                                gen: AtomicU8::new(0),
                                value: UnsafeCell::new(None),
                            })
                            .collect();
                        segs.push(seg);
                    }
                }
                id
            }
        };
        let cell = self.cell(id);
        // SAFETY: the slot is exclusively ours (popped from free list or
        // fresh), and sweeps cannot run concurrently with mutators.
        unsafe {
            (*cell).value.get().write(Some(value));
            (*cell).gen.store(0, Ordering::Relaxed);
            (*cell).mark.store(parity, Ordering::Relaxed);
            (*cell).occupied.store(1, Ordering::Release);
        }
        self.live.fetch_add(1, Ordering::Relaxed);
        Handle::new(id)
    }

    /// Dereferences a handle. `None` if the slot was collected (or the
    /// handle is a placeholder).
    pub fn get(&self, handle: Handle<T>) -> Option<&T> {
        let cell = self.try_cell(handle.id)?;
        // SAFETY: segments are stable; value is only cleared during sweeps,
        // which are mutually exclusive with mutator access.
        unsafe {
            if (*cell).occupied.load(Ordering::Acquire) == 0 {
                return None;
            }
            (*(*cell).value.get()).as_ref()
        }
    }

    /// Mutable access for in-place updates (single-writer discipline is the
    /// caller's responsibility, as in any managed runtime).
    #[allow(clippy::mut_from_ref)]
    pub fn get_mut(&self, handle: Handle<T>) -> Option<&mut T> {
        let cell = self.cell(handle.id);
        // SAFETY: see `get`; mutation discipline is the caller's contract.
        unsafe {
            if (*cell).occupied.load(Ordering::Acquire) == 0 {
                return None;
            }
            (*(*cell).value.get()).as_mut()
        }
    }

    /// Live objects in this arena.
    pub fn live(&self) -> u64 {
        self.live.load(Ordering::Relaxed)
    }
}

/// Occupancy accounting for one arena, the managed-heap analogue of the
/// off-heap side's per-block snapshot (`smc_memory::inspect`). Captured by
/// walking slot atomics without stopping mutators.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaOccupancy {
    /// Segments allocated (each [`SEGMENT_SLOTS`] slots).
    pub segments: usize,
    /// Total slot capacity across segments.
    pub capacity_slots: u64,
    /// Occupied slots.
    pub live_slots: u64,
    /// Occupied slots still in the nursery generation (gen 0).
    pub nursery_slots: u64,
    /// Occupied slots promoted to the mature generation (gen 1).
    pub mature_slots: u64,
}

impl ArenaOccupancy {
    /// Live fraction of allocated capacity.
    pub fn occupancy(&self) -> f64 {
        self.live_slots as f64 / self.capacity_slots.max(1) as f64
    }

    /// Sums another arena's figures into this one.
    pub fn merge(&mut self, other: &ArenaOccupancy) {
        self.segments += other.segments;
        self.capacity_slots += other.capacity_slots;
        self.live_slots += other.live_slots;
        self.nursery_slots += other.nursery_slots;
        self.mature_slots += other.mature_slots;
    }
}

/// Type-erased arena operations used by the collector.
pub(crate) trait AnyArena: Send + Sync {
    /// Marks `id`; returns true if it was newly marked (needs tracing).
    fn mark_slot(&self, id: u32, parity: u8) -> bool;
    /// Traces the object in `id`, marking its referents.
    fn trace_slot(&self, id: u32, marker: &mut Marker<'_>);
    /// Sweeps unmarked slots. Minor sweeps only the nursery set (promoting
    /// survivors to generation 1); major sweeps everything. Returns the
    /// number of objects reclaimed.
    fn sweep(&self, minor: bool, parity: u8) -> u64;
    /// Live object count.
    fn live_objects(&self) -> u64;
    /// Walks slot atomics for generation/occupancy accounting.
    fn occupancy(&self) -> ArenaOccupancy;
}

impl<T: Trace> AnyArena for Arena<T> {
    fn mark_slot(&self, id: u32, parity: u8) -> bool {
        let Some(cell) = self.try_cell(id) else {
            return false;
        };
        // SAFETY: stable cell; atomics only.
        unsafe {
            if (*cell).occupied.load(Ordering::Acquire) == 0 {
                return false;
            }
            (*cell).mark.swap(parity, Ordering::AcqRel) != parity
        }
    }

    fn trace_slot(&self, id: u32, marker: &mut Marker<'_>) {
        let cell = self.cell(id);
        // SAFETY: marking runs while the slot cannot be swept.
        unsafe {
            if let Some(v) = (*(*cell).value.get()).as_ref() {
                v.trace(marker);
            }
        }
    }

    fn sweep(&self, minor: bool, parity: u8) -> u64 {
        let mut st = self.alloc.lock();
        let mut swept = 0u64;
        let sweep_cell = |cell: *const SlotCell<T>, st_free: &mut Vec<u32>, id: u32| -> bool {
            // SAFETY: sweeps run stop-the-world.
            unsafe {
                if (*cell).occupied.load(Ordering::Acquire) == 0 {
                    return false;
                }
                if (*cell).mark.load(Ordering::Acquire) == parity {
                    return false;
                }
                (*cell).occupied.store(0, Ordering::Release);
                (*(*cell).value.get()) = None;
                st_free.push(id);
                true
            }
        };
        if minor {
            let nursery = std::mem::take(&mut st.nursery);
            for id in nursery {
                let cell = self.cell(id);
                if sweep_cell(cell, &mut st.free, id) {
                    swept += 1;
                } else {
                    // Survivor: promote to the mature generation.
                    // SAFETY: stop-the-world.
                    unsafe { (*cell).gen.store(1, Ordering::Relaxed) };
                }
            }
        } else {
            let total = st.next_fresh;
            for id in 0..total {
                let cell = self.cell(id);
                if sweep_cell(cell, &mut st.free, id) {
                    swept += 1;
                }
            }
            st.nursery.clear();
        }
        self.live.fetch_sub(swept, Ordering::Relaxed);
        swept
    }

    fn live_objects(&self) -> u64 {
        self.live()
    }

    fn occupancy(&self) -> ArenaOccupancy {
        let segs = self.segments.read();
        let mut occ = ArenaOccupancy {
            segments: segs.len(),
            capacity_slots: (segs.len() * SEGMENT_SLOTS) as u64,
            ..ArenaOccupancy::default()
        };
        for seg in segs.iter() {
            for cell in seg.iter() {
                if cell.occupied.load(Ordering::Acquire) == 0 {
                    continue;
                }
                occ.live_slots += 1;
                // Racy with concurrent promotion/alloc; each slot still
                // lands in exactly one generation bucket.
                if cell.gen.load(Ordering::Relaxed) == 0 {
                    occ.nursery_slots += 1;
                } else {
                    occ.mature_slots += 1;
                }
            }
        }
        occ
    }
}

/// The mark-phase work list, handed to [`Trace::trace`] implementations.
pub struct Marker<'h> {
    pub(crate) arenas: &'h HashMap<TypeId, Arc<dyn AnyArena>>,
    pub(crate) stack: Vec<(TypeId, u32)>,
    pub(crate) parity: u8,
    pub(crate) traced: u64,
}

impl<'h> Marker<'h> {
    pub(crate) fn new(arenas: &'h HashMap<TypeId, Arc<dyn AnyArena>>, parity: u8) -> Self {
        Marker {
            arenas,
            stack: Vec::new(),
            parity,
            traced: 0,
        }
    }

    /// Drains up to `budget` objects from the work list (u64::MAX = all).
    /// Returns true when the list is empty.
    pub(crate) fn drain(&mut self, budget: u64) -> bool {
        let mut done = 0;
        while done < budget {
            let Some((ty, id)) = self.stack.pop() else {
                return true;
            };
            let Some(arena) = self.arenas.get(&ty) else {
                continue;
            };
            if arena.mark_slot(id, self.parity) {
                // Take a local clone of the Arc so tracing can push to us.
                let arena = arena.clone();
                arena.trace_slot(id, self);
                self.traced += 1;
                done += 1;
            }
        }
        self.stack.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_get_roundtrip() {
        let arena: Arena<u64> = Arena::new();
        let h = arena.alloc_value(99, 0);
        assert_eq!(arena.get(h), Some(&99));
        assert_eq!(arena.live(), 1);
    }

    #[test]
    fn segments_grow_and_stay_stable() {
        let arena: Arena<u64> = Arena::new();
        let first = arena.alloc_value(1, 0);
        let p1 = arena.get(first).unwrap() as *const u64;
        for i in 0..SEGMENT_SLOTS * 3 {
            arena.alloc_value(i as u64, 0);
        }
        assert_eq!(arena.get(first).unwrap() as *const u64, p1, "no relocation");
    }

    #[test]
    fn sweep_reclaims_unmarked_and_promotes_marked() {
        let arena: Arena<u64> = Arena::new();
        let keep = arena.alloc_value(1, MARK_NONE);
        let drop_ = arena.alloc_value(2, MARK_NONE);
        // Mark only `keep` with parity 0.
        assert!(arena.mark_slot(keep.id, 0));
        let swept = arena.sweep(true, 0);
        assert_eq!(swept, 1);
        assert_eq!(arena.get(keep), Some(&1));
        assert_eq!(arena.get(drop_), None);
        assert_eq!(arena.live(), 1);
    }

    #[test]
    fn freed_slots_are_reused() {
        let arena: Arena<u64> = Arena::new();
        let a = arena.alloc_value(1, MARK_NONE);
        arena.sweep(true, 0); // nothing marked: slot freed
        let b = arena.alloc_value(2, MARK_NONE);
        assert_eq!(a.id(), b.id(), "slot recycled");
        assert_eq!(arena.get(b), Some(&2));
    }

    #[test]
    fn mark_is_idempotent_per_parity() {
        let arena: Arena<u64> = Arena::new();
        let h = arena.alloc_value(7, MARK_NONE);
        assert!(arena.mark_slot(h.id, 1));
        assert!(!arena.mark_slot(h.id, 1), "second mark is a no-op");
        assert!(arena.mark_slot(h.id, 0), "new cycle remarqs");
    }

    #[test]
    fn major_sweep_covers_mature_objects() {
        let arena: Arena<u64> = Arena::new();
        let h = arena.alloc_value(5, 0);
        // Survives a minor (marked parity 0), promoted to gen 1.
        arena.mark_slot(h.id, 0);
        arena.sweep(true, 0);
        assert_eq!(arena.get(h), Some(&5));
        // Next major with parity 1 and no marking: reclaimed.
        let swept = arena.sweep(false, 1);
        assert_eq!(swept, 1);
        assert_eq!(arena.get(h), None);
    }
}
