//! Pause accounting for the simulated collector.
//!
//! Fig 9 measures the longest mutator stall caused by garbage collection as
//! the live heap grows. The collector records every stop-the-world interval
//! here; benchmarks additionally measure stalls from the mutator side with
//! a sleeper thread, exactly as the paper does.
//!
//! Since the observability PR, the interval distribution lives in an
//! [`smc_obs::Histogram`] instead of ad-hoc count/total/max atomics: the
//! exact count, sum, and max the old bookkeeping provided fall out of the
//! histogram for free, and [`PauseReport`] additionally carries p50/p95/p99
//! (the numbers Fig 9 actually argues about).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use smc_obs::Histogram;

/// Aggregated collector pause statistics.
///
/// The stop-the-world interval distribution is held in a mergeable
/// [`Histogram`]; cycle/object counters remain plain atomics.
#[derive(Debug, Default)]
pub struct PauseStats {
    pauses_ns: Histogram,
    minor_collections: AtomicU64,
    major_collections: AtomicU64,
    objects_traced: AtomicU64,
    objects_swept: AtomicU64,
}

impl PauseStats {
    /// Fresh, zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one stop-the-world interval.
    pub fn record(&self, pause: Duration) {
        self.pauses_ns.record_duration(pause);
    }

    /// Records a completed collection cycle.
    pub fn record_cycle(&self, major: bool, traced: u64, swept: u64) {
        if major {
            self.major_collections.fetch_add(1, Ordering::Relaxed);
        } else {
            self.minor_collections.fetch_add(1, Ordering::Relaxed);
        }
        self.objects_traced.fetch_add(traced, Ordering::Relaxed);
        self.objects_swept.fetch_add(swept, Ordering::Relaxed);
    }

    /// The underlying pause-time histogram (nanoseconds), e.g. for merging
    /// into a benchmark-wide distribution or a
    /// [`Report`](smc_obs::Report).
    pub fn histogram(&self) -> &Histogram {
        &self.pauses_ns
    }

    /// Snapshot for reporting. Count, total, max, and mean are exact;
    /// p50/p95/p99 are bucket-resolved (≤ 1/16 relative error).
    pub fn report(&self) -> PauseReport {
        let s = self.pauses_ns.summary();
        PauseReport {
            pauses: s.count,
            total: Duration::from_nanos(s.sum),
            max: Duration::from_nanos(s.max),
            mean: Duration::from_nanos(s.mean),
            p50: Duration::from_nanos(s.p50),
            p95: Duration::from_nanos(s.p95),
            p99: Duration::from_nanos(s.p99),
            minor_collections: self.minor_collections.load(Ordering::Relaxed),
            major_collections: self.major_collections.load(Ordering::Relaxed),
            objects_traced: self.objects_traced.load(Ordering::Relaxed),
            objects_swept: self.objects_swept.load(Ordering::Relaxed),
        }
    }

    /// Resets every counter (between benchmark phases).
    pub fn reset(&self) {
        self.pauses_ns.reset();
        self.minor_collections.store(0, Ordering::Relaxed);
        self.major_collections.store(0, Ordering::Relaxed);
        self.objects_traced.store(0, Ordering::Relaxed);
        self.objects_swept.store(0, Ordering::Relaxed);
    }
}

/// Point-in-time pause summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PauseReport {
    /// Number of stop-the-world intervals.
    pub pauses: u64,
    /// Sum of all pause durations (exact).
    pub total: Duration,
    /// Longest single pause (exact).
    pub max: Duration,
    /// Mean pause duration (exact).
    pub mean: Duration,
    /// Median pause (bucket-resolved).
    pub p50: Duration,
    /// 95th-percentile pause (bucket-resolved).
    pub p95: Duration,
    /// 99th-percentile pause (bucket-resolved).
    pub p99: Duration,
    /// Minor (nursery) collections run.
    pub minor_collections: u64,
    /// Major (full-heap) collections run.
    pub major_collections: u64,
    /// Objects traced across all cycles.
    pub objects_traced: u64,
    /// Objects swept (reclaimed) across all cycles.
    pub objects_swept: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_reports() {
        let s = PauseStats::new();
        s.record(Duration::from_micros(100));
        s.record(Duration::from_micros(300));
        s.record_cycle(false, 10, 4);
        s.record_cycle(true, 50, 20);
        let r = s.report();
        assert_eq!(r.pauses, 2);
        assert_eq!(r.max, Duration::from_micros(300));
        assert_eq!(r.mean, Duration::from_micros(200));
        assert_eq!(r.minor_collections, 1);
        assert_eq!(r.major_collections, 1);
        assert_eq!(r.objects_traced, 60);
        assert_eq!(r.objects_swept, 24);
    }

    #[test]
    fn percentiles_come_from_the_histogram() {
        let s = PauseStats::new();
        for micros in 1..=100u64 {
            s.record(Duration::from_micros(micros));
        }
        let r = s.report();
        assert_eq!(r.pauses, 100);
        // p99 resolves to a bucket whose bounds contain the exact value;
        // with 6.25% bucket error the bound below is safe.
        assert!(r.p99 >= Duration::from_micros(93), "p99 = {:?}", r.p99);
        assert!(r.p99 <= r.max);
        assert!(r.p50 >= Duration::from_micros(47));
        assert!(r.p50 <= Duration::from_micros(54));
        assert_eq!(s.histogram().count(), 100);
    }

    #[test]
    fn reset_zeroes() {
        let s = PauseStats::new();
        s.record(Duration::from_millis(5));
        s.reset();
        let r = s.report();
        assert_eq!(r.pauses, 0);
        assert_eq!(r.max, Duration::ZERO);
        assert_eq!(r.p99, Duration::ZERO);
    }
}
