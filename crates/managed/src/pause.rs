//! Pause accounting for the simulated collector.
//!
//! Fig 9 measures the longest mutator stall caused by garbage collection as
//! the live heap grows. The collector records every stop-the-world interval
//! here; benchmarks additionally measure stalls from the mutator side with
//! a sleeper thread, exactly as the paper does.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Aggregated collector pause statistics.
#[derive(Debug, Default)]
pub struct PauseStats {
    count: AtomicU64,
    total_nanos: AtomicU64,
    max_nanos: AtomicU64,
    minor_collections: AtomicU64,
    major_collections: AtomicU64,
    objects_traced: AtomicU64,
    objects_swept: AtomicU64,
}

impl PauseStats {
    /// Fresh, zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one stop-the-world interval.
    pub fn record(&self, pause: Duration) {
        let nanos = pause.as_nanos() as u64;
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.max_nanos.fetch_max(nanos, Ordering::Relaxed);
    }

    /// Records a completed collection cycle.
    pub fn record_cycle(&self, major: bool, traced: u64, swept: u64) {
        if major {
            self.major_collections.fetch_add(1, Ordering::Relaxed);
        } else {
            self.minor_collections.fetch_add(1, Ordering::Relaxed);
        }
        self.objects_traced.fetch_add(traced, Ordering::Relaxed);
        self.objects_swept.fetch_add(swept, Ordering::Relaxed);
    }

    /// Snapshot for reporting.
    pub fn report(&self) -> PauseReport {
        let count = self.count.load(Ordering::Relaxed);
        let total = self.total_nanos.load(Ordering::Relaxed);
        PauseReport {
            pauses: count,
            total: Duration::from_nanos(total),
            max: Duration::from_nanos(self.max_nanos.load(Ordering::Relaxed)),
            mean: Duration::from_nanos(total.checked_div(count).unwrap_or(0)),
            minor_collections: self.minor_collections.load(Ordering::Relaxed),
            major_collections: self.major_collections.load(Ordering::Relaxed),
            objects_traced: self.objects_traced.load(Ordering::Relaxed),
            objects_swept: self.objects_swept.load(Ordering::Relaxed),
        }
    }

    /// Resets every counter (between benchmark phases).
    pub fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.total_nanos.store(0, Ordering::Relaxed);
        self.max_nanos.store(0, Ordering::Relaxed);
        self.minor_collections.store(0, Ordering::Relaxed);
        self.major_collections.store(0, Ordering::Relaxed);
        self.objects_traced.store(0, Ordering::Relaxed);
        self.objects_swept.store(0, Ordering::Relaxed);
    }
}

/// Point-in-time pause summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PauseReport {
    /// Number of stop-the-world intervals.
    pub pauses: u64,
    /// Sum of all pause durations.
    pub total: Duration,
    /// Longest single pause.
    pub max: Duration,
    /// Mean pause duration.
    pub mean: Duration,
    /// Minor (nursery) collections run.
    pub minor_collections: u64,
    /// Major (full-heap) collections run.
    pub major_collections: u64,
    /// Objects traced across all cycles.
    pub objects_traced: u64,
    /// Objects swept (reclaimed) across all cycles.
    pub objects_swept: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_reports() {
        let s = PauseStats::new();
        s.record(Duration::from_micros(100));
        s.record(Duration::from_micros(300));
        s.record_cycle(false, 10, 4);
        s.record_cycle(true, 50, 20);
        let r = s.report();
        assert_eq!(r.pauses, 2);
        assert_eq!(r.max, Duration::from_micros(300));
        assert_eq!(r.mean, Duration::from_micros(200));
        assert_eq!(r.minor_collections, 1);
        assert_eq!(r.major_collections, 1);
        assert_eq!(r.objects_traced, 60);
        assert_eq!(r.objects_swept, 24);
    }

    #[test]
    fn reset_zeroes() {
        let s = PauseStats::new();
        s.record(Duration::from_millis(5));
        s.reset();
        let r = s.report();
        assert_eq!(r.pauses, 0);
        assert_eq!(r.max, Duration::ZERO);
    }
}
