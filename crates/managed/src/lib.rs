//! # managed-heap — a simulated managed runtime with a tracing GC
//!
//! The paper's baselines are ordinary .NET collections whose objects live on
//! a garbage-collected heap. Rust has no GC, so this crate builds one: a
//! stop-the-world (or incremental) tracing collector over typed arenas, with
//! handle-based object access, generation tags, safepoints, and pause
//! accounting. The `Gc*` collection types in [`collections`] are the
//! stand-ins for `List<T>`, `ConcurrentBag<T>` and
//! `ConcurrentDictionary<K,V>` that the evaluation compares against
//! (Figs 7–11).
//!
//! ## What the simulation preserves (and why it is a fair baseline)
//!
//! The paper's measurements depend on four properties of a managed runtime,
//! all reproduced here:
//!
//! 1. **Allocation triggers collections whose cost scales with live data.**
//!    Allocation debits a nursery budget; exhausting it runs a minor
//!    collection that must trace the live object graph from the registered
//!    roots (the collections themselves). With all objects reachable — the
//!    Fig 7 workload — every collection pays for the whole live set, exactly
//!    the behaviour the paper attributes to its managed baselines.
//! 2. **Pauses grow with the managed heap.** `batch` mode runs each
//!    collection fully stop-the-world (a heap-wide write lock all mutators
//!    block on at safepoints), so the maximum observed pause grows with the
//!    number of live objects (Fig 9). `interactive` mode splits the mark
//!    phase into bounded increments interleaved with mutator work: shorter
//!    pauses, lower throughput — the same trade the paper reports.
//! 3. **Enumeration chases pointers.** Objects are reached through a handle
//!    table into segmented slabs. Freshly-loaded collections enumerate in
//!    allocation order (sequential memory); after churn, slot reuse
//!    scatters objects, and enumeration degrades — the fresh/worn contrast
//!    of Fig 10.
//! 4. **No object may be reclaimed while reachable.** The collector really
//!    traces: objects referencing other objects implement [`Trace`] and
//!    their referents survive; unreachable objects are swept and their
//!    slots recycled.
//!
//! The collector is mark-sweep with generation tags rather than a copying
//! collector; DESIGN.md discusses why this preserves the measured
//! behaviours (pause scaling, allocation-triggered work, locality wear).

#![warn(missing_docs)]

pub mod arena;
pub mod collections;
pub mod heap;
pub mod pause;

pub use arena::{Arena, ArenaOccupancy, Handle, Marker, Trace};
pub use collections::{GcConcurrentBag, GcConcurrentDictionary, GcList};
pub use heap::{GcMode, HeapConfig, HeapGuard, HeapOccupancy, ManagedHeap};
pub use pause::{PauseReport, PauseStats};
