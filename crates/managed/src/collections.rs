//! GC-backed collections: the paper's managed baselines.
//!
//! * [`GcList`] stands in for C#'s `List<T>` — a dynamic array of
//!   references, not thread-safe in .NET (ours takes a light lock so the
//!   benchmarks can share it, which only flatters the baseline).
//! * [`GcConcurrentBag`] stands in for `ConcurrentBag<T>` — thread-safe
//!   insertion and enumeration, but "does not allow the removal of specific
//!   objects" (§7).
//! * [`GcConcurrentDictionary`] stands in for
//!   `ConcurrentDictionary<TKey, TValue>` — the only .NET collection the
//!   paper found functionally comparable to SMCs (keyed removal).
//!
//! All three hold *handles*; the objects themselves live on the
//! [`ManagedHeap`] and are traced from the
//! collection root. Enumeration dereferences handle by handle — the
//! scattered pointer chase of Fig 10.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::{Arc, Weak};

use smc_util::sync::Mutex;

use crate::arena::{Arena, Handle, Marker, Trace};
use crate::heap::{HeapGuard, HeapRoot, ManagedHeap};

/// Number of shards in the concurrent dictionary.
const DICT_SHARDS: usize = 16;

// ---------------------------------------------------------------------
// GcList
// ---------------------------------------------------------------------

struct GcListInner<T: Trace> {
    items: Mutex<Vec<Handle<T>>>,
}

impl<T: Trace> HeapRoot for GcListInner<T> {
    fn trace_root(&self, marker: &mut Marker<'_>) {
        for &h in self.items.lock().iter() {
            marker.mark(h);
        }
    }
}

/// A `List<T>`-like collection of managed objects.
pub struct GcList<T: Trace> {
    heap: Arc<ManagedHeap>,
    arena: Arc<Arena<T>>,
    inner: Arc<GcListInner<T>>,
}

impl<T: Trace> Clone for GcList<T> {
    fn clone(&self) -> Self {
        GcList {
            heap: self.heap.clone(),
            arena: self.arena.clone(),
            inner: self.inner.clone(),
        }
    }
}

impl<T: Trace> GcList<T> {
    /// Creates a list rooted on `heap`.
    pub fn new(heap: &Arc<ManagedHeap>) -> GcList<T> {
        let inner = Arc::new(GcListInner {
            items: Mutex::new(Vec::new()),
        });
        heap.add_root(Arc::downgrade(&inner) as Weak<dyn HeapRoot>);
        GcList {
            heap: heap.clone(),
            arena: heap.arena::<T>(),
            inner,
        }
    }

    /// Allocates `value` on the heap and appends its handle.
    pub fn add(&self, value: T) -> Handle<T> {
        let h = self.heap.alloc(&self.arena, value);
        self.inner.items.lock().push(h);
        h
    }

    /// Appends an existing handle (shares an object already allocated by
    /// another collection on the same heap).
    pub fn add_handle(&self, h: Handle<T>) {
        self.inner.items.lock().push(h);
    }

    /// Removes (by handle identity) — O(n), like `List<T>.Remove`.
    pub fn remove(&self, handle: Handle<T>) -> bool {
        let mut items = self.inner.items.lock();
        if let Some(pos) = items.iter().position(|h| *h == handle) {
            items.remove(pos);
            true
        } else {
            false
        }
    }

    /// Removes every element whose object satisfies `pred`; returns the
    /// count removed. This is how the refresh streams delete (Fig 8).
    pub fn remove_where(&self, guard: &HeapGuard<'_>, mut pred: impl FnMut(&T) -> bool) -> usize {
        let _ = guard;
        let mut items = self.inner.items.lock();
        let before = items.len();
        items.retain(|h| match self.arena.get(*h) {
            Some(v) => !pred(v),
            None => false,
        });
        before - items.len()
    }

    /// Dereferences a handle.
    pub fn get<'g>(&self, handle: Handle<T>, _guard: &'g HeapGuard<'_>) -> Option<&'g T> {
        // SAFETY of lifetime: the guard pins the world; sweeps cannot run.
        unsafe { std::mem::transmute::<Option<&T>, Option<&'g T>>(self.arena.get(handle)) }
    }

    /// Enumerates every element: handle list walk + per-object dereference,
    /// the managed pointer chase of Fig 10.
    pub fn for_each(&self, _guard: &HeapGuard<'_>, mut f: impl FnMut(&T)) -> u64 {
        let items = self.inner.items.lock();
        let mut n = 0;
        for &h in items.iter() {
            if let Some(v) = self.arena.get(h) {
                f(v);
                n += 1;
            }
        }
        n
    }

    /// Copies the current handle list, releasing the list lock before the
    /// caller dereferences anything. Parallel scans chunk this snapshot into
    /// morsels; the caller's guard keeps sweeps from running while workers
    /// chase the handles.
    pub fn snapshot_handles(&self, _guard: &HeapGuard<'_>) -> Vec<Handle<T>> {
        self.inner.items.lock().clone()
    }

    /// Enumerates `(handle, &T)` pairs.
    pub fn for_each_handle(&self, _guard: &HeapGuard<'_>, mut f: impl FnMut(Handle<T>, &T)) -> u64 {
        let items = self.inner.items.lock();
        let mut n = 0;
        for &h in items.iter() {
            if let Some(v) = self.arena.get(h) {
                f(h, v);
                n += 1;
            }
        }
        n
    }

    /// In-place update of one element.
    pub fn update<R>(&self, handle: Handle<T>, f: impl FnOnce(&mut T) -> R) -> Option<R> {
        self.arena.get_mut(handle).map(f)
    }

    /// Elements in the list.
    pub fn len(&self) -> usize {
        self.inner.items.lock().len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The arena holding this list's objects (for cross-collection derefs).
    pub fn arena(&self) -> &Arc<Arena<T>> {
        &self.arena
    }

    /// The backing heap.
    pub fn heap(&self) -> &Arc<ManagedHeap> {
        &self.heap
    }
}

// ---------------------------------------------------------------------
// GcConcurrentBag
// ---------------------------------------------------------------------

struct GcBagInner<T: Trace> {
    shards: Vec<Mutex<Vec<Handle<T>>>>,
}

impl<T: Trace> HeapRoot for GcBagInner<T> {
    fn trace_root(&self, marker: &mut Marker<'_>) {
        for shard in &self.shards {
            for &h in shard.lock().iter() {
                marker.mark(h);
            }
        }
    }
}

/// A `ConcurrentBag<T>`-like collection: thread-sharded insertion, whole-bag
/// enumeration, no removal of specific elements (§7).
pub struct GcConcurrentBag<T: Trace> {
    heap: Arc<ManagedHeap>,
    arena: Arc<Arena<T>>,
    inner: Arc<GcBagInner<T>>,
}

impl<T: Trace> Clone for GcConcurrentBag<T> {
    fn clone(&self) -> Self {
        GcConcurrentBag {
            heap: self.heap.clone(),
            arena: self.arena.clone(),
            inner: self.inner.clone(),
        }
    }
}

impl<T: Trace> GcConcurrentBag<T> {
    /// Creates a bag rooted on `heap`.
    pub fn new(heap: &Arc<ManagedHeap>) -> GcConcurrentBag<T> {
        let inner = Arc::new(GcBagInner {
            shards: (0..DICT_SHARDS).map(|_| Mutex::new(Vec::new())).collect(),
        });
        heap.add_root(Arc::downgrade(&inner) as Weak<dyn HeapRoot>);
        GcConcurrentBag {
            heap: heap.clone(),
            arena: heap.arena::<T>(),
            inner,
        }
    }

    /// Adds a value (thread-safe; shard picked by thread identity hash).
    pub fn add(&self, value: T) -> Handle<T> {
        let h = self.heap.alloc(&self.arena, value);
        let shard = shard_of_thread();
        self.inner.shards[shard].lock().push(h);
        h
    }

    /// Adds an existing handle (shares an object allocated elsewhere).
    pub fn add_handle(&self, h: Handle<T>) {
        self.inner.shards[shard_of_thread()].lock().push(h);
    }

    /// Enumerates every element.
    pub fn for_each(&self, _guard: &HeapGuard<'_>, mut f: impl FnMut(&T)) -> u64 {
        let mut n = 0;
        for shard in &self.inner.shards {
            for &h in shard.lock().iter() {
                if let Some(v) = self.arena.get(h) {
                    f(v);
                    n += 1;
                }
            }
        }
        n
    }

    /// Elements across all shards.
    pub fn len(&self) -> usize {
        self.inner.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

fn shard_of_thread() -> usize {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    std::thread::current().id().hash(&mut h);
    (h.finish() as usize) % DICT_SHARDS
}

// ---------------------------------------------------------------------
// GcConcurrentDictionary
// ---------------------------------------------------------------------

struct GcDictInner<K: Send + Sync + 'static, V: Trace> {
    shards: Vec<Mutex<HashMap<K, Handle<V>>>>,
}

impl<K: Send + Sync + 'static, V: Trace> HeapRoot for GcDictInner<K, V> {
    fn trace_root(&self, marker: &mut Marker<'_>) {
        for shard in &self.shards {
            for &h in shard.lock().values() {
                marker.mark(h);
            }
        }
    }
}

/// A `ConcurrentDictionary<TKey, TValue>`-like collection: sharded hash map
/// from keys to managed objects, with keyed removal — the paper's only
/// functionally comparable thread-safe baseline (§7).
pub struct GcConcurrentDictionary<K: Eq + Hash + Send + Sync + 'static, V: Trace> {
    heap: Arc<ManagedHeap>,
    arena: Arc<Arena<V>>,
    inner: Arc<GcDictInner<K, V>>,
}

impl<K: Eq + Hash + Send + Sync + 'static, V: Trace> Clone for GcConcurrentDictionary<K, V> {
    fn clone(&self) -> Self {
        GcConcurrentDictionary {
            heap: self.heap.clone(),
            arena: self.arena.clone(),
            inner: self.inner.clone(),
        }
    }
}

impl<K: Eq + Hash + Send + Sync + 'static, V: Trace> GcConcurrentDictionary<K, V> {
    /// Creates a dictionary rooted on `heap`.
    pub fn new(heap: &Arc<ManagedHeap>) -> GcConcurrentDictionary<K, V> {
        let inner = Arc::new(GcDictInner {
            shards: (0..DICT_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        });
        heap.add_root(Arc::downgrade(&inner) as Weak<dyn HeapRoot>);
        GcConcurrentDictionary {
            heap: heap.clone(),
            arena: heap.arena::<V>(),
            inner,
        }
    }

    fn shard(&self, key: &K) -> usize {
        use std::hash::Hasher;
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() as usize) % DICT_SHARDS
    }

    /// Inserts (or replaces) the value under `key`.
    pub fn insert(&self, key: K, value: V) -> Handle<V> {
        let h = self.heap.alloc(&self.arena, value);
        let shard = self.shard(&key);
        self.inner.shards[shard].lock().insert(key, h);
        h
    }

    /// Registers an existing handle under `key` (shares an object already
    /// allocated by another collection on the same heap).
    pub fn insert_handle(&self, key: K, h: Handle<V>) {
        let shard = self.shard(&key);
        self.inner.shards[shard].lock().insert(key, h);
    }

    /// Removes the value under `key`.
    pub fn remove(&self, key: &K) -> bool {
        let shard = self.shard(key);
        self.inner.shards[shard].lock().remove(key).is_some()
    }

    /// Dereferences the value under `key`.
    pub fn get<'g>(&self, key: &K, _guard: &'g HeapGuard<'_>) -> Option<&'g V> {
        let shard = self.shard(key);
        let h = *self.inner.shards[shard].lock().get(key)?;
        // SAFETY of lifetime: the guard pins the world.
        unsafe { std::mem::transmute::<Option<&V>, Option<&'g V>>(self.arena.get(h)) }
    }

    /// Enumerates every value.
    pub fn for_each(&self, _guard: &HeapGuard<'_>, mut f: impl FnMut(&V)) -> u64 {
        let mut n = 0;
        for shard in &self.inner.shards {
            for &h in shard.lock().values() {
                if let Some(v) = self.arena.get(h) {
                    f(v);
                    n += 1;
                }
            }
        }
        n
    }

    /// Removes every entry whose value satisfies `pred`; returns the count.
    pub fn remove_where(&self, _guard: &HeapGuard<'_>, mut pred: impl FnMut(&V) -> bool) -> usize {
        let mut removed = 0;
        for shard in &self.inner.shards {
            let mut map = shard.lock();
            let before = map.len();
            map.retain(|_, h| match self.arena.get(*h) {
                Some(v) => !pred(v),
                None => false,
            });
            removed += before - map.len();
        }
        removed
    }

    /// Entries across all shards.
    pub fn len(&self) -> usize {
        self.inner.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The arena holding this dictionary's objects.
    pub fn arena(&self) -> &Arc<Arena<V>> {
        &self.arena
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heap::HeapConfig;

    fn heap() -> Arc<ManagedHeap> {
        ManagedHeap::new(HeapConfig {
            nursery_budget: 2000,
            ..HeapConfig::default()
        })
    }

    #[test]
    fn list_add_get_remove() {
        let heap = heap();
        let list: GcList<u64> = GcList::new(&heap);
        let h = list.add(5);
        {
            let g = heap.enter();
            assert_eq!(list.get(h, &g), Some(&5));
        }
        assert!(list.remove(h));
        assert!(!list.remove(h));
        assert_eq!(list.len(), 0);
        // After collection the object is gone from the arena too.
        heap.collect_full();
        let g = heap.enter();
        assert_eq!(list.get(h, &g), None);
    }

    #[test]
    fn list_survives_gc_while_rooted() {
        let heap = heap();
        let list: GcList<u64> = GcList::new(&heap);
        for i in 0..10_000 {
            list.add(i);
        }
        // Many collections ran (budget 2000); everything stays reachable.
        assert!(heap.collections() > 0);
        let g = heap.enter();
        let mut sum = 0u64;
        list.for_each(&g, |v| sum += v);
        assert_eq!(sum, (0..10_000).sum());
    }

    #[test]
    fn list_remove_where_matches_predicate() {
        let heap = heap();
        let list: GcList<u64> = GcList::new(&heap);
        for i in 0..100 {
            list.add(i);
        }
        let g = heap.enter();
        let removed = list.remove_where(&g, |v| v % 10 == 0);
        assert_eq!(removed, 10);
        assert_eq!(list.len(), 90);
    }

    #[test]
    fn bag_concurrent_adds() {
        let heap = heap();
        let bag: GcConcurrentBag<u64> = GcConcurrentBag::new(&heap);
        let mut joins = Vec::new();
        for t in 0..4u64 {
            let bag = bag.clone();
            joins.push(std::thread::spawn(move || {
                for i in 0..5000 {
                    bag.add(t * 10_000 + i);
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(bag.len(), 20_000);
        let g = heap.enter();
        let mut n = 0;
        bag.for_each(&g, |_| n += 1);
        assert_eq!(n, 20_000);
    }

    #[test]
    fn dictionary_keyed_operations() {
        let heap = heap();
        let dict: GcConcurrentDictionary<u64, u64> = GcConcurrentDictionary::new(&heap);
        for i in 0..1000 {
            dict.insert(i, i * 2);
        }
        {
            let g = heap.enter();
            assert_eq!(dict.get(&500, &g), Some(&1000));
        }
        assert!(dict.remove(&500));
        assert!(!dict.remove(&500));
        assert_eq!(dict.len(), 999);
        heap.collect_full();
        let g = heap.enter();
        assert_eq!(dict.get(&500, &g), None);
        assert_eq!(dict.get(&501, &g), Some(&1002));
    }

    #[test]
    fn dictionary_remove_where() {
        let heap = heap();
        let dict: GcConcurrentDictionary<u64, u64> = GcConcurrentDictionary::new(&heap);
        for i in 0..200 {
            dict.insert(i, i);
        }
        let g = heap.enter();
        let removed = dict.remove_where(&g, |v| *v < 50);
        assert_eq!(removed, 50);
        assert_eq!(dict.len(), 150);
    }

    #[test]
    fn dropped_collection_unroots_its_objects() {
        let heap = heap();
        let arena = heap.arena::<u64>();
        {
            let list: GcList<u64> = GcList::new(&heap);
            for i in 0..500 {
                list.add(i);
            }
            heap.collect_full();
            assert_eq!(arena.live(), 500);
        }
        // List dropped: weak root dies, objects become garbage.
        heap.collect_full();
        assert_eq!(arena.live(), 0);
    }
}
