//! Micro-benchmarks for the core mechanisms: allocation, free, dereference
//! (checked vs direct), epoch pinning, enumeration per layout, and
//! compaction. These complement the figure binaries with per-operation
//! costs.
//!
//! Dependency-free harness (`harness = false`): each benchmark runs a warmup
//! pass and then reports the median of several timed batches. Run with
//! `cargo bench --bench micro`.

use std::hint::black_box;
use std::time::Instant;

use smc::{ContextConfig, Smc};
use smc_memory::{Decimal, Runtime, Tabular};

#[derive(Clone, Copy)]
#[allow(dead_code)]
struct Row {
    key: u64,
    price: Decimal,
    pad: [u64; 12],
}
unsafe impl Tabular for Row {}

fn row(i: u64) -> Row {
    Row {
        key: i,
        price: Decimal::from_cents(i as i64),
        pad: [i; 12],
    }
}

/// Times `iters` calls of `f` per batch, over `batches` batches, and prints
/// the median per-op cost in nanoseconds.
fn report<R>(name: &str, batches: usize, iters: u64, mut f: impl FnMut() -> R) {
    // Warmup.
    for _ in 0..iters.min(10_000) {
        black_box(f());
    }
    let mut per_op: Vec<f64> = (0..batches)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            start.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    per_op.sort_by(|a, b| a.total_cmp(b));
    println!(
        "{name:<28} {:>12.1} ns/op  (median of {batches} x {iters})",
        per_op[batches / 2]
    );
}

fn bench_alloc_free() {
    {
        let rt = Runtime::new();
        let col: Smc<Row> = Smc::new(&rt);
        let mut i = 0u64;
        report("alloc_free/smc_add", 9, 100_000, || {
            i += 1;
            col.add(row(i))
        });
    }
    {
        let rt = Runtime::new();
        let col: Smc<Row> = Smc::new(&rt);
        let mut i = 0u64;
        report("alloc_free/smc_add_remove", 9, 100_000, || {
            i += 1;
            let r = col.add(row(i));
            col.remove(r)
        });
    }
}

fn bench_deref() {
    let rt = Runtime::new();
    let col: Smc<Row> = Smc::new(&rt);
    let refs: Vec<_> = (0..10_000u64).map(|i| col.add(row(i))).collect();
    let guard = rt.pin();
    let directs: Vec<_> = refs.iter().map(|r| r.to_direct(&guard).unwrap()).collect();
    let mut i = 0usize;
    report("deref/checked_ref", 9, 1_000_000, || {
        i = (i + 1) % refs.len();
        refs[i].get(&guard).unwrap().key
    });
    report("deref/direct_ref", 9, 1_000_000, || {
        i = (i + 1) % directs.len();
        directs[i].get(&guard).unwrap().key
    });
    drop(guard);
}

fn bench_epoch() {
    let rt = Runtime::new();
    report("epoch_pin_unpin", 9, 1_000_000, || rt.pin());
}

fn bench_enumeration() {
    let rt = Runtime::new();
    let col: Smc<Row> = Smc::new(&rt);
    for i in 0..100_000u64 {
        col.add(row(i));
    }
    report("enumerate_100k/for_each", 9, 10, || {
        let guard = rt.pin();
        let mut acc = 0u64;
        col.for_each(&guard, |r| acc = acc.wrapping_add(r.key));
        acc
    });
    report("enumerate_100k/iter_refs", 9, 10, || {
        let guard = rt.pin();
        col.iter(&guard)
            .map(|(_, r)| r.key)
            .fold(0u64, u64::wrapping_add)
    });
}

fn bench_compaction() {
    // Setup is excluded from timing: build a fresh sparse collection per
    // iteration, time only the compact + release.
    let mut samples: Vec<f64> = (0..9)
        .map(|_| {
            let rt = Runtime::new();
            let cfg = ContextConfig {
                reclamation_threshold: 1.1,
                ..ContextConfig::default()
            };
            let col: Smc<Row> = Smc::with_config(&rt, cfg);
            let cap = col.context().layout().capacity as u64;
            let refs: Vec<_> = (0..cap * 3).map(|i| col.add(row(i))).collect();
            for (i, r) in refs.iter().enumerate() {
                if i % 10 != 0 {
                    col.remove(*r);
                }
            }
            let start = Instant::now();
            let rep = col.compact();
            col.release_retired();
            black_box(rep.moved);
            start.elapsed().as_nanos() as f64
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    println!(
        "{:<28} {:>12.1} ns/op  (median of 9 x 1)",
        "compact_3_sparse_blocks", samples[4]
    );
}

fn main() {
    bench_alloc_free();
    bench_deref();
    bench_epoch();
    bench_enumeration();
    bench_compaction();
}
