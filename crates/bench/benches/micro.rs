//! Criterion micro-benchmarks for the core mechanisms: allocation, free,
//! dereference (checked vs direct), epoch pinning, enumeration per layout,
//! and compaction. These complement the figure binaries with
//! statistically-sound per-operation costs.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use smc::{ContextConfig, Smc};
use smc_memory::{Decimal, Runtime, Tabular};

#[derive(Clone, Copy)]
#[allow(dead_code)]
struct Row {
    key: u64,
    price: Decimal,
    pad: [u64; 12],
}
unsafe impl Tabular for Row {}

fn row(i: u64) -> Row {
    Row { key: i, price: Decimal::from_cents(i as i64), pad: [i; 12] }
}

fn bench_alloc_free(c: &mut Criterion) {
    let mut g = c.benchmark_group("alloc_free");
    g.throughput(Throughput::Elements(1));
    g.bench_function("smc_add", |b| {
        let rt = Runtime::new();
        let col: Smc<Row> = Smc::new(&rt);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            col.add(row(i))
        });
    });
    g.bench_function("smc_add_remove", |b| {
        let rt = Runtime::new();
        let col: Smc<Row> = Smc::new(&rt);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let r = col.add(row(i));
            col.remove(r)
        });
    });
    g.finish();
}

fn bench_deref(c: &mut Criterion) {
    let rt = Runtime::new();
    let col: Smc<Row> = Smc::new(&rt);
    let refs: Vec<_> = (0..10_000u64).map(|i| col.add(row(i))).collect();
    let guard = rt.pin();
    let directs: Vec<_> = refs.iter().map(|r| r.to_direct(&guard).unwrap()).collect();
    let mut g = c.benchmark_group("deref");
    g.throughput(Throughput::Elements(1));
    let mut i = 0usize;
    g.bench_function("checked_ref", |b| {
        b.iter(|| {
            i = (i + 1) % refs.len();
            refs[i].get(&guard).unwrap().key
        })
    });
    g.bench_function("direct_ref", |b| {
        b.iter(|| {
            i = (i + 1) % directs.len();
            directs[i].get(&guard).unwrap().key
        })
    });
    g.finish();
    drop(guard);
}

fn bench_epoch(c: &mut Criterion) {
    let rt = Runtime::new();
    c.bench_function("epoch_pin_unpin", |b| b.iter(|| rt.pin()));
}

fn bench_enumeration(c: &mut Criterion) {
    let rt = Runtime::new();
    let col: Smc<Row> = Smc::new(&rt);
    for i in 0..100_000u64 {
        col.add(row(i));
    }
    let mut g = c.benchmark_group("enumerate_100k");
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("for_each", |b| {
        b.iter(|| {
            let guard = rt.pin();
            let mut acc = 0u64;
            col.for_each(&guard, |r| acc = acc.wrapping_add(r.key));
            acc
        })
    });
    g.bench_function("iter_refs", |b| {
        b.iter(|| {
            let guard = rt.pin();
            col.iter(&guard).map(|(_, r)| r.key).fold(0u64, u64::wrapping_add)
        })
    });
    g.finish();
}

fn bench_compaction(c: &mut Criterion) {
    c.bench_function("compact_3_sparse_blocks", |b| {
        b.iter_batched(
            || {
                let rt = Runtime::new();
                let mut cfg = ContextConfig::default();
                cfg.reclamation_threshold = 1.1;
                let col: Smc<Row> = Smc::with_config(&rt, cfg);
                let cap = col.context().layout().capacity as u64;
                let refs: Vec<_> = (0..cap * 3).map(|i| col.add(row(i))).collect();
                for (i, r) in refs.iter().enumerate() {
                    if i % 10 != 0 {
                        col.remove(*r);
                    }
                }
                (rt, col)
            },
            |(_rt, col)| {
                let rep = col.compact();
                col.release_retired();
                rep.moved
            },
            BatchSize::LargeInput,
        )
    });
}

fn config() -> Criterion {
    Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_alloc_free, bench_deref, bench_epoch, bench_enumeration, bench_compaction
}
criterion_main!(benches);
