//! # smc-bench — the figure-regeneration harness
//!
//! One binary per evaluation figure (`fig06` … `fig13`); each prints the
//! figure's series as an aligned table plus machine-readable CSV lines
//! prefixed with `csv,`. EXPERIMENTS.md records the paper-vs-measured
//! comparison produced by these binaries.
//!
//! Common conventions:
//! * `--sf <f>` sets the TPC-H scale factor where applicable (default is a
//!   laptop-friendly size; the paper's SF 3 is reachable but slow).
//! * Timings are medians of several runs after a warm-up run.

#![warn(missing_docs)]

use std::path::PathBuf;
use std::time::{Duration, Instant};

use smc_memory::MemoryStats;

pub use smc_obs::{JsonValue, Report, SeriesId};

/// Enables the structured tracer when `SMC_TRACE_OUT` names a destination
/// file, returning that path. Call at the top of `main`, before the
/// workload; [`finish`] (or [`export_trace`]) later drains the rings into a
/// Chrome `trace_event` file at the path. A no-op returning `None` when the
/// variable is unset, so the disabled-tracer fast path stays untouched.
pub fn init_tracing() -> Option<PathBuf> {
    let path = std::env::var_os("SMC_TRACE_OUT")?;
    smc_obs::trace::enable();
    Some(PathBuf::from(path))
}

/// Drains the trace rings into the Chrome trace file named by
/// `SMC_TRACE_OUT` (no-op when unset) and records the `trace_events` /
/// `trace_events_dropped` counters in the report — the pair
/// `scripts/bench_gate.py` cross-checks (zero events with non-zero drops
/// means the whole story was overwritten). Called by [`finish`]; call
/// directly only from binaries that do not end through `finish`.
pub fn export_trace(report: &mut Report) {
    let Some(path) = std::env::var_os("SMC_TRACE_OUT") else {
        return;
    };
    let trace = smc_obs::ChromeTrace::from_ring_snapshot();
    report.counter("trace_events", trace.len() as u64);
    report.counter("trace_events_dropped", smc_obs::trace::dropped());
    // Itemize the drops per ring so a lossy trace names the thread that
    // overflowed rather than one opaque total (mirrors the per-ring
    // metadata records the Chrome export carries).
    let by_thread = smc_obs::trace::dropped_by_thread();
    if !by_thread.is_empty() {
        let id = report.series("trace_drops_by_thread", &["thread", "dropped"]);
        for (thread, dropped) in by_thread {
            report.push_row(
                id,
                vec![
                    JsonValue::Num(thread as f64),
                    JsonValue::Num(dropped as f64),
                ],
            );
        }
    }
    let path = PathBuf::from(path);
    match trace.write(&path) {
        Ok(()) => println!("trace: {}", path.display()),
        Err(e) => eprintln!("failed to write trace {}: {e}", path.display()),
    }
}

/// Records the reader-side [`MemoryStats`] counters every report carries
/// (`pins_taken`, `blocks_scanned`, `morsels_dispatched`) — the shared
/// schema path `scripts/bench_gate.py` validates. Binaries without an
/// off-heap runtime record explicit zeros via [`record_zero_memory_counters`]
/// so the gate can rely on the keys existing.
pub fn record_memory_counters(report: &mut Report, stats: &MemoryStats) {
    report.counter("pins_taken", MemoryStats::get(&stats.pins_taken));
    report.counter("blocks_scanned", MemoryStats::get(&stats.blocks_scanned));
    report.counter(
        "morsels_dispatched",
        MemoryStats::get(&stats.morsels_dispatched),
    );
}

/// The [`record_memory_counters`] keys, as zeros, for benchmarks that never
/// touch an off-heap runtime (e.g. managed-heap-only figures).
pub fn record_zero_memory_counters(report: &mut Report) {
    report.counter("pins_taken", 0);
    report.counter("blocks_scanned", 0);
    report.counter("morsels_dispatched", 0);
}

/// Median-of-`runs` wall time of `f`, after one warm-up call. The return
/// value of `f` is black-boxed so the computation cannot be optimized out.
pub fn time_median<R>(runs: usize, mut f: impl FnMut() -> R) -> Duration {
    std::hint::black_box(f()); // warm-up
    let mut samples: Vec<Duration> = (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(f());
            t0.elapsed()
        })
        .collect();
    samples.sort();
    samples[samples.len() / 2]
}

/// Wall time of a single call.
pub fn time_once<R>(mut f: impl FnMut() -> R) -> Duration {
    let t0 = Instant::now();
    std::hint::black_box(f());
    t0.elapsed()
}

/// Parses `--name value` from argv, with a default.
pub fn arg_f64(name: &str, default: f64) -> f64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Parses an integer `--name value`.
pub fn arg_usize(name: &str, default: usize) -> usize {
    arg_f64(name, default as f64) as usize
}

/// True if the flag is present.
pub fn arg_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

/// Prints a CSV record with the `csv,` prefix the harness greps for.
pub fn csv(fields: &[&str]) {
    println!("csv,{}", fields.join(","));
}

/// Prints the `csv,` record *and* mirrors it as a row of the report series:
/// fields that parse as numbers become JSON numbers, the rest strings. This
/// keeps the human CSV and `BENCH_fig<N>.json` in lock-step by construction.
pub fn csv_into(report: &mut Report, id: SeriesId, fields: &[&str]) {
    csv(fields);
    let row = fields
        .iter()
        .map(|f| match f.parse::<f64>() {
            Ok(v) => JsonValue::Num(v),
            Err(_) => JsonValue::Str(f.to_string()),
        })
        .collect();
    report.push_row(id, row);
}

/// Writes the report JSON (even when checks failed — that is the point:
/// CI inspects the artifact) and returns the process exit code: 0 when all
/// checks passed, 1 on check failure, 2 when the report could not be
/// written.
pub fn write_report(report: &Report) -> i32 {
    match report.write() {
        Ok(path) => println!("report: {}", path.display()),
        Err(e) => {
            eprintln!("failed to write report: {e}");
            return 2;
        }
    }
    let failed = report.failed_checks();
    if failed.is_empty() {
        0
    } else {
        for (name, detail) in &failed {
            eprintln!("CHECK FAILED: {name}: {detail}");
        }
        1
    }
}

/// Exports the Chrome trace (when `SMC_TRACE_OUT` is set), then writes the
/// report and exits with [`write_report`]'s code. Every fig binary ends
/// through here so a parity failure both leaves a JSON artifact and fails
/// the process — and every bench emits its trace file alongside
/// `BENCH_*.json` with no per-binary wiring.
pub fn finish(report: &mut Report) -> ! {
    export_trace(report);
    std::process::exit(write_report(report))
}

/// Graceful-shutdown signal handling for long-running binaries (`stress`,
/// `smc-top`, `fig15_soak`): [`install_signal_handler`] registers an
/// async-signal-safe handler for SIGINT and SIGTERM that only sets a flag;
/// the main loop polls [`interrupted`] and winds down in order — quiesce the
/// maintenance coordinator, drain the tracer rings to `SMC_TRACE_OUT`, write
/// the report — instead of dying mid-pass. Zero dependencies: the handler is
/// registered through libc's `signal`, which Rust's std already links.
#[cfg(unix)]
mod signals {
    use std::sync::atomic::{AtomicBool, Ordering};

    static INTERRUPTED: AtomicBool = AtomicBool::new(false);
    static USR1: AtomicBool = AtomicBool::new(false);

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // Only an atomic store: the full shutdown runs on the main thread.
        INTERRUPTED.store(true, Ordering::Relaxed);
    }

    extern "C" fn on_usr1(_signum: i32) {
        USR1.store(true, Ordering::Relaxed);
    }

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    // SIGUSR1 is 10 on Linux but 30 on the BSD lineage (macOS included).
    #[cfg(target_os = "linux")]
    const SIGUSR1: i32 = 10;
    #[cfg(not(target_os = "linux"))]
    const SIGUSR1: i32 = 30;

    /// Routes SIGINT and SIGTERM to a flag instead of process abort.
    pub fn install_signal_handler() {
        unsafe {
            let handler = on_signal as *const () as usize;
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }

    /// Routes SIGUSR1 to a separate flag; the main loop polls
    /// [`usr1_requested`] and dumps the flight recorder — the handler itself
    /// only stores, so it stays async-signal-safe.
    pub fn install_usr1_handler() {
        unsafe {
            signal(SIGUSR1, on_usr1 as *const () as usize);
        }
    }

    /// True once SIGINT or SIGTERM has been received.
    pub fn interrupted() -> bool {
        INTERRUPTED.load(Ordering::Relaxed)
    }

    /// Drains the SIGUSR1 flag: true exactly once per delivered signal.
    pub fn usr1_requested() -> bool {
        USR1.swap(false, Ordering::Relaxed)
    }
}

#[cfg(not(unix))]
mod signals {
    /// No-op on non-unix targets: the default ^C behavior applies.
    pub fn install_signal_handler() {}

    /// No-op on non-unix targets: there is no SIGUSR1.
    pub fn install_usr1_handler() {}

    /// Always false on non-unix targets.
    pub fn interrupted() -> bool {
        false
    }

    /// Always false on non-unix targets.
    pub fn usr1_requested() -> bool {
        false
    }
}

pub use signals::{install_signal_handler, install_usr1_handler, interrupted, usr1_requested};

/// Formats a duration as fractional milliseconds.
pub fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

/// Throughput in million ops per second.
pub fn mops(ops: u64, d: Duration) -> f64 {
    ops as f64 / d.as_secs_f64() / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_orders_samples() {
        let mut calls = 0;
        let d = time_median(3, || calls += 1);
        assert_eq!(calls, 4, "warmup + runs");
        assert!(d >= Duration::ZERO);
    }

    #[test]
    fn mops_math() {
        assert!((mops(2_000_000, Duration::from_secs(1)) - 2.0).abs() < 1e-9);
    }
}
