//! Figure 13: SMC variants against the in-memory columnar RDBMS baseline
//! (the SQL Server 2014 stand-in), ratios relative to the RDBMS.
//!
//! The expected shape (§7): the RDBMS wins queries its clustered date
//! indexes prune hard (notably Q6); the SMC variants win the join-heavy
//! queries thanks to reference joins.

use smc_bench::{
    arg_f64, csv, csv_into, finish, init_tracing, ms, record_memory_counters, time_median, Report,
};
use tpch::csdb::CsDb;
use tpch::queries::{cs_q, smc_q, Params};
use tpch::smcdb::SmcDb;
use tpch::Generator;

fn main() {
    init_tracing();
    let sf = arg_f64("--sf", 0.05);
    let gen = Generator::new(sf);
    let p = Params::default();
    println!("Figure 13: vs the columnstore RDBMS (SF {sf}); ratios relative to RDBMS");
    let smc = SmcDb::load(&gen, true);
    let cs = CsDb::load(&gen);
    println!(
        "{:>6} {:>11} {:>12} {:>14} {:>13} {:>15}",
        "query", "RDBMS ms", "direct ms", "columnar ms", "direct/RDBMS", "columnar/RDBMS"
    );
    let columns = ["query", "rdbms_ms", "smc_direct_ms", "smc_columnar_ms"];
    let mut report = Report::new("fig13", "SMC vs the columnstore RDBMS baseline");
    report.param("sf", sf);
    let sid = report.series("vs_rdbms", &columns);
    csv(&columns);
    for q in 1..=6u32 {
        let t_cs = time_median(3, || match q {
            1 => std::hint::black_box(cs_q::q1(&cs, &p)).len(),
            2 => std::hint::black_box(cs_q::q2(&cs, &p)).len(),
            3 => std::hint::black_box(cs_q::q3(&cs, &p)).len(),
            4 => std::hint::black_box(cs_q::q4(&cs, &p)).len(),
            5 => std::hint::black_box(cs_q::q5(&cs, &p)).len(),
            _ => {
                std::hint::black_box(cs_q::q6(&cs, &p));
                0
            }
        });
        let t_direct = time_median(3, || match q {
            1 => std::hint::black_box(smc_q::q1_unsafe(&smc, &p)).len(),
            2 => std::hint::black_box(smc_q::q2(&smc, &p)).len(),
            3 => std::hint::black_box(smc_q::q3_direct(&smc, &p)).len(),
            4 => std::hint::black_box(smc_q::q4_direct(&smc, &p)).len(),
            5 => std::hint::black_box(smc_q::q5_direct(&smc, &p)).len(),
            _ => {
                std::hint::black_box(smc_q::q6(&smc, &p));
                0
            }
        });
        let t_col = time_median(3, || match q {
            1 => std::hint::black_box(smc_q::q1_columnar(&smc, &p)).len(),
            2 => std::hint::black_box(smc_q::q2(&smc, &p)).len(),
            3 => std::hint::black_box(smc_q::q3_columnar(&smc, &p)).len(),
            4 => std::hint::black_box(smc_q::q4_direct(&smc, &p)).len(),
            5 => std::hint::black_box(smc_q::q5_columnar(&smc, &p)).len(),
            _ => {
                std::hint::black_box(smc_q::q6_columnar(&smc, &p));
                0
            }
        });
        let rel = |t: std::time::Duration| t.as_secs_f64() / t_cs.as_secs_f64();
        println!(
            "{:>6} {:>11} {:>12} {:>14} {:>13.2} {:>15.2}",
            format!("Q{q}"),
            ms(t_cs),
            ms(t_direct),
            ms(t_col),
            rel(t_direct),
            rel(t_col)
        );
        csv_into(
            &mut report,
            sid,
            &[&format!("Q{q}"), &ms(t_cs), &ms(t_direct), &ms(t_col)],
        );
    }
    report.histogram("query_latency_ns", &tpch::queries::QUERY_LATENCY_NS);
    report.check(
        "query_spans_recorded",
        tpch::queries::QUERY_LATENCY_NS.count() > 0,
        "per-query spans recorded",
    );
    record_memory_counters(&mut report, &smc.runtime.stats);
    finish(&mut report);
}
