//! Figure 6: sensitivity to the reclamation (occupancy) threshold.
//!
//! Sweeps the limbo-slot threshold and reports, normalized to each series'
//! maximum (as the paper plots them): allocation/removal performance,
//! query (enumeration) performance, and total memory size.

use std::time::Duration;

use smc::{ContextConfig, Smc};
use smc_bench::{arg_usize, csv, csv_into, finish, init_tracing, time_median, Report};
use smc_memory::{MemoryStats, Runtime, Tabular};

#[derive(Clone, Copy)]
struct Row {
    key: u64,
    #[allow(dead_code)]
    payload: [u64; 16], // ~lineitem-sized object (136 bytes + key)
}
unsafe impl Tabular for Row {}

/// Reader-side counters of one run's runtime, summed into the report at the
/// end (each threshold gets a fresh [`Runtime`]).
fn run_counters(rt: &Runtime) -> [u64; 3] {
    [
        MemoryStats::get(&rt.stats.pins_taken),
        MemoryStats::get(&rt.stats.blocks_scanned),
        MemoryStats::get(&rt.stats.morsels_dispatched),
    ]
}

fn run_at_threshold(threshold: f64, n: usize, churn_rounds: usize) -> (f64, f64, f64, [u64; 3]) {
    let rt = Runtime::new();
    let config = ContextConfig {
        reclamation_threshold: threshold,
        ..ContextConfig::default()
    };
    let c: Smc<Row> = Smc::with_config(&rt, config);
    let mut refs = Vec::with_capacity(n);
    for i in 0..n {
        refs.push(c.add(Row {
            key: i as u64,
            payload: [i as u64; 16],
        }));
    }
    // Churn phase: measure combined remove+insert throughput. Removal
    // pattern is strided so limbo slots spread across blocks.
    let churn_time = time_median(3, || {
        for round in 0..churn_rounds {
            let stride = 7 + round;
            let mut i = round % stride;
            let mut removed = Vec::new();
            while i < refs.len() {
                if c.remove(refs[i]) {
                    removed.push(i);
                }
                i += stride;
            }
            for &slot in &removed {
                refs[slot] = c.add(Row {
                    key: slot as u64,
                    payload: [slot as u64; 16],
                });
            }
        }
    });
    // Query phase: enumeration with a cheap fold.
    let query_time = time_median(3, || {
        let g = rt.pin();
        let mut acc = 0u64;
        c.for_each(&g, |r| acc = acc.wrapping_add(r.key));
        std::hint::black_box(acc);
    });
    let memory = c.memory_bytes() as f64;
    (
        churn_ops(n, churn_rounds) / churn_time.as_secs_f64(),
        1.0 / query_time.as_secs_f64(),
        memory,
        run_counters(&rt),
    )
}

fn churn_ops(n: usize, rounds: usize) -> f64 {
    // Approximate: each round touches ~n/stride objects twice.
    (0..rounds).map(|r| 2.0 * n as f64 / (7 + r) as f64).sum()
}

fn main() {
    init_tracing();
    let n = arg_usize("--objects", 200_000);
    let rounds = arg_usize("--rounds", 6);
    println!("Figure 6: varying the reclamation threshold ({n} objects, {rounds} churn rounds)");
    println!(
        "{:>10} {:>18} {:>18} {:>14}",
        "threshold", "alloc/remove", "query perf", "memory"
    );
    let thresholds = [
        0.01, 0.02, 0.05, 0.10, 0.20, 0.30, 0.40, 0.50, 0.70, 0.90, 0.99,
    ];
    let mut counters = [0u64; 3];
    let results: Vec<(f64, f64, f64, f64)> = thresholds
        .iter()
        .map(|&t| {
            let (a, q, m, runtime_counters) = run_at_threshold(t, n, rounds);
            for (acc, c) in counters.iter_mut().zip(runtime_counters) {
                *acc += c;
            }
            (t, a, q, m)
        })
        .collect();
    let max_a = results.iter().map(|r| r.1).fold(0.0, f64::max);
    let max_q = results.iter().map(|r| r.2).fold(0.0, f64::max);
    let max_m = results.iter().map(|r| r.3).fold(0.0, f64::max);
    let mut report = Report::new("fig06", "Sensitivity to the reclamation threshold");
    report.param("objects", n as u64);
    report.param("churn_rounds", rounds as u64);
    let columns = [
        "threshold_pct",
        "alloc_removal_norm",
        "query_norm",
        "memory_norm",
    ];
    let sid = report.series("threshold_sweep", &columns);
    csv(&columns);
    for (t, a, q, m) in results {
        let (an, qn, mn) = (a / max_a, q / max_q, m / max_m);
        println!("{:>9.0}% {:>18.3} {:>18.3} {:>14.3}", t * 100.0, an, qn, mn);
        csv_into(
            &mut report,
            sid,
            &[
                &format!("{:.0}", t * 100.0),
                &format!("{an:.4}"),
                &format!("{qn:.4}"),
                &format!("{mn:.4}"),
            ],
        );
    }
    report.check(
        "series_nonempty",
        max_a > 0.0 && max_q > 0.0 && max_m > 0.0,
        format!("series maxima: alloc={max_a:.3} query={max_q:.3} memory={max_m:.3}"),
    );
    report.counter("pins_taken", counters[0]);
    report.counter("blocks_scanned", counters[1]);
    report.counter("morsels_dispatched", counters[2]);
    let _ = Duration::ZERO;
    finish(&mut report);
}
