//! Figure 7: batch allocation throughput (allocations per second, in
//! millions) for 1/2/4 threads.
//!
//! Series, as in the paper: pure managed allocation (objects kept reachable
//! from pre-allocated thread-local roots) under interactive and batch GC;
//! `ConcurrentBag` and `ConcurrentDictionary` under both GC modes; and the
//! SMC (whose behaviour does not depend on a GC mode).

use std::sync::Arc;

use managed_heap::{
    GcConcurrentBag, GcConcurrentDictionary, GcList, GcMode, HeapConfig, ManagedHeap, Trace,
};
use smc::Smc;
use smc_bench::{arg_usize, csv, csv_into, finish, init_tracing, mops, time_once, Report};
use smc_memory::{MemoryStats, Runtime, Tabular};

#[derive(Clone, Copy)]
#[allow(dead_code)]
struct Line {
    key: u64,
    payload: [u64; 16],
}
unsafe impl Tabular for Line {}

#[allow(dead_code)]
struct GcLine {
    key: u64,
    payload: [u64; 16],
}
impl Trace for GcLine {}

fn heap(mode: GcMode) -> Arc<ManagedHeap> {
    ManagedHeap::new(HeapConfig {
        mode,
        ..HeapConfig::default()
    })
}

fn run_threads(
    threads: usize,
    per_thread: usize,
    f: impl Fn(usize) + Send + Sync,
) -> std::time::Duration {
    time_once(|| {
        std::thread::scope(|s| {
            for t in 0..threads {
                let f = &f;
                s.spawn(move || f(t));
            }
        });
    })
    .max(std::time::Duration::from_nanos(
        per_thread as u64 / 1_000_000 + 1,
    ))
}

fn bench_pure_alloc(mode: GcMode, threads: usize, per_thread: usize) -> f64 {
    let heap = heap(mode);
    // Pre-allocated thread-local roots keep every object reachable (§7 fn 3).
    let roots: Vec<GcList<GcLine>> = (0..threads).map(|_| GcList::new(&heap)).collect();
    let d = run_threads(threads, per_thread, |t| {
        let list = &roots[t];
        for i in 0..per_thread {
            list.add(GcLine {
                key: i as u64,
                payload: [i as u64; 16],
            });
        }
    });
    mops((threads * per_thread) as u64, d)
}

fn bench_bag(mode: GcMode, threads: usize, per_thread: usize) -> f64 {
    let heap = heap(mode);
    let bag: GcConcurrentBag<GcLine> = GcConcurrentBag::new(&heap);
    let d = run_threads(threads, per_thread, |t| {
        for i in 0..per_thread {
            bag.add(GcLine {
                key: (t * per_thread + i) as u64,
                payload: [i as u64; 16],
            });
        }
    });
    mops((threads * per_thread) as u64, d)
}

fn bench_dict(mode: GcMode, threads: usize, per_thread: usize) -> f64 {
    let heap = heap(mode);
    let dict: GcConcurrentDictionary<u64, GcLine> = GcConcurrentDictionary::new(&heap);
    let d = run_threads(threads, per_thread, |t| {
        for i in 0..per_thread {
            let key = (t * per_thread + i) as u64;
            dict.insert(
                key,
                GcLine {
                    key,
                    payload: [i as u64; 16],
                },
            );
        }
    });
    mops((threads * per_thread) as u64, d)
}

fn bench_smc(threads: usize, per_thread: usize) -> (f64, [u64; 3]) {
    let rt = Runtime::new();
    let c: Smc<Line> = Smc::new(&rt);
    let d = run_threads(threads, per_thread, |t| {
        for i in 0..per_thread {
            c.add(Line {
                key: (t * per_thread + i) as u64,
                payload: [i as u64; 16],
            });
        }
    });
    let counters = [
        MemoryStats::get(&rt.stats.pins_taken),
        MemoryStats::get(&rt.stats.blocks_scanned),
        MemoryStats::get(&rt.stats.morsels_dispatched),
    ];
    (mops((threads * per_thread) as u64, d), counters)
}

fn main() {
    init_tracing();
    let per_thread = arg_usize("--objects", 1_000_000);
    println!("Figure 7: allocation throughput (millions of lineitem-sized objects/s)");
    println!(
        "{:>8} {:>14} {:>14} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "threads",
        "pure(inter)",
        "pure(batch)",
        "bag(inter)",
        "bag(batch)",
        "dict(inter)",
        "dict(batch)",
        "SMC"
    );
    let columns = [
        "threads",
        "pure_interactive",
        "pure_batch",
        "bag_interactive",
        "bag_batch",
        "dict_interactive",
        "dict_batch",
        "smc",
    ];
    let mut report = Report::new("fig07", "Allocation throughput (Mops/s)");
    report.param("objects_per_thread", per_thread as u64);
    let sid = report.series("alloc_throughput", &columns);
    csv(&columns);
    let mut smc_min = f64::INFINITY;
    let mut counters = [0u64; 3];
    for threads in [1usize, 2, 4] {
        let pi = bench_pure_alloc(GcMode::Interactive, threads, per_thread);
        let pb = bench_pure_alloc(GcMode::Batch, threads, per_thread);
        let bi = bench_bag(GcMode::Interactive, threads, per_thread);
        let bb = bench_bag(GcMode::Batch, threads, per_thread);
        let di = bench_dict(GcMode::Interactive, threads, per_thread);
        let db = bench_dict(GcMode::Batch, threads, per_thread);
        let (smc, run_counters) = bench_smc(threads, per_thread);
        for (acc, c) in counters.iter_mut().zip(run_counters) {
            *acc += c;
        }
        println!(
            "{threads:>8} {pi:>14.2} {pb:>14.2} {bi:>12.2} {bb:>12.2} {di:>12.2} {db:>12.2} {smc:>10.2}"
        );
        smc_min = smc_min.min(smc);
        csv_into(
            &mut report,
            sid,
            &[
                &threads.to_string(),
                &format!("{pi:.3}"),
                &format!("{pb:.3}"),
                &format!("{bi:.3}"),
                &format!("{bb:.3}"),
                &format!("{di:.3}"),
                &format!("{db:.3}"),
                &format!("{smc:.3}"),
            ],
        );
    }
    report.check(
        "smc_throughput_positive",
        smc_min.is_finite() && smc_min > 0.0,
        format!("min SMC throughput across thread counts = {smc_min:.3} Mops/s"),
    );
    report.counter("pins_taken", counters[0]);
    report.counter("blocks_scanned", counters[1]);
    report.counter("morsels_dispatched", counters[2]);
    finish(&mut report);
}
