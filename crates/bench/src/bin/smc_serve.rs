//! `smc-serve` — the standalone shard-per-core multi-tenant SMC server.
//!
//! Binds a TCP listener and runs [`smc_serve::Server`] until SIGINT or
//! SIGTERM, then winds down through the verified drain: stop the acceptor,
//! finish in-flight requests, quiesce every shard's maintenance
//! coordinator, and `Smc::verify` + `Runtime::verify` each shard. The exit
//! code reports the drain: 0 when every shard reconciled clean, 1 when any
//! validator complained.
//!
//! ```text
//! smc-serve [--addr HOST:PORT] [--shards N] [--workers N]
//!           [--tenants N] [--budget-mb M] [--persist-dir PATH]
//! ```
//!
//! `--budget-mb M` (when nonzero) caps **tenant 0** at M MiB across all
//! shards — the canonical multi-tenant demo: hammer tenant 0 past its
//! budget and watch it get clean `TenantOverBudget` errors while the other
//! tenants keep answering. Remaining tenants are unlimited.
//!
//! `--persist-dir PATH` turns on the persistence tier: every tenant is
//! recovered from its last snapshot at start, budgets smaller than the
//! dataset spill to a per-tenant page file instead of rejecting, and the
//! SIGTERM drain writes a fresh snapshot of the verified state before
//! exit. The shard/tenant layout under PATH is
//! `shard-<i>/tenant-<id>/{snapshot/,spill.dat}`.

use std::time::Duration;

use smc_bench::{arg_usize, install_signal_handler, interrupted};
use smc_serve::{Server, ServerConfig, TenantConfig};

fn main() {
    let addr = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--addr")
            .and_then(|i| args.get(i + 1))
            .cloned()
            .unwrap_or_else(|| "127.0.0.1:7878".to_string())
    };
    let shards = arg_usize("--shards", 2).max(1);
    let workers = arg_usize("--workers", 2).max(1);
    let ntenants = arg_usize("--tenants", 2).max(1);
    let budget_mb = arg_usize("--budget-mb", 0);
    let persist_dir = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--persist-dir")
            .and_then(|i| args.get(i + 1))
            .map(std::path::PathBuf::from)
    };

    let tenants = (0..ntenants)
        .map(|i| TenantConfig {
            name: format!("tenant{i}"),
            budget_bytes: if i == 0 && budget_mb > 0 {
                Some((budget_mb as u64) << 20)
            } else {
                None
            },
        })
        .collect();

    install_signal_handler();
    if let Some(dir) = &persist_dir {
        println!("smc-serve: persistence at {}", dir.display());
    }
    let mut server = match Server::start(ServerConfig {
        addr,
        shards,
        workers_per_shard: workers,
        tenants,
        persist_dir,
        ..ServerConfig::default()
    }) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("smc-serve: bind failed: {e}");
            std::process::exit(2);
        }
    };
    println!(
        "smc-serve: listening on {} ({shards} shards x {workers} workers, {ntenants} tenants)",
        server.local_addr()
    );

    while !interrupted() {
        std::thread::sleep(Duration::from_millis(50));
    }

    println!("smc-serve: signal received, draining");
    let report = server.shutdown();
    for d in &report.shards {
        println!(
            "smc-serve: shard {} drained: {} requests, {} tenants verified, \
             {} snapshots written",
            d.shard, d.requests, d.tenants_verified, d.snapshots_written
        );
    }
    let errors = report.verify_errors();
    if errors.is_empty() {
        println!(
            "smc-serve: drain verified clean ({} requests total)",
            report.requests()
        );
        std::process::exit(0);
    }
    for e in errors {
        eprintln!("smc-serve: VERIFY FAILED: {e}");
    }
    std::process::exit(1);
}
