//! `smc-serve` — the standalone shard-per-core multi-tenant SMC server.
//!
//! Binds a TCP listener and runs [`smc_serve::Server`] until SIGINT or
//! SIGTERM, then winds down through the verified drain: stop the acceptor,
//! finish in-flight requests, quiesce every shard's maintenance
//! coordinator, and `Smc::verify` + `Runtime::verify` each shard. The exit
//! code reports the drain: 0 when every shard reconciled clean, 1 when any
//! validator complained.
//!
//! ```text
//! smc-serve [--addr HOST:PORT] [--shards N] [--workers N]
//!           [--tenants N] [--budget-mb M] [--persist-dir PATH]
//!           [--slow-us U]
//! ```
//!
//! `--budget-mb M` (when nonzero) caps **tenant 0** at M MiB across all
//! shards — the canonical multi-tenant demo: hammer tenant 0 past its
//! budget and watch it get clean `TenantOverBudget` errors while the other
//! tenants keep answering. Remaining tenants are unlimited.
//!
//! `--persist-dir PATH` turns on the persistence tier: every tenant is
//! recovered from its last snapshot at start, budgets smaller than the
//! dataset spill to a per-tenant page file instead of rejecting, and the
//! SIGTERM drain writes a fresh snapshot of the verified state before
//! exit. The shard/tenant layout under PATH is
//! `shard-<i>/tenant-<id>/{snapshot/,spill.dat}`.
//!
//! `--slow-us U` sets the tail-latency attribution threshold (default
//! 1000 µs): requests slower than U microseconds record a structured
//! breakdown into the per-op-class histograms the `SCRAPE` wire op (and
//! `smc-top --addr`) report.
//!
//! The flight recorder is always armed. When `SMC_FLIGHT_OUT` names a
//! destination path, the last-seconds event ring is dumped there on panic,
//! SLO breach, failed drain verify — or on demand via `kill -USR1 <pid>`.

use std::time::Duration;

use smc_bench::{
    arg_usize, init_tracing, install_signal_handler, install_usr1_handler, interrupted,
    usr1_requested,
};
use smc_serve::{Server, ServerConfig, TenantConfig};

fn main() {
    let addr = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--addr")
            .and_then(|i| args.get(i + 1))
            .cloned()
            .unwrap_or_else(|| "127.0.0.1:7878".to_string())
    };
    let shards = arg_usize("--shards", 2).max(1);
    let workers = arg_usize("--workers", 2).max(1);
    let ntenants = arg_usize("--tenants", 2).max(1);
    let budget_mb = arg_usize("--budget-mb", 0);
    let slow_us = arg_usize("--slow-us", 1000);
    let persist_dir = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--persist-dir")
            .and_then(|i| args.get(i + 1))
            .map(std::path::PathBuf::from)
    };

    let tenants = (0..ntenants)
        .map(|i| TenantConfig {
            name: format!("tenant{i}"),
            budget_bytes: if i == 0 && budget_mb > 0 {
                Some((budget_mb as u64) << 20)
            } else {
                None
            },
        })
        .collect();

    install_signal_handler();
    install_usr1_handler();
    // Spans live in *this* process: with SMC_TRACE_OUT set, the SIGTERM
    // drain writes the Chrome trace — including the per-request `req.*`
    // spans tagged by clients that sent span-context headers.
    let trace_out = init_tracing();
    // The flight recorder is always on: a fixed-budget ring of the last
    // events, dumped to SMC_FLIGHT_OUT on panic / SLO breach / failed
    // drain verify / SIGUSR1. Zero steady-state allocation.
    smc_obs::flight::enable();
    smc_obs::flight::install_panic_hook();
    if let Some(dir) = &persist_dir {
        println!("smc-serve: persistence at {}", dir.display());
    }
    let mut server = match Server::start(ServerConfig {
        addr,
        shards,
        workers_per_shard: workers,
        tenants,
        persist_dir,
        slow_request_threshold: Duration::from_micros(slow_us as u64),
        ..ServerConfig::default()
    }) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("smc-serve: bind failed: {e}");
            std::process::exit(2);
        }
    };
    println!(
        "smc-serve: listening on {} ({shards} shards x {workers} workers, {ntenants} tenants)",
        server.local_addr()
    );

    while !interrupted() {
        if usr1_requested() {
            match smc_obs::flight::dump("sigusr1") {
                Some(path) => println!("smc-serve: flight dump at {}", path.display()),
                None => eprintln!(
                    "smc-serve: SIGUSR1 received but SMC_FLIGHT_OUT is unset; no dump written"
                ),
            }
        }
        std::thread::sleep(Duration::from_millis(50));
    }

    println!("smc-serve: signal received, draining");
    let report = server.shutdown();
    if let Some(path) = &trace_out {
        let trace = smc_obs::ChromeTrace::from_ring_snapshot();
        match trace.write(path) {
            Ok(()) => println!("smc-serve: trace at {}", path.display()),
            Err(e) => eprintln!("smc-serve: failed to write trace {}: {e}", path.display()),
        }
    }
    for d in &report.shards {
        println!(
            "smc-serve: shard {} drained: {} requests, {} tenants verified, \
             {} snapshots written",
            d.shard, d.requests, d.tenants_verified, d.snapshots_written
        );
    }
    let errors = report.verify_errors();
    if errors.is_empty() {
        println!(
            "smc-serve: drain verified clean ({} requests total)",
            report.requests()
        );
        std::process::exit(0);
    }
    for e in errors {
        eprintln!("smc-serve: VERIFY FAILED: {e}");
    }
    std::process::exit(1);
}
