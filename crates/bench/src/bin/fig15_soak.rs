//! Figure 15 (this repo's addition): soak test of the background
//! maintenance coordinator under continuous decimation churn.
//!
//! Churn workers continuously fill the collection and decimate it (remove
//! ~90% of each batch), manufacturing fragmentation at a steady rate, while
//! a foreground scanner enumerates the collection and records its latency
//! into the histogram the coordinator's SLO back-pressure loop watches. The
//! `smc-maint` coordinator owns all compaction: no foreground code ever
//! calls `compact()` during the soak.
//!
//! Three phases:
//!
//! 1. **Soak** (`--duration-ms`): churn + scans with the coordinator
//!    holding fragmentation below the policy ceiling. The relocation
//!    failpoint is armed (`--fault-rate`) so passes are interrupted
//!    mid-group and the coordinator's retry classification runs for real.
//! 2. **Back-pressure proof**: the SLO ceiling is dropped to zero and the
//!    context nudged; every due pass must now be deferred, proving the
//!    coordinator sheds load when the foreground degrades.
//! 3. **Quiesce + verify**: workers stop, `Coordinator::quiesce` drains
//!    in-flight passes, and after a tidy-up pass the structural validators
//!    must reconcile the heap bit-exact against the workers' survivor model.
//!
//! Checks recorded in `BENCH_fig15.json` (gated by `scripts/bench_gate.py`):
//! `slo_p999` (foreground p99.9 scan latency within `--slo-us`),
//! `backpressure_deferred` (phase 2 produced deferred passes),
//! `maintenance_ran` (the coordinator completed passes unprompted),
//! `frag_ceiling` (post-quiesce fragmentation at or below the policy
//! ceiling) and `post_quiesce_verify` (exact reconcile).
//!
//! ```text
//! fig15_soak [--duration-ms N] [--threads N] [--objects N] [--slo-us N]
//!            [--fault-rate PER_1024] [--fault-limit N] [--seed N]
//! ```
//!
//! SIGINT/SIGTERM wind the soak down early through the same quiesce path
//! (the report and any `SMC_TRACE_OUT` trace are still written); the run is
//! marked `interrupted` and phase-dependent checks may fail.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use smc::{Ref, Smc, Tabular};
use smc_bench::{
    arg_usize, csv, csv_into, finish, init_tracing, install_signal_handler, interrupted,
    record_memory_counters, Report,
};
use smc_maint::{frag_ratio, Coordinator, MaintConfig, MaintPolicy, SloPolicy};
use smc_memory::error::MemError;
use smc_memory::fault::FaultSite;
use smc_memory::inspect::{CollectionSnapshot, HeapSnapshot};
use smc_memory::Runtime;
use smc_obs::hist::{Histogram, Registry};
use smc_util::Pcg32;

/// 64-byte row: checksummed key plus padding, so decimation leaves
/// meaningful holes and torn reads are detectable from the scanner.
#[derive(Clone, Copy)]
struct Row {
    key: u64,
    checksum: u64,
    _pad: [u64; 6],
}
unsafe impl Tabular for Row {}

impl Row {
    fn new(key: u64) -> Row {
        Row {
            key,
            checksum: key.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x5ca1_ab1e,
            _pad: [0; 6],
        }
    }

    fn coherent(&self) -> bool {
        self.checksum == self.key.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x5ca1_ab1e
    }
}

/// One decimation-churn worker: tops the pool up to `target`, then removes
/// ~90% of it, forever. Returns the surviving refs for the final reconcile.
fn churn_worker(
    c: Arc<Smc<Row>>,
    seed: u64,
    tid: usize,
    target: usize,
    key_tag: Arc<AtomicU64>,
    stop: Arc<AtomicBool>,
) -> Vec<Ref<Row>> {
    let mut rng = Pcg32::seed_from_u64(seed ^ (0xc4u64.wrapping_add(tid as u64) << 32));
    let mut pool: Vec<Ref<Row>> = Vec::with_capacity(target);
    while !stop.load(Ordering::Relaxed) {
        while pool.len() < target && !stop.load(Ordering::Relaxed) {
            let key = key_tag.fetch_add(1, Ordering::Relaxed);
            match c.try_add(Row::new(key)) {
                Ok(r) => pool.push(r),
                Err(MemError::TooManyThreads) => std::thread::yield_now(),
                Err(e) => panic!("unexpected add error: {e}"),
            }
        }
        // Decimate: keep roughly every 10th object, randomly chosen.
        let mut i = 0;
        while i < pool.len() {
            if rng.gen_range(0u32..10) != 0 {
                let r = pool.swap_remove(i);
                match c.try_remove(r) {
                    Ok(true) => {}
                    Ok(false) => panic!("own live ref was already removed"),
                    Err(MemError::TooManyThreads) => pool.push(r),
                    Err(e) => panic!("unexpected remove error: {e}"),
                }
            } else {
                i += 1;
            }
        }
        // Brief pause so the planner sees distinct churn generations.
        std::thread::sleep(Duration::from_millis(1));
    }
    pool
}

fn collection_snapshot(rt: &Arc<Runtime>, c: &Smc<Row>) -> CollectionSnapshot {
    HeapSnapshot::capture(rt, &[c.context()])
        .collections
        .into_iter()
        .next()
        .expect("context is registered with the runtime")
}

/// One foreground scan under a pin, recorded into the SLO gauge. Returns
/// (live objects seen, torn reads).
fn scan_once(rt: &Arc<Runtime>, c: &Smc<Row>, gauge: &Histogram) -> (u64, u64) {
    let t0 = Instant::now();
    let guard = rt.pin();
    let mut torn = 0u64;
    let seen = c.for_each(&guard, |row| {
        if !row.coherent() {
            torn += 1;
        }
    });
    drop(guard);
    gauge.record_duration(t0.elapsed());
    (seen, torn)
}

fn main() {
    let _trace = init_tracing();
    install_signal_handler();
    let duration_ms = arg_usize("--duration-ms", 3000);
    let threads = arg_usize("--threads", 2).max(1);
    let objects = arg_usize("--objects", 20_000);
    let slo_us = arg_usize("--slo-us", 100_000);
    let fault_rate = arg_usize("--fault-rate", 32) as u32;
    let fault_limit = arg_usize("--fault-limit", 64) as u64;
    let seed = arg_usize("--seed", 0x5eed) as u64;

    let frag_ceiling = 0.30f64;
    let slo = Duration::from_micros(slo_us as u64);

    println!(
        "Figure 15: coordinator soak — duration={duration_ms}ms threads={threads} \
         objects={objects} slo={slo_us}us fault-rate={fault_rate}/1024 seed={seed:#x}"
    );

    let rt = Runtime::new();
    let c: Arc<Smc<Row>> = Arc::new(Smc::new(&rt));
    let gauge = Arc::new(Histogram::new());
    Registry::global().register("fig15_scan_ns", &gauge);

    // Interrupt relocations mid-group during the soak so the coordinator's
    // transient-failure classification and retry loop run for real. The
    // global fault budget is what makes the failures *transient*: a pass
    // relocates thousands of objects, so an unlimited per-call rate would
    // interrupt every pass forever; with a budget, early passes are
    // interrupted and retried and later ones run clean.
    if fault_rate > 0 {
        rt.faults().set_rate(FaultSite::Relocation, fault_rate);
        rt.faults()
            .set_limit((fault_limit > 0).then_some(fault_limit));
        rt.faults().enable(seed);
    }

    let coordinator = Coordinator::new(MaintConfig {
        max_concurrent_passes: 1,
        // Generous pacer: the policy and SLO loop do the real throttling.
        pacer_capacity: 8.0,
        pacer_refill_per_sec: 64.0,
        watchdog_deadline: Duration::from_secs(2),
        retry_limit: 8,
        seed,
        poll_interval: Duration::from_millis(2),
        slo: SloPolicy {
            gauge: Some(gauge.clone()),
            p99_ceiling: slo,
            backoff_base: Duration::from_millis(2),
            backoff_cap: Duration::from_millis(50),
        },
    });
    c.register_maintenance(
        &coordinator,
        MaintPolicy {
            frag_ratio_ceiling: frag_ceiling,
            limbo_bytes_ceiling: 4 << 20,
            min_interval: Duration::from_millis(5),
            ..MaintPolicy::default()
        },
    );

    let mut report = Report::new("fig15", "Coordinator soak: SLO under decimation churn");
    report.param("duration_ms", duration_ms as u64);
    report.param("threads", threads as u64);
    report.param("objects", objects as u64);
    report.param("slo_us", slo_us as u64);
    report.param("fault_rate_per_1024", fault_rate as u64);
    report.param("fault_limit", fault_limit);
    report.param("frag_ceiling", frag_ceiling);
    report.param("seed", seed);
    let columns = [
        "elapsed_ms",
        "live",
        "frag_pct",
        "scan_p99_us",
        "planned",
        "completed",
        "deferred",
        "retried",
    ];
    let sid = report.series("soak", &columns);
    csv(&columns);

    // ---- Phase 1: soak ----------------------------------------------------
    let stop = Arc::new(AtomicBool::new(false));
    let key_tag = Arc::new(AtomicU64::new(0));
    let per_worker = (objects / threads).max(1);
    let workers: Vec<_> = (0..threads)
        .map(|tid| {
            let c = c.clone();
            let key_tag = key_tag.clone();
            let stop = stop.clone();
            std::thread::spawn(move || churn_worker(c, seed, tid, per_worker, key_tag, stop))
        })
        .collect();

    let started = Instant::now();
    let deadline = started + Duration::from_millis(duration_ms as u64);
    let mut next_sample = started + Duration::from_millis(250);
    let mut torn_total = 0u64;
    while Instant::now() < deadline && !interrupted() {
        let (_, torn) = scan_once(&rt, &c, &gauge);
        torn_total += torn;
        let now = Instant::now();
        if now >= next_sample {
            next_sample = now + Duration::from_millis(250);
            let snap = collection_snapshot(&rt, &c);
            let m = coordinator.snapshot();
            csv_into(
                &mut report,
                sid,
                &[
                    &(now.saturating_duration_since(started).as_millis()).to_string(),
                    &snap.valid_slots.to_string(),
                    &format!("{:.1}", frag_ratio(&snap) * 100.0),
                    &(gauge.p99() / 1_000).to_string(),
                    &m.passes_planned.to_string(),
                    &m.passes_completed.to_string(),
                    &m.passes_deferred.to_string(),
                    &m.passes_retried.to_string(),
                ],
            );
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    let soak = coordinator.snapshot();

    // ---- Phase 2: back-pressure proof -------------------------------------
    // A zero ceiling makes every observable p99 a breach; the nudged pass
    // must therefore be deferred, not planned.
    if !interrupted() {
        coordinator.set_slo_ceiling(Duration::ZERO);
        coordinator.nudge(c.context().id());
        let bp_deadline = Instant::now() + Duration::from_millis(1000);
        while coordinator.snapshot().passes_deferred == soak.passes_deferred
            && Instant::now() < bp_deadline
            && !interrupted()
        {
            let (_, torn) = scan_once(&rt, &c, &gauge);
            torn_total += torn;
            std::thread::sleep(Duration::from_millis(1));
        }
        coordinator.set_slo_ceiling(slo);
    }

    // ---- Phase 3: quiesce + exact reconcile -------------------------------
    stop.store(true, Ordering::Relaxed);
    let mut survivors: Vec<Ref<Row>> = Vec::new();
    for w in workers {
        survivors.extend(w.join().expect("churn worker panicked"));
    }
    coordinator.quiesce();
    let m = coordinator.snapshot();

    // The coordinator is gone; tidy up the decimation tail it never saw,
    // with faults off so the passes run clean, then validate exactly.
    // Compaction packs at least two sparse blocks per group and never
    // shuffles a lone straggler, so one pass can stop short of the ceiling;
    // iterate until fragmentation settles.
    rt.faults().disable();
    let mut tidy_passes = 0u64;
    loop {
        let tidy = c.compact();
        assert!(!tidy.interrupted, "tidy pass interrupted with faults off");
        c.release_retired();
        tidy_passes += 1;
        if tidy_passes >= 4 || frag_ratio(&collection_snapshot(&rt, &c)) <= frag_ceiling {
            break;
        }
    }
    rt.drain_graveyard_blocking();

    let verify_ok = c.verify().is_ok() && rt.verify().is_ok();
    let model_ok = c.len() == survivors.len() as u64;
    let final_snap = collection_snapshot(&rt, &c);
    let final_frag = frag_ratio(&final_snap);
    let p999_ns = gauge.percentile(99.9);
    let was_interrupted = interrupted();

    println!(
        "soak done: live={} scans={} torn={} frag={:.1}% p99.9={}us \
         planned={} completed={} deferred={} retried={} cancelled={} \
         watchdog={} interrupted={was_interrupted}",
        c.len(),
        gauge.count(),
        torn_total,
        final_frag * 100.0,
        p999_ns / 1_000,
        m.passes_planned,
        m.passes_completed,
        m.passes_deferred,
        m.passes_retried,
        m.passes_cancelled,
        m.watchdog_cancels,
    );

    report.param("interrupted", u64::from(was_interrupted));
    report.counter("passes_planned", m.passes_planned);
    report.counter("passes_completed", m.passes_completed);
    report.counter("passes_deferred", m.passes_deferred);
    report.counter("passes_throttled", m.passes_throttled);
    report.counter("passes_retried", m.passes_retried);
    report.counter("passes_cancelled", m.passes_cancelled);
    report.counter("watchdog_cancels", m.watchdog_cancels);
    report.counter("faults_injected", rt.faults().injected_total());
    report.counter("torn_reads", torn_total);
    report.histogram("scan_latency_ns", &gauge);
    record_memory_counters(&mut report, &rt.stats);

    report.check(
        "slo_p999",
        p999_ns <= slo.as_nanos() as u64,
        format!(
            "foreground scan p99.9 {}us within SLO {}us under churn",
            p999_ns / 1_000,
            slo_us
        ),
    );
    report.check(
        "maintenance_ran",
        m.passes_completed > 0,
        format!(
            "coordinator completed {} passes unprompted",
            m.passes_completed
        ),
    );
    report.check(
        "backpressure_deferred",
        m.passes_deferred > soak.passes_deferred || soak.passes_deferred > 0,
        format!(
            "zero SLO ceiling deferred due passes ({} deferred total)",
            m.passes_deferred
        ),
    );
    // One-block slack: a compacted context legitimately bottoms out with a
    // single partially-filled block (groups need two sources), so the floor
    // of reachable fragmentation is one block's worth of holes.
    let block_bytes = (final_snap.capacity_slots / final_snap.blocks.len().max(1) as u64)
        * final_snap.slot_bytes as u64;
    let frag_bytes = final_snap.dead_bytes() + final_snap.hole_bytes();
    let frag_budget = (frag_ceiling * final_snap.footprint_bytes() as f64) as u64 + block_bytes;
    report.check(
        "frag_ceiling",
        frag_bytes <= frag_budget,
        format!(
            "post-quiesce fragmentation {:.1}% ({} bytes) within policy ceiling {:.0}% \
             plus one-block slack ({} bytes) after {} tidy passes",
            final_frag * 100.0,
            frag_bytes,
            frag_ceiling * 100.0,
            frag_budget,
            tidy_passes
        ),
    );
    report.check(
        "post_quiesce_verify",
        verify_ok && model_ok && torn_total == 0,
        format!(
            "exact reconcile after quiesce: validators {}, model {} ({} live vs {} survivors), \
             torn reads {}",
            if verify_ok { "ok" } else { "FAILED" },
            if model_ok { "ok" } else { "DIVERGED" },
            c.len(),
            survivors.len(),
            torn_total
        ),
    );
    finish(&mut report);
}
