//! Figure 9: application timeouts caused by garbage collection as the
//! collection's live set grows.
//!
//! The paper's method: store N objects in a collection (managed or
//! self-managed), then run two threads — one continuously allocating
//! managed objects with varying lifetimes, one sleeping 1 ms and recording
//! how much longer it actually slept. The worst overshoot approximates the
//! longest stop-the-world stall. With the data in a managed collection the
//! GC must trace it every cycle; in an SMC it never does.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use managed_heap::{GcList, GcMode, HeapConfig, ManagedHeap, Trace};
use smc::Smc;
use smc_bench::{arg_usize, csv, csv_into, finish, init_tracing, Report};
use smc_memory::{Runtime, Tabular};
use smc_obs::Histogram;

#[derive(Clone, Copy)]
struct Line {
    _k: u64,
    _payload: [u64; 16],
}
unsafe impl Tabular for Line {}

struct GcLine {
    _k: u64,
    _payload: [u64; 16],
}
impl Trace for GcLine {}

struct Churn {
    _k: u64,
}
impl Trace for Churn {}

/// Runs the churn + sleeper pair against `heap` for `duration`; returns the
/// maximum sleep overshoot observed.
fn measure_max_timeout(heap: &Arc<ManagedHeap>, duration: Duration) -> Duration {
    let stop = Arc::new(AtomicBool::new(false));
    let churn_stop = stop.clone();
    let churn_heap = heap.clone();
    let churn = std::thread::spawn(move || {
        let arena = churn_heap.arena::<Churn>();
        // Varying lifetimes: a rolling window of live temporaries.
        let keep: GcList<Churn> = GcList::new(&churn_heap);
        let mut i = 0u64;
        while !churn_stop.load(Ordering::Relaxed) {
            if i % 16 == 0 {
                keep.add(Churn { _k: i });
            } else {
                churn_heap.alloc(&arena, Churn { _k: i });
            }
            i += 1;
        }
    });
    let deadline = Instant::now() + duration;
    let mut max_overshoot = Duration::ZERO;
    while Instant::now() < deadline {
        let t0 = Instant::now();
        std::thread::sleep(Duration::from_millis(1));
        // A heap operation at the measurement point forces the sleeper to
        // pass a safepoint, like any managed thread would.
        let g = heap.enter();
        drop(g);
        let elapsed = t0.elapsed();
        if elapsed > Duration::from_millis(1) {
            max_overshoot = max_overshoot.max(elapsed - Duration::from_millis(1));
        }
    }
    stop.store(true, Ordering::SeqCst);
    churn.join().unwrap();
    max_overshoot
}

fn main() {
    init_tracing();
    let max_objects = arg_usize("--max-objects", 1_600_000);
    let window = Duration::from_millis(arg_usize("--window-ms", 1500) as u64);
    println!("Figure 9: longest thread timeout (ms) vs collection size");
    println!(
        "{:>12} {:>16} {:>16} {:>18} {:>18}",
        "objects", "managed(batch)", "managed(inter)", "self-mgd(batch)", "self-mgd(inter)"
    );
    let columns = [
        "objects",
        "managed_batch_ms",
        "managed_interactive_ms",
        "smc_batch_ms",
        "smc_interactive_ms",
    ];
    let mut report = Report::new("fig09", "Longest thread timeout vs collection size");
    report.param("max_objects", max_objects as u64);
    report.param("window_ms", window.as_millis() as u64);
    let sid = report.series("max_timeout", &columns);
    csv(&columns);
    // Benchmark-wide stop-the-world pause distributions, merged across all
    // runs of each configuration (the per-heap PauseStats histograms).
    let managed_pauses = Histogram::new();
    let smc_pauses = Histogram::new();
    let mut counters = [0u64; 3];
    let mut sizes = Vec::new();
    let mut n = max_objects / 8;
    while n <= max_objects {
        sizes.push(n);
        n *= 2;
    }
    for &objects in &sizes {
        let mut row = Vec::new();
        for mode in [GcMode::Batch, GcMode::Interactive] {
            // Managed collection: the live set sits on the traced heap.
            let heap = ManagedHeap::new(HeapConfig {
                mode,
                ..HeapConfig::default()
            });
            let list: GcList<GcLine> = GcList::new(&heap);
            for i in 0..objects {
                list.add(GcLine {
                    _k: i as u64,
                    _payload: [0; 16],
                });
            }
            row.push(measure_max_timeout(&heap, window));
            managed_pauses.merge(heap.pauses.histogram());
        }
        for mode in [GcMode::Batch, GcMode::Interactive] {
            // Self-managed collection: data off-heap; the GC only sees the
            // churn thread's temporaries.
            let heap = ManagedHeap::new(HeapConfig {
                mode,
                ..HeapConfig::default()
            });
            let rt = Runtime::new();
            let c: Smc<Line> = Smc::new(&rt);
            for i in 0..objects {
                c.add(Line {
                    _k: i as u64,
                    _payload: [0; 16],
                });
            }
            row.push(measure_max_timeout(&heap, window));
            smc_pauses.merge(heap.pauses.histogram());
            counters[0] += smc_memory::MemoryStats::get(&rt.stats.pins_taken);
            counters[1] += smc_memory::MemoryStats::get(&rt.stats.blocks_scanned);
            counters[2] += smc_memory::MemoryStats::get(&rt.stats.morsels_dispatched);
            drop(c);
        }
        let msf = |d: Duration| d.as_secs_f64() * 1e3;
        println!(
            "{objects:>12} {:>16.2} {:>16.2} {:>18.2} {:>18.2}",
            msf(row[0]),
            msf(row[1]),
            msf(row[2]),
            msf(row[3])
        );
        csv_into(
            &mut report,
            sid,
            &[
                &objects.to_string(),
                &format!("{:.3}", msf(row[0])),
                &format!("{:.3}", msf(row[1])),
                &format!("{:.3}", msf(row[2])),
                &format!("{:.3}", msf(row[3])),
            ],
        );
    }
    // The figure's actual claim, as percentiles: the managed heap's pauses
    // grow with the traced live set; the SMC keeps its data off-heap so the
    // collector only ever sees the churn thread's temporaries.
    println!("managed GC pauses: {}", managed_pauses.summary());
    println!("self-managed GC pauses: {}", smc_pauses.summary());
    report.histogram("managed_gc_pause_ns", &managed_pauses);
    report.histogram("smc_gc_pause_ns", &smc_pauses);
    report.check(
        "managed_heap_collected",
        managed_pauses.count() > 0,
        format!(
            "{} managed stop-the-world pauses recorded",
            managed_pauses.count()
        ),
    );
    report.counter("pins_taken", counters[0]);
    report.counter("blocks_scanned", counters[1]);
    report.counter("morsels_dispatched", counters[2]);
    finish(&mut report);
}
