//! Figure 10: enumeration performance, fresh vs worn, flat vs nested.
//!
//! Fresh = straight after bulk load; worn = after churn cycles that remove
//! and insert objects, scattering managed objects across the heap and
//! leaving limbo holes in SMC blocks. Nested enumeration follows
//! lineitem → order → customer (§7).

use smc_bench::{
    arg_f64, arg_usize, csv, csv_into, finish, init_tracing, ms, record_memory_counters,
    time_median, Report,
};
use tpch::gcdb::GcDb;
#[allow(unused_imports)]
use tpch::smcdb::SmcDb as _SmcDbAlias;
use tpch::smcdb::SmcDb;
use tpch::workloads;
use tpch::Generator;

fn main() {
    init_tracing();
    let sf = arg_f64("--sf", 0.05);
    let wear_cycles = arg_usize("--wear", 8);
    let gen = Generator::new(sf);
    println!("Figure 10: enumeration time (ms), SF {sf}");
    println!(
        "{:>22} {:>12} {:>12} {:>14} {:>14}",
        "series", "flat fresh", "flat worn", "nested fresh", "nested worn"
    );
    let columns = [
        "series",
        "flat_fresh_ms",
        "flat_worn_ms",
        "nested_fresh_ms",
        "nested_worn_ms",
    ];
    let mut report = Report::new("fig10", "Enumeration performance, fresh vs worn");
    report.param("sf", sf);
    report.param("wear_cycles", wear_cycles as u64);
    let sid = report.series("enumeration", &columns);
    csv(&columns);

    // --- Managed list (and bag/dict views of the same objects).
    let heap = managed_heap::ManagedHeap::new_batch();
    let gc = GcDb::load(&gen, &heap);
    // Bag view shares the list's handles.
    let bag: managed_heap::GcConcurrentBag<tpch::gcdb::GcLineitem> =
        managed_heap::GcConcurrentBag::new(&heap);
    {
        let g = heap.enter();
        gc.lineitems.for_each_handle(&g, |h, _| bag.add_handle(h));
    }
    let t_list_flat_fresh = time_median(3, || {
        std::hint::black_box(workloads::gc_enumerate_flat(&gc));
    });
    let t_list_nested_fresh = time_median(3, || {
        std::hint::black_box(workloads::gc_enumerate_nested(&gc));
    });
    let t_bag_flat_fresh = time_median(3, || {
        let g = heap.enter();
        let mut acc = 0i64;
        bag.for_each(&g, |l| acc = acc.wrapping_add(l.orderkey));
        std::hint::black_box(acc);
    });
    let t_dict_flat_fresh = time_median(3, || {
        let g = heap.enter();
        let mut acc = 0i64;
        gc.lineitem_dict
            .for_each(&g, |l| acc = acc.wrapping_add(l.orderkey));
        std::hint::black_box(acc);
    });
    let t_dict_nested_fresh = time_median(3, || {
        let g = heap.enter();
        let mut acc = 0i64;
        gc.lineitem_dict.for_each(&g, |l| {
            if let Some(o) = gc.order_arena.get(l.order) {
                if let Some(c) = gc.customer_arena.get(o.customer) {
                    acc = acc.wrapping_add(c.key);
                }
            }
        });
        std::hint::black_box(acc);
    });
    // Wear the managed database.
    let mut rng = workloads::workload_rng(11);
    workloads::wear_gc(&gc, &mut rng, wear_cycles, 0.2);
    heap.collect_full();
    let t_list_flat_worn = time_median(3, || {
        std::hint::black_box(workloads::gc_enumerate_flat(&gc));
    });
    let t_list_nested_worn = time_median(3, || {
        std::hint::black_box(workloads::gc_enumerate_nested(&gc));
    });
    let t_dict_flat_worn = time_median(3, || {
        let g = heap.enter();
        let mut acc = 0i64;
        gc.lineitem_dict
            .for_each(&g, |l| acc = acc.wrapping_add(l.orderkey));
        std::hint::black_box(acc);
    });

    // --- SMC (indirect and direct nested access).
    let smc = SmcDb::load(&gen, false);
    let t_smc_flat_fresh = time_median(3, || {
        std::hint::black_box(workloads::smc_enumerate_flat(&smc));
    });
    let t_smc_nested_fresh = time_median(3, || {
        std::hint::black_box(workloads::smc_enumerate_nested(&smc));
    });
    let t_smc_direct_nested_fresh = time_median(3, || {
        std::hint::black_box(workloads::smc_enumerate_nested_direct(&smc));
    });
    let mut rng = workloads::workload_rng(11);
    workloads::wear_smc(&smc, &mut rng, wear_cycles, 0.2);
    let t_smc_flat_worn = time_median(3, || {
        std::hint::black_box(workloads::smc_enumerate_flat(&smc));
    });
    let t_smc_nested_worn = time_median(3, || {
        std::hint::black_box(workloads::smc_enumerate_nested(&smc));
    });
    let t_smc_direct_nested_worn = time_median(3, || {
        std::hint::black_box(workloads::smc_enumerate_nested_direct(&smc));
    });

    let na = "-".to_string();
    let rows: Vec<(&str, String, String, String, String)> = vec![
        (
            "List",
            ms(t_list_flat_fresh),
            ms(t_list_flat_worn),
            ms(t_list_nested_fresh),
            ms(t_list_nested_worn),
        ),
        (
            "C.Bag",
            ms(t_bag_flat_fresh),
            na.clone(),
            na.clone(),
            na.clone(),
        ),
        (
            "C.Dictionary",
            ms(t_dict_flat_fresh),
            ms(t_dict_flat_worn),
            ms(t_dict_nested_fresh),
            na.clone(),
        ),
        (
            "SMC",
            ms(t_smc_flat_fresh),
            ms(t_smc_flat_worn),
            ms(t_smc_nested_fresh),
            ms(t_smc_nested_worn),
        ),
        (
            "SMC (direct)",
            ms(t_smc_flat_fresh),
            ms(t_smc_flat_worn),
            ms(t_smc_direct_nested_fresh),
            ms(t_smc_direct_nested_worn),
        ),
    ];
    for (name, a, b, c, d) in &rows {
        println!("{name:>22} {a:>12} {b:>12} {c:>14} {d:>14}");
        csv_into(&mut report, sid, &[name, a, b, c, d]);
    }

    // --- Post-wear compaction: decimate the worn SMC (removals without
    // re-insertion, driving block occupancy under the compaction threshold),
    // defragment, and enumerate the survivors. A new series — the measured
    // rows above are untouched — showing reclamation repairing enumeration
    // locality, plus the compaction pause percentiles.
    let removed = workloads::smc_decimate(&smc, &mut rng, 0.8);
    let reports = [
        smc.lineitems.compact(),
        smc.orders.compact(),
        smc.customers.compact(),
    ];
    let moved: usize = reports.iter().map(|r| r.moved).sum();
    let t_smc_flat_compacted = time_median(3, || {
        std::hint::black_box(workloads::smc_enumerate_flat(&smc));
    });
    let t_smc_nested_compacted = time_median(3, || {
        std::hint::black_box(workloads::smc_enumerate_nested(&smc));
    });
    let cid = report.series(
        "post_compaction",
        &["series", "flat_ms", "nested_ms", "objects_moved"],
    );
    println!(
        "{:>22} {:>12} {:>12} {:>14} (removed: {removed}, objects moved: {moved})",
        "SMC (compacted)",
        ms(t_smc_flat_compacted),
        ms(t_smc_nested_compacted),
        "-"
    );
    csv_into(
        &mut report,
        cid,
        &[
            "SMC (compacted)",
            &ms(t_smc_flat_compacted),
            &ms(t_smc_nested_compacted),
            &moved.to_string(),
        ],
    );
    let stats = &smc.runtime.stats;
    println!("compaction pass:  {}", stats.compaction_pass_ns.summary());
    println!("compaction pause: {}", stats.compaction_pause_ns.summary());
    report.histogram("compaction_pass_ns", &stats.compaction_pass_ns);
    report.histogram("compaction_pause_ns", &stats.compaction_pause_ns);
    report.check(
        "compaction_ran",
        stats.compaction_pass_ns.count() > 0,
        format!(
            "{} compaction passes over the worn database",
            stats.compaction_pass_ns.count()
        ),
    );
    record_memory_counters(&mut report, stats);
    finish(&mut report);
}
