//! Figure 8: refresh-stream throughput (streams per minute) for 1/2/4
//! threads over List, ConcurrentDictionary and SMC.
//!
//! Each thread alternates the two stream types of §7: insert 0.1 % of the
//! initial population, then enumerate once removing 0.1 % by order-key
//! predicate.

use std::sync::atomic::{AtomicI64, Ordering};

use smc_bench::{arg_f64, arg_usize, csv, csv_into, finish, init_tracing, time_once, Report};
use tpch::gcdb::GcDb;
use tpch::smcdb::SmcDb;
use tpch::workloads;
use tpch::Generator;

fn main() {
    init_tracing();
    let sf = arg_f64("--sf", 0.02);
    let streams_per_thread = arg_usize("--streams", 6);
    let gen = Generator::new(sf);
    println!("Figure 8: refresh streams per minute (SF {sf}, {streams_per_thread} streams/thread)");
    println!(
        "{:>8} {:>12} {:>12} {:>12}",
        "threads", "List", "C.Dict", "SMC"
    );
    let columns = ["threads", "list", "dict", "smc"];
    let mut report = Report::new("fig08", "Refresh streams per minute");
    report.param("sf", sf);
    report.param("streams_per_thread", streams_per_thread as u64);
    let sid = report.series("refresh_rate", &columns);
    csv(&columns);
    let mut min_rate = f64::INFINITY;
    let mut counters = [0u64; 3];

    for threads in [1usize, 2, 4] {
        // Fresh databases per run so wear does not accumulate across rows.
        let smc = SmcDb::load(&gen, false);
        let heap = managed_heap::ManagedHeap::new_batch();
        let gc = GcDb::load(&gen, &heap);
        let initial = smc.lineitems.len() as usize;
        let batch = (initial / 1000).max(1); // 0.1 % of the population
        let max_orderkey = gen.cardinalities().orders as i64;
        let key_counter = AtomicI64::new(3_000_000_000);

        let run = |do_stream: &(dyn Fn(usize, usize) + Sync)| -> f64 {
            let d = time_once(|| {
                std::thread::scope(|s| {
                    for t in 0..threads {
                        s.spawn(move || {
                            for i in 0..streams_per_thread {
                                do_stream(t, i);
                            }
                        });
                    }
                });
            });
            (threads * streams_per_thread) as f64 / d.as_secs_f64() * 60.0
        };

        let smc_rate = run(&|t, i| {
            let mut rng = workloads::workload_rng((t * 1000 + i) as u64);
            if i % 2 == 0 {
                let base = key_counter.fetch_add(batch as i64, Ordering::Relaxed);
                workloads::smc_insert_stream(&smc, &mut rng, base, batch);
            } else {
                let victims = workloads::pick_victims(&mut rng, max_orderkey, batch / 4);
                workloads::smc_removal_stream(&smc, &victims);
            }
        });
        let list_rate = run(&|t, i| {
            let mut rng = workloads::workload_rng((t * 1000 + i) as u64);
            if i % 2 == 0 {
                let base = key_counter.fetch_add(batch as i64, Ordering::Relaxed);
                workloads::gc_insert_stream(&gc, &mut rng, base, batch);
            } else {
                let victims = workloads::pick_victims(&mut rng, max_orderkey, batch / 4);
                workloads::gc_list_removal_stream(&gc, &victims);
            }
        });
        let dict_rate = run(&|t, i| {
            let mut rng = workloads::workload_rng((t * 1000 + i) as u64);
            if i % 2 == 0 {
                let base = key_counter.fetch_add(batch as i64, Ordering::Relaxed);
                workloads::gc_insert_stream(&gc, &mut rng, base, batch);
            } else {
                let victims = workloads::pick_victims(&mut rng, max_orderkey, batch / 4);
                workloads::gc_dict_removal_stream(&gc, &victims);
            }
        });
        let stats = &smc.runtime.stats;
        counters[0] += smc_memory::MemoryStats::get(&stats.pins_taken);
        counters[1] += smc_memory::MemoryStats::get(&stats.blocks_scanned);
        counters[2] += smc_memory::MemoryStats::get(&stats.morsels_dispatched);
        println!("{threads:>8} {list_rate:>12.1} {dict_rate:>12.1} {smc_rate:>12.1}");
        min_rate = min_rate.min(list_rate).min(dict_rate).min(smc_rate);
        csv_into(
            &mut report,
            sid,
            &[
                &threads.to_string(),
                &format!("{list_rate:.2}"),
                &format!("{dict_rate:.2}"),
                &format!("{smc_rate:.2}"),
            ],
        );
    }
    report.check(
        "rates_positive",
        min_rate.is_finite() && min_rate > 0.0,
        format!("minimum refresh rate across series = {min_rate:.2}/min"),
    );
    report.counter("pins_taken", counters[0]);
    report.counter("blocks_scanned", counters[1]);
    report.counter("morsels_dispatched", counters[2]);
    finish(&mut report);
}
