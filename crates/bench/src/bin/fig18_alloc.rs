//! Figure 18: contended block-allocation churn — legacy shared path vs the
//! sharded fast path, plus size-class slab churn.
//!
//! Each thread runs an allocate/hand-off/free loop against one shared
//! [`Runtime`]: it allocates blocks (per-allocation latency recorded in an
//! HDR histogram), keeps a small live window, and passes evicted blocks to
//! its ring neighbour, which frees them — so under the sharded allocator
//! every free is a *remote* free and the MPSC return queues carry the whole
//! free stream. The same workload runs with the sharded path disabled
//! (`set_sharded_alloc(false)`), where every allocation and free meets the
//! global budget gauge and the OS; the ratio of the two is the figure.
//!
//! A second phase churns `alloc_varlen`/`free_varlen` across at least three
//! slab size classes so the report can prove the slab path ran.
//!
//! Oracles (all recorded as report checks):
//! - `sharded_speedup`: sharded ≥ 2× shared at the highest thread count.
//!   Below 4 hardware threads the bar is waived (recorded as such in the
//!   check detail) — a single core serializes both modes and the ratio
//!   measures the scheduler, not the allocator.
//! - `alloc_parity`: both modes perform the identical number of
//!   allocations and frees, and end with zero live blocks.
//! - `post_churn_verify`: `Runtime::verify` reconciles after every run —
//!   free-list, slab, and budget accounting balance exactly.

use std::sync::mpsc;
use std::sync::{Arc, Barrier};
use std::time::Instant;

use smc_bench::{arg_usize, csv, csv_into, finish, init_tracing, Report};
use smc_memory::block::type_id_of;
use smc_memory::{BlockLayout, MemoryStats, Runtime};
use smc_obs::Histogram;

/// Live blocks each thread holds before evicting the oldest to its
/// neighbour. Small enough to keep the footprint flat, large enough that
/// frees trail allocations and the recycling paths stay hot.
const WINDOW: usize = 16;

struct ChurnRun {
    p50_ns: u64,
    p99_ns: u64,
    allocated: u64,
    freed: u64,
    live: u64,
    remote_frees_drained: u64,
    verify_ok: bool,
}

fn churn(sharded: bool, threads: usize, iters: usize) -> ChurnRun {
    let rt = Runtime::new();
    rt.set_sharded_alloc(sharded);
    let layout = BlockLayout::rows_of::<u64>().expect("u64 fits a block");
    let hist = Arc::new(Histogram::new());
    let barrier = Arc::new(Barrier::new(threads));
    let (txs, rxs): (Vec<_>, Vec<_>) = (0..threads).map(|_| mpsc::channel()).unzip();
    std::thread::scope(|s| {
        let mut rxs = rxs.into_iter();
        for i in 0..threads {
            let tx = txs[(i + 1) % threads].clone();
            let rx = rxs.next().unwrap();
            let rt = rt.clone();
            let hist = hist.clone();
            let barrier = barrier.clone();
            s.spawn(move || {
                let mut window = Vec::with_capacity(WINDOW + 1);
                barrier.wait();
                for k in 0..iters {
                    let t0 = Instant::now();
                    let b = rt
                        .allocate_block(&layout, type_id_of::<u64>(), (i * iters + k) as u64)
                        .expect("unbounded budget");
                    hist.record_duration(t0.elapsed());
                    window.push(b);
                    if window.len() > WINDOW {
                        tx.send(window.remove(0)).unwrap();
                    }
                    // Free whatever the left neighbour has handed over so the
                    // in-flight backlog stays bounded.
                    while let Ok(other) = rx.try_recv() {
                        rt.free_block(other);
                    }
                }
                for b in window {
                    tx.send(b).unwrap();
                }
                drop(tx);
                // The left neighbour's sender closing means every block it
                // ever produced has been handed over; free the remainder.
                while let Ok(other) = rx.recv() {
                    rt.free_block(other);
                }
            });
        }
        drop(txs);
    });
    ChurnRun {
        p50_ns: hist.p50(),
        p99_ns: hist.p99(),
        allocated: MemoryStats::get(&rt.stats.blocks_allocated),
        freed: MemoryStats::get(&rt.stats.blocks_freed),
        live: MemoryStats::get(&rt.stats.blocks_live),
        remote_frees_drained: MemoryStats::get(&rt.stats.remote_frees_drained),
        verify_ok: rt.verify().is_ok(),
    }
}

fn main() {
    init_tracing();
    let max_threads = arg_usize("--threads", 4).max(1);
    let iters = arg_usize("--iters", 30_000).max(WINDOW + 1);
    let hw_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("Figure 18: contended allocation churn, shared vs sharded");
    println!("hardware threads: {hw_threads}, per-thread iterations: {iters}");
    let columns = ["threads", "mode", "allocs_per_sec", "p50_ns", "p99_ns"];
    let mut report = Report::new("fig18", "Contended allocation throughput");
    report.param("iters_per_thread", iters as u64);
    report.param("hw_threads", hw_threads as u64);
    let sid = report.series("alloc_churn", &columns);
    csv(&columns);

    let thread_counts: Vec<usize> = [1usize, 2, 4]
        .into_iter()
        .filter(|&t| t <= max_threads)
        .collect();
    let mut allocs_total = 0u64;
    let mut remote_drained_total = 0u64;
    let mut parity_ok = true;
    let mut verify_ok = true;
    let mut top_rate = [0.0f64; 2]; // [shared, sharded] at the top thread count
    for &threads in &thread_counts {
        for (mi, &sharded) in [false, true].iter().enumerate() {
            let t0 = Instant::now();
            let run = churn(sharded, threads, iters);
            let secs = t0.elapsed().as_secs_f64().max(1e-9);
            let expected = (threads * iters) as u64;
            let rate = expected as f64 / secs;
            parity_ok &= run.allocated == expected && run.freed == expected && run.live == 0;
            verify_ok &= run.verify_ok;
            allocs_total += run.allocated;
            remote_drained_total += run.remote_frees_drained;
            if threads == *thread_counts.last().unwrap() {
                top_rate[mi] = rate;
            }
            let mode = if sharded { "sharded" } else { "shared" };
            println!(
                "{threads:>2} threads {mode:>8}: {rate:>12.0} allocs/s  \
                 p50 {:>6} ns  p99 {:>8} ns",
                run.p50_ns, run.p99_ns
            );
            csv_into(
                &mut report,
                sid,
                &[
                    &threads.to_string(),
                    mode,
                    &format!("{rate:.0}"),
                    &run.p50_ns.to_string(),
                    &run.p99_ns.to_string(),
                ],
            );
        }
    }

    // Slab phase: churn at least three size classes on a sharded runtime so
    // the report can prove cells recycle within their classes.
    let rt = Runtime::new();
    let slab_threads = thread_counts.last().copied().unwrap_or(1);
    let slab_iters = iters.min(10_000);
    std::thread::scope(|s| {
        for i in 0..slab_threads {
            let rt = rt.clone();
            s.spawn(move || {
                let sizes = [48usize, 200, 1500];
                let mut held = Vec::new();
                for k in 0..slab_iters {
                    let len = sizes[(i + k) % sizes.len()];
                    let p = rt.alloc_varlen(len).expect("unbounded budget");
                    held.push((p, len));
                    if held.len() > 8 {
                        let (p, len) = held.remove(0);
                        unsafe { rt.free_varlen(p, len) };
                    }
                }
                for (p, len) in held {
                    unsafe { rt.free_varlen(p, len) };
                }
            });
        }
    });
    verify_ok &= rt.verify().is_ok();
    let slab_classes_used = rt.alloc_snapshot().slab_classes_used();
    println!("slab classes churned: {slab_classes_used}");

    let (shared, sharded) = (top_rate[0], top_rate[1]);
    let ratio = if shared > 0.0 { sharded / shared } else { 0.0 };
    let top = thread_counts.last().copied().unwrap_or(1);
    if hw_threads >= 4 && top >= 4 {
        report.check(
            "sharded_speedup",
            ratio >= 2.0,
            format!(
                "sharded/shared at {top} threads = {ratio:.2}x \
                 ({sharded:.0} vs {shared:.0} allocs/s); bar: >= 2.0x"
            ),
        );
    } else {
        report.check(
            "sharded_speedup",
            true,
            format!(
                "WAIVED: {hw_threads} hardware thread(s) < 4 — the 2x bar \
                 measures cross-core contention, which a serialized host \
                 cannot express; measured ratio at {top} threads = {ratio:.2}x \
                 ({sharded:.0} vs {shared:.0} allocs/s); parity and verify \
                 oracles ran unwaived"
            ),
        );
    }
    report.check(
        "alloc_parity",
        parity_ok,
        "both modes allocated and freed exactly threads*iters blocks with zero live at exit"
            .to_string(),
    );
    report.check(
        "post_churn_verify",
        verify_ok,
        "Runtime::verify reconciled after every churn run and the slab phase".to_string(),
    );
    report.counter("allocs_total", allocs_total);
    report.counter("remote_frees_drained", remote_drained_total);
    report.counter("slab_classes_used", slab_classes_used as u64);
    finish(&mut report);
}
