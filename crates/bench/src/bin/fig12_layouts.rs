//! Figure 12: the direct-pointer (§6) and columnar (§4.1) optimizations,
//! relative to the base SMC. Direct pointers help join queries (Q3–Q5);
//! columnar storage helps scan-dominated queries (Q1, Q6).

use smc_bench::{
    arg_f64, csv, csv_into, finish, init_tracing, ms, record_memory_counters, time_median, Report,
};
use tpch::queries::{smc_q, Params};
use tpch::smcdb::SmcDb;
use tpch::Generator;

fn main() {
    init_tracing();
    let sf = arg_f64("--sf", 0.05);
    let gen = Generator::new(sf);
    let p = Params::default();
    println!("Figure 12: SMC storage/pointer variants (SF {sf}); ratios relative to SMC");
    let smc = SmcDb::load(&gen, true);
    println!(
        "{:>6} {:>10} {:>12} {:>14} {:>13} {:>15}",
        "query", "SMC ms", "direct ms", "columnar ms", "direct/SMC", "columnar/SMC"
    );
    let columns = ["query", "smc_ms", "direct_ms", "columnar_ms"];
    let mut report = Report::new("fig12", "SMC storage/pointer variants");
    report.param("sf", sf);
    let sid = report.series("variants", &columns);
    csv(&columns);
    for q in 1..=6u32 {
        let t_base = time_median(3, || match q {
            1 => std::hint::black_box(smc_q::q1(&smc, &p)).len(),
            2 => std::hint::black_box(smc_q::q2(&smc, &p)).len(),
            3 => std::hint::black_box(smc_q::q3(&smc, &p)).len(),
            4 => std::hint::black_box(smc_q::q4(&smc, &p)).len(),
            5 => std::hint::black_box(smc_q::q5(&smc, &p)).len(),
            _ => {
                std::hint::black_box(smc_q::q6(&smc, &p));
                0
            }
        });
        // Direct pointers change only queries with reference joins.
        let t_direct = time_median(3, || match q {
            1 => std::hint::black_box(smc_q::q1(&smc, &p)).len(),
            2 => std::hint::black_box(smc_q::q2(&smc, &p)).len(),
            3 => std::hint::black_box(smc_q::q3_direct(&smc, &p)).len(),
            4 => std::hint::black_box(smc_q::q4_direct(&smc, &p)).len(),
            5 => std::hint::black_box(smc_q::q5_direct(&smc, &p)).len(),
            _ => {
                std::hint::black_box(smc_q::q6(&smc, &p));
                0
            }
        });
        // Columnar storage changes queries that scan lineitems; Q2 touches
        // no lineitem columns and keeps the row plan.
        let t_col = time_median(3, || match q {
            1 => std::hint::black_box(smc_q::q1_columnar(&smc, &p)).len(),
            2 => std::hint::black_box(smc_q::q2(&smc, &p)).len(),
            3 => std::hint::black_box(smc_q::q3_columnar(&smc, &p)).len(),
            4 => std::hint::black_box(smc_q::q4_direct(&smc, &p)).len(),
            5 => std::hint::black_box(smc_q::q5_columnar(&smc, &p)).len(),
            _ => {
                std::hint::black_box(smc_q::q6_columnar(&smc, &p));
                0
            }
        });
        let rel = |t: std::time::Duration| t.as_secs_f64() / t_base.as_secs_f64();
        println!(
            "{:>6} {:>10} {:>12} {:>14} {:>13.2} {:>15.2}",
            format!("Q{q}"),
            ms(t_base),
            ms(t_direct),
            ms(t_col),
            rel(t_direct),
            rel(t_col)
        );
        csv_into(
            &mut report,
            sid,
            &[&format!("Q{q}"), &ms(t_base), &ms(t_direct), &ms(t_col)],
        );
    }
    report.histogram("query_latency_ns", &tpch::queries::QUERY_LATENCY_NS);
    report.check(
        "query_spans_recorded",
        tpch::queries::QUERY_LATENCY_NS.count() > 0,
        "per-query spans recorded",
    );
    record_memory_counters(&mut report, &smc.runtime.stats);
    finish(&mut report);
}
