//! Figure 11: TPC-H queries 1–6, evaluation time relative to `List<T>`.
//!
//! Series: List (compiled), C.Dictionary (compiled), SMC (compiled safe),
//! SMC (compiled unsafe). `--linq` adds the interpreted-LINQ column for Q1
//! and Q6 (the §7 "40–400 % slower" observation).

use smc_bench::{
    arg_f64, arg_flag, csv, csv_into, finish, init_tracing, ms, record_memory_counters,
    time_median, Report,
};
use tpch::gcdb::GcDb;
use tpch::queries::gc_q::EnumVia;
use tpch::queries::{gc_q, smc_q, Params};
use tpch::smcdb::SmcDb;
use tpch::Generator;

fn main() {
    init_tracing();
    let sf = arg_f64("--sf", 0.05);
    let with_linq = arg_flag("--linq");
    let gen = Generator::new(sf);
    let p = Params::default();
    println!("Figure 11: TPC-H Q1-Q6 (SF {sf}); times in ms, ratios relative to List");
    let heap = managed_heap::ManagedHeap::new_batch();
    let gc = GcDb::load(&gen, &heap);
    let smc = SmcDb::load(&gen, false);

    println!(
        "{:>6} {:>10} {:>10} {:>10} {:>12} {:>11} {:>11} {:>13}{}",
        "query",
        "List ms",
        "Dict ms",
        "SMC ms",
        "SMC-un ms",
        "Dict/List",
        "SMC/List",
        "SMC-un/List",
        if with_linq { "   LINQ/SMC" } else { "" }
    );
    let columns = [
        "query",
        "list_ms",
        "dict_ms",
        "smc_ms",
        "smc_unsafe_ms",
        "linq_ms",
    ];
    let mut report = Report::new("fig11", "TPC-H Q1-Q6 evaluation time");
    report.param("sf", sf);
    report.param("linq", with_linq);
    let sid = report.series("query_times", &columns);
    csv(&columns);
    for q in 1..=6u32 {
        let t_list = time_median(3, || match q {
            1 => std::hint::black_box(gc_q::q1(&gc, &p, EnumVia::List)).len(),
            2 => std::hint::black_box(gc_q::q2(&gc, &p)).len(),
            3 => std::hint::black_box(gc_q::q3(&gc, &p, EnumVia::List)).len(),
            4 => std::hint::black_box(gc_q::q4(&gc, &p, EnumVia::List)).len(),
            5 => std::hint::black_box(gc_q::q5(&gc, &p, EnumVia::List)).len(),
            _ => {
                std::hint::black_box(gc_q::q6(&gc, &p, EnumVia::List));
                0
            }
        });
        let t_dict = time_median(3, || match q {
            1 => std::hint::black_box(gc_q::q1(&gc, &p, EnumVia::Dict)).len(),
            2 => std::hint::black_box(gc_q::q2(&gc, &p)).len(),
            3 => std::hint::black_box(gc_q::q3(&gc, &p, EnumVia::Dict)).len(),
            4 => std::hint::black_box(gc_q::q4(&gc, &p, EnumVia::Dict)).len(),
            5 => std::hint::black_box(gc_q::q5(&gc, &p, EnumVia::Dict)).len(),
            _ => {
                std::hint::black_box(gc_q::q6(&gc, &p, EnumVia::Dict));
                0
            }
        });
        let t_smc = time_median(3, || match q {
            1 => std::hint::black_box(smc_q::q1(&smc, &p)).len(),
            2 => std::hint::black_box(smc_q::q2(&smc, &p)).len(),
            3 => std::hint::black_box(smc_q::q3(&smc, &p)).len(),
            4 => std::hint::black_box(smc_q::q4(&smc, &p)).len(),
            5 => std::hint::black_box(smc_q::q5(&smc, &p)).len(),
            _ => {
                std::hint::black_box(smc_q::q6(&smc, &p));
                0
            }
        });
        // The unsafe variant differs only where decimal math dominates (Q1);
        // other queries delegate, as the paper observes "very little
        // improvement from using unsafe code" for them.
        let t_unsafe = time_median(3, || match q {
            1 => std::hint::black_box(smc_q::q1_unsafe(&smc, &p)).len(),
            2 => std::hint::black_box(smc_q::q2(&smc, &p)).len(),
            3 => std::hint::black_box(smc_q::q3_direct(&smc, &p)).len(),
            4 => std::hint::black_box(smc_q::q4_direct(&smc, &p)).len(),
            5 => std::hint::black_box(smc_q::q5_direct(&smc, &p)).len(),
            _ => {
                std::hint::black_box(smc_q::q6(&smc, &p));
                0
            }
        });
        let t_linq = if with_linq && (q == 1 || q == 6) {
            Some(time_median(3, || match q {
                1 => std::hint::black_box(smc_q::q1_linq(&smc, &p)).len(),
                _ => {
                    std::hint::black_box(smc_q::q6_linq(&smc, &p));
                    0
                }
            }))
        } else {
            None
        };
        let rel = |t: std::time::Duration| t.as_secs_f64() / t_list.as_secs_f64();
        let linq_cell = match t_linq {
            Some(t) => format!("{:>11.2}", t.as_secs_f64() / t_smc.as_secs_f64()),
            None => String::new(),
        };
        println!(
            "{:>6} {:>10} {:>10} {:>10} {:>12} {:>11.2} {:>11.2} {:>13.2}{}",
            format!("Q{q}"),
            ms(t_list),
            ms(t_dict),
            ms(t_smc),
            ms(t_unsafe),
            rel(t_dict),
            rel(t_smc),
            rel(t_unsafe),
            linq_cell
        );
        csv_into(
            &mut report,
            sid,
            &[
                &format!("Q{q}"),
                &ms(t_list),
                &ms(t_dict),
                &ms(t_smc),
                &ms(t_unsafe),
                &t_linq.map(ms).unwrap_or_default(),
            ],
        );
    }
    // Per-query latency distribution across every timed execution, from the
    // spans each query implementation opens (tpch::queries::QUERY_LATENCY_NS).
    let latencies = &tpch::queries::QUERY_LATENCY_NS;
    println!("query latencies: {}", latencies.summary());
    report.histogram("query_latency_ns", latencies);
    report.check(
        "query_spans_recorded",
        latencies.count() > 0,
        format!("{} per-query spans recorded", latencies.count()),
    );
    record_memory_counters(&mut report, &smc.runtime.stats);
    finish(&mut report);
}
