//! `smc-loadgen` — closed-loop load harness for the SMC server (Figure 16,
//! this repo's addition).
//!
//! Drives a fixed aggregate request rate against an [`smc_serve::Server`]
//! from `--connections` closed-loop clients: each connection paces itself
//! to `rate / connections` requests per second, issues one request at a
//! time, and records the service latency into a per-op-class histogram
//! (`ingest` = upsert/delete, `query` = count/sum). Lateness against the
//! pacing schedule is tracked separately, so a saturated server shows up as
//! a `saturation_free` check failure rather than silently stretching the
//! schedule.
//!
//! By default the server runs **embedded** (in-process, ephemeral port)
//! with `--shards`/`--workers`/`--tenants`, and tenant 0 optionally capped
//! by `--budget-mb` — over-budget errors are counted, not failed, because a
//! clean wire error under budget pressure is exactly the contract under
//! test. `--addr HOST:PORT` targets an external server instead (started
//! with the standalone `smc-serve` binary); drain verification is then
//! skipped, everything else is identical because the whole harness speaks
//! the wire protocol.
//!
//! Checks recorded in `BENCH_fig16.json` (gated by `scripts/bench_gate.py`):
//! `slo_p999_ingest` / `slo_p999_query` (p99.9 service latency within
//! `--slo-ingest-us` / `--slo-query-us`), `saturation_free` (≤10% of
//! requests started late), `shard_requests_nonzero` (every shard served
//! work), `no_dropped_tenants` (every targeted tenant kept answering), and
//! `drain_verify` (embedded server drained and reconciled bit-exact).
//!
//! Observability hooks: `--trace-every N` attaches a span-context header
//! (a fresh `RequestId`) to every Nth request per connection — the server
//! tags its conn/ring/shard/exec spans with the id, so the Chrome trace
//! renders per-request flow across threads. `--slow-us U` sets the
//! embedded server's tail-latency attribution threshold. After the run the
//! harness issues a `SCRAPE` and folds the server's attribution histograms
//! into `BENCH_fig16.json` (works identically against `--addr`, where the
//! scrape is the *only* way to see inside the external process).
//!
//! ```text
//! smc-loadgen [--duration 5s] [--rate N] [--connections N]
//!             [--shards N] [--workers N] [--tenants N] [--budget-mb M]
//!             [--query-pct P] [--keys N] [--batch N] [--seed N]
//!             [--slo-ingest-us N] [--slo-query-us N] [--addr HOST:PORT]
//!             [--trace-every N] [--slow-us U]
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use smc_bench::{
    arg_usize, csv, finish, init_tracing, install_signal_handler, interrupted, JsonValue, Report,
};
use smc_obs::Histogram;
use smc_serve::wire::ErrorCode;
use smc_serve::{Client, ClientError, Server, ServerConfig, TenantConfig};
use smc_util::Pcg32;

/// Parses `--duration` values like `5s`, `750ms`, or a bare seconds count.
fn parse_duration(s: &str) -> Option<Duration> {
    if let Some(ms) = s.strip_suffix("ms") {
        return ms
            .parse::<f64>()
            .ok()
            .map(Duration::from_secs_f64)
            .map(|d| d / 1000);
    }
    let secs = s.strip_suffix('s').unwrap_or(s);
    secs.parse::<f64>().ok().map(Duration::from_secs_f64)
}

fn arg_string(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// What one connection worker brings home.
struct ConnResult {
    tenant: u16,
    completed: u64,
    late: u64,
    failed: u64,
    over_budget: u64,
    tenant_ok: u64,
}

struct Workload {
    conn: u64,
    tenant: u16,
    interval: Duration,
    duration: Duration,
    query_pct: usize,
    keys: u64,
    batch: usize,
    seed: u64,
    trace_every: usize,
}

/// One closed-loop connection: pace, issue, record, repeat.
fn run_conn(
    addr: std::net::SocketAddr,
    w: Workload,
    ingest: Arc<Histogram>,
    query: Arc<Histogram>,
) -> ConnResult {
    let mut out = ConnResult {
        tenant: w.tenant,
        completed: 0,
        late: 0,
        failed: 0,
        over_budget: 0,
        tenant_ok: 0,
    };
    let Ok(mut client) = Client::connect(addr) else {
        out.failed = 1;
        return out;
    };
    let _ = client.set_timeout(Some(Duration::from_secs(30)));
    if w.trace_every > 0 {
        // Version negotiation: an old server answers the traced probe with
        // UnknownOp and the client silently strips headers from then on.
        let _ = client.negotiate_tracing();
    }
    let mut rng = Pcg32::seed_from_u64(w.seed);
    let mut issued = 0u64;
    let start = Instant::now();
    let end = start + w.duration;
    let mut next = start;
    loop {
        let now = Instant::now();
        if now >= end || interrupted() {
            break;
        }
        if now < next {
            std::thread::sleep(next - now);
        } else if now > next + w.interval {
            out.late += 1;
        }
        if w.trace_every > 0 && issued % w.trace_every as u64 == 0 {
            // Unique nonzero id: connection index in the high bits, a
            // per-connection sequence in the low ones.
            client.trace_next(((w.conn + 1) << 40) | (issued + 1));
        }
        issued += 1;
        let is_query = rng.gen_range(0..100usize) < w.query_pct;
        let t0 = Instant::now();
        let result = if is_query {
            let lo = rng.gen_range(0u64..900);
            let hi = lo + rng.gen_range(1u64..101);
            if rng.gen_bool(0.5) {
                client.count(w.tenant, lo, hi).map(|_| ())
            } else {
                client.sum(w.tenant, lo, hi).map(|_| ())
            }
        } else if rng.gen_bool(0.8) {
            let rows: Vec<(u64, u64)> = (0..w.batch)
                .map(|_| (rng.gen_range(0..w.keys), rng.gen_range(0u64..1000)))
                .collect();
            client.upsert(w.tenant, rows).map(|_| ())
        } else {
            let keys: Vec<u64> = (0..w.batch / 4 + 1)
                .map(|_| rng.gen_range(0..w.keys))
                .collect();
            client.delete(w.tenant, keys).map(|_| ())
        };
        let elapsed = t0.elapsed();
        if is_query {
            query.record_duration(elapsed);
        } else {
            ingest.record_duration(elapsed);
        }
        match result {
            Ok(()) => {
                out.completed += 1;
                out.tenant_ok += 1;
            }
            Err(ClientError::Server(ErrorCode::TenantOverBudget, _)) => {
                // The contract under test: a clean wire error, not a crash.
                out.completed += 1;
                out.over_budget += 1;
            }
            Err(_) => out.failed += 1,
        }
        next += w.interval;
        // After a long stall, resync instead of bursting to catch up.
        if Instant::now() > next + w.interval * 8 {
            next = Instant::now();
        }
    }
    out
}

fn main() {
    let trace = init_tracing();
    install_signal_handler();

    let duration = arg_string("--duration")
        .and_then(|s| parse_duration(&s))
        .unwrap_or(Duration::from_secs(5));
    let rate = arg_usize("--rate", 2000).max(1);
    let connections = arg_usize("--connections", 4).max(1);
    let shards = arg_usize("--shards", 2).max(1);
    let workers = arg_usize("--workers", 2).max(1);
    let ntenants = arg_usize("--tenants", 2).max(1);
    let budget_mb = arg_usize("--budget-mb", 0);
    let query_pct = arg_usize("--query-pct", 40).min(100);
    let keys = arg_usize("--keys", 50_000).max(1) as u64;
    let batch = arg_usize("--batch", 64).max(1);
    let seed = arg_usize("--seed", 42) as u64;
    let slo_ingest_us = arg_usize("--slo-ingest-us", 50_000) as u64;
    let slo_query_us = arg_usize("--slo-query-us", 100_000) as u64;
    let trace_every = arg_usize("--trace-every", 0);
    let slow_us = arg_usize("--slow-us", 1000);
    let external = arg_string("--addr");

    // Embedded server unless --addr points elsewhere.
    let mut embedded: Option<Server> = None;
    let addr = match &external {
        Some(a) => a.parse().expect("--addr must be HOST:PORT"),
        None => {
            let tenants = (0..ntenants)
                .map(|i| TenantConfig {
                    name: format!("tenant{i}"),
                    budget_bytes: if i == 0 && budget_mb > 0 {
                        Some((budget_mb as u64) << 20)
                    } else {
                        None
                    },
                })
                .collect();
            let server = Server::start(ServerConfig {
                addr: "127.0.0.1:0".to_string(),
                shards,
                workers_per_shard: workers,
                tenants,
                slow_request_threshold: Duration::from_micros(slow_us as u64),
                ..ServerConfig::default()
            })
            .expect("embedded server binds an ephemeral port");
            let addr = server.local_addr();
            embedded = Some(server);
            addr
        }
    };

    println!(
        "smc-loadgen: {} conns x {:.0} req/s against {} for {:?}",
        connections,
        rate as f64 / connections as f64,
        addr,
        duration
    );

    let ingest_hist = Arc::new(Histogram::new());
    let query_hist = Arc::new(Histogram::new());
    let interval = Duration::from_secs_f64(connections as f64 / rate as f64);
    let t0 = Instant::now();
    let joins: Vec<_> = (0..connections)
        .map(|c| {
            let w = Workload {
                conn: c as u64,
                tenant: (c % ntenants) as u16,
                interval,
                duration,
                query_pct,
                keys,
                batch,
                seed: seed.wrapping_add(c as u64),
                trace_every,
            };
            let (ih, qh) = (ingest_hist.clone(), query_hist.clone());
            std::thread::spawn(move || run_conn(addr, w, ih, qh))
        })
        .collect();
    let results: Vec<ConnResult> = joins.into_iter().map(|j| j.join().unwrap()).collect();
    let wall = t0.elapsed();

    // Server-side counters, over the wire in both modes.
    let stats = Client::connect(addr).ok().and_then(|mut c| c.stats().ok());
    // Full observability document (tail-latency attribution, tracer and
    // flight health) — same wire path, so it also works against --addr.
    let scrape = Client::connect(addr).ok().and_then(|mut c| c.scrape().ok());

    let mut report = Report::new("fig16", "Closed-loop multi-tenant server load");
    report.param("rate", rate as u64);
    report.param("connections", connections as u64);
    report.param("duration_ms", duration.as_millis() as u64);
    report.param("shards", shards as u64);
    report.param("tenants", ntenants as u64);
    report.param("query_pct", query_pct as u64);
    report.param("budget_mb", budget_mb as u64);
    report.param("seed", seed);
    report.param("trace_every", trace_every as u64);
    report.param("slow_us", slow_us as u64);
    report.param(
        "mode",
        if external.is_some() {
            "external"
        } else {
            "embedded"
        },
    );
    if interrupted() {
        report.param("interrupted", true);
    }

    let completed: u64 = results.iter().map(|r| r.completed).sum();
    let late: u64 = results.iter().map(|r| r.late).sum();
    let failed: u64 = results.iter().map(|r| r.failed).sum();
    let over_budget: u64 = results.iter().map(|r| r.over_budget).sum();
    let achieved = completed as f64 / wall.as_secs_f64();

    // Per-op-class latency series: the figure's headline numbers.
    let lat = report.series("latency_us", &["op_class", "p50_us", "p99_us", "p999_us"]);
    csv(&["op_class", "p50_us", "p99_us", "p999_us"]);
    for (name, h) in [("ingest", &ingest_hist), ("query", &query_hist)] {
        let (p50, p99, p999) = (
            h.percentile(50.0) / 1_000,
            h.percentile(99.0) / 1_000,
            h.percentile(99.9) / 1_000,
        );
        csv(&[name, &p50.to_string(), &p99.to_string(), &p999.to_string()]);
        report.push_row(
            lat,
            vec![
                JsonValue::Str(name.to_string()),
                p50.into(),
                p99.into(),
                p999.into(),
            ],
        );
    }
    report.histogram("ingest", &ingest_hist);
    report.histogram("query", &query_hist);

    report.counter("requests_completed", completed);
    report.counter("requests_late", late);
    report.counter("requests_failed", failed);
    report.counter("over_budget_errors", over_budget);
    report.counter("achieved_rate", achieved as u64);

    // Shard and tenant panels from the wire STATS op, plus the shared
    // memory-counter schema summed across the per-shard runtimes.
    let shard_series = report.series("shard_requests", &["shard", "requests"]);
    let tenant_series = report.series(
        "tenant_stats",
        &[
            "tenant",
            "budget_bytes",
            "used_bytes",
            "live_objects",
            "over_budget_errors",
        ],
    );
    let mut shards_nonzero = true;
    let mut stats_tenants = 0usize;
    match &stats {
        Some(body) => {
            let (mut pins, mut blocks, mut morsels) = (0u64, 0u64, 0u64);
            for (i, s) in body.shards.iter().enumerate() {
                report.push_row(shard_series, vec![(i as u64).into(), s.requests.into()]);
                shards_nonzero &= s.requests > 0;
                pins += s.pins_taken;
                blocks += s.blocks_scanned;
                morsels += s.morsels_dispatched;
            }
            report.counter("pins_taken", pins);
            report.counter("blocks_scanned", blocks);
            report.counter("morsels_dispatched", morsels);
            stats_tenants = body.tenants.len();
            for t in &body.tenants {
                report.push_row(
                    tenant_series,
                    vec![
                        (t.tenant as u64).into(),
                        if t.budget_bytes == u64::MAX {
                            JsonValue::Str("unlimited".to_string())
                        } else {
                            t.budget_bytes.into()
                        },
                        t.used_bytes.into(),
                        t.live_objects.into(),
                        t.over_budget_errors.into(),
                    ],
                );
            }
        }
        None => {
            shards_nonzero = false;
            smc_bench::record_zero_memory_counters(&mut report);
        }
    }

    // Tail-latency attribution, scraped from the server: per-op-class
    // breakdown histograms (ring wait / exec / total) in the same summary
    // shape as this harness's own histograms, plus the pressure counters
    // (spill faults, budget-ladder rungs, epoch-pin stalls, concurrent
    // maintenance overlaps) attributed to over-threshold requests.
    let mut attribution_ok = false;
    if let Some(attr) = scrape.as_ref().and_then(|d| d.get("attribution")) {
        if let Some(t) = attr.get("threshold_ns").and_then(JsonValue::as_u64) {
            report.param("slow_threshold_ns", t);
        }
        let attr_series = report.series(
            "attribution",
            &[
                "op_class",
                "slow_requests",
                "spill_faults",
                "budget_rungs",
                "epoch_stalls",
                "maint_overlaps",
            ],
        );
        attribution_ok = true;
        for class in ["ingest", "query"] {
            let Some(c) = attr.get(class) else {
                attribution_ok = false;
                continue;
            };
            for part in ["total_ns", "ring_wait_ns", "exec_ns"] {
                match c.get(part) {
                    Some(h) => report.histogram_json(format!("attr_{class}_{part}"), h.clone()),
                    None => attribution_ok = false,
                }
            }
            let g = |k: &str| c.get(k).and_then(JsonValue::as_u64).unwrap_or(0);
            report.push_row(
                attr_series,
                vec![
                    JsonValue::Str(class.to_string()),
                    g("slow_requests").into(),
                    g("spill_faults").into(),
                    g("budget_rungs").into(),
                    g("epoch_stalls").into(),
                    g("maint_overlaps").into(),
                ],
            );
        }
        let slow_total = ["ingest", "query"]
            .iter()
            .filter_map(|c| attr.get(c))
            .filter_map(|c| c.get("slow_requests").and_then(JsonValue::as_u64))
            .sum::<u64>();
        report.counter("slow_requests", slow_total);
    }
    report.check(
        "attribution_scraped",
        attribution_ok,
        if attribution_ok {
            "SCRAPE returned per-op-class attribution histograms".to_string()
        } else {
            "SCRAPE missing or incomplete attribution section".to_string()
        },
    );

    // Checks the gate enforces.
    let ip999 = ingest_hist.percentile(99.9) / 1_000;
    let qp999 = query_hist.percentile(99.9) / 1_000;
    report.check(
        "slo_p999_ingest",
        ip999 <= slo_ingest_us && ingest_hist.count() > 0,
        format!("ingest p99.9 {ip999}us vs SLO {slo_ingest_us}us"),
    );
    report.check(
        "slo_p999_query",
        qp999 <= slo_query_us && query_hist.count() > 0,
        format!("query p99.9 {qp999}us vs SLO {slo_query_us}us"),
    );
    report.check(
        "saturation_free",
        completed > 0 && late * 10 <= completed,
        format!(
            "{late} of {completed} requests started late (achieved {achieved:.0}/s of {rate}/s)"
        ),
    );
    report.check(
        "no_internal_errors",
        failed == 0,
        format!("{failed} requests failed outside the budget contract"),
    );
    report.check(
        "shard_requests_nonzero",
        shards_nonzero,
        "every shard must have served requests".to_string(),
    );
    // Every targeted tenant kept answering (over-budget replies count: the
    // tenant was *answered*, not dropped).
    let mut targeted_ok = vec![0u64; ntenants];
    for r in &results {
        targeted_ok[r.tenant as usize] += r.tenant_ok + r.over_budget;
    }
    let all_tenants_alive = targeted_ok
        .iter()
        .take(connections.min(ntenants))
        .all(|&n| n > 0)
        && (stats.is_none() || stats_tenants == ntenants);
    report.check(
        "no_dropped_tenants",
        all_tenants_alive,
        format!("per-tenant served counts: {targeted_ok:?}"),
    );

    match embedded {
        Some(mut server) => {
            let drain = server.shutdown();
            report.counter("drain_requests", drain.requests());
            report.check(
                "drain_verify",
                drain.clean(),
                if drain.clean() {
                    format!(
                        "{} shards drained and reconciled bit-exact",
                        drain.shards.len()
                    )
                } else {
                    drain.verify_errors().join("; ")
                },
            );
        }
        None => report.check(
            "drain_verify",
            true,
            "external server: drain owned by smc-serve".to_string(),
        ),
    }

    let _ = trace;
    finish(&mut report);
}
