//! Figure 17 (this repo's addition): the persistence tier end to end —
//! snapshot throughput, cold-start recovery, torn-write rejection, and
//! larger-than-memory scans through the spill/fault rung.
//!
//! Four phases:
//!
//! 1. **Snapshot**: populate a collection (with ~10% decimation so the
//!    heap has holes, like a real query-dominated workload), then write a
//!    crash-consistent snapshot and report its page count and throughput.
//! 2. **Cold recovery**: rebuild the collection into a *fresh runtime*
//!    from the snapshot alone. The recovered aggregate (count + key sum)
//!    must match the surviving model exactly — the `recover_verify` check.
//! 3. **Torn-write probes**: arm each snapshot failpoint
//!    (`SnapshotPage`, `SnapshotManifest`, `SnapshotRename`) in turn so a
//!    later snapshot attempt dies mid-write, then prove recovery still
//!    loads the previous generation bit-exact; finally corrupt a page of a
//!    copied snapshot on disk and prove recovery rejects it with a *named*
//!    page error instead of loading garbage — `torn_page_rejected`.
//! 4. **Spill/fault**: recover the same snapshot into a context budget a
//!    quarter of the dataset with a spill file attached. Ingest-time
//!    eviction plus scan-through-the-page-store must still produce the
//!    exact aggregate, and random point updates must fault pages back in —
//!    `spill_faults_counted`. Cold (spilled) and hot (fully resident) scan
//!    latencies are recorded as histograms for the report.
//!
//! ```text
//! fig17_recovery [--objects N] [--scans N] [--seed N]
//! ```

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use smc::{Ref, Smc, Tabular};
use smc_bench::{
    arg_usize, csv, csv_into, finish, init_tracing, install_signal_handler, record_memory_counters,
    Report,
};
use smc_memory::fault::FaultSite;
use smc_memory::{ContextConfig, MemoryStats, Runtime, BLOCK_SIZE};
use smc_obs::hist::Histogram;
use smc_persist::{Persist, PersistError, RecoverOptions, SpillFile};
use smc_util::Pcg32;

/// 64-byte row, checksummed so recovery corruption would be visible to the
/// scanner as well as to the page checksums.
#[derive(Clone, Copy)]
struct Row {
    key: u64,
    checksum: u64,
    _pad: [u64; 6],
}
unsafe impl Tabular for Row {}

impl Row {
    fn new(key: u64) -> Row {
        Row {
            key,
            checksum: key.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x5ca1_ab1e,
            _pad: [0; 6],
        }
    }

    fn coherent(&self) -> bool {
        self.checksum == self.key.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x5ca1_ab1e
    }
}

/// Full scan under one pin: (rows seen, sum of keys, torn rows).
fn scan(rt: &Arc<Runtime>, c: &Smc<Row>, gauge: Option<&Histogram>) -> (u64, u64, u64) {
    let t0 = Instant::now();
    let guard = rt.pin();
    let mut sum = 0u64;
    let mut torn = 0u64;
    let seen = c.for_each(&guard, |row| {
        sum = sum.wrapping_add(row.key);
        if !row.coherent() {
            torn += 1;
        }
    });
    drop(guard);
    if let Some(g) = gauge {
        g.record_duration(t0.elapsed());
    }
    (seen, sum, torn)
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("smc-fig17-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn main() {
    let _trace = init_tracing();
    install_signal_handler();
    let objects = arg_usize("--objects", 120_000);
    let scans = arg_usize("--scans", 8).max(1);
    let seed = arg_usize("--seed", 0x5eed) as u64;

    println!("Figure 17: persistence tier — objects={objects} scans={scans} seed={seed:#x}");

    let mut report = Report::new(
        "fig17",
        "Persistence: snapshot, recovery, torn writes, spill/fault",
    );
    report.param("objects", objects as u64);
    report.param("scans", scans as u64);
    report.param("seed", seed);
    let columns = ["phase", "objects", "pages", "bytes", "millis"];
    let sid = report.series("phases", &columns);
    csv(&columns);
    let phase_row =
        |report: &mut Report, phase: &str, objs: u64, pages: u64, bytes: u64, ms: u128| {
            csv_into(
                report,
                sid,
                &[
                    phase,
                    &objs.to_string(),
                    &pages.to_string(),
                    &bytes.to_string(),
                    &ms.to_string(),
                ],
            );
        };

    let dir = tmpdir("snapshot");

    // ---- Phase 1: populate + snapshot -------------------------------------
    let rt1 = Runtime::new();
    let c1: Smc<Row> = Smc::new(&rt1);
    let mut rng = Pcg32::seed_from_u64(seed);
    let mut refs: Vec<Ref<Row>> = Vec::with_capacity(objects);
    for key in 0..objects as u64 {
        refs.push(c1.try_add(Row::new(key)).expect("populate"));
    }
    // Decimate ~10% so the snapshot walks a fragmented heap, not an array.
    let mut model_count = 0u64;
    let mut model_sum = 0u64;
    for (key, r) in refs.iter().enumerate() {
        if rng.gen_range(0u32..10) == 0 {
            assert!(matches!(c1.try_remove(*r), Ok(true)));
        } else {
            model_count += 1;
            model_sum = model_sum.wrapping_add(key as u64);
        }
    }
    let t0 = Instant::now();
    let snap = c1.snapshot_to(&dir).expect("snapshot");
    let snap_ms = t0.elapsed().as_millis();
    println!(
        "snapshot: gen {} — {} objects, {} pages, {} bytes in {snap_ms}ms",
        snap.generation, snap.objects, snap.pages, snap.bytes
    );
    assert_eq!(snap.objects, model_count, "snapshot captured the survivors");
    phase_row(
        &mut report,
        "snapshot",
        snap.objects,
        snap.pages,
        snap.bytes,
        snap_ms,
    );

    // ---- Phase 2: cold recovery + hot scans --------------------------------
    let rt2 = Runtime::new();
    let t0 = Instant::now();
    let (c2, rec) = Smc::recover_from(&rt2, &dir).expect("recovery");
    let rec_ms = t0.elapsed().as_millis();
    let hot_gauge = Histogram::new();
    let (mut seen, mut sum, mut torn) = (0, 0, 0);
    for _ in 0..scans {
        (seen, sum, torn) = scan(&rt2, &c2, Some(&hot_gauge));
    }
    let recover_ok = rec.objects == model_count
        && seen == model_count
        && sum == model_sum
        && torn == 0
        && c2.verify().is_ok();
    println!(
        "recovery: {} objects, {} pages in {rec_ms}ms — scan parity {}",
        rec.objects,
        rec.pages,
        if recover_ok { "ok" } else { "FAILED" }
    );
    phase_row(&mut report, "recover", rec.objects, rec.pages, 0, rec_ms);
    report.check(
        "recover_verify",
        recover_ok,
        format!(
            "cold recovery bit-exact: {seen} objects (model {model_count}), key sum \
             {sum:#x} (model {model_sum:#x}), {torn} torn rows, verify ok"
        ),
    );

    // ---- Phase 3: torn-write probes ----------------------------------------
    // Kill a new snapshot attempt at each failpoint; the previous generation
    // must stay the recovery target, bit-exact.
    let mut torn_ok = true;
    let mut probes = 0u64;
    for site in [
        FaultSite::SnapshotPage,
        FaultSite::SnapshotManifest,
        FaultSite::SnapshotRename,
    ] {
        rt1.faults().set_rate(site, 1024);
        rt1.faults().set_limit(Some(1));
        rt1.faults().enable(seed ^ probes);
        let died = c1.snapshot_to(&dir).is_err();
        rt1.faults().set_rate(site, 0);
        rt1.faults().disable();
        let rt = Runtime::new();
        let survived = match Smc::<Row>::recover_from(&rt, &dir) {
            Ok((c, rep)) => {
                let (n, s, t) = scan(&rt, &c, None);
                rep.generation == snap.generation && n == model_count && s == model_sum && t == 0
            }
            Err(e) => {
                println!("torn probe {site:?}: recovery unexpectedly failed: {e}");
                false
            }
        };
        println!(
            "torn probe {site:?}: snapshot {} — previous generation {}",
            if died {
                "died mid-write"
            } else {
                "SURVIVED (failpoint missed)"
            },
            if survived {
                "recovered exactly"
            } else {
                "LOST"
            },
        );
        torn_ok &= died && survived;
        probes += 1;
    }
    // Post-hoc corruption: a flipped byte inside a page must be rejected
    // with a named page error, never materialized.
    let corrupt_dir = tmpdir("corrupt");
    std::fs::create_dir_all(&corrupt_dir).expect("corrupt dir");
    for entry in std::fs::read_dir(&dir).expect("read snapshot dir") {
        let entry = entry.expect("dir entry");
        std::fs::copy(entry.path(), corrupt_dir.join(entry.file_name())).expect("copy");
    }
    // Corrupt the page file the manifest actually references — earlier torn
    // probes may have left an orphaned (unreferenced) page file behind, and
    // flipping a byte there would prove nothing.
    let manifest = std::fs::read_to_string(corrupt_dir.join("MANIFEST")).expect("read manifest");
    let referenced = manifest
        .lines()
        .find_map(|l| l.strip_prefix("page_file "))
        .expect("manifest names its page file")
        .trim();
    let page_file = corrupt_dir.join(referenced);
    let mut bytes = std::fs::read(&page_file).expect("read pages");
    let flip = bytes.len() - 100;
    bytes[flip] ^= 0xff;
    std::fs::write(&page_file, &bytes).expect("write corrupted pages");
    let rt = Runtime::new();
    let rejected = match Smc::<Row>::recover_from(&rt, &corrupt_dir) {
        Err(PersistError::PageChecksum { page }) => {
            println!("corruption probe: rejected with named page {page}");
            true
        }
        Err(e) => {
            println!("corruption probe: rejected, but not by checksum: {e}");
            false
        }
        Ok(_) => {
            println!("corruption probe: LOADED CORRUPTED DATA");
            false
        }
    };
    torn_ok &= rejected;
    report.check(
        "torn_page_rejected",
        torn_ok,
        format!(
            "{probes} mid-write crash probes recovered the previous generation \
             exactly; flipped page byte rejected with a named PageChecksum error"
        ),
    );
    phase_row(&mut report, "torn_probes", probes + 1, 0, 0, 0);

    // ---- Phase 4: larger-than-memory recovery + spill/fault ----------------
    let rt3 = Runtime::new();
    let budget = ((model_count * 64) / 4).max(BLOCK_SIZE as u64);
    let spill_dir = tmpdir("spill");
    let store = Arc::new(SpillFile::create(spill_dir.join("spill.dat")).expect("spill file"));
    let t0 = Instant::now();
    let (c3, rec3) = Smc::recover_opts(
        &rt3,
        RecoverOptions {
            config: ContextConfig {
                budget_bytes: Some(budget),
                ..ContextConfig::default()
            },
            store: Some(store.clone()),
        },
        &dir,
    )
    .expect("budgeted recovery");
    let spill_ms = t0.elapsed().as_millis();
    let spilled_blocks = c3.spilled_blocks();
    let cold_gauge = Histogram::new();
    let (mut seen3, mut sum3, mut torn3) = (0, 0, 0);
    for _ in 0..scans {
        (seen3, sum3, torn3) = scan(&rt3, &c3, Some(&cold_gauge));
    }
    // Point updates through spilled refs: each one faults its page back in.
    let mut sample: Vec<Ref<Row>> = Vec::new();
    {
        let guard = rt3.pin();
        let mut i = 0u64;
        c3.for_each_ref(&guard, |r, _row| {
            if i % 997 == 0 {
                sample.push(r);
            }
            i += 1;
        });
        for r in &sample {
            c3.update(*r, &guard, |row: &mut Row| {
                let key = row.key;
                *row = Row::new(key);
            })
            .expect("spilled ref faults in and updates");
        }
    }
    let faulted = MemoryStats::get(&rt3.stats.blocks_faulted_in);
    let spill_ok = rec3.objects == model_count
        && seen3 == model_count
        && sum3 == model_sum
        && torn3 == 0
        && spilled_blocks > 0
        && faulted > 0
        && c3.verify().is_ok();
    println!(
        "spill: budget {budget} bytes — {} blocks spilled, {} faulted in on \
         update, scan parity {} ({spill_ms}ms recovery)",
        spilled_blocks,
        faulted,
        if spill_ok { "ok" } else { "FAILED" },
    );
    phase_row(
        &mut report,
        "spill",
        rec3.objects,
        spilled_blocks,
        budget,
        spill_ms,
    );
    report.check(
        "spill_faults_counted",
        spill_ok,
        format!(
            "budget {budget} < dataset: {spilled_blocks} blocks spilled, full-scan \
             parity through the page store, {faulted} pages faulted back in by \
             point updates, verify ok"
        ),
    );

    println!(
        "scan latency: hot p50 {}us p99 {}us — cold (spilled) p50 {}us p99 {}us",
        hot_gauge.p50() / 1_000,
        hot_gauge.p99() / 1_000,
        cold_gauge.p50() / 1_000,
        cold_gauge.p99() / 1_000,
    );
    report.histogram("scan_hot_ns", &hot_gauge);
    report.histogram("scan_cold_ns", &cold_gauge);
    report.counter("snapshot_pages", snap.pages);
    report.counter("snapshot_bytes", snap.bytes);
    report.counter("recovered_objects", rec.objects);
    report.counter(
        "blocks_spilled",
        MemoryStats::get(&rt3.stats.blocks_spilled),
    );
    report.counter("blocks_faulted_in", faulted);
    report.counter(
        "spill_fault_failures",
        MemoryStats::get(&rt3.stats.spill_fault_failures),
    );
    record_memory_counters(&mut report, &rt3.stats);

    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&corrupt_dir).ok();
    drop(store);
    std::fs::remove_dir_all(&spill_dir).ok();
    finish(&mut report);
}
