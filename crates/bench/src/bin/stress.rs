//! Deterministic fault-injection stress harness for the memory manager.
//!
//! Runs random interleavings of `add` / `remove` / `read` / `enumerate`
//! across worker threads — with seeded faults injected at block allocation,
//! epoch advancement, thread-slot claim and mid-relocation — and a periodic
//! compaction thread, all against a budgeted runtime. Between rounds (with
//! all workers joined, i.e. quiescent) the structural validator must pass,
//! the collection must hold exactly the objects the workers' models say
//! survive, and every interrupted compaction must be retriable.
//!
//! The run is reproducible from `--seed`: the fault schedule is a pure
//! function of (seed, site, call index), and each worker derives its RNG
//! from the same seed.
//!
//! ```text
//! stress [--seed N] [--threads N] [--ops N] [--rounds N]
//!        [--fault-rate PER_1024] [--budget-blocks N (0 = unlimited)]
//!        [--threshold F] [--occupancy F]
//! ```
//!
//! The defaults deliberately pick a compaction-eager configuration
//! (in-place reclamation off, high occupancy cutoff) and a tight budget so
//! all four failpoints and the OOM recovery ladder actually fire.
//!
//! SIGINT/SIGTERM end the run early but cleanly: workers wind down at the
//! next op boundary, the current round still finishes its quiescent verify,
//! and the summary, csv line and `SMC_TRACE_OUT` trace are all written.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use smc::{ContextConfig, Ref, Smc, Tabular};
use smc_bench::{arg_f64, arg_usize, csv, init_tracing, install_signal_handler, interrupted};
use smc_memory::error::MemError;
use smc_memory::{Runtime, BLOCK_SIZE};
use smc_util::Pcg32;

#[derive(Clone, Copy)]
struct Row {
    key: u64,
    checksum: u64,
}
unsafe impl Tabular for Row {}

impl Row {
    fn new(key: u64) -> Row {
        Row {
            key,
            checksum: key.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x5ca1_ab1e,
        }
    }

    fn coherent(&self) -> bool {
        self.checksum == self.key.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x5ca1_ab1e
    }
}

#[derive(Default)]
struct WorkerTally {
    adds: u64,
    removes: u64,
    reads: u64,
    enumerations: u64,
    oom_errors: u64,
    claim_errors: u64,
    torn_reads: u64,
}

fn worker(
    c: Arc<Smc<Row>>,
    seed: u64,
    tid: usize,
    ops: usize,
    key_tag: Arc<AtomicU64>,
) -> (Vec<Ref<Row>>, WorkerTally) {
    let mut rng = Pcg32::seed_from_u64(seed ^ (0xdead_beef + tid as u64));
    let mut pool: Vec<Ref<Row>> = Vec::new();
    let mut t = WorkerTally::default();
    for _ in 0..ops {
        // Wind down at an op boundary on SIGINT/SIGTERM; the pool is still
        // returned so the round's model reconcile stays exact.
        if interrupted() {
            break;
        }
        match rng.gen_range(0u32..100) {
            // Insert-heavy mix keeps memory pressure on the budget.
            0..=44 => {
                let key = key_tag.fetch_add(1, Ordering::Relaxed);
                match c.try_add(Row::new(key)) {
                    Ok(r) => {
                        pool.push(r);
                        t.adds += 1;
                    }
                    Err(MemError::OutOfMemory) => {
                        t.oom_errors += 1;
                        // Application-level response to pressure: shed the
                        // oldest quarter of this worker's objects.
                        let shed = (pool.len() / 4).max(1).min(pool.len());
                        for r in pool.drain(..shed) {
                            if matches!(c.try_remove(r), Ok(true)) {
                                t.removes += 1;
                            }
                        }
                    }
                    Err(MemError::TooManyThreads) => t.claim_errors += 1,
                    Err(e) => panic!("unexpected add error: {e}"),
                }
            }
            45..=69 => {
                if pool.is_empty() {
                    continue;
                }
                let i = rng.gen_range(0..pool.len());
                let r = pool.swap_remove(i);
                match c.try_remove(r) {
                    Ok(true) => t.removes += 1,
                    Ok(false) => panic!("own live ref was already removed"),
                    Err(MemError::TooManyThreads) => {
                        t.claim_errors += 1;
                        pool.push(r); // the remove did not happen; keep it
                    }
                    Err(e) => panic!("unexpected remove error: {e}"),
                }
            }
            70..=94 => {
                if pool.is_empty() {
                    continue;
                }
                let r = pool[rng.gen_range(0..pool.len())];
                match c.runtime().try_pin() {
                    Ok(guard) => {
                        t.reads += 1;
                        match c.read(r, &guard) {
                            Some(v) if v.coherent() => {}
                            Some(_) => t.torn_reads += 1,
                            None => panic!("own live ref dereferenced to null"),
                        }
                    }
                    Err(MemError::TooManyThreads) => t.claim_errors += 1,
                    Err(e) => panic!("unexpected pin error: {e}"),
                }
            }
            _ => match c.runtime().try_pin() {
                Ok(guard) => {
                    t.enumerations += 1;
                    let mut torn = 0u64;
                    c.for_each(&guard, |row| {
                        if !row.coherent() {
                            torn += 1;
                        }
                    });
                    t.torn_reads += torn;
                }
                Err(MemError::TooManyThreads) => t.claim_errors += 1,
                Err(e) => panic!("unexpected pin error: {e}"),
            },
        }
    }
    (pool, t)
}

fn main() {
    let trace_out = init_tracing();
    install_signal_handler();
    let seed = arg_usize("--seed", 0x5eed) as u64;
    let threads = arg_usize("--threads", 4);
    let ops = arg_usize("--ops", 20_000);
    let rounds = arg_usize("--rounds", 4);
    let fault_rate = arg_usize("--fault-rate", 64) as u32;
    let budget_blocks = arg_usize("--budget-blocks", 24);
    // In-place limbo reclamation off (>1.0) + a high occupancy cutoff: removes
    // drain block occupancy until compaction must move survivors, keeping the
    // relocation failpoint and the budget's recovery ladder hot.
    let threshold = arg_f64("--threshold", 1.1);
    let occupancy = arg_f64("--occupancy", 0.85);

    let budget = if budget_blocks == 0 {
        None
    } else {
        Some(budget_blocks as u64 * BLOCK_SIZE as u64)
    };
    let rt = Runtime::new();
    rt.set_memory_budget(budget);
    let config = ContextConfig {
        reclamation_threshold: threshold,
        compaction_occupancy: occupancy,
        ..ContextConfig::default()
    };
    let c: Arc<Smc<Row>> = Arc::new(Smc::with_config(&rt, config));
    let key_tag = Arc::new(AtomicU64::new(0));

    println!(
        "stress: seed={seed:#x} threads={threads} ops={ops} rounds={rounds} \
         fault-rate={fault_rate}/1024 budget-blocks={budget_blocks}"
    );

    let mut survivors: Vec<Ref<Row>> = Vec::new();
    let mut total = WorkerTally::default();
    let mut interrupted_passes = 0u64;
    for round in 0..rounds {
        rt.faults().set_all_rates(fault_rate);
        rt.faults().enable(seed.wrapping_add(round as u64));

        let handles: Vec<_> = (0..threads)
            .map(|tid| {
                let c = c.clone();
                let key_tag = key_tag.clone();
                std::thread::spawn(move || worker(c, seed, tid + round * threads, ops, key_tag))
            })
            .collect();

        // Compact under fire while workers mutate: relocation faults will
        // interrupt some passes mid-group; each interrupted pass must leave
        // the collection valid and the pass retriable.
        let mut round_interrupted = 0u64;
        for handle in handles {
            let report = c.compact();
            if report.interrupted {
                round_interrupted += 1;
            }
            c.release_retired();
            let (pool, tally) = handle.join().expect("worker panicked");
            survivors.extend(pool);
            total.adds += tally.adds;
            total.removes += tally.removes;
            total.reads += tally.reads;
            total.enumerations += tally.enumerations;
            total.oom_errors += tally.oom_errors;
            total.claim_errors += tally.claim_errors;
            total.torn_reads += tally.torn_reads;
        }
        interrupted_passes += round_interrupted;

        // Quiescent: faults off, reclaim everything reclaimable, validate.
        rt.faults().disable();
        let retry = c.compact();
        assert!(
            !retry.interrupted,
            "compaction interrupted with faults disabled"
        );
        c.release_retired();
        rt.drain_graveyard_blocking();

        let report = c.verify().unwrap_or_else(|violations| {
            panic!(
                "round {round}: collection validator failed:\n  {}",
                violations.join("\n  ")
            )
        });
        rt.verify().unwrap_or_else(|violations| {
            panic!(
                "round {round}: runtime validator failed:\n  {}",
                violations.join("\n  ")
            )
        });
        assert_eq!(
            c.len(),
            survivors.len() as u64,
            "round {round}: collection diverged from the workers' models"
        );
        let faults = rt.faults().injected_total();
        println!(
            "round {round}: live={} blocks={} faults-injected={faults} \
             interrupted-compactions={round_interrupted}",
            c.len(),
            report.blocks
        );
        // The quiescent verify above already ran for this round, so a
        // signal-shortened run still ends on a validated heap.
        if interrupted() {
            println!("stress: interrupted — stopping after round {round}");
            break;
        }
    }

    assert_eq!(total.torn_reads, 0, "readers observed torn objects");
    {
        let guard = rt.pin();
        for r in &survivors {
            let v = c.read(*r, &guard).expect("survivor dereferenced to null");
            assert!(v.coherent(), "survivor failed checksum");
        }
    }

    let snap = rt.stats.snapshot();
    println!("--- failpoints ---\n{}", rt.faults());
    println!("--- final stats ---\n{snap}");
    println!(
        "compaction pass:  {}",
        rt.stats.compaction_pass_ns.summary()
    );
    println!(
        "compaction pause: {}",
        rt.stats.compaction_pause_ns.summary()
    );
    println!(
        "totals: adds={} removes={} reads={} enumerations={} oom-errors={} \
         claim-errors={} interrupted-passes={interrupted_passes}",
        total.adds,
        total.removes,
        total.reads,
        total.enumerations,
        total.oom_errors,
        total.claim_errors
    );
    csv(&[
        "stress",
        &format!("{seed:#x}"),
        &c.len().to_string(),
        &snap.faults_injected.to_string(),
        &snap.compactions_interrupted.to_string(),
        &snap.oom_recoveries.to_string(),
    ]);
    // The stress harness has no Report; export the Chrome trace directly.
    if let Some(path) = trace_out {
        let trace = smc_obs::ChromeTrace::from_ring_snapshot();
        match trace.write(&path) {
            Ok(()) => println!(
                "trace: {} ({} events, {} dropped)",
                path.display(),
                trace.len(),
                smc_obs::trace::dropped()
            ),
            Err(e) => eprintln!("failed to write trace {}: {e}", path.display()),
        }
    }
    println!("stress: OK");
}
