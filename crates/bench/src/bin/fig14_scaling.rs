//! Figure 14 (this repo's addition): morsel-driven scaling of the parallel
//! query engine over SMC blocks.
//!
//! Sweeps worker counts (1, 2, 4, ... up to `--max-threads`) over three
//! workloads on the SMC backend: a raw filter-count scan, Q1 (group
//! aggregate) and Q6 (filter fold). For each thread count the table shows
//! the time and the speedup over the 1-worker pool; the sequential
//! single-thread pipeline is printed as the baseline row. Parallel results
//! are asserted bit-identical to the sequential pipelines on every run.

use smc_bench::{arg_f64, arg_usize, csv, ms, time_median};
use smc_exec::{ParScan, WorkerPool};
use tpch::queries::{smc_q, Params};
use tpch::smcdb::SmcDb;
use tpch::Generator;

fn main() {
    let sf = arg_f64("--sf", 0.05);
    let max_threads = arg_usize("--max-threads", 8);
    let runs = arg_usize("--runs", 3);
    let gen = Generator::new(sf);
    let p = Params::default();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "Figure 14: morsel-driven scaling on SMC (SF {sf}); times in ms; \
         {cores} hardware threads available (speedup is bounded by this)"
    );
    let db = SmcDb::load(&gen, false);

    // Sequential baselines (the existing single-threaded pipelines).
    let q1_seq = smc_q::q1(&db, &p);
    let q6_seq = smc_q::q6(&db, &p);
    let scan_seq = {
        let guard = db.runtime.pin();
        db.lineitems.for_each(&guard, |_| {})
    };
    let t_scan_seq = time_median(runs, || {
        let guard = db.runtime.pin();
        std::hint::black_box(db.lineitems.for_each(&guard, |_| {}))
    });
    let t_q1_seq = time_median(runs, || std::hint::black_box(smc_q::q1(&db, &p)).len());
    let t_q6_seq = time_median(runs, || std::hint::black_box(smc_q::q6(&db, &p)));

    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>9} {:>9} {:>9}",
        "threads", "scan ms", "Q1 ms", "Q6 ms", "scan x", "Q1 x", "Q6 x"
    );
    csv(&[
        "threads",
        "scan_ms",
        "q1_ms",
        "q6_ms",
        "scan_speedup",
        "q1_speedup",
        "q6_speedup",
    ]);
    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>9} {:>9} {:>9}",
        "seq",
        ms(t_scan_seq),
        ms(t_q1_seq),
        ms(t_q6_seq),
        "-",
        "-",
        "-"
    );

    let mut base: Option<(f64, f64, f64)> = None;
    let mut threads = 1;
    while threads <= max_threads {
        let pool = WorkerPool::for_runtime(&db.runtime, threads).expect("thread registry full");
        let scan = ParScan::new(&db.lineitems, &pool);
        let n = scan.filter_count(|_| true);
        assert_eq!(n, scan_seq, "parallel scan missed or duplicated objects");
        assert_eq!(smc_q::q1_par(&db, &p, &pool), q1_seq, "Q1 parity");
        assert_eq!(smc_q::q6_par(&db, &p, &pool), q6_seq, "Q6 parity");

        let t_scan = time_median(runs, || std::hint::black_box(scan.filter_count(|_| true)));
        let t_q1 = time_median(runs, || {
            std::hint::black_box(smc_q::q1_par(&db, &p, &pool)).len()
        });
        let t_q6 = time_median(runs, || std::hint::black_box(smc_q::q6_par(&db, &p, &pool)));
        let (s0, q10, q60) =
            *base.get_or_insert((t_scan.as_secs_f64(), t_q1.as_secs_f64(), t_q6.as_secs_f64()));
        let sx = s0 / t_scan.as_secs_f64();
        let q1x = q10 / t_q1.as_secs_f64();
        let q6x = q60 / t_q6.as_secs_f64();
        println!(
            "{:>8} {:>10} {:>10} {:>10} {:>8.2}x {:>8.2}x {:>8.2}x",
            threads,
            ms(t_scan),
            ms(t_q1),
            ms(t_q6),
            sx,
            q1x,
            q6x
        );
        csv(&[
            &threads.to_string(),
            &ms(t_scan),
            &ms(t_q1),
            &ms(t_q6),
            &format!("{sx:.3}"),
            &format!("{q1x:.3}"),
            &format!("{q6x:.3}"),
        ]);
        threads *= 2;
    }
}
