//! Figure 14 (this repo's addition): morsel-driven scaling of the parallel
//! query engine over SMC blocks.
//!
//! Sweeps worker counts (1, 2, 4, ... up to `--max-threads`) over three
//! workloads on the SMC backend: a raw filter-count scan, Q1 (group
//! aggregate) and Q6 (filter fold). For each thread count the table shows
//! the time and the speedup over the 1-worker pool; the sequential
//! single-thread pipeline is printed as the baseline row. Parallel results
//! are checked bit-identical to the sequential pipelines on every run; a
//! parity failure still writes `BENCH_fig14.json` (with the failed check
//! recorded) and exits non-zero, so CI smoke catches regressions from the
//! artifact as well as the exit code.

use smc_bench::{
    arg_f64, arg_usize, csv, csv_into, finish, init_tracing, ms, record_memory_counters,
    time_median, Report,
};
use smc_exec::{ParScan, WorkerPool};
use tpch::queries::{smc_q, Params};
use tpch::smcdb::SmcDb;
use tpch::Generator;

fn main() {
    init_tracing();
    let sf = arg_f64("--sf", 0.05);
    let max_threads = arg_usize("--max-threads", 8);
    let runs = arg_usize("--runs", 3);
    let gen = Generator::new(sf);
    let p = Params::default();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "Figure 14: morsel-driven scaling on SMC (SF {sf}); times in ms; \
         {cores} hardware threads available (speedup is bounded by this)"
    );
    let db = SmcDb::load(&gen, false);

    // Sequential baselines (the existing single-threaded pipelines).
    let q1_seq = smc_q::q1(&db, &p);
    let q6_seq = smc_q::q6(&db, &p);
    let scan_seq = {
        let guard = db.runtime.pin();
        db.lineitems.for_each(&guard, |_| {})
    };
    let t_scan_seq = time_median(runs, || {
        let guard = db.runtime.pin();
        std::hint::black_box(db.lineitems.for_each(&guard, |_| {}))
    });
    let t_q1_seq = time_median(runs, || std::hint::black_box(smc_q::q1(&db, &p)).len());
    let t_q6_seq = time_median(runs, || std::hint::black_box(smc_q::q6(&db, &p)));

    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>9} {:>9} {:>9}",
        "threads", "scan ms", "Q1 ms", "Q6 ms", "scan x", "Q1 x", "Q6 x"
    );
    let columns = [
        "threads",
        "scan_ms",
        "q1_ms",
        "q6_ms",
        "scan_speedup",
        "q1_speedup",
        "q6_speedup",
    ];
    let mut report = Report::new("fig14", "Morsel-driven scaling on SMC");
    report.param("sf", sf);
    report.param("max_threads", max_threads as u64);
    report.param("runs", runs as u64);
    report.param("hardware_threads", cores as u64);
    let sid = report.series("scaling", &columns);
    csv(&columns);
    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>9} {:>9} {:>9}",
        "seq",
        ms(t_scan_seq),
        ms(t_q1_seq),
        ms(t_q6_seq),
        "-",
        "-",
        "-"
    );

    let mut base: Option<(f64, f64, f64)> = None;
    let mut threads = 1;
    while threads <= max_threads {
        let pool = WorkerPool::for_runtime(&db.runtime, threads).expect("thread registry full");
        let scan = ParScan::new(&db.lineitems, &pool);
        // Parity checks are recorded, not asserted: a failure must still
        // produce the JSON artifact (and then exit non-zero via finish()).
        let n = scan.filter_count(|_| true);
        report.check(
            format!("scan_parity_t{threads}"),
            n == scan_seq,
            format!("parallel visited {n}, sequential {scan_seq}"),
        );
        let q1_par = smc_q::q1_par(&db, &p, &pool);
        report.check(
            format!("q1_parity_t{threads}"),
            q1_par == q1_seq,
            "parallel Q1 must be bit-identical to sequential",
        );
        let q6_par = smc_q::q6_par(&db, &p, &pool);
        report.check(
            format!("q6_parity_t{threads}"),
            q6_par == q6_seq,
            format!("parallel Q6 = {q6_par:?}, sequential = {q6_seq:?}"),
        );
        if n != scan_seq || q1_par != q1_seq || q6_par != q6_seq {
            eprintln!("parity failure at {threads} threads; skipping timing sweep");
            record_memory_counters(&mut report, &db.runtime.stats);
            finish(&mut report);
        }

        let t_scan = time_median(runs, || std::hint::black_box(scan.filter_count(|_| true)));
        let t_q1 = time_median(runs, || {
            std::hint::black_box(smc_q::q1_par(&db, &p, &pool)).len()
        });
        let t_q6 = time_median(runs, || std::hint::black_box(smc_q::q6_par(&db, &p, &pool)));
        let (s0, q10, q60) =
            *base.get_or_insert((t_scan.as_secs_f64(), t_q1.as_secs_f64(), t_q6.as_secs_f64()));
        let sx = s0 / t_scan.as_secs_f64();
        let q1x = q10 / t_q1.as_secs_f64();
        let q6x = q60 / t_q6.as_secs_f64();
        println!(
            "{:>8} {:>10} {:>10} {:>10} {:>8.2}x {:>8.2}x {:>8.2}x",
            threads,
            ms(t_scan),
            ms(t_q1),
            ms(t_q6),
            sx,
            q1x,
            q6x
        );
        csv_into(
            &mut report,
            sid,
            &[
                &threads.to_string(),
                &ms(t_scan),
                &ms(t_q1),
                &ms(t_q6),
                &format!("{sx:.3}"),
                &format!("{q1x:.3}"),
                &format!("{q6x:.3}"),
            ],
        );
        threads *= 2;
    }
    report.histogram("query_latency_ns", &tpch::queries::QUERY_LATENCY_NS);
    record_memory_counters(&mut report, &db.runtime.stats);
    finish(&mut report);
}
