//! `smc-top` — the live memory observatory dashboard.
//!
//! Runs an embedded churn workload (worker threads doing add/remove/read
//! against one [`Smc`], with the `smc-maint` coordinator owning compaction
//! in the background) and periodically renders a [`HeapSnapshot`] as a
//! text dashboard: per-block occupancy bars, limbo/hole fragmentation,
//! incarnation churn, indirection-table load, epoch lag, pin hold-time and
//! compaction percentiles, the coordinator's pass counters and SLO state,
//! and the tracer's per-ring drop counters. The workload is the subject;
//! the point is watching the observatory instruments move while writers
//! run.
//!
//! ```text
//! smc-top [--threads N] [--objects N] [--refresh-ms N] [--ticks N]
//!         [--budget-mb N] [--once] [--json] [--addr HOST:PORT]
//! ```
//!
//! `--addr HOST:PORT` switches from the embedded workload to **live
//! scrape mode**: each tick issues the `SCRAPE` wire op against a running
//! external `smc-serve` and renders its observability document —
//! per-shard request counters, tenant budgets, tail-latency attribution,
//! tracer and flight-recorder health. `--json` prints the raw
//! `smc-scrape/v1` documents instead.
//!
//! `--budget-mb N` caps the demo collection's context at N MiB (the
//! per-tenant budget machinery the serve layer rides); the `tenants` panel
//! line — and the `tenants` array in `--json` — then shows budget vs used
//! bytes live.
//!
//! `--json` prints each snapshot as one `smc-heap-snapshot/v1` JSON
//! document (extended with tracer, workload and coordinator figures)
//! instead of the dashboard; `--once` renders a single snapshot and exits
//! (CI runs `smc-top --json --once`). `SMC_TRACE_OUT` additionally writes
//! a Chrome trace of the run on exit, like every bench binary.
//!
//! ctrl-c (or SIGTERM) exits cleanly: the coordinator is quiesced, the
//! heap validated, and the trace written — same path as a normal exit.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use smc::{ContextConfig, Ref, Smc, Tabular};
use smc_bench::{arg_flag, arg_usize, init_tracing, install_signal_handler, interrupted};
use smc_maint::{Coordinator, MaintConfig, MaintPolicy, MaintSnapshot, SloPolicy};
use smc_memory::{HeapSnapshot, MemoryStats, Runtime};
use smc_obs::{Histogram, JsonValue, Registry, Summary};
use smc_util::Pcg32;

#[derive(Clone, Copy)]
struct Row {
    #[allow(dead_code)]
    key: u64,
    _payload: [u64; 14],
}
unsafe impl Tabular for Row {}

/// One churn worker: keeps a pool of live refs, alternates inserts,
/// removes and reads, and records per-op latency into a thread-local
/// histogram registered (merge-on-demand) in the global [`Registry`].
fn worker(c: Arc<Smc<Row>>, seed: u64, stop: Arc<AtomicBool>, keys: Arc<AtomicU64>) {
    let hist = Arc::new(Histogram::new());
    Registry::global().register("smc_top.worker_op_ns", &hist);
    let mut rng = Pcg32::seed_from_u64(seed);
    let mut pool: Vec<Ref<Row>> = Vec::new();
    while !stop.load(Ordering::Relaxed) {
        let t0 = Instant::now();
        match rng.gen_range(0u32..100) {
            0..=39 => {
                let key = keys.fetch_add(1, Ordering::Relaxed);
                if let Ok(r) = c.try_add(Row {
                    key,
                    _payload: [key; 14],
                }) {
                    pool.push(r);
                }
            }
            40..=69 => {
                if !pool.is_empty() {
                    let i = rng.gen_range(0..pool.len());
                    let r = pool.swap_remove(i);
                    let _ = c.try_remove(r);
                }
            }
            _ => {
                if !pool.is_empty() {
                    let r = pool[rng.gen_range(0..pool.len())];
                    if let Ok(guard) = c.runtime().try_pin() {
                        std::hint::black_box(c.read(r, &guard));
                    }
                }
            }
        }
        hist.record(t0.elapsed().as_nanos().min(u64::MAX as u128) as u64);
    }
    // Shed the pool so repeated runs do not grow without bound; the
    // histogram Arc dies with this thread and self-unregisters.
    for r in pool {
        let _ = c.try_remove(r);
    }
}

/// `width`-character occupancy bar: `[######....]`.
fn bar(frac: f64, width: usize) -> String {
    let filled = (frac.clamp(0.0, 1.0) * width as f64).round() as usize;
    format!("[{}{}]", "#".repeat(filled), ".".repeat(width - filled))
}

fn mib(bytes: u64) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

fn fmt_summary(s: &Summary) -> String {
    format!(
        "p50 {} p95 {} p99 {} max {} (n={})",
        s.p50, s.p95, s.p99, s.max, s.count
    )
}

/// The coordinator panel: one line of queue/pass counters plus the SLO
/// state and the last finished pass.
fn render_maint(m: &MaintSnapshot) {
    let last = m.last_pass.map_or_else(
        || "-".to_string(),
        |lp| {
            format!(
                "ctx#{} {} moved {} bailed {}",
                lp.context_id,
                lp.outcome.as_str(),
                lp.moved,
                lp.bailed
            )
        },
    );
    println!(
        "  maint: queue {} active {} | planned {} done {} deferred {} \
         throttled {} retried {} cancelled {} watchdog {} | slo {} | last {}",
        m.queue_depth,
        m.passes_active,
        m.passes_planned,
        m.passes_completed,
        m.passes_deferred,
        m.passes_throttled,
        m.passes_retried,
        m.passes_cancelled,
        m.watchdog_cancels,
        if m.slo_breached { "BREACHED" } else { "ok" },
        last,
    );
}

/// Renders one dashboard frame to stdout.
fn render(tick: u64, snap: &HeapSnapshot, rt: &Runtime, live: u64, m: &MaintSnapshot) {
    println!(
        "smc-top tick {tick} — epoch {} (lag {}, min pinned {}) — watermark {}",
        snap.watermark.global_epoch_end,
        snap.epoch_lag,
        snap.min_pinned_epoch
            .map_or_else(|| "-".to_string(), |e| e.to_string()),
        if snap.watermark.consistent() {
            "consistent"
        } else {
            "INCONSISTENT"
        }
    );
    for c in &snap.collections {
        let compacting = c.blocks.iter().filter(|b| b.compacting).count();
        println!(
            "  ctx#{}: {} blocks ({} compacting, {} groups) occ {:5.1}% {} \
             live {} limbo {} holes {}",
            c.context_id,
            c.block_count(),
            compacting,
            c.groups,
            c.occupancy() * 100.0,
            bar(c.occupancy(), 20),
            c.valid_slots,
            c.limbo_slots,
            c.hole_slots,
        );
        println!(
            "         live {:.2} MiB  dead {:.2} MiB  holes {:.2} MiB  \
             footprint {:.2} MiB  incarnation churn {}",
            mib(c.live_bytes()),
            mib(c.dead_bytes()),
            mib(c.hole_bytes()),
            mib(c.footprint_bytes()),
            c.incarnation_churn,
        );
        if c.spilled_blocks > 0 {
            println!(
                "         spilled {} blocks / {} objects (resident {} blocks)",
                c.spilled_blocks,
                c.spilled_objects,
                c.block_count(),
            );
        }
    }
    for c in &snap.collections {
        let budget = c
            .budget_bytes
            .map_or_else(|| "unlimited".to_string(), |b| format!("{:.2} MiB", mib(b)));
        let used = c.footprint_bytes();
        let frac = c
            .budget_bytes
            .map(|b| used as f64 / b.max(1) as f64)
            .unwrap_or(0.0);
        println!(
            "  tenants: ctx#{} budget {budget}  used {:.2} MiB {}",
            c.context_id,
            mib(used),
            if c.budget_bytes.is_some() {
                bar(frac, 20)
            } else {
                String::new()
            },
        );
    }
    println!(
        "  indirection: live {}/{} ({:.1}%)  quarantined {}  deferred {}",
        snap.indirection.live_entries,
        snap.indirection.capacity,
        snap.indirection.load_factor() * 100.0,
        snap.indirection.quarantined_entries,
        snap.indirection.deferred_entries,
    );
    let a = &snap.alloc;
    println!(
        "  alloc: {}  budgeted {}  cached {}  recycled {}  remote {} (drained {})",
        if a.sharded { "sharded" } else { "shared" },
        a.budgeted_blocks,
        a.cached_blocks,
        a.blocks_recycled,
        a.remote_frees,
        a.remote_frees_drained,
    );
    for class in &a.slab_classes {
        // Only classes that ever carved a page earn a line.
        if class.pages > 0 {
            println!(
                "  slab[{:>4} B]: {} pages  live {}/{} cells {}  total {}",
                class.cell_size,
                class.pages,
                class.cells_live,
                class.cells_capacity,
                bar(
                    class.cells_live as f64 / class.cells_capacity.max(1) as f64,
                    20
                ),
                class.cells_allocated_total,
            );
        }
    }
    println!("  pin hold ns:         {}", fmt_summary(&snap.pin_hold));
    println!(
        "  compaction pass ns:  {}",
        rt.stats.compaction_pass_ns.summary()
    );
    println!(
        "  compaction pause ns: {}",
        rt.stats.compaction_pause_ns.summary()
    );
    let merged = Registry::global().merged("smc_top.worker_op_ns");
    println!("  worker op ns:        {}", fmt_summary(&merged.summary()));
    render_maint(m);
    if smc_obs::trace::is_enabled() {
        let dropped = smc_obs::trace::dropped();
        let per_thread = smc_obs::trace::dropped_by_thread()
            .iter()
            .map(|(t, d)| format!("ring {t}: {d}"))
            .collect::<Vec<_>>()
            .join(", ");
        println!(
            "  tracer: {} events dropped{}  |  collection len {}",
            dropped,
            if per_thread.is_empty() {
                String::new()
            } else {
                format!(" ({per_thread})")
            },
            live,
        );
    } else {
        // Honest panel: zeros from a disabled tracer would read as "no
        // drops" when nothing was ever recorded.
        println!(
            "  tracer: disabled (set SMC_TRACE_OUT to record)  |  \
             collection len {live}",
        );
    }
    println!();
}

/// The coordinator figures for the `--json` document.
fn maint_json(m: &MaintSnapshot) -> JsonValue {
    let mut o = JsonValue::obj();
    o.set("queue_depth", m.queue_depth);
    o.set("passes_active", m.passes_active);
    o.set("passes_planned", m.passes_planned);
    o.set("passes_completed", m.passes_completed);
    o.set("passes_deferred", m.passes_deferred);
    o.set("passes_throttled", m.passes_throttled);
    o.set("passes_retried", m.passes_retried);
    o.set("passes_cancelled", m.passes_cancelled);
    o.set("watchdog_cancels", m.watchdog_cancels);
    o.set("slo_breached", m.slo_breached);
    if let Some(lp) = m.last_pass {
        let mut l = JsonValue::obj();
        l.set("context_id", lp.context_id);
        l.set("outcome", lp.outcome.as_str());
        l.set("moved", lp.moved);
        l.set("bailed", lp.bailed);
        o.set("last_pass", l);
    }
    o
}

/// The `--json` document: the heap snapshot extended with tracer,
/// workload and coordinator figures.
fn json_doc(
    tick: u64,
    snap: &HeapSnapshot,
    rt: &Runtime,
    live: u64,
    m: &MaintSnapshot,
) -> JsonValue {
    let mut doc = snap.to_json();
    doc.set("tick", tick);
    doc.set("collection_len", live);
    let mut tracer = JsonValue::obj();
    tracer.set("enabled", smc_obs::trace::is_enabled());
    tracer.set("dropped", smc_obs::trace::dropped());
    let per_thread = smc_obs::trace::dropped_by_thread()
        .into_iter()
        .map(|(t, d)| {
            let mut o = JsonValue::obj();
            o.set("thread", t);
            o.set("dropped", d);
            o
        })
        .collect();
    tracer.set("dropped_by_thread", JsonValue::Arr(per_thread));
    doc.set("tracer", tracer);
    let worker = Registry::global().merged("smc_top.worker_op_ns").summary();
    let mut w = JsonValue::obj();
    w.set("count", worker.count);
    w.set("p50_ns", worker.p50);
    w.set("p95_ns", worker.p95);
    w.set("p99_ns", worker.p99);
    doc.set("worker_op_ns", w);
    let pass = rt.stats.compaction_pass_ns.summary();
    let mut p = JsonValue::obj();
    p.set("count", pass.count);
    p.set("p50_ns", pass.p50);
    p.set("p99_ns", pass.p99);
    doc.set("compaction_pass_ns", p);
    doc.set("maint", maint_json(m));
    // The tenants panel: per-context budget vs used bytes, the serve
    // layer's multi-tenant accounting surfaced through the observatory.
    let tenants = snap
        .collections
        .iter()
        .map(|c| {
            let mut t = JsonValue::obj();
            t.set("context_id", c.context_id);
            match c.budget_bytes {
                Some(b) => t.set("budget_bytes", b),
                None => t.set("budget_bytes", JsonValue::Null),
            }
            t.set("budget_used_bytes", c.footprint_bytes());
            t.set("spilled_blocks", c.spilled_blocks);
            t.set("spilled_objects", c.spilled_objects);
            t
        })
        .collect();
    doc.set("tenants", JsonValue::Arr(tenants));
    doc
}

fn arg_string(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Renders one `smc-scrape/v1` document as a dashboard frame.
fn render_scrape(tick: u64, doc: &JsonValue) {
    let u = |v: Option<&JsonValue>, k: &str| -> u64 {
        v.and_then(|o| o.get(k))
            .and_then(JsonValue::as_u64)
            .unwrap_or(0)
    };
    println!("smc-top tick {tick} — live scrape");
    let stats = doc.get("stats");
    if let Some(shards) = stats
        .and_then(|s| s.get("shards"))
        .and_then(JsonValue::as_arr)
    {
        for s in shards {
            println!(
                "  shard {}: {} requests  pins {}  blocks scanned {}  morsels {}",
                u(Some(s), "shard"),
                u(Some(s), "requests"),
                u(Some(s), "pins_taken"),
                u(Some(s), "blocks_scanned"),
                u(Some(s), "morsels_dispatched"),
            );
        }
    }
    if let Some(tenants) = stats
        .and_then(|s| s.get("tenants"))
        .and_then(JsonValue::as_arr)
    {
        for t in tenants {
            let budget = t
                .get("budget_bytes")
                .and_then(JsonValue::as_u64)
                .filter(|&b| b != u64::MAX)
                .map_or_else(|| "unlimited".to_string(), |b| format!("{:.2} MiB", mib(b)));
            println!(
                "  tenant {}: budget {budget}  used {:.2} MiB  live {}  over-budget {}",
                u(Some(t), "tenant"),
                mib(u(Some(t), "used_bytes")),
                u(Some(t), "live_objects"),
                u(Some(t), "over_budget_errors"),
            );
        }
    }
    if let Some(attr) = doc.get("attribution") {
        let threshold = u(Some(attr), "threshold_ns");
        for class in ["ingest", "query"] {
            let Some(c) = attr.get(class) else { continue };
            let total = c.get("total_ns");
            let ring = c.get("ring_wait_ns");
            let exec = c.get("exec_ns");
            println!(
                "  slow {class} (> {threshold} ns): {}  total p99 {} ns  \
                 ring-wait p99 {} ns  exec p99 {} ns  |  spill {}  rungs {}  \
                 epoch {}  maint-overlap {}",
                u(Some(c), "slow_requests"),
                u(total, "p99_ns"),
                u(ring, "p99_ns"),
                u(exec, "p99_ns"),
                u(Some(c), "spill_faults"),
                u(Some(c), "budget_rungs"),
                u(Some(c), "epoch_stalls"),
                u(Some(c), "maint_overlaps"),
            );
        }
    }
    match doc.get("tracer") {
        Some(t) if t.get("enabled").and_then(JsonValue::as_bool) == Some(true) => {
            println!(
                "  tracer: enabled, {} events dropped",
                u(Some(t), "dropped")
            );
        }
        // A disabled tracer reports as such — zeros would read as a
        // drop-free recording that never happened.
        _ => println!("  tracer: disabled on server (start it with SMC_TRACE_OUT to record)"),
    }
    if let Some(f) = doc.get("flight") {
        let armed = f.get("enabled").and_then(JsonValue::as_bool) == Some(true);
        println!(
            "  flight: {}  capacity {}  overwritten {}",
            if armed { "armed" } else { "disarmed" },
            u(Some(f), "capacity"),
            u(Some(f), "dropped"),
        );
    }
    println!();
}

/// Live scrape mode: poll an external server's `SCRAPE` op instead of
/// running the embedded workload.
fn run_scrape(addr: &str, refresh_ms: usize, ticks: usize, json: bool) -> i32 {
    let mut tick = 0u64;
    while !interrupted() {
        tick += 1;
        let doc = smc_serve::Client::connect(addr)
            .map_err(smc_serve::ClientError::Io)
            .and_then(|mut c| {
                c.set_timeout(Some(Duration::from_secs(10)))?;
                c.scrape()
            });
        match doc {
            Ok(doc) if json => println!("{}", doc.to_json()),
            Ok(doc) => render_scrape(tick, &doc),
            Err(e) => {
                eprintln!("smc-top: scrape of {addr} failed: {e}");
                return 1;
            }
        }
        if ticks > 0 && tick >= ticks as u64 {
            break;
        }
        std::thread::sleep(Duration::from_millis(refresh_ms as u64));
    }
    0
}

fn main() {
    let trace_out = init_tracing();
    install_signal_handler();
    let threads = arg_usize("--threads", 2);
    let objects = arg_usize("--objects", 50_000);
    let refresh_ms = arg_usize("--refresh-ms", 500);
    let json = arg_flag("--json");
    let once = arg_flag("--once");
    let ticks = arg_usize("--ticks", if once { 1 } else { 0 });
    let budget_mb = arg_usize("--budget-mb", 0);

    if let Some(addr) = arg_string("--addr") {
        let _ = trace_out;
        std::process::exit(run_scrape(&addr, refresh_ms, ticks, json));
    }

    let rt = Runtime::new();
    // Compaction-eager configuration so the dashboard has relocation and
    // fragmentation activity to show.
    let config = ContextConfig {
        reclamation_threshold: 1.1, // in-place reclamation off
        compaction_occupancy: 0.85,
        budget_bytes: (budget_mb > 0).then_some((budget_mb as u64) << 20),
        ..ContextConfig::default()
    };
    let c: Arc<Smc<Row>> = Arc::new(Smc::with_config(&rt, config));

    // The coordinator owns compaction: the dashboard loop never calls
    // `compact()` itself, it only reads the counters. A foreground scan
    // probe (below) feeds the SLO gauge so the back-pressure state on the
    // panel is live.
    let scan_gauge = Arc::new(Histogram::new());
    Registry::global().register("smc_top.scan_ns", &scan_gauge);
    let coordinator = Coordinator::new(MaintConfig {
        slo: SloPolicy {
            gauge: Some(scan_gauge.clone()),
            p99_ceiling: Duration::from_millis(250),
            ..SloPolicy::default()
        },
        ..MaintConfig::default()
    });
    c.register_maintenance(
        &coordinator,
        MaintPolicy {
            min_interval: Duration::from_millis((refresh_ms as u64 / 4).max(5)),
            ..MaintPolicy::default()
        },
    );

    let keys = Arc::new(AtomicU64::new(0));
    for i in 0..objects as u64 {
        let key = keys.fetch_add(1, Ordering::Relaxed);
        let _ = c.try_add(Row {
            key,
            _payload: [i; 14],
        });
    }

    let stop = Arc::new(AtomicBool::new(false));
    let handles: Vec<_> = (0..threads)
        .map(|tid| {
            let c = c.clone();
            let stop = stop.clone();
            let keys = keys.clone();
            std::thread::spawn(move || worker(c, 0x5eed_u64 + tid as u64, stop, keys))
        })
        .collect();

    if !json {
        println!(
            "smc-top: {threads} churn workers over {objects} objects, \
             refresh {refresh_ms} ms (ctrl-c to quit)"
        );
    }
    let mut tick = 0u64;
    while !interrupted() {
        tick += 1;
        // Foreground scan probe: the latency the coordinator's SLO loop
        // watches is the one the dashboard itself experiences.
        let t0 = Instant::now();
        if let Ok(guard) = rt.try_pin() {
            let mut seen = 0u64;
            c.for_each(&guard, |_| seen += 1);
            std::hint::black_box(seen);
        }
        scan_gauge.record_duration(t0.elapsed());
        // Snapshot concurrently with the workers — the observatory's whole
        // claim. Relocation activity between frames is the coordinator's.
        let snap = c.heap_snapshot();
        let m = coordinator.snapshot();
        if json {
            println!("{}", json_doc(tick, &snap, &rt, c.len(), &m).to_json());
        } else {
            render(tick, &snap, &rt, c.len(), &m);
        }
        if ticks > 0 && tick >= ticks as u64 {
            break;
        }
        std::thread::sleep(Duration::from_millis(refresh_ms as u64));
    }

    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().expect("worker panicked");
    }
    // Quiesce and sanity-check before exiting — also the ctrl-c path: the
    // coordinator drains its in-flight pass, a tidy pass sweeps what the
    // planner never saw, and the snapshot instruments must reconcile with
    // the structural validator once writers stop.
    coordinator.quiesce();
    if !json {
        render_maint(&coordinator.snapshot());
    }
    c.compact();
    c.release_retired();
    rt.drain_graveyard_blocking();
    let verify = c.verify().expect("validator failed after quiescence");
    let snap = c.heap_snapshot();
    assert_eq!(
        snap.totals().0,
        verify.valid_slots,
        "quiescent snapshot diverged from verify"
    );
    let _ = MemoryStats::get(&rt.stats.pins_taken);
    if let Some(path) = trace_out {
        let trace = smc_obs::ChromeTrace::from_ring_snapshot();
        match trace.write(&path) {
            Ok(()) => eprintln!("trace: {}", path.display()),
            Err(e) => eprintln!("failed to write trace {}: {e}", path.display()),
        }
    }
}
