//! # smc-maint — pressure-aware background compaction coordinator
//!
//! Query-dominated collections fragment slowly: decimation deletes punch
//! limbo holes into blocks faster than foreground allocation refills them.
//! The paper's answer is the §5 concurrent compaction pass; this crate
//! decides *when* to run those passes, and makes sure running them never
//! costs the foreground its latency budget.
//!
//! [`Coordinator`] owns maintenance for every registered
//! [`MemoryContext`](smc_memory::MemoryContext):
//!
//! * a per-context [`MaintPolicy`] (fragmentation ratio, limbo bytes, churn
//!   rate, all read from live heap introspection) decides which contexts are
//!   due;
//! * a worker-pool concurrency limit plus a token-bucket pacer
//!   ([`pacer::TokenBucket`]) bound work in flight;
//! * an SLO back-pressure loop watches a foreground scan-latency histogram
//!   and defers due passes while its p99 is past the configured ceiling,
//!   resuming with bounded, seeded-jitter exponential backoff
//!   ([`smc_util::Backoff`]);
//! * transient failures (injected failpoints, aborted or interrupted passes)
//!   are retried with the same seeded backoff; a watchdog cancels passes
//!   stuck past a deadline through the protocol's bail path;
//! * [`Coordinator::quiesce`] and [`Coordinator::cancel`] stop the world
//!   exactly — drain or roll back, never half-moved state — so `Smc::verify`
//!   reconciles bit-exact afterwards (model-checked by the `smc-check`
//!   cancel scenario; soaked end-to-end by the `fig15_soak` bench).

#![warn(missing_docs)]

pub mod coordinator;
pub mod pacer;
pub mod policy;

pub use coordinator::{Coordinator, LastPass, MaintConfig, MaintSnapshot, PassOutcome, SloPolicy};
pub use policy::{frag_ratio, MaintPolicy, PassReason};

#[cfg(test)]
mod tests {
    use super::*;
    use smc_memory::{ContextConfig, MemoryContext, Runtime};
    use smc_obs::hist::Histogram;
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    fn context(rt: &Arc<Runtime>) -> Arc<MemoryContext> {
        Arc::new(
            MemoryContext::new_rows(rt.clone(), 64, 8, 1, ContextConfig::default())
                .expect("layout fits a block"),
        )
    }

    fn alloc(c: &MemoryContext, v: u64) -> smc_memory::context::Allocation {
        c.alloc_with(|block, slot| unsafe { block.obj_ptr(slot).cast::<u64>().write(v) })
            .unwrap()
    }

    /// Fill several blocks, then decimate so most blocks drop under the
    /// compaction occupancy threshold.
    fn decimate(ctx: &MemoryContext, n: u64) {
        let handles: Vec<_> = (0..n).map(|i| alloc(ctx, i)).collect();
        for (i, h) in handles.iter().enumerate() {
            if i % 10 != 0 {
                assert!(ctx.free(h.entry, h.entry_inc));
            }
        }
    }

    fn wait_until(deadline: Duration, mut done: impl FnMut() -> bool) -> bool {
        let end = Instant::now() + deadline;
        while Instant::now() < end {
            if done() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        done()
    }

    fn fast_config() -> MaintConfig {
        MaintConfig {
            poll_interval: Duration::from_millis(2),
            pacer_capacity: 16.0,
            pacer_refill_per_sec: 1000.0,
            ..MaintConfig::default()
        }
    }

    #[test]
    fn coordinator_compacts_fragmented_context_and_quiesces_clean() {
        let rt = Runtime::new();
        let ctx = context(&rt);
        decimate(&ctx, 2048);
        let live = ctx.live_objects();

        let coord = Coordinator::new(fast_config());
        coord.register(
            ctx.clone(),
            MaintPolicy {
                frag_ratio_ceiling: 0.30,
                min_interval: Duration::from_millis(1),
                ..MaintPolicy::default()
            },
        );
        assert!(
            wait_until(Duration::from_secs(10), || coord
                .snapshot()
                .passes_completed
                > 0),
            "a frag-due pass must run: {:?}",
            coord.snapshot()
        );
        coord.quiesce();
        let snap = coord.snapshot();
        assert_eq!(snap.passes_active, 0);
        assert_eq!(snap.queue_depth, 0);
        assert!(snap.last_pass.is_some());
        // Bit-exact after quiesce: every survivor is still there, the
        // runtime's invariants hold.
        ctx.release_retired();
        rt.drain_graveyard_blocking();
        assert_eq!(ctx.live_objects(), live);
        assert!(ctx.verify().is_ok(), "context verify after quiesce");
        assert!(rt.verify().is_ok(), "runtime verify after quiesce");
    }

    #[test]
    fn nudge_forces_a_pass_on_an_idle_context() {
        let rt = Runtime::new();
        let ctx = context(&rt);
        // A context with nothing to do: policy thresholds never trip.
        let coord = Coordinator::new(fast_config());
        coord.register(
            ctx.clone(),
            MaintPolicy {
                frag_ratio_ceiling: 1.1,
                limbo_bytes_ceiling: u64::MAX,
                ..MaintPolicy::default()
            },
        );
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(coord.snapshot().passes_planned, 0, "nothing due yet");
        coord.nudge(ctx.id());
        assert!(
            wait_until(Duration::from_secs(10), || coord.snapshot().passes_planned
                > 0),
            "nudge must force a pass: {:?}",
            coord.snapshot()
        );
        coord.quiesce();
    }

    #[test]
    fn slo_breach_defers_and_recovery_resumes() {
        let rt = Runtime::new();
        let ctx = context(&rt);
        decimate(&ctx, 2048);
        let gauge = Arc::new(Histogram::new());
        gauge.record(1_000_000); // 1 ms foreground latency on record
        let coord = Coordinator::new(MaintConfig {
            slo: SloPolicy {
                gauge: Some(gauge.clone()),
                p99_ceiling: Duration::ZERO, // everything breaches
                backoff_base: Duration::from_millis(1),
                backoff_cap: Duration::from_millis(4),
            },
            ..fast_config()
        });
        coord.register(
            ctx.clone(),
            MaintPolicy {
                frag_ratio_ceiling: 0.30,
                min_interval: Duration::from_millis(1),
                ..MaintPolicy::default()
            },
        );
        assert!(
            wait_until(Duration::from_secs(10), || coord.snapshot().passes_deferred
                > 0),
            "breached SLO must defer due passes: {:?}",
            coord.snapshot()
        );
        assert_eq!(
            coord.snapshot().passes_planned,
            0,
            "no pass may start while breached"
        );
        assert!(coord.snapshot().slo_breached);
        // Raise the ceiling: back-pressure releases and the pass runs.
        coord.set_slo_ceiling(Duration::from_secs(3600));
        assert!(
            wait_until(Duration::from_secs(10), || coord
                .snapshot()
                .passes_completed
                > 0),
            "recovery must resume planning: {:?}",
            coord.snapshot()
        );
        coord.quiesce();
        assert!(rt.verify().is_ok());
    }

    #[test]
    fn spill_pass_runs_under_budget_pressure_despite_slo_breach() {
        let rt = Runtime::new();
        // Budget of four blocks; fill roughly three with fully-live rows so
        // fragmentation stays near zero — nothing for compaction to reclaim,
        // but the footprint sits above a 50 % spill watermark.
        let ctx = Arc::new(
            MemoryContext::new_rows(
                rt.clone(),
                64,
                8,
                1,
                ContextConfig {
                    budget_bytes: Some(4 * smc_memory::BLOCK_SIZE as u64),
                    ..ContextConfig::default()
                },
            )
            .expect("layout fits a block"),
        );
        let store = Arc::new(smc_memory::MemoryPageStore::new());
        assert!(ctx.enable_spill(store.clone()));
        for i in 0..2800u64 {
            alloc(&ctx, i);
        }
        assert!(ctx.bytes() as u64 > 2 * smc_memory::BLOCK_SIZE as u64);

        // SLO permanently breached: compaction passes would be deferred, but
        // the spill rung must still run — it is the pressure-relief valve.
        let gauge = Arc::new(Histogram::new());
        gauge.record(1_000_000);
        let coord = Coordinator::new(MaintConfig {
            slo: SloPolicy {
                gauge: Some(gauge.clone()),
                p99_ceiling: Duration::ZERO,
                backoff_base: Duration::from_millis(1),
                backoff_cap: Duration::from_millis(4),
            },
            ..fast_config()
        });
        coord.register(
            ctx.clone(),
            MaintPolicy {
                frag_ratio_ceiling: 1.1,
                limbo_bytes_ceiling: u64::MAX,
                spill_budget_ratio: Some(0.5),
                min_interval: Duration::from_millis(1),
                ..MaintPolicy::default()
            },
        );
        assert!(
            wait_until(Duration::from_secs(10), || coord
                .snapshot()
                .passes_completed
                > 0
                && ctx.spilled_blocks() > 0),
            "spill pass must run while the SLO is breached: {:?} spilled={}",
            coord.snapshot(),
            ctx.spilled_blocks()
        );
        assert!(coord.snapshot().slo_breached, "breach stays engaged");
        coord.quiesce();
        // Eviction brought the footprint to (or below) the watermark, and
        // every spilled object is still reachable and verifiable.
        assert!(
            ctx.bytes() as u64 <= 2 * smc_memory::BLOCK_SIZE as u64,
            "footprint must drop to the 50% watermark, still {}",
            ctx.bytes()
        );
        assert!(!store.is_empty(), "pages landed in the store");
        assert!(ctx.verify().is_ok(), "context verify after spill pass");
        assert!(rt.verify().is_ok(), "runtime verify after spill pass");
    }

    #[test]
    fn maint_pass_failpoint_is_retried_transparently() {
        let rt = Runtime::new();
        let ctx = context(&rt);
        decimate(&ctx, 2048);
        // Trip the pre-pass failpoint a bounded number of times.
        rt.faults().set_rate(smc_memory::FaultSite::MaintPass, 1024);
        rt.faults().set_limit(Some(3));
        rt.faults().enable(7);
        let coord = Coordinator::new(fast_config());
        coord.register(
            ctx.clone(),
            MaintPolicy {
                frag_ratio_ceiling: 0.30,
                min_interval: Duration::from_millis(1),
                ..MaintPolicy::default()
            },
        );
        assert!(
            wait_until(Duration::from_secs(10), || coord
                .snapshot()
                .passes_completed
                > 0),
            "pass must complete after transient failures: {:?}",
            coord.snapshot()
        );
        let snap = coord.snapshot();
        assert!(
            snap.passes_retried > 0,
            "injected trips must be counted as retries: {snap:?}"
        );
        coord.quiesce();
        rt.faults().disable();
        assert!(rt.verify().is_ok());
    }

    #[test]
    fn cancel_rolls_back_and_verify_reconciles() {
        let rt = Runtime::new();
        let ctx = context(&rt);
        decimate(&ctx, 4096);
        let live = ctx.live_objects();
        let coord = Coordinator::new(fast_config());
        coord.register(
            ctx.clone(),
            MaintPolicy {
                frag_ratio_ceiling: 0.30,
                min_interval: Duration::from_millis(1),
                ..MaintPolicy::default()
            },
        );
        // Cancel early: whatever was in flight rolls back via the bail path.
        std::thread::sleep(Duration::from_millis(5));
        coord.cancel();
        let snap = coord.snapshot();
        assert_eq!(snap.passes_active, 0);
        ctx.release_retired();
        rt.drain_graveyard_blocking();
        assert_eq!(ctx.live_objects(), live, "cancel must not lose objects");
        assert!(ctx.verify().is_ok(), "context verify after cancel");
        assert!(rt.verify().is_ok(), "runtime verify after cancel");
    }
}
