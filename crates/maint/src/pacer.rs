//! Token-bucket pacer bounding how fast the coordinator may start passes.
//!
//! The planner must take one token per planned pass; tokens refill at a
//! configured rate up to a burst capacity. Combined with the worker-count
//! concurrency limit this bounds both work in flight *and* work per second,
//! so a pathological policy (e.g. a context hovering exactly at a threshold)
//! cannot turn the coordinator into a busy loop of back-to-back passes.
//!
//! Time is passed in explicitly (`Instant` arguments) rather than read from
//! the clock, so unit tests drive the bucket deterministically.

use std::time::{Duration, Instant};

/// A token bucket: `capacity` burst tokens, refilled continuously at
/// `refill_per_sec`.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    capacity: f64,
    tokens: f64,
    refill_per_sec: f64,
    last: Option<Instant>,
}

impl TokenBucket {
    /// A bucket that starts full. `capacity` is clamped to at least one
    /// token; a non-positive refill rate means the bucket never refills.
    pub fn new(capacity: f64, refill_per_sec: f64) -> TokenBucket {
        let capacity = capacity.max(1.0);
        TokenBucket {
            capacity,
            tokens: capacity,
            refill_per_sec: refill_per_sec.max(0.0),
            last: None,
        }
    }

    /// Takes one token if available at time `now`. Returns false (and takes
    /// nothing) when the bucket is empty.
    pub fn try_take(&mut self, now: Instant) -> bool {
        self.refill(now);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Tokens currently available at time `now` (whole tokens).
    pub fn available(&mut self, now: Instant) -> u64 {
        self.refill(now);
        self.tokens as u64
    }

    fn refill(&mut self, now: Instant) {
        if let Some(last) = self.last {
            let dt = now.saturating_duration_since(last);
            if dt > Duration::ZERO {
                self.tokens =
                    (self.tokens + dt.as_secs_f64() * self.refill_per_sec).min(self.capacity);
            }
        }
        self.last = Some(self.last.map_or(now, |l| l.max(now)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_then_empty_then_refill() {
        let t0 = Instant::now();
        let mut b = TokenBucket::new(3.0, 2.0);
        assert!(b.try_take(t0));
        assert!(b.try_take(t0));
        assert!(b.try_take(t0));
        assert!(!b.try_take(t0), "burst capacity is 3");
        // 500 ms at 2 tokens/s refills exactly one token.
        let t1 = t0 + Duration::from_millis(500);
        assert!(b.try_take(t1));
        assert!(!b.try_take(t1));
    }

    #[test]
    fn refill_caps_at_capacity() {
        let t0 = Instant::now();
        let mut b = TokenBucket::new(2.0, 100.0);
        assert!(b.try_take(t0));
        let much_later = t0 + Duration::from_secs(60);
        assert_eq!(b.available(much_later), 2, "refill must cap at capacity");
    }

    #[test]
    fn zero_refill_never_recovers() {
        let t0 = Instant::now();
        let mut b = TokenBucket::new(1.0, 0.0);
        assert!(b.try_take(t0));
        assert!(!b.try_take(t0 + Duration::from_secs(3600)));
    }

    #[test]
    fn time_going_backwards_is_harmless() {
        let t0 = Instant::now();
        let mut b = TokenBucket::new(1.0, 1.0);
        assert!(b.try_take(t0 + Duration::from_secs(1)));
        // An earlier instant must not mint tokens or panic.
        assert!(!b.try_take(t0));
    }
}
