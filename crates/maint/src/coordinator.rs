//! The background compaction coordinator.
//!
//! One planner thread evaluates every registered context's [`MaintPolicy`]
//! against live heap introspection each cycle, and a small pool of worker
//! threads executes the planned passes. Three mechanisms bound the
//! foreground impact:
//!
//! * **Concurrency limit** — at most `max_concurrent_passes` workers exist,
//!   so that many passes can run at once (the runtime's compaction mutex
//!   additionally serializes passes *per runtime*).
//! * **Token-bucket pacer** — the planner takes one token per planned pass,
//!   bounding pass starts per second ([`TokenBucket`]).
//! * **SLO back-pressure** — when the foreground scan-latency gauge's p99
//!   rises past the configured ceiling, planning stops: due passes are
//!   counted as deferred and the coordinator holds off for a bounded
//!   exponentially-backed-off interval (seeded jitter, reproducible) before
//!   re-checking.
//!
//! Transient pass failures — an injected [`FaultSite::MaintPass`] trip, an
//! aborted or interrupted pass — are retried with the same seeded backoff up
//! to a retry limit. A watchdog cancels passes that hold their pin past a
//! deadline via [`MemoryContext::request_compaction_cancel`], which rolls
//! every still-pending relocation back through the protocol's §5.1 bail
//! path. [`Coordinator::quiesce`] drains in-flight work and
//! [`Coordinator::cancel`] actively cancels it; after either, the heap
//! reconciles bit-exact under `Smc::verify` (proved by the `smc-check`
//! cancel scenario and exercised end-to-end by the `fig15_soak` bench).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use smc_memory::fault::FaultSite;
use smc_memory::inspect::HeapSnapshot;
use smc_memory::MemoryContext;
use smc_obs::hist::Histogram;
use smc_obs::trace::{self, Event, Label};
use smc_util::Backoff;

use crate::pacer::TokenBucket;
use crate::policy::{MaintPolicy, PassReason};

/// Foreground-latency service-level objective driving back-pressure.
#[derive(Debug, Clone)]
pub struct SloPolicy {
    /// Live histogram of foreground scan latencies (shared with the
    /// workload threads that record into it). `None` disables back-pressure.
    pub gauge: Option<Arc<Histogram>>,
    /// Back-pressure engages while the gauge's p99 is at or above this.
    pub p99_ceiling: Duration,
    /// First hold-off interval after a breach.
    pub backoff_base: Duration,
    /// Upper bound on the hold-off interval.
    pub backoff_cap: Duration,
}

impl Default for SloPolicy {
    fn default() -> SloPolicy {
        SloPolicy {
            gauge: None,
            p99_ceiling: Duration::from_millis(10),
            backoff_base: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(500),
        }
    }
}

/// Coordinator-wide tunables.
#[derive(Debug, Clone)]
pub struct MaintConfig {
    /// Worker threads, i.e. the global bound on passes in flight.
    pub max_concurrent_passes: usize,
    /// Token-bucket burst capacity (passes).
    pub pacer_capacity: f64,
    /// Token-bucket refill rate (passes per second).
    pub pacer_refill_per_sec: f64,
    /// A pass still running after this long is cancelled by the watchdog.
    pub watchdog_deadline: Duration,
    /// Transient failures (failpoint trips, aborted/interrupted passes) are
    /// retried at most this many times per pass.
    pub retry_limit: u32,
    /// Seed for every backoff jitter stream (retries and SLO hold-off);
    /// a fixed seed reproduces the exact delay sequences.
    pub seed: u64,
    /// Planner cycle period.
    pub poll_interval: Duration,
    /// Foreground-latency SLO; see [`SloPolicy`].
    pub slo: SloPolicy,
}

impl Default for MaintConfig {
    fn default() -> MaintConfig {
        MaintConfig {
            max_concurrent_passes: 1,
            pacer_capacity: 4.0,
            pacer_refill_per_sec: 8.0,
            watchdog_deadline: Duration::from_secs(2),
            retry_limit: 5,
            seed: 0x5eed_5eed,
            poll_interval: Duration::from_millis(10),
            slo: SloPolicy::default(),
        }
    }
}

/// Outcome class of the most recent finished pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PassOutcome {
    /// The pass completed and retired blocks were released.
    Done,
    /// The pass was cancelled (watchdog or [`Coordinator::cancel`]); pending
    /// relocations were rolled back through the bail path.
    Cancelled,
    /// The pass kept failing transiently past the retry limit.
    Aborted,
}

impl PassOutcome {
    /// Short stable token for traces and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            PassOutcome::Done => "done",
            PassOutcome::Cancelled => "cancel",
            PassOutcome::Aborted => "abort",
        }
    }
}

/// Summary of the last finished pass, for `smc-top` and reports.
#[derive(Debug, Clone, Copy)]
pub struct LastPass {
    /// Context the pass ran against.
    pub context_id: u64,
    /// How the pass ended.
    pub outcome: PassOutcome,
    /// Objects moved.
    pub moved: usize,
    /// Relocations rolled back through the bail path.
    pub bailed: usize,
}

/// Point-in-time counters for dashboards and reports. All counters are
/// cumulative since coordinator construction.
#[derive(Debug, Clone, Default)]
pub struct MaintSnapshot {
    /// Contexts currently registered.
    pub registered: usize,
    /// Planned passes waiting for a worker.
    pub queue_depth: usize,
    /// Passes currently executing.
    pub passes_active: usize,
    /// Passes the planner enqueued.
    pub passes_planned: u64,
    /// Passes that finished successfully.
    pub passes_completed: u64,
    /// Due passes not planned because the SLO was breached.
    pub passes_deferred: u64,
    /// Due passes not planned because the pacer was out of tokens.
    pub passes_throttled: u64,
    /// Transient-failure retries across all passes.
    pub passes_retried: u64,
    /// Passes that ended cancelled.
    pub passes_cancelled: u64,
    /// Passes the watchdog cancelled for exceeding the deadline.
    pub watchdog_cancels: u64,
    /// Planning cycles skipped by an injected [`FaultSite::MaintPlan`] trip.
    pub plan_faults: u64,
    /// Whether back-pressure is currently engaged.
    pub slo_breached: bool,
    /// The most recently finished pass, if any.
    pub last_pass: Option<LastPass>,
}

struct Registration {
    ctx: Arc<MemoryContext>,
    policy: MaintPolicy,
    last_pass: Option<Instant>,
    last_churn: u64,
    forced: bool,
}

struct Planned {
    ctx: Arc<MemoryContext>,
    reason: PassReason,
    /// For [`PassReason::Spill`]: the resident-byte watermark the pass
    /// evicts toward, computed at planning time from the policy ratio and
    /// the snapshot's budget. `None` for every other reason.
    spill_target: Option<u64>,
}

struct InFlight {
    context_id: u64,
    ctx: Arc<MemoryContext>,
    started: Instant,
    watchdog_fired: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Running,
    /// Stop planning, drain in-flight passes, then stop.
    Quiescing,
    /// Stop planning, cancel in-flight passes, then stop.
    Cancelling,
}

struct State {
    registrations: Vec<Registration>,
    queue: VecDeque<Planned>,
    in_flight: Vec<InFlight>,
    mode: Mode,
    last_pass: Option<LastPass>,
}

struct Counters {
    planned: AtomicU64,
    completed: AtomicU64,
    deferred: AtomicU64,
    throttled: AtomicU64,
    retried: AtomicU64,
    cancelled: AtomicU64,
    watchdog_cancels: AtomicU64,
    plan_faults: AtomicU64,
}

struct Inner {
    config: MaintConfig,
    state: Mutex<State>,
    /// Workers wait here for queued passes; quiesce/cancel wait here for the
    /// in-flight list to drain.
    work_cv: Condvar,
    counters: Counters,
    /// Runtime-adjustable SLO ceiling in nanoseconds (fig15 flips it to zero
    /// to force deterministic back-pressure).
    slo_ceiling_ns: AtomicU64,
    slo_breached: AtomicBool,
}

impl Inner {
    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Handle to the background maintenance coordinator. Dropping the handle
/// quiesces the coordinator (see [`Coordinator::quiesce`]).
pub struct Coordinator {
    inner: Arc<Inner>,
    threads: Mutex<Vec<JoinHandle<()>>>,
}

impl Coordinator {
    /// Starts the coordinator: one planner thread plus
    /// `config.max_concurrent_passes` workers. Contexts are registered
    /// afterwards with [`register`](Self::register).
    pub fn new(config: MaintConfig) -> Coordinator {
        let workers = config.max_concurrent_passes.max(1);
        let slo_ceiling_ns = config.slo.p99_ceiling.as_nanos().min(u64::MAX as u128) as u64;
        let inner = Arc::new(Inner {
            config,
            state: Mutex::new(State {
                registrations: Vec::new(),
                queue: VecDeque::new(),
                in_flight: Vec::new(),
                mode: Mode::Running,
                last_pass: None,
            }),
            work_cv: Condvar::new(),
            counters: Counters {
                planned: AtomicU64::new(0),
                completed: AtomicU64::new(0),
                deferred: AtomicU64::new(0),
                throttled: AtomicU64::new(0),
                retried: AtomicU64::new(0),
                cancelled: AtomicU64::new(0),
                watchdog_cancels: AtomicU64::new(0),
                plan_faults: AtomicU64::new(0),
            },
            slo_ceiling_ns: AtomicU64::new(slo_ceiling_ns),
            slo_breached: AtomicBool::new(false),
        });
        let mut threads = Vec::with_capacity(workers + 1);
        {
            let inner = inner.clone();
            threads.push(
                std::thread::Builder::new()
                    .name("smc-maint-plan".into())
                    .spawn(move || planner_loop(&inner))
                    .expect("spawn planner"),
            );
        }
        for w in 0..workers {
            let inner = inner.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("smc-maint-{w}"))
                    .spawn(move || worker_loop(&inner, w as u64))
                    .expect("spawn worker"),
            );
        }
        Coordinator {
            inner,
            threads: Mutex::new(threads),
        }
    }

    /// Registers a context for background maintenance under `policy`.
    pub fn register(&self, ctx: Arc<MemoryContext>, policy: MaintPolicy) {
        let mut g = self.inner.lock();
        g.registrations.push(Registration {
            ctx,
            policy,
            last_pass: None,
            last_churn: 0,
            forced: false,
        });
    }

    /// Marks a registered context force-due: the next planning cycle
    /// schedules a pass for it regardless of thresholds or `min_interval`
    /// (the pacer and SLO back-pressure still apply).
    pub fn nudge(&self, context_id: u64) {
        let mut g = self.inner.lock();
        for reg in &mut g.registrations {
            if reg.ctx.id() == context_id {
                reg.forced = true;
            }
        }
    }

    /// Replaces the SLO p99 ceiling at runtime. `Duration::ZERO` forces the
    /// breached state (every observable p99 is ≥ 0), which benchmarks use to
    /// provoke deterministic deferrals.
    pub fn set_slo_ceiling(&self, ceiling: Duration) {
        self.inner.slo_ceiling_ns.store(
            ceiling.as_nanos().min(u64::MAX as u128) as u64,
            Ordering::Relaxed,
        );
    }

    /// Maintenance passes executing right now. Cheaper than
    /// [`snapshot`](Self::snapshot) for per-request attribution probes.
    pub fn passes_active(&self) -> usize {
        self.inner.lock().in_flight.len()
    }

    /// Current counters and queue state.
    pub fn snapshot(&self) -> MaintSnapshot {
        let g = self.inner.lock();
        let c = &self.inner.counters;
        MaintSnapshot {
            registered: g.registrations.len(),
            queue_depth: g.queue.len(),
            passes_active: g.in_flight.len(),
            passes_planned: c.planned.load(Ordering::Relaxed),
            passes_completed: c.completed.load(Ordering::Relaxed),
            passes_deferred: c.deferred.load(Ordering::Relaxed),
            passes_throttled: c.throttled.load(Ordering::Relaxed),
            passes_retried: c.retried.load(Ordering::Relaxed),
            passes_cancelled: c.cancelled.load(Ordering::Relaxed),
            watchdog_cancels: c.watchdog_cancels.load(Ordering::Relaxed),
            plan_faults: c.plan_faults.load(Ordering::Relaxed),
            slo_breached: self.inner.slo_breached.load(Ordering::Relaxed),
            last_pass: g.last_pass,
        }
    }

    /// Stops planning, discards queued (not yet started) passes, lets every
    /// in-flight pass finish, and joins all threads. Terminal and
    /// idempotent. After `quiesce` returns the heap is at rest: `Smc::verify`
    /// reconciles bit-exact.
    pub fn quiesce(&self) {
        self.shutdown(Mode::Quiescing);
    }

    /// Like [`quiesce`](Self::quiesce), but actively cancels in-flight
    /// passes via [`MemoryContext::request_compaction_cancel`] instead of
    /// waiting them out. Pending relocations roll back through the bail
    /// path, so `Smc::verify` still reconciles bit-exact afterwards.
    pub fn cancel(&self) {
        self.shutdown(Mode::Cancelling);
    }

    fn shutdown(&self, mode: Mode) {
        {
            let mut g = self.inner.lock();
            if g.mode == Mode::Running {
                g.mode = mode;
            }
            g.queue.clear();
            if mode == Mode::Cancelling {
                for inf in &g.in_flight {
                    inf.ctx.request_compaction_cancel();
                }
            }
            self.inner.work_cv.notify_all();
        }
        let threads = std::mem::take(&mut *self.threads.lock().unwrap_or_else(|e| e.into_inner()));
        for t in threads {
            let _ = t.join();
        }
    }
}

impl Drop for Coordinator {
    fn drop(&mut self) {
        self.quiesce();
    }
}

impl std::fmt::Debug for Coordinator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Coordinator")
            .field("snapshot", &self.snapshot())
            .finish()
    }
}

fn planner_loop(inner: &Inner) {
    let cfg = &inner.config;
    let mut pacer = TokenBucket::new(cfg.pacer_capacity, cfg.pacer_refill_per_sec);
    let mut slo_backoff = Backoff::new(
        cfg.seed ^ 0x510_b0ff,
        cfg.slo.backoff_base,
        cfg.slo.backoff_cap,
    );
    let mut hold_until: Option<Instant> = None;
    loop {
        // Sleep one cycle (interruptibly: shutdown notifies the condvar).
        {
            let g = inner.lock();
            if g.mode != Mode::Running {
                return;
            }
            let (g, _) = inner
                .work_cv
                .wait_timeout(g, cfg.poll_interval)
                .unwrap_or_else(|e| e.into_inner());
            if g.mode != Mode::Running {
                return;
            }
        }
        let now = Instant::now();

        // Watchdog: cancel passes running past the deadline.
        {
            let mut g = inner.lock();
            for inf in &mut g.in_flight {
                if !inf.watchdog_fired
                    && now.saturating_duration_since(inf.started) >= cfg.watchdog_deadline
                {
                    inf.watchdog_fired = true;
                    inf.ctx.request_compaction_cancel();
                    inner
                        .counters
                        .watchdog_cancels
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
        }

        // SLO back-pressure: while breached, count due work as deferred and
        // hold off for a (seeded, bounded-exponential) interval before the
        // next re-check; on recovery the backoff envelope resets.
        let ceiling_ns = inner.slo_ceiling_ns.load(Ordering::Relaxed);
        let p99_ns = cfg.slo.gauge.as_ref().map(|h| h.p99());
        let over_ceiling = p99_ns.is_some_and(|p| p >= ceiling_ns);
        let holding = hold_until.is_some_and(|t| now < t);
        let breached = over_ceiling || holding;
        if breached != inner.slo_breached.swap(breached, Ordering::Relaxed) {
            trace::emit(Event::MaintSloState {
                breached,
                p99_ns: p99_ns.unwrap_or(0),
            });
            if breached {
                // Entering the breached state is a forensic moment: the
                // window of events leading up to it is exactly what an
                // operator wants preserved. No-op unless the flight
                // recorder is armed and SMC_FLIGHT_OUT is set.
                let _ = smc_obs::flight::dump("slo-breach");
            }
        }
        if over_ceiling && !holding {
            hold_until = Some(now + slo_backoff.next_delay());
        }
        if !breached {
            hold_until = None;
            if slo_backoff.attempt() > 0 {
                slo_backoff.reset();
            }
        }

        // Transient planning failure (injected): skip this cycle, retry next.
        let plan_fault = {
            let g = inner.lock();
            g.registrations
                .first()
                .is_some_and(|r| r.ctx.runtime().faults().should_fail(FaultSite::MaintPlan))
        };
        if plan_fault {
            inner.counters.plan_faults.fetch_add(1, Ordering::Relaxed);
            continue;
        }

        // Evaluate policies under the state lock (snapshot capture pins a
        // short-lived epoch guard; workers never hold this lock across a
        // pass, so the hold time stays bounded). The registration list is
        // append-only, so the collected indexes stay valid after unlocking.
        let due = {
            let mut g = inner.lock();
            if g.mode != Mode::Running {
                return;
            }
            let mut due: Vec<(usize, PassReason, Option<u64>)> = Vec::new();
            let busy: Vec<u64> = g
                .queue
                .iter()
                .map(|p| p.ctx.id())
                .chain(g.in_flight.iter().map(|i| i.context_id))
                .collect();
            for (i, reg) in g.registrations.iter_mut().enumerate() {
                if busy.contains(&reg.ctx.id()) {
                    continue;
                }
                if reg.forced {
                    due.push((i, PassReason::Nudge, None));
                    continue;
                }
                if reg
                    .last_pass
                    .is_some_and(|t| now.saturating_duration_since(t) < reg.policy.min_interval)
                {
                    continue;
                }
                let snap = HeapSnapshot::capture(reg.ctx.runtime(), &[&reg.ctx])
                    .collections
                    .into_iter()
                    .next();
                let Some(snap) = snap else { continue };
                let churn_delta = snap.incarnation_churn.saturating_sub(reg.last_churn);
                if let Some(reason) = reg.policy.due(&snap, churn_delta) {
                    let target = (reason == PassReason::Spill)
                        .then(|| reg.policy.spill_target_bytes(&snap))
                        .flatten();
                    due.push((i, reason, target));
                }
                reg.last_churn = snap.incarnation_churn;
            }
            due
        };

        for (idx, reason, spill_target) in due {
            // Spill bypasses SLO deferral: eviction is how a budget-hot
            // context sheds pressure, and deferring it under back-pressure
            // only turns budget heat into allocation rejections.
            if breached && reason != PassReason::Spill {
                let g = inner.lock();
                let Some(reg) = g.registrations.get(idx) else {
                    continue;
                };
                inner.counters.deferred.fetch_add(1, Ordering::Relaxed);
                trace::emit(Event::MaintDeferred {
                    context: reg.ctx.id(),
                    p99_ns: p99_ns.unwrap_or(0),
                    slo_ns: ceiling_ns,
                });
                continue;
            }
            if !pacer.try_take(now) {
                inner.counters.throttled.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            let mut g = inner.lock();
            if g.mode != Mode::Running {
                return;
            }
            let Some(reg) = g.registrations.get_mut(idx) else {
                continue;
            };
            reg.forced = false;
            reg.last_pass = Some(now);
            let ctx = reg.ctx.clone();
            g.queue.push_back(Planned {
                ctx,
                reason,
                spill_target,
            });
            inner.counters.planned.fetch_add(1, Ordering::Relaxed);
            inner.work_cv.notify_all();
        }
    }
}

fn worker_loop(inner: &Inner, worker: u64) {
    let cfg = &inner.config;
    loop {
        // Claim the next planned pass (or exit on shutdown once idle).
        let planned = {
            let mut g = inner.lock();
            loop {
                if let Some(p) = g.queue.pop_front() {
                    g.in_flight.push(InFlight {
                        context_id: p.ctx.id(),
                        ctx: p.ctx.clone(),
                        started: Instant::now(),
                        watchdog_fired: false,
                    });
                    break Some(p);
                }
                if g.mode != Mode::Running {
                    break None;
                }
                g = inner
                    .work_cv
                    .wait_timeout(g, cfg.poll_interval)
                    .unwrap_or_else(|e| e.into_inner())
                    .0;
            }
        };
        let Some(planned) = planned else { return };

        let outcome = run_pass(inner, worker, &planned);

        let mut g = inner.lock();
        g.in_flight.retain(|i| i.context_id != planned.ctx.id());
        g.last_pass = Some(outcome);
        // Wake shutdown waiters (and idle workers re-checking the mode).
        inner.work_cv.notify_all();
    }
}

/// Executes one planned pass with transient-failure retries. Returns the
/// summary recorded as `last_pass`.
fn run_pass(inner: &Inner, worker: u64, planned: &Planned) -> LastPass {
    let cfg = &inner.config;
    let ctx = &planned.ctx;
    let mut backoff = Backoff::new(
        cfg.seed ^ ctx.id().rotate_left(32) ^ worker,
        Duration::from_micros(200),
        Duration::from_millis(20),
    );
    trace::emit(Event::MaintPassStart {
        context: ctx.id(),
        reason: Label::new(planned.reason.as_str()),
    });
    let mut moved = 0usize;
    let mut bailed = 0usize;
    let outcome = loop {
        let cancelling = { inner.lock().mode == Mode::Cancelling };
        if cancelling {
            break PassOutcome::Cancelled;
        }
        // Spill pass: evict cold blocks toward the watermark instead of
        // compacting. `moved` counts evicted blocks in the pass summary.
        // The loop is bounded by the context's block count; a store
        // failure (try_spill_one returns false after rollback) ends the
        // pass with whatever progress was made.
        if planned.reason == PassReason::Spill {
            let target = planned.spill_target.unwrap_or(0);
            while ctx.bytes() as u64 > target {
                if inner.lock().mode == Mode::Cancelling {
                    break;
                }
                if !ctx.try_spill_one() {
                    break;
                }
                moved += 1;
            }
            break PassOutcome::Done;
        }
        // Injected transient failure before the pass proper.
        if ctx.runtime().faults().should_fail(FaultSite::MaintPass) {
            if backoff.attempt() >= cfg.retry_limit {
                break PassOutcome::Aborted;
            }
            inner.counters.retried.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(backoff.next_delay());
            continue;
        }
        let report = ctx.compact();
        moved += report.moved;
        bailed += report.bailed;
        if report.cancelled {
            break PassOutcome::Cancelled;
        }
        if report.aborted || report.interrupted {
            if backoff.attempt() >= cfg.retry_limit {
                break PassOutcome::Aborted;
            }
            inner.counters.retried.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(backoff.next_delay());
            continue;
        }
        ctx.release_retired();
        break PassOutcome::Done;
    };
    match outcome {
        PassOutcome::Done => {
            inner.counters.completed.fetch_add(1, Ordering::Relaxed);
        }
        PassOutcome::Cancelled => {
            inner.counters.cancelled.fetch_add(1, Ordering::Relaxed);
        }
        PassOutcome::Aborted => {}
    }
    trace::emit(Event::MaintPassEnd {
        context: ctx.id(),
        moved: moved as u64,
        bailed: bailed as u64,
        outcome: Label::new(outcome.as_str()),
    });
    LastPass {
        context_id: ctx.id(),
        outcome,
        moved,
        bailed,
    }
}
