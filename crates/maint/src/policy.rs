//! Per-context maintenance policies: when is a compaction pass worth it?
//!
//! The planner evaluates each registered context against its policy once per
//! planning cycle, reading a [`CollectionSnapshot`] (the same introspection
//! surface `smc-top` renders). Three pressure signals can make a pass due —
//! fragmentation ratio, limbo (dead-but-unreclaimed) bytes, and incarnation
//! churn rate — plus an explicit nudge for tests and benchmarks that need a
//! pass *now*. A `min_interval` floor keeps a context from being compacted
//! in a tight loop when it hovers at a threshold.

use std::time::Duration;

use smc_memory::inspect::CollectionSnapshot;

/// Why the planner scheduled (or would schedule) a pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PassReason {
    /// Fragmentation ratio exceeded the policy ceiling.
    Frag,
    /// Limbo bytes exceeded the policy ceiling.
    Limbo,
    /// Incarnation churn since the last evaluation exceeded the ceiling.
    Churn,
    /// An explicit [`Coordinator::nudge`](crate::Coordinator::nudge).
    Nudge,
    /// Resident footprint exceeded the spill watermark of the context
    /// budget: evict cold blocks to the page store instead of compacting.
    /// The rung below compaction on the OOM ladder — it fires when there
    /// is little fragmentation to reclaim but the budget is hot.
    Spill,
}

impl PassReason {
    /// Short stable token for traces and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            PassReason::Frag => "frag",
            PassReason::Limbo => "limbo",
            PassReason::Churn => "churn",
            PassReason::Nudge => "nudge",
            PassReason::Spill => "spill",
        }
    }
}

/// When to compact one registered context.
#[derive(Debug, Clone, Copy)]
pub struct MaintPolicy {
    /// Pass when `(dead + hole) / footprint` exceeds this ratio.
    pub frag_ratio_ceiling: f64,
    /// Pass when limbo (dead) bytes exceed this many bytes.
    pub limbo_bytes_ceiling: u64,
    /// Pass when incarnation churn since the previous evaluation exceeds
    /// this many slot reuses.
    pub churn_ceiling: u64,
    /// Never schedule two passes for the same context closer together than
    /// this (nudges are exempt).
    pub min_interval: Duration,
    /// Spill watermark as a fraction of the context budget. When the
    /// resident footprint exceeds `ratio * budget_bytes` — and no other
    /// signal fired, i.e. there is little garbage to compact away — the
    /// planner schedules a [`PassReason::Spill`] pass that evicts cold
    /// blocks to the context's page store instead of compacting. `None`
    /// (the default) disables the rung; it only makes sense for contexts
    /// with both a budget and a spill store attached.
    pub spill_budget_ratio: Option<f64>,
}

impl Default for MaintPolicy {
    fn default() -> MaintPolicy {
        MaintPolicy {
            frag_ratio_ceiling: 0.30,
            limbo_bytes_ceiling: 8 << 20,
            churn_ceiling: u64::MAX,
            min_interval: Duration::from_millis(50),
            spill_budget_ratio: None,
        }
    }
}

impl MaintPolicy {
    /// Evaluates the policy against a snapshot. `churn_delta` is the
    /// incarnation churn accumulated since the previous evaluation. Returns
    /// the *first* triggered reason in fixed priority order (frag, limbo,
    /// churn, spill) so reports are deterministic. Spill comes last on
    /// purpose: when fragmentation is high a compaction pass frees budget
    /// without touching disk, so eviction is only chosen when the footprint
    /// is hot *and* mostly live.
    pub fn due(&self, snap: &CollectionSnapshot, churn_delta: u64) -> Option<PassReason> {
        if frag_ratio(snap) > self.frag_ratio_ceiling {
            return Some(PassReason::Frag);
        }
        if snap.dead_bytes() > self.limbo_bytes_ceiling {
            return Some(PassReason::Limbo);
        }
        if churn_delta > self.churn_ceiling {
            return Some(PassReason::Churn);
        }
        if let (Some(ratio), Some(budget)) = (self.spill_budget_ratio, snap.budget_bytes) {
            if snap.footprint_bytes() as f64 > ratio * budget as f64 {
                return Some(PassReason::Spill);
            }
        }
        None
    }

    /// Byte target a spill pass evicts toward: the spill watermark itself.
    /// `None` when the rung is disabled or the snapshot has no budget.
    pub fn spill_target_bytes(&self, snap: &CollectionSnapshot) -> Option<u64> {
        let ratio = self.spill_budget_ratio?;
        let budget = snap.budget_bytes?;
        Some((ratio * budget as f64) as u64)
    }
}

/// Fragmentation ratio of a snapshot: dead plus hole bytes over footprint.
/// Zero for an empty context.
pub fn frag_ratio(snap: &CollectionSnapshot) -> f64 {
    let footprint = snap.footprint_bytes();
    if footprint == 0 {
        return 0.0;
    }
    (snap.dead_bytes() + snap.hole_bytes()) as f64 / footprint as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use smc_memory::inspect::HeapSnapshot;
    use smc_memory::{ContextConfig, MemoryContext, Runtime};

    fn context(rt: &std::sync::Arc<Runtime>) -> MemoryContext {
        MemoryContext::new_rows(rt.clone(), 64, 8, 1, ContextConfig::default())
            .expect("layout fits a block")
    }

    fn alloc(c: &MemoryContext, v: u64) -> smc_memory::context::Allocation {
        c.alloc_with(|block, slot| unsafe { block.obj_ptr(slot).cast::<u64>().write(v) })
            .unwrap()
    }

    fn snapshot_of(ctx: &MemoryContext) -> CollectionSnapshot {
        let heap = HeapSnapshot::capture(ctx.runtime(), &[ctx]);
        heap.collections.into_iter().next().unwrap()
    }

    #[test]
    fn empty_context_is_never_due() {
        let rt = Runtime::new();
        let ctx = context(&rt);
        let snap = snapshot_of(&ctx);
        assert_eq!(frag_ratio(&snap), 0.0);
        assert_eq!(MaintPolicy::default().due(&snap, 0), None);
    }

    #[test]
    fn decimation_raises_frag_ratio_until_due() {
        let rt = Runtime::new();
        let ctx = context(&rt);
        let handles: Vec<_> = (0..512u64).map(|i| alloc(&ctx, i)).collect();
        let before = snapshot_of(&ctx);
        assert!(frag_ratio(&before) < 0.5, "mostly live after fill");
        for (i, h) in handles.iter().enumerate() {
            if i % 10 != 0 {
                assert!(ctx.free(h.entry, h.entry_inc));
            }
        }
        let after = snapshot_of(&ctx);
        let policy = MaintPolicy {
            frag_ratio_ceiling: 0.30,
            ..MaintPolicy::default()
        };
        assert_eq!(
            policy.due(&after, 0),
            Some(PassReason::Frag),
            "90% decimation must trip a 30% frag ceiling (ratio {})",
            frag_ratio(&after)
        );
    }

    #[test]
    fn reason_priority_and_tokens() {
        assert_eq!(PassReason::Frag.as_str(), "frag");
        assert_eq!(PassReason::Limbo.as_str(), "limbo");
        assert_eq!(PassReason::Churn.as_str(), "churn");
        assert_eq!(PassReason::Nudge.as_str(), "nudge");
        assert_eq!(PassReason::Spill.as_str(), "spill");
    }

    #[test]
    fn spill_rung_fires_only_when_budget_hot_and_frag_low() {
        let rt = Runtime::new();
        let ctx = context(&rt);
        for i in 0..512u64 {
            alloc(&ctx, i);
        }
        let mut snap = snapshot_of(&ctx);
        let policy = MaintPolicy {
            spill_budget_ratio: Some(0.5),
            ..MaintPolicy::default()
        };
        // No budget on the context: the rung never fires.
        assert_eq!(policy.due(&snap, 0), None);
        assert_eq!(policy.spill_target_bytes(&snap), None);
        // Budget well above footprint: still quiet.
        snap.budget_bytes = Some(snap.footprint_bytes() * 4);
        assert_eq!(policy.due(&snap, 0), None);
        // Budget hot (footprint > 50% of budget) with low frag: spill.
        snap.budget_bytes = Some(snap.footprint_bytes() + 1);
        assert_eq!(policy.due(&snap, 0), Some(PassReason::Spill));
        assert_eq!(
            policy.spill_target_bytes(&snap),
            Some(((snap.footprint_bytes() + 1) as f64 * 0.5) as u64)
        );
    }
}
