//! Per-context maintenance policies: when is a compaction pass worth it?
//!
//! The planner evaluates each registered context against its policy once per
//! planning cycle, reading a [`CollectionSnapshot`] (the same introspection
//! surface `smc-top` renders). Three pressure signals can make a pass due —
//! fragmentation ratio, limbo (dead-but-unreclaimed) bytes, and incarnation
//! churn rate — plus an explicit nudge for tests and benchmarks that need a
//! pass *now*. A `min_interval` floor keeps a context from being compacted
//! in a tight loop when it hovers at a threshold.

use std::time::Duration;

use smc_memory::inspect::CollectionSnapshot;

/// Why the planner scheduled (or would schedule) a pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PassReason {
    /// Fragmentation ratio exceeded the policy ceiling.
    Frag,
    /// Limbo bytes exceeded the policy ceiling.
    Limbo,
    /// Incarnation churn since the last evaluation exceeded the ceiling.
    Churn,
    /// An explicit [`Coordinator::nudge`](crate::Coordinator::nudge).
    Nudge,
}

impl PassReason {
    /// Short stable token for traces and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            PassReason::Frag => "frag",
            PassReason::Limbo => "limbo",
            PassReason::Churn => "churn",
            PassReason::Nudge => "nudge",
        }
    }
}

/// When to compact one registered context.
#[derive(Debug, Clone, Copy)]
pub struct MaintPolicy {
    /// Pass when `(dead + hole) / footprint` exceeds this ratio.
    pub frag_ratio_ceiling: f64,
    /// Pass when limbo (dead) bytes exceed this many bytes.
    pub limbo_bytes_ceiling: u64,
    /// Pass when incarnation churn since the previous evaluation exceeds
    /// this many slot reuses.
    pub churn_ceiling: u64,
    /// Never schedule two passes for the same context closer together than
    /// this (nudges are exempt).
    pub min_interval: Duration,
}

impl Default for MaintPolicy {
    fn default() -> MaintPolicy {
        MaintPolicy {
            frag_ratio_ceiling: 0.30,
            limbo_bytes_ceiling: 8 << 20,
            churn_ceiling: u64::MAX,
            min_interval: Duration::from_millis(50),
        }
    }
}

impl MaintPolicy {
    /// Evaluates the policy against a snapshot. `churn_delta` is the
    /// incarnation churn accumulated since the previous evaluation. Returns
    /// the *first* triggered reason in fixed priority order (frag, limbo,
    /// churn) so reports are deterministic.
    pub fn due(&self, snap: &CollectionSnapshot, churn_delta: u64) -> Option<PassReason> {
        if frag_ratio(snap) > self.frag_ratio_ceiling {
            return Some(PassReason::Frag);
        }
        if snap.dead_bytes() > self.limbo_bytes_ceiling {
            return Some(PassReason::Limbo);
        }
        if churn_delta > self.churn_ceiling {
            return Some(PassReason::Churn);
        }
        None
    }
}

/// Fragmentation ratio of a snapshot: dead plus hole bytes over footprint.
/// Zero for an empty context.
pub fn frag_ratio(snap: &CollectionSnapshot) -> f64 {
    let footprint = snap.footprint_bytes();
    if footprint == 0 {
        return 0.0;
    }
    (snap.dead_bytes() + snap.hole_bytes()) as f64 / footprint as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use smc_memory::inspect::HeapSnapshot;
    use smc_memory::{ContextConfig, MemoryContext, Runtime};

    fn context(rt: &std::sync::Arc<Runtime>) -> MemoryContext {
        MemoryContext::new_rows(rt.clone(), 64, 8, 1, ContextConfig::default())
            .expect("layout fits a block")
    }

    fn alloc(c: &MemoryContext, v: u64) -> smc_memory::context::Allocation {
        c.alloc_with(|block, slot| unsafe { block.obj_ptr(slot).cast::<u64>().write(v) })
            .unwrap()
    }

    fn snapshot_of(ctx: &MemoryContext) -> CollectionSnapshot {
        let heap = HeapSnapshot::capture(ctx.runtime(), &[ctx]);
        heap.collections.into_iter().next().unwrap()
    }

    #[test]
    fn empty_context_is_never_due() {
        let rt = Runtime::new();
        let ctx = context(&rt);
        let snap = snapshot_of(&ctx);
        assert_eq!(frag_ratio(&snap), 0.0);
        assert_eq!(MaintPolicy::default().due(&snap, 0), None);
    }

    #[test]
    fn decimation_raises_frag_ratio_until_due() {
        let rt = Runtime::new();
        let ctx = context(&rt);
        let handles: Vec<_> = (0..512u64).map(|i| alloc(&ctx, i)).collect();
        let before = snapshot_of(&ctx);
        assert!(frag_ratio(&before) < 0.5, "mostly live after fill");
        for (i, h) in handles.iter().enumerate() {
            if i % 10 != 0 {
                assert!(ctx.free(h.entry, h.entry_inc));
            }
        }
        let after = snapshot_of(&ctx);
        let policy = MaintPolicy {
            frag_ratio_ceiling: 0.30,
            ..MaintPolicy::default()
        };
        assert_eq!(
            policy.due(&after, 0),
            Some(PassReason::Frag),
            "90% decimation must trip a 30% frag ceiling (ratio {})",
            frag_ratio(&after)
        );
    }

    #[test]
    fn reason_priority_and_tokens() {
        assert_eq!(PassReason::Frag.as_str(), "frag");
        assert_eq!(PassReason::Limbo.as_str(), "limbo");
        assert_eq!(PassReason::Churn.as_str(), "churn");
        assert_eq!(PassReason::Nudge.as_str(), "nudge");
    }
}
