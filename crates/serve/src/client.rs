//! A small blocking client for the wire protocol.
//!
//! One TCP connection, one in-flight request at a time — exactly the shape
//! the closed-loop load generator wants. The raw-frame escape hatches
//! ([`Client::send_raw`], [`Client::read_response`]) exist so protocol
//! tests can put deliberately broken bytes on the wire and watch the
//! server answer with typed errors instead of dying.

use std::io::Write;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use smc_obs::JsonValue;

use crate::wire::{write_frame, ErrorCode, FrameError, FrameReader, Request, Response, StatsBody};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed (connect, read, write, early close).
    Io(std::io::Error),
    /// The server's bytes did not parse as a response.
    Protocol(String),
    /// The server answered with a wire error.
    Server(ErrorCode, String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol: {m}"),
            ClientError::Server(code, m) => write!(f, "server {code:?}: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// A blocking connection to an SMC server.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    reader: FrameReader,
    /// Whether this server accepts trace headers. Optimistically true
    /// until [`Client::negotiate_tracing`] learns otherwise.
    trace_supported: bool,
    /// Request id to attach to the next request, consumed on send.
    trace_next: Option<u64>,
}

impl Client {
    /// Connects to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            reader: FrameReader::new(),
            trace_supported: true,
            trace_next: None,
        })
    }

    /// Bounds how long [`Client::read_response`] blocks. `None` blocks
    /// forever (the default).
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Probes whether the server understands span-context headers by
    /// sending a traced `PING`. A server that predates the header sees an
    /// unknown opcode (the flag bit) and answers `UnknownOp`; the client
    /// then strips trace headers from every later request, so a traced
    /// workload degrades to an untraced one instead of failing. Returns
    /// whether tracing is on after negotiation.
    pub fn negotiate_tracing(&mut self) -> Result<bool, ClientError> {
        write_frame(&mut self.stream, &Request::Ping.encode_traced(Some(1)))?;
        match self.read_response()? {
            Response::Ok(_) => {
                self.trace_supported = true;
                Ok(true)
            }
            Response::Err(ErrorCode::UnknownOp, _) => {
                self.trace_supported = false;
                Ok(false)
            }
            Response::Err(code, msg) => Err(ClientError::Server(code, msg)),
        }
    }

    /// Attaches `id` to the next request's trace header (0, the untraced
    /// sentinel, clears instead). Silently dropped if negotiation learned
    /// the server cannot parse trace headers.
    pub fn trace_next(&mut self, id: u64) {
        self.trace_next = (id != 0).then_some(id);
    }

    /// Sends a request and waits for its response.
    pub fn request(&mut self, req: &Request) -> Result<Response, ClientError> {
        let trace = if self.trace_supported {
            self.trace_next.take()
        } else {
            self.trace_next = None;
            None
        };
        write_frame(&mut self.stream, &req.encode_traced(trace))?;
        self.read_response()
    }

    /// Writes one properly framed payload without interpreting it — fuzz
    /// tests use this to send structurally broken *requests* inside valid
    /// frames.
    pub fn send_raw(&mut self, payload: &[u8]) -> std::io::Result<()> {
        write_frame(&mut self.stream, payload)
    }

    /// Writes arbitrary bytes, bypassing framing entirely — fuzz tests use
    /// this for doctored length prefixes and truncated frames.
    pub fn send_bytes(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.stream.write_all(bytes)?;
        self.stream.flush()
    }

    /// Reads and decodes one response frame.
    pub fn read_response(&mut self) -> Result<Response, ClientError> {
        let payload = self
            .reader
            .read_frame(&mut self.stream, || false)
            .map_err(|e| match e {
                FrameError::Io(io) => ClientError::Io(io),
                FrameError::Closed | FrameError::Truncated => {
                    ClientError::Io(std::io::Error::from(std::io::ErrorKind::UnexpectedEof))
                }
                FrameError::Oversized(len) => {
                    ClientError::Protocol(format!("server sent oversized frame ({len} bytes)"))
                }
                FrameError::Stopped => unreachable!("client never installs a stop predicate"),
            })?;
        Response::decode(&payload).map_err(|e| ClientError::Protocol(e.message()))
    }

    /// Request + unwrap: an error response becomes [`ClientError::Server`].
    fn call(&mut self, req: &Request) -> Result<Vec<u8>, ClientError> {
        match self.request(req)? {
            Response::Ok(body) => Ok(body),
            Response::Err(code, msg) => Err(ClientError::Server(code, msg)),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.call(&Request::Ping).map(|_| ())
    }

    /// Batched upsert; returns how many rows applied.
    pub fn upsert(&mut self, tenant: u16, rows: Vec<(u64, u64)>) -> Result<u64, ClientError> {
        let body = self.call(&Request::Upsert { tenant, rows })?;
        read_u64(&body, "upsert ack")
    }

    /// Batched delete; returns how many keys were present and removed.
    pub fn delete(&mut self, tenant: u16, keys: Vec<u64>) -> Result<u64, ClientError> {
        let body = self.call(&Request::Delete { tenant, keys })?;
        read_u64(&body, "delete ack")
    }

    /// Counts rows with value in `[lo, hi)`.
    pub fn count(&mut self, tenant: u16, lo: u64, hi: u64) -> Result<u64, ClientError> {
        let body = self.call(&Request::Count { tenant, lo, hi })?;
        read_u64(&body, "count")
    }

    /// Sums values over rows with value in `[lo, hi)`; returns
    /// `(matching_rows, sum)`.
    pub fn sum(&mut self, tenant: u16, lo: u64, hi: u64) -> Result<(u64, u64), ClientError> {
        let body = self.call(&Request::Sum { tenant, lo, hi })?;
        if body.len() != 16 {
            return Err(ClientError::Protocol(format!(
                "sum body is {} bytes, wanted 16",
                body.len()
            )));
        }
        let count = u64::from_le_bytes(body[..8].try_into().expect("checked length"));
        let sum = u64::from_le_bytes(body[8..].try_into().expect("checked length"));
        Ok((count, sum))
    }

    /// Fetches server-wide statistics.
    pub fn stats(&mut self) -> Result<StatsBody, ClientError> {
        let body = self.call(&Request::Stats)?;
        StatsBody::decode(&body).map_err(|e| ClientError::Protocol(e.message()))
    }

    /// Pulls the live observability document (`smc-scrape/v1`): stats,
    /// tail-latency attribution, tracer and flight-recorder health, and
    /// per-shard heap snapshots, parsed into a [`JsonValue`].
    pub fn scrape(&mut self) -> Result<JsonValue, ClientError> {
        let body = self.call(&Request::Scrape)?;
        let text = std::str::from_utf8(&body)
            .map_err(|_| ClientError::Protocol("scrape body is not UTF-8".to_string()))?;
        let doc = JsonValue::parse(text)
            .map_err(|e| ClientError::Protocol(format!("scrape body is not JSON: {e}")))?;
        match doc.get("schema").and_then(JsonValue::as_str) {
            Some("smc-scrape/v1") => Ok(doc),
            other => Err(ClientError::Protocol(format!(
                "unexpected scrape schema {other:?}"
            ))),
        }
    }
}

fn read_u64(body: &[u8], what: &str) -> Result<u64, ClientError> {
    let bytes: [u8; 8] = body.try_into().map_err(|_| {
        ClientError::Protocol(format!("{what} body is {} bytes, wanted 8", body.len()))
    })?;
    Ok(u64::from_le_bytes(bytes))
}
