//! `smc-serve`: a shard-per-core multi-tenant server over self-managed
//! collections.
//!
//! The paper's thesis is that query-dominated collections want off-heap,
//! self-managed memory; this crate is the service-shaped proof. A
//! [`Server`] runs N *shards* — each with its own [`smc::Runtime`],
//! `smc-exec` worker set, and `smc-maint` coordinator, and therefore no
//! cross-shard locks anywhere in the data path. A thread-per-connection
//! acceptor speaks a length-prefixed binary protocol ([`wire`]) and routes
//! requests to shards by key hash over SPSC rings ([`smc_util::spsc`]):
//! ingest batches fan out only to owning shards, queries scatter-gather
//! across all of them and run morsel-parallel inside each.
//!
//! Tenancy is memory-first: each tenant gets one `MemoryContext` per shard
//! whose [`smc_memory::ContextConfig::budget_bytes`] slice rides the OOM
//! ladder — a tenant over budget gets a clean
//! [`wire::ErrorCode::TenantOverBudget`] wire error while every other
//! tenant keeps answering. Shutdown is a verified drain: stop the
//! acceptor, finish in-flight requests, quiesce each shard's maintenance
//! coordinator, then `Smc::verify` + `Runtime::verify` every shard
//! ([`DrainReport::clean`]).
//!
//! The server is observable end to end: clients may stamp requests with a
//! [`smc_obs::trace::RequestId`] via an optional wire header
//! ([`wire::TRACE_FLAG`]) that propagates across rings into shard and
//! morsel execution, requests over
//! [`ServerConfig::slow_request_threshold`] fold a structured breakdown
//! into per-op-class histograms ([`attr`]), and the read-only
//! [`wire::Op::Scrape`] op exports stats, attribution, tracer and
//! flight-recorder state as one JSON document (schema `smc-scrape/v1`).

#![warn(missing_docs)]

pub mod attr;
pub mod client;
pub mod server;
pub mod shard;
pub mod wire;

pub use attr::{Attribution, ClassAttribution, OpClass, SlowBreakdown};
pub use client::{Client, ClientError};
pub use server::{DrainReport, Server, ServerConfig, TenantConfig};
pub use shard::{shard_of, Row, ShardDrain};
