//! The length-prefixed binary wire protocol.
//!
//! Every message — request or response — is one *frame*: a little-endian
//! `u32` payload length followed by that many payload bytes, capped at
//! [`MAX_FRAME`]. Requests open with a fixed three-byte header (`op: u8`,
//! `tenant: u16 LE`) and an op-specific body; responses open with a status
//! byte (`0` = OK, else an [`ErrorCode`]) and an op-specific or
//! error-message body. All integers are little-endian; there is no framing
//! state beyond the prefix, so a malformed frame poisons at most its own
//! connection.
//!
//! ## Span-context header (DESIGN.md §17)
//!
//! The op byte's high bit ([`TRACE_FLAG`]) marks an *optional* trace
//! header between the op and the tenant: `hlen: u8` followed by `hlen`
//! header bytes, currently `version: u8` (= 1) and `request_id: u64 LE`
//! (non-zero). Unknown versions, short headers, and impossible `hlen`
//! claims all degrade to an untraced request — a trace header can never
//! *break* a request that would otherwise parse. The flag is
//! version-negotiated: clients probe with a traced `Ping` and fall back to
//! plain ops when the server answers `UnknownOp`
//! ([`Client::negotiate_tracing`](crate::Client::negotiate_tracing)).
//!
//! Decoding is total: any byte sequence either parses or yields a typed
//! [`DecodeError`], never a panic — the fuzz-ish tests in
//! `tests/wire_protocol.rs` hold the server to that.

use std::io::{ErrorKind, Read, Write};

/// Largest accepted frame payload (1 MiB). A length prefix past this is a
/// protocol error, not an allocation: the reader refuses before buffering.
pub const MAX_FRAME: u32 = 1 << 20;

/// High bit of the request op byte: set when an optional trace header
/// (`hlen: u8`, then `hlen` header bytes) sits between the op and the
/// tenant. Servers that predate the header see the flagged byte as an
/// unknown opcode, which is exactly the negotiation signal clients use.
pub const TRACE_FLAG: u8 = 0x80;

/// Version byte a v1 trace header opens with (`version: u8 = 1`,
/// `request_id: u64 LE`). Headers with other versions are skipped, not
/// rejected — the request decodes as untraced.
pub const TRACE_HEADER_VERSION: u8 = 1;

/// Byte length of a v1 trace header body (version + request id).
pub const TRACE_HEADER_LEN: u8 = 9;

/// Request opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Op {
    /// Liveness probe; empty body, empty OK response.
    Ping = 0x01,
    /// Batched upsert: `count: u32`, then `count` × (`key: u64`,
    /// `value: u64`). OK body: `applied: u64`.
    Upsert = 0x02,
    /// Batched delete: `count: u32`, then `count` × `key: u64`.
    /// OK body: `deleted: u64`.
    Delete = 0x03,
    /// Count rows with `value` in `[lo, hi)`: `lo: u64`, `hi: u64`.
    /// OK body: `count: u64`.
    Count = 0x04,
    /// Sum `value` over rows with `value` in `[lo, hi)`: `lo: u64`,
    /// `hi: u64`. OK body: `count: u64`, `sum: u64`.
    Sum = 0x05,
    /// Server-wide statistics; empty body. OK body: [`StatsBody`].
    Stats = 0x06,
    /// Full observability scrape; empty body. OK body: a UTF-8 JSON
    /// document (`"schema": "smc-scrape/v1"`) carrying stats, tail-latency
    /// attribution, tracer health, flight-recorder status, and per-shard
    /// heap snapshots.
    Scrape = 0x07,
}

/// Error codes carried in the response status byte (`0` means OK).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The frame parsed as no known request shape.
    BadFrame = 1,
    /// The opcode byte is not assigned.
    UnknownOp = 2,
    /// The tenant's memory budget rejected the ingest.
    TenantOverBudget = 3,
    /// The tenant id is not configured on this server.
    UnknownTenant = 4,
    /// The server is draining and no longer accepts work.
    Shutdown = 5,
    /// The server hit an internal error executing the request.
    Internal = 6,
}

impl ErrorCode {
    /// Decodes a status byte (never 0, which is OK).
    pub fn from_byte(b: u8) -> Option<ErrorCode> {
        match b {
            1 => Some(ErrorCode::BadFrame),
            2 => Some(ErrorCode::UnknownOp),
            3 => Some(ErrorCode::TenantOverBudget),
            4 => Some(ErrorCode::UnknownTenant),
            5 => Some(ErrorCode::Shutdown),
            6 => Some(ErrorCode::Internal),
            _ => None,
        }
    }
}

/// A decoded request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Batched upsert of `(key, value)` rows for one tenant.
    Upsert {
        /// Target tenant id.
        tenant: u16,
        /// Rows to insert or overwrite, keyed by `key`.
        rows: Vec<(u64, u64)>,
    },
    /// Batched delete by key for one tenant.
    Delete {
        /// Target tenant id.
        tenant: u16,
        /// Keys to remove; absent keys are ignored.
        keys: Vec<u64>,
    },
    /// Count rows whose value lies in `[lo, hi)`.
    Count {
        /// Target tenant id.
        tenant: u16,
        /// Inclusive lower value bound.
        lo: u64,
        /// Exclusive upper value bound.
        hi: u64,
    },
    /// Sum values of rows whose value lies in `[lo, hi)`.
    Sum {
        /// Target tenant id.
        tenant: u16,
        /// Inclusive lower value bound.
        lo: u64,
        /// Exclusive upper value bound.
        hi: u64,
    },
    /// Server-wide statistics.
    Stats,
    /// Full observability scrape (JSON `smc-scrape/v1` document).
    Scrape,
}

/// Why a request payload failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The opcode byte is unassigned — maps to [`ErrorCode::UnknownOp`].
    UnknownOp(u8),
    /// The payload is structurally wrong — maps to [`ErrorCode::BadFrame`].
    Malformed(String),
}

impl DecodeError {
    /// The wire error code this decode failure answers with.
    pub fn code(&self) -> ErrorCode {
        match self {
            DecodeError::UnknownOp(_) => ErrorCode::UnknownOp,
            DecodeError::Malformed(_) => ErrorCode::BadFrame,
        }
    }

    /// Human-readable detail for the error response body.
    pub fn message(&self) -> String {
        match self {
            DecodeError::UnknownOp(op) => format!("unknown opcode 0x{op:02x}"),
            DecodeError::Malformed(m) => m.clone(),
        }
    }
}

/// A decoded response: OK with an op-specific body, or a typed error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Success; body layout depends on the request op.
    Ok(Vec<u8>),
    /// Failure with a code and a human-readable message.
    Err(ErrorCode, String),
}

impl Response {
    /// Builds an error response.
    pub fn err(code: ErrorCode, msg: impl Into<String>) -> Response {
        Response::Err(code, msg.into())
    }

    /// Serializes into a frame payload (status byte + body).
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Response::Ok(body) => {
                let mut out = Vec::with_capacity(1 + body.len());
                out.push(0);
                out.extend_from_slice(body);
                out
            }
            Response::Err(code, msg) => {
                let mut out = Vec::with_capacity(1 + msg.len());
                out.push(*code as u8);
                out.extend_from_slice(msg.as_bytes());
                out
            }
        }
    }

    /// Parses a frame payload into a response.
    pub fn decode(payload: &[u8]) -> Result<Response, DecodeError> {
        let (&status, body) = payload
            .split_first()
            .ok_or_else(|| DecodeError::Malformed("empty response frame".into()))?;
        if status == 0 {
            return Ok(Response::Ok(body.to_vec()));
        }
        let code = ErrorCode::from_byte(status)
            .ok_or_else(|| DecodeError::Malformed(format!("unknown status byte {status}")))?;
        Ok(Response::Err(
            code,
            String::from_utf8_lossy(body).into_owned(),
        ))
    }
}

impl Request {
    /// The opcode this request serializes under.
    pub fn op(&self) -> Op {
        match self {
            Request::Ping => Op::Ping,
            Request::Upsert { .. } => Op::Upsert,
            Request::Delete { .. } => Op::Delete,
            Request::Count { .. } => Op::Count,
            Request::Sum { .. } => Op::Sum,
            Request::Stats => Op::Stats,
            Request::Scrape => Op::Scrape,
        }
    }

    /// Serializes into a frame payload (header + body).
    pub fn encode(&self) -> Vec<u8> {
        self.encode_traced(None)
    }

    /// Serializes with an optional span-context header: when `trace` is
    /// `Some(id)` (`id` non-zero) the op byte carries [`TRACE_FLAG`] and a
    /// v1 header (`hlen = 9`, `version = 1`, `request_id: u64 LE`) precedes
    /// the tenant. `Some(0)` is treated as `None` — id 0 is the reserved
    /// untraced sentinel.
    pub fn encode_traced(&self, trace: Option<u64>) -> Vec<u8> {
        let mut out = Vec::new();
        match trace.filter(|&id| id != 0) {
            Some(id) => {
                out.push(self.op() as u8 | TRACE_FLAG);
                out.push(TRACE_HEADER_LEN);
                out.push(TRACE_HEADER_VERSION);
                out.extend_from_slice(&id.to_le_bytes());
            }
            None => out.push(self.op() as u8),
        }
        let tenant = match self {
            Request::Upsert { tenant, .. }
            | Request::Delete { tenant, .. }
            | Request::Count { tenant, .. }
            | Request::Sum { tenant, .. } => *tenant,
            Request::Ping | Request::Stats | Request::Scrape => 0,
        };
        out.extend_from_slice(&tenant.to_le_bytes());
        match self {
            Request::Ping | Request::Stats | Request::Scrape => {}
            Request::Upsert { rows, .. } => {
                out.extend_from_slice(&(rows.len() as u32).to_le_bytes());
                for (k, v) in rows {
                    out.extend_from_slice(&k.to_le_bytes());
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
            Request::Delete { keys, .. } => {
                out.extend_from_slice(&(keys.len() as u32).to_le_bytes());
                for k in keys {
                    out.extend_from_slice(&k.to_le_bytes());
                }
            }
            Request::Count { lo, hi, .. } | Request::Sum { lo, hi, .. } => {
                out.extend_from_slice(&lo.to_le_bytes());
                out.extend_from_slice(&hi.to_le_bytes());
            }
        }
        out
    }

    /// Parses a frame payload into a request, discarding any trace header.
    pub fn decode(payload: &[u8]) -> Result<Request, DecodeError> {
        Request::decode_traced(payload).map(|(req, _)| req)
    }

    /// Parses a frame payload into a request plus the request id from its
    /// span-context header, if one is present and well-formed.
    ///
    /// Header handling is deliberately forgiving: a short header, an
    /// unknown version, a zero id, or an `hlen` claiming more bytes than
    /// the frame holds all yield `None` for the id — the request itself
    /// still decodes. A bad trace header must degrade to an untraced
    /// request, never take a request down with it.
    pub fn decode_traced(payload: &[u8]) -> Result<(Request, Option<u64>), DecodeError> {
        let mut cur = Cursor::new(payload);
        let raw_op = cur.u8()?;
        let mut trace = None;
        let op = if raw_op & TRACE_FLAG != 0 {
            let hlen = cur.u8()? as usize;
            if hlen <= cur.remaining() {
                let header = cur.take(hlen)?;
                if hlen >= TRACE_HEADER_LEN as usize && header[0] == TRACE_HEADER_VERSION {
                    // Extra header bytes past the 9 we understand are
                    // forward-compatibility room: consumed, ignored.
                    let id = u64::from_le_bytes(header[1..9].try_into().expect("9-byte header"));
                    trace = (id != 0).then_some(id);
                }
            }
            // An hlen that overruns the frame is an impossible claim:
            // ignore the header entirely and let what bytes remain parse
            // as an untraced request (e.g. `[0x81, 0xff, tenant]` is a
            // valid untraced Ping, not an error).
            raw_op & !TRACE_FLAG
        } else {
            raw_op
        };
        let tenant = cur.u16()?;
        let req = match op {
            0x01 => Request::Ping,
            0x02 => {
                let count = cur.u32()? as usize;
                // Validate the count against the actual remaining bytes
                // before allocating: a doctored count must not reserve.
                if cur.remaining() != count * 16 {
                    return Err(DecodeError::Malformed(format!(
                        "upsert count {count} does not match {} body bytes",
                        cur.remaining()
                    )));
                }
                let mut rows = Vec::with_capacity(count);
                for _ in 0..count {
                    rows.push((cur.u64()?, cur.u64()?));
                }
                Request::Upsert { tenant, rows }
            }
            0x03 => {
                let count = cur.u32()? as usize;
                if cur.remaining() != count * 8 {
                    return Err(DecodeError::Malformed(format!(
                        "delete count {count} does not match {} body bytes",
                        cur.remaining()
                    )));
                }
                let mut keys = Vec::with_capacity(count);
                for _ in 0..count {
                    keys.push(cur.u64()?);
                }
                Request::Delete { tenant, keys }
            }
            0x04 => Request::Count {
                tenant,
                lo: cur.u64()?,
                hi: cur.u64()?,
            },
            0x05 => Request::Sum {
                tenant,
                lo: cur.u64()?,
                hi: cur.u64()?,
            },
            0x06 => Request::Stats,
            0x07 => Request::Scrape,
            other => return Err(DecodeError::UnknownOp(other)),
        };
        if cur.remaining() != 0 {
            return Err(DecodeError::Malformed(format!(
                "{} trailing bytes after a complete request",
                cur.remaining()
            )));
        }
        Ok((req, trace))
    }
}

/// Per-shard counters in a [`Op::Stats`] response.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Requests this shard executed.
    pub requests: u64,
    /// Epoch pins taken on the shard's runtime.
    pub pins_taken: u64,
    /// Blocks enumerated by the shard's parallel scans.
    pub blocks_scanned: u64,
    /// Morsels dispatched by the shard's parallel scans.
    pub morsels_dispatched: u64,
}

/// Per-tenant accounting in a [`Op::Stats`] response, summed across shards.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Tenant id.
    pub tenant: u16,
    /// Configured per-shard budget × shards, or `u64::MAX` for unlimited.
    pub budget_bytes: u64,
    /// Off-heap bytes currently held by the tenant's contexts.
    pub used_bytes: u64,
    /// Live objects across shards.
    pub live_objects: u64,
    /// Ingest requests rejected by the tenant's budget.
    pub over_budget_errors: u64,
}

/// Body of an OK [`Op::Stats`] response.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StatsBody {
    /// One entry per shard, in shard order.
    pub shards: Vec<ShardStats>,
    /// One entry per configured tenant.
    pub tenants: Vec<TenantStats>,
}

impl StatsBody {
    /// Serializes into an OK response body.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.shards.len() as u32).to_le_bytes());
        for s in &self.shards {
            out.extend_from_slice(&s.requests.to_le_bytes());
            out.extend_from_slice(&s.pins_taken.to_le_bytes());
            out.extend_from_slice(&s.blocks_scanned.to_le_bytes());
            out.extend_from_slice(&s.morsels_dispatched.to_le_bytes());
        }
        out.extend_from_slice(&(self.tenants.len() as u32).to_le_bytes());
        for t in &self.tenants {
            out.extend_from_slice(&t.tenant.to_le_bytes());
            out.extend_from_slice(&t.budget_bytes.to_le_bytes());
            out.extend_from_slice(&t.used_bytes.to_le_bytes());
            out.extend_from_slice(&t.live_objects.to_le_bytes());
            out.extend_from_slice(&t.over_budget_errors.to_le_bytes());
        }
        out
    }

    /// Parses an OK response body.
    pub fn decode(body: &[u8]) -> Result<StatsBody, DecodeError> {
        let mut cur = Cursor::new(body);
        let nshards = cur.u32()? as usize;
        if cur.remaining() < nshards * 32 {
            return Err(DecodeError::Malformed("stats shard section short".into()));
        }
        let mut shards = Vec::with_capacity(nshards);
        for _ in 0..nshards {
            shards.push(ShardStats {
                requests: cur.u64()?,
                pins_taken: cur.u64()?,
                blocks_scanned: cur.u64()?,
                morsels_dispatched: cur.u64()?,
            });
        }
        let ntenants = cur.u32()? as usize;
        if cur.remaining() != ntenants * 34 {
            return Err(DecodeError::Malformed("stats tenant section short".into()));
        }
        let mut tenants = Vec::with_capacity(ntenants);
        for _ in 0..ntenants {
            tenants.push(TenantStats {
                tenant: cur.u16()?,
                budget_bytes: cur.u64()?,
                used_bytes: cur.u64()?,
                live_objects: cur.u64()?,
                over_budget_errors: cur.u64()?,
            });
        }
        Ok(StatsBody { shards, tenants })
    }
}

/// Why [`FrameReader::read_frame`] stopped.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed cleanly at a frame boundary.
    Closed,
    /// The connection died mid-frame (partial prefix or payload).
    Truncated,
    /// The length prefix exceeded [`MAX_FRAME`]; carries the claimed length.
    Oversized(u32),
    /// The stop predicate fired while waiting for bytes.
    Stopped,
    /// Any other transport error.
    Io(std::io::Error),
}

/// Incremental frame reader that survives read timeouts.
///
/// Connection threads poll a stop flag while blocked on the socket: the
/// socket carries a read timeout, and a timed-out `read` returns control
/// here with any partial bytes *already buffered*, so a frame split across
/// timeout boundaries reassembles instead of corrupting the stream.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
}

impl FrameReader {
    /// A reader with an empty buffer.
    pub fn new() -> FrameReader {
        FrameReader::default()
    }

    /// Reads one complete frame payload, calling `should_stop` whenever the
    /// transport times out.
    pub fn read_frame(
        &mut self,
        r: &mut impl Read,
        mut should_stop: impl FnMut() -> bool,
    ) -> Result<Vec<u8>, FrameError> {
        let mut chunk = [0u8; 4096];
        loop {
            if self.buf.len() >= 4 {
                let len = u32::from_le_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]);
                if len > MAX_FRAME {
                    return Err(FrameError::Oversized(len));
                }
                let total = 4 + len as usize;
                if self.buf.len() >= total {
                    let payload = self.buf[4..total].to_vec();
                    self.buf.drain(..total);
                    return Ok(payload);
                }
            }
            match r.read(&mut chunk) {
                Ok(0) => {
                    return if self.buf.is_empty() {
                        Err(FrameError::Closed)
                    } else {
                        Err(FrameError::Truncated)
                    };
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    if should_stop() {
                        return Err(FrameError::Stopped);
                    }
                }
                Err(e) => return Err(FrameError::Io(e)),
            }
        }
    }
}

/// Writes one frame (length prefix + payload).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    debug_assert!(payload.len() <= MAX_FRAME as usize);
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Bounds-checked little-endian reader over a byte slice.
struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(data: &'a [u8]) -> Cursor<'a> {
        Cursor { data, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::Malformed(format!(
                "frame too short: wanted {n} more bytes, had {}",
                self.remaining()
            )));
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, DecodeError> {
        let s = self.take(2)?;
        Ok(u16::from_le_bytes([s[0], s[1]]))
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        let s = self.take(4)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        let s = self.take(8)?;
        Ok(u64::from_le_bytes([
            s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7],
        ]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_requests() -> Vec<Request> {
        vec![
            Request::Ping,
            Request::Stats,
            Request::Scrape,
            Request::Upsert {
                tenant: 3,
                rows: vec![(1, 10), (2, 20)],
            },
            Request::Delete {
                tenant: 1,
                keys: vec![9, 8, 7],
            },
            Request::Count {
                tenant: 0,
                lo: 5,
                hi: 500,
            },
            Request::Sum {
                tenant: 65535,
                lo: 0,
                hi: u64::MAX,
            },
        ]
    }

    #[test]
    fn requests_round_trip() {
        for req in all_requests() {
            assert_eq!(Request::decode(&req.encode()), Ok(req));
        }
    }

    #[test]
    fn traced_requests_round_trip_for_every_op() {
        for req in all_requests() {
            let wire = req.encode_traced(Some(0xdead_beef_cafe));
            assert_eq!(wire[0] & TRACE_FLAG, TRACE_FLAG);
            assert_eq!(
                Request::decode_traced(&wire),
                Ok((req.clone(), Some(0xdead_beef_cafe)))
            );
            // The plain decoder accepts the traced frame too.
            assert_eq!(Request::decode(&wire), Ok(req));
        }
    }

    #[test]
    fn zero_trace_id_encodes_as_untraced() {
        let wire = Request::Ping.encode_traced(Some(0));
        assert_eq!(wire, Request::Ping.encode());
        assert_eq!(Request::decode_traced(&wire), Ok((Request::Ping, None)));
    }

    #[test]
    fn malformed_trace_headers_fall_back_to_untraced() {
        // hlen claims more bytes than the frame holds: the impossible
        // header is ignored and the rest parses as an untraced Ping.
        assert_eq!(
            Request::decode_traced(&[0x01 | TRACE_FLAG, 0xff, 0, 0]),
            Ok((Request::Ping, None))
        );
        // Short header (hlen < 9): consumed, id discarded.
        assert_eq!(
            Request::decode_traced(&[0x01 | TRACE_FLAG, 3, 1, 0xaa, 0xbb, 0, 0]),
            Ok((Request::Ping, None))
        );
        // Unknown header version: consumed, id discarded.
        let mut p = vec![0x01 | TRACE_FLAG, TRACE_HEADER_LEN, 99];
        p.extend_from_slice(&7u64.to_le_bytes());
        p.extend_from_slice(&0u16.to_le_bytes());
        assert_eq!(Request::decode_traced(&p), Ok((Request::Ping, None)));
        // Zero request id: reserved sentinel, decodes untraced.
        let mut p = vec![0x01 | TRACE_FLAG, TRACE_HEADER_LEN, TRACE_HEADER_VERSION];
        p.extend_from_slice(&0u64.to_le_bytes());
        p.extend_from_slice(&0u16.to_le_bytes());
        assert_eq!(Request::decode_traced(&p), Ok((Request::Ping, None)));
        // Zero-length header: legal, untraced.
        assert_eq!(
            Request::decode_traced(&[0x01 | TRACE_FLAG, 0, 0, 0]),
            Ok((Request::Ping, None))
        );
        // Oversized-but-present header (hlen > 9): extra bytes are
        // forward-compat room, the v1 prefix still yields the id.
        let mut p = vec![0x01 | TRACE_FLAG, 12, TRACE_HEADER_VERSION];
        p.extend_from_slice(&42u64.to_le_bytes());
        p.extend_from_slice(&[9, 9, 9]); // 3 opaque future-header bytes
        p.extend_from_slice(&0u16.to_le_bytes());
        assert_eq!(Request::decode_traced(&p), Ok((Request::Ping, Some(42))));
    }

    #[test]
    fn traced_unknown_op_still_reports_unknown_op() {
        let mut p = vec![0x7f | TRACE_FLAG, TRACE_HEADER_LEN, TRACE_HEADER_VERSION];
        p.extend_from_slice(&5u64.to_le_bytes());
        p.extend_from_slice(&0u16.to_le_bytes());
        assert_eq!(
            Request::decode_traced(&p).unwrap_err().code(),
            ErrorCode::UnknownOp
        );
    }

    #[test]
    fn responses_round_trip() {
        let ok = Response::Ok(vec![1, 2, 3]);
        assert_eq!(Response::decode(&ok.encode()), Ok(ok));
        let err = Response::err(ErrorCode::TenantOverBudget, "tenant 2 over budget");
        assert_eq!(Response::decode(&err.encode()), Ok(err));
    }

    #[test]
    fn stats_body_round_trips() {
        let body = StatsBody {
            shards: vec![
                ShardStats {
                    requests: 10,
                    pins_taken: 20,
                    blocks_scanned: 30,
                    morsels_dispatched: 40,
                },
                ShardStats::default(),
            ],
            tenants: vec![TenantStats {
                tenant: 7,
                budget_bytes: 1 << 20,
                used_bytes: 1 << 16,
                live_objects: 99,
                over_budget_errors: 3,
            }],
        };
        assert_eq!(StatsBody::decode(&body.encode()), Ok(body));
    }

    #[test]
    fn malformed_requests_decode_to_errors_not_panics() {
        // Empty payload.
        assert!(matches!(
            Request::decode(&[]),
            Err(DecodeError::Malformed(_))
        ));
        // Unknown opcode.
        assert_eq!(
            Request::decode(&[0x7f, 0, 0]).unwrap_err().code(),
            ErrorCode::UnknownOp
        );
        // Upsert whose count promises more rows than the body carries — must
        // not allocate based on the doctored count.
        let mut p = vec![0x02, 0, 0];
        p.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(Request::decode(&p).unwrap_err().code(), ErrorCode::BadFrame);
        // Trailing garbage after a complete request.
        let mut p = Request::Ping.encode();
        p.push(0xee);
        assert_eq!(Request::decode(&p).unwrap_err().code(), ErrorCode::BadFrame);
    }

    #[test]
    fn frame_reader_reassembles_split_frames() {
        let req = Request::Count {
            tenant: 1,
            lo: 2,
            hi: 3,
        };
        let mut wire = Vec::new();
        write_frame(&mut wire, &req.encode()).unwrap();
        write_frame(&mut wire, &Request::Ping.encode()).unwrap();
        // Feed the bytes one at a time through a reader that times out
        // between each byte.
        struct Trickle<'a> {
            data: &'a [u8],
            pos: usize,
            starved: bool,
        }
        impl Read for Trickle<'_> {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if !self.starved {
                    self.starved = true;
                    return Err(std::io::Error::from(ErrorKind::WouldBlock));
                }
                self.starved = false;
                if self.pos == self.data.len() {
                    return Ok(0);
                }
                buf[0] = self.data[self.pos];
                self.pos += 1;
                Ok(1)
            }
        }
        let mut t = Trickle {
            data: &wire,
            pos: 0,
            starved: false,
        };
        let mut fr = FrameReader::new();
        let p1 = fr.read_frame(&mut t, || false).unwrap();
        assert_eq!(Request::decode(&p1), Ok(req));
        let p2 = fr.read_frame(&mut t, || false).unwrap();
        assert_eq!(Request::decode(&p2), Ok(Request::Ping));
        assert!(matches!(
            fr.read_frame(&mut t, || false),
            Err(FrameError::Closed)
        ));
    }

    #[test]
    fn oversized_prefix_is_refused_without_buffering() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        wire.extend_from_slice(&[0u8; 16]);
        let mut fr = FrameReader::new();
        match fr.read_frame(&mut &wire[..], || false) {
            Err(FrameError::Oversized(len)) => assert_eq!(len, MAX_FRAME + 1),
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn truncated_frame_reports_truncation() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &Request::Ping.encode()).unwrap();
        wire.truncate(wire.len() - 1);
        let mut fr = FrameReader::new();
        assert!(matches!(
            fr.read_frame(&mut &wire[..], || false),
            Err(FrameError::Truncated)
        ));
    }
}
