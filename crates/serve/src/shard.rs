//! Shard-local runtimes: one [`Runtime`], worker pool, and maintenance
//! coordinator per shard thread, no cross-shard locks.
//!
//! A shard owns everything about its slice of the keyspace: per-tenant
//! [`Smc<Row>`] collections, the `key → Ref` index (touched only by the
//! shard thread, so it needs no lock), the `smc-exec` pool that runs scans
//! morsel-parallel, and the `smc-maint` coordinator that compacts in the
//! background under the shard's own SLO gauge. Connection threads reach a
//! shard exclusively through SPSC rings ([`smc_util::spsc`]) — one ring per
//! (connection, shard) pair — and block on a `ReplyCell` until the shard
//! executes their job. Backpressure is the ring itself: a full ring pushes
//! back on the connection, never on the shard.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

use smc::{ContextConfig, Ref, Runtime, Smc, Tabular};
use smc_exec::{ParScan, WorkerPool};
use smc_maint::{Coordinator, MaintConfig, MaintPolicy};
use smc_memory::stats::MemoryStats;
use smc_memory::{MemError, MemoryContext, PageStore};
use smc_obs::trace::{self, RequestId, RequestScope};
use smc_obs::Histogram;
use smc_persist::{Persist, PersistError, RecoverOptions, SpillFile};
use smc_util::spsc::{self, Consumer, Producer};

use crate::wire::ErrorCode;

/// The one row shape the server stores: a keyed 16-byte record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(C)]
pub struct Row {
    /// Tenant-scoped primary key.
    pub key: u64,
    /// The value ingested with the key; queries filter and aggregate it.
    pub value: u64,
}

// SAFETY: plain-old-data, no padding secrets, no interior references.
unsafe impl Tabular for Row {}

/// Capacity of each (connection, shard) request ring.
pub(crate) const RING_CAPACITY: usize = 256;

/// Distributes `key` to a shard by hash (splitmix64 finalizer — sequential
/// keys must not land on one shard).
pub fn shard_of(key: u64, shards: usize) -> usize {
    let mut z = key.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    (z % shards.max(1) as u64) as usize
}

/// A request as the shard executes it (already routed and decoded).
#[derive(Debug)]
pub(crate) enum ShardRequest {
    /// Insert-or-overwrite rows; all keys already hash to this shard.
    Upsert { tenant: u16, rows: Vec<(u64, u64)> },
    /// Remove keys; absent keys are ignored.
    Delete { tenant: u16, keys: Vec<u64> },
    /// Count rows with value in `[lo, hi)`.
    Count { tenant: u16, lo: u64, hi: u64 },
    /// Sum values over rows with value in `[lo, hi)`.
    Sum { tenant: u16, lo: u64, hi: u64 },
}

/// A shard's answer to one [`ShardRequest`].
#[derive(Debug)]
pub(crate) enum ShardReply {
    /// Rows applied by an upsert.
    Upserted(u64),
    /// Rows removed by a delete.
    Deleted(u64),
    /// Matching rows counted.
    Counted(u64),
    /// Matching rows counted and their values summed.
    Summed { count: u64, sum: u64 },
    /// The request failed; mirrors a wire error.
    Error(ErrorCode, String),
}

/// Where one shard-side job spent its time, measured on the shard thread
/// and handed back with the reply for tail-latency attribution.
///
/// The event counters are deltas of the shard runtime's [`MemoryStats`]
/// across the job's execution window. A concurrent maintenance pass on the
/// same runtime bumps the same counters, so they attribute *pressure
/// during the request*, not strictly work *of* the request — which is the
/// operator-relevant reading (the request stalled behind it either way),
/// and `maint_active` names the confounder explicitly.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ShardTiming {
    /// Nanoseconds the job sat in the SPSC ring before the shard ran it.
    pub(crate) ring_wait_ns: u64,
    /// Nanoseconds the shard spent executing the job.
    pub(crate) exec_ns: u64,
    /// Spill-tier blocks faulted in during the window.
    pub(crate) spill_faults: u64,
    /// Budget-ladder rungs (alloc retries + OOM recoveries) in the window.
    pub(crate) budget_rungs: u64,
    /// Emergency epoch advances forced in the window.
    pub(crate) epoch_stalls: u64,
    /// True when a maintenance pass was in flight when the job finished.
    pub(crate) maint_active: bool,
}

/// One-shot rendezvous a connection thread parks on while the owning shard
/// executes its job.
#[derive(Debug, Default)]
pub(crate) struct ReplyCell {
    slot: Mutex<Option<(ShardReply, ShardTiming)>>,
    ready: Condvar,
}

impl ReplyCell {
    pub(crate) fn new() -> Arc<ReplyCell> {
        Arc::new(ReplyCell::default())
    }

    pub(crate) fn fill(&self, reply: ShardReply, timing: ShardTiming) {
        let mut slot = self.slot.lock().unwrap_or_else(|e| e.into_inner());
        *slot = Some((reply, timing));
        self.ready.notify_all();
    }

    /// Blocks until the shard replies or `timeout` elapses.
    pub(crate) fn wait(&self, timeout: Duration) -> Option<(ShardReply, ShardTiming)> {
        let deadline = Instant::now() + timeout;
        let mut slot = self.slot.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if slot.is_some() {
                return slot.take();
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (s, _) = self
                .ready
                .wait_timeout(slot, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            slot = s;
        }
    }
}

/// One unit of work in a shard's inbox.
#[derive(Debug)]
pub(crate) struct ShardJob {
    pub(crate) req: ShardRequest,
    pub(crate) reply: Arc<ReplyCell>,
    /// Span context from the wire header, if the request was traced; the
    /// shard re-enters it so every event it emits carries the id.
    pub(crate) trace: Option<RequestId>,
    /// When the connection thread enqueued the job (ring-wait start).
    pub(crate) enqueued: Instant,
}

/// Wake-up signal for a shard parked on an empty inbox.
#[derive(Debug, Default)]
struct Doorbell {
    rings: Mutex<u64>,
    cv: Condvar,
}

impl Doorbell {
    fn ring(&self) {
        let mut rings = self.rings.lock().unwrap_or_else(|e| e.into_inner());
        *rings += 1;
        self.cv.notify_one();
    }

    /// Parks until rung (since `seen`) or `timeout`; returns the new count.
    fn wait(&self, seen: u64, timeout: Duration) -> u64 {
        let mut rings = self.rings.lock().unwrap_or_else(|e| e.into_inner());
        if *rings == seen {
            let (r, _) = self
                .cv
                .wait_timeout(rings, timeout)
                .unwrap_or_else(|e| e.into_inner());
            rings = r;
        }
        *rings
    }
}

/// Tenant state visible outside the shard thread (stats, budgets).
#[derive(Debug)]
pub(crate) struct TenantShared {
    /// Wire-protocol tenant id (index into the configured tenant list).
    pub(crate) id: u16,
    /// Human-readable tenant name (reports, panels).
    pub(crate) name: String,
    /// Per-shard slice of the tenant's byte budget, `None` for unlimited.
    pub(crate) budget_bytes: Option<u64>,
    /// The tenant's context on this shard, set once by the shard thread.
    pub(crate) ctx: OnceLock<Arc<MemoryContext>>,
    /// Ingest requests this shard rejected for this tenant's budget.
    pub(crate) over_budget_errors: AtomicU64,
}

/// The part of a shard shared with connection threads and the server.
#[derive(Debug)]
pub(crate) struct ShardShared {
    /// Shard index, for labels.
    pub(crate) index: usize,
    /// Tells the shard thread to drain and exit.
    pub(crate) stop: AtomicBool,
    /// Requests executed by this shard.
    pub(crate) requests_served: AtomicU64,
    /// The shard-private runtime (shared only for stats/verify reads).
    pub(crate) runtime: Arc<Runtime>,
    /// Per-tenant shared state, indexed by tenant id.
    pub(crate) tenants: Vec<TenantShared>,
    /// Foreground query latency (ns); doubles as the maint SLO gauge.
    pub(crate) query_latency: Arc<Histogram>,
    /// Consumers handed over by new connections, adopted by the shard loop.
    inbox_reg: Mutex<Vec<Consumer<ShardJob>>>,
    doorbell: Doorbell,
}

impl ShardShared {
    pub(crate) fn new(
        index: usize,
        runtime: Arc<Runtime>,
        tenants: &[crate::server::TenantConfig],
        shards: usize,
    ) -> ShardShared {
        let tenants = tenants
            .iter()
            .enumerate()
            .map(|(id, t)| TenantShared {
                id: id as u16,
                name: t.name.clone(),
                // The tenant budget is split evenly across shards: each
                // shard enforces its slice locally, no cross-shard locks.
                budget_bytes: t.budget_bytes.map(|b| (b / shards.max(1) as u64).max(1)),
                ctx: OnceLock::new(),
                over_budget_errors: AtomicU64::new(0),
            })
            .collect();
        ShardShared {
            index,
            stop: AtomicBool::new(false),
            requests_served: AtomicU64::new(0),
            runtime,
            tenants,
            query_latency: Arc::new(Histogram::new()),
            inbox_reg: Mutex::new(Vec::new()),
            doorbell: Doorbell::default(),
        }
    }

    /// Opens a new request ring into this shard (one per connection).
    pub(crate) fn connect(&self) -> ShardSender {
        let (tx, rx) = spsc::channel(RING_CAPACITY);
        self.inbox_reg
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(rx);
        self.doorbell.ring();
        ShardSender { tx }
    }

    /// Asks the shard thread to drain and exit.
    pub(crate) fn request_stop(&self) {
        self.stop.store(true, Ordering::Release);
        self.doorbell.ring();
    }
}

/// A connection's sending end of one shard's inbox.
#[derive(Debug)]
pub(crate) struct ShardSender {
    tx: Producer<ShardJob>,
}

/// Outcome of [`ShardSender::send`].
pub(crate) enum SendOutcome {
    /// The job is in the ring; wait on its `ReplyCell`.
    Queued,
    /// The ring stayed full past the backpressure window; the job was
    /// dropped, so its `ReplyCell` will never fill.
    Saturated,
}

impl ShardSender {
    /// Enqueues a job, ringing the shard's doorbell. A full ring is retried
    /// for `patience` (the closed-loop backpressure path), then handed back.
    pub(crate) fn send(
        &self,
        shard: &ShardShared,
        mut job: ShardJob,
        patience: Duration,
    ) -> SendOutcome {
        let deadline = Instant::now() + patience;
        loop {
            match self.tx.push(job) {
                Ok(()) => {
                    shard.doorbell.ring();
                    return SendOutcome::Queued;
                }
                Err(back) => {
                    job = back;
                    if Instant::now() >= deadline {
                        return SendOutcome::Saturated;
                    }
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// What one shard reports after draining at shutdown.
#[derive(Debug)]
pub struct ShardDrain {
    /// Shard index.
    pub shard: usize,
    /// Requests the shard executed over its lifetime.
    pub requests: u64,
    /// Tenant collections that passed `Smc::verify` at drain.
    pub tenants_verified: usize,
    /// Tenant snapshots written at drain (0 without a persist dir).
    pub snapshots_written: usize,
    /// Verification failures (collection or runtime), empty when clean.
    pub verify_errors: Vec<String>,
}

/// Per-tenant state private to the shard thread.
struct TenantLocal {
    smc: Smc<Row>,
    index: HashMap<u64, Ref<Row>>,
}

/// Tunables for one shard thread.
pub(crate) struct ShardConfig {
    pub(crate) workers: usize,
    pub(crate) maint: MaintConfig,
    pub(crate) maint_policy: MaintPolicy,
    /// Server-wide persistence root; the shard owns the
    /// `shard-<index>/tenant-<id>/` subtree underneath it.
    pub(crate) persist_dir: Option<PathBuf>,
}

/// The shard thread body: builds the shard-local world, serves jobs until
/// stopped, then drains, quiesces maintenance, and verifies (satellite
/// "graceful drain" — the per-shard half).
pub(crate) fn run_shard(shared: Arc<ShardShared>, cfg: ShardConfig) -> ShardDrain {
    let runtime = shared.runtime.clone();
    // This shard's slice of the persistence tree: snapshots and the spill
    // file for tenant N live under `<persist_dir>/shard-<index>/tenant-N/`.
    let persist_root = cfg
        .persist_dir
        .as_ref()
        .map(|d| d.join(format!("shard-{}", shared.index)));
    let mut tenants: HashMap<u16, TenantLocal> = HashMap::new();
    for t in &shared.tenants {
        let config = ContextConfig {
            budget_bytes: t.budget_bytes,
            ..ContextConfig::default()
        };
        let local = match &persist_root {
            Some(root) => {
                let dir = root.join(format!("tenant-{}", t.id));
                match build_persistent_tenant(&runtime, config, &dir) {
                    Ok(local) => local,
                    Err(msg) => {
                        // Fail closed: a corrupt snapshot must not be
                        // silently shadowed by an empty collection. The
                        // shard refuses to serve; the drain report names
                        // the tenant and page so the operator can restore.
                        let msg = format!("shard {} tenant {}: {msg}", shared.index, t.name);
                        eprintln!("smc-serve: recovery failed: {msg}");
                        return ShardDrain {
                            shard: shared.index,
                            requests: 0,
                            tenants_verified: 0,
                            snapshots_written: 0,
                            verify_errors: vec![msg],
                        };
                    }
                }
            }
            None => TenantLocal {
                smc: Smc::with_config(&runtime, config),
                index: HashMap::new(),
            },
        };
        t.ctx
            .set(local.smc.context().clone())
            .expect("shard thread sets each tenant context once");
        tenants.insert(t.id, local);
    }
    let pool = WorkerPool::for_runtime(&runtime, cfg.workers)
        .expect("shard worker registration exceeded the epoch thread registry");
    // Prewarm this shard thread's allocation cache so the first tenant
    // writes after startup skip the budget slow path.
    runtime.prewarm_local_blocks(smc_memory::ALLOC_BATCH);
    let coordinator = Coordinator::new(MaintConfig {
        slo: smc_maint::SloPolicy {
            gauge: Some(shared.query_latency.clone()),
            ..cfg.maint.slo.clone()
        },
        ..cfg.maint
    });
    for t in tenants.values() {
        t.smc.register_maintenance(&coordinator, cfg.maint_policy);
    }

    let mut inboxes: Vec<Consumer<ShardJob>> = Vec::new();
    let mut seen_rings = 0u64;
    loop {
        inboxes.extend(
            shared
                .inbox_reg
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .drain(..),
        );
        let mut served = 0u64;
        inboxes.retain_mut(|rx| {
            while let Some(job) = rx.pop() {
                execute(&shared, &mut tenants, &pool, &coordinator, job);
                served += 1;
            }
            // A closed, drained ring belongs to a finished connection.
            !(rx.is_closed() && rx.is_empty())
        });
        if served > 0 {
            shared.requests_served.fetch_add(served, Ordering::Relaxed);
        }
        if shared.stop.load(Ordering::Acquire) {
            // Stop is only requested after connection threads exit, so every
            // producer is dropped: one more adoption + drain sweep empties
            // the world, then the rings all read closed.
            let drained = inboxes.is_empty()
                && shared
                    .inbox_reg
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .is_empty();
            if drained {
                break;
            }
            continue;
        }
        if served == 0 {
            // Idle tick: repatriate blocks the pool's workers freed to this
            // thread's remote return queue before sleeping on the doorbell.
            runtime.alloc_maintenance();
            seen_rings = shared.doorbell.wait(seen_rings, Duration::from_millis(1));
        }
    }

    // Quiesce maintenance exactly (no half-moved state), release retired
    // blocks, drain the graveyard, then reconcile bit-exact.
    coordinator.quiesce();
    let mut verify_errors = Vec::new();
    let mut tenants_verified = 0usize;
    let mut snapshots_written = 0usize;
    for t in &shared.tenants {
        let local = &tenants[&t.id];
        local.smc.release_retired();
        runtime.drain_graveyard_blocking();
        match local.smc.verify() {
            Ok(_) => tenants_verified += 1,
            Err(errs) => verify_errors.extend(
                errs.into_iter()
                    .map(|e| format!("shard {} tenant {}: {e}", shared.index, t.name)),
            ),
        }
        // Snapshot the verified state: the next start recovers exactly what
        // drained. A snapshot failure is a drain error, not a panic — the
        // previous generation on disk stays intact (commit is the manifest
        // rename), so the operator still has a consistent restore point.
        if let Some(root) = &persist_root {
            let dir = root.join(format!("tenant-{}", t.id)).join("snapshot");
            match local.smc.snapshot_to(&dir) {
                Ok(_) => snapshots_written += 1,
                Err(e) => verify_errors.push(format!(
                    "shard {} tenant {}: snapshot failed: {e}",
                    shared.index, t.name
                )),
            }
        }
    }
    if let Err(errs) = runtime.verify() {
        verify_errors.extend(
            errs.into_iter()
                .map(|e| format!("shard {} runtime: {e}", shared.index)),
        );
    }
    drop(pool);
    ShardDrain {
        shard: shared.index,
        requests: shared.requests_served.load(Ordering::Relaxed),
        tenants_verified,
        snapshots_written,
        verify_errors,
    }
}

/// Builds one tenant's collection from its persistence directory: recover
/// the latest snapshot when one exists (rebuilding the key index from the
/// recovered rows), start empty otherwise, and in both cases attach the
/// tenant's spill file so a budget smaller than the dataset spills instead
/// of rejecting. Any error other than "no snapshot yet" is returned as a
/// named, fail-closed message.
fn build_persistent_tenant(
    runtime: &Arc<Runtime>,
    config: ContextConfig,
    dir: &std::path::Path,
) -> Result<TenantLocal, String> {
    let store: Arc<dyn PageStore> = Arc::new(
        SpillFile::create(dir.join("spill.dat"))
            .map_err(|e| format!("spill file {:?}: {e}", dir.join("spill.dat")))?,
    );
    let snapshot_dir = dir.join("snapshot");
    match Smc::recover_opts(
        runtime,
        RecoverOptions {
            config,
            store: Some(store.clone()),
        },
        &snapshot_dir,
    ) {
        Ok((smc, _report)) => {
            let mut index = HashMap::new();
            let guard = runtime.pin();
            smc.for_each_ref(&guard, |r, row: &Row| {
                index.insert(row.key, r);
            });
            drop(guard);
            Ok(TenantLocal { smc, index })
        }
        Err(PersistError::NoSnapshot) => {
            let smc: Smc<Row> = Smc::with_config(runtime, config);
            smc.enable_spill(store);
            Ok(TenantLocal {
                smc,
                index: HashMap::new(),
            })
        }
        Err(e) => Err(format!("recovery from {snapshot_dir:?}: {e}")),
    }
}

/// Executes one job against the shard-local state and fills its reply,
/// measuring the [`ShardTiming`] breakdown along the way. A traced job has
/// its [`RequestScope`] entered for the whole execution window, so scan
/// workers inherit the id and the `req.ring`/`req.shard` stage spans land
/// on the shard thread's track.
fn execute(
    shared: &ShardShared,
    tenants: &mut HashMap<u16, TenantLocal>,
    pool: &WorkerPool,
    coordinator: &Coordinator,
    job: ShardJob,
) {
    let ring_wait = job.enqueued.elapsed();
    let _scope = job.trace.map(RequestScope::enter);
    if let Some(id) = job.trace {
        trace::emit_stage(id, "ring", ring_wait.as_nanos() as u64);
    }
    let stats = &shared.runtime.stats;
    let faults0 = MemoryStats::get(&stats.blocks_faulted_in);
    let rungs0 = MemoryStats::get(&stats.alloc_retries) + MemoryStats::get(&stats.oom_recoveries);
    let stalls0 = MemoryStats::get(&stats.emergency_epoch_advances);
    let exec_start = Instant::now();

    let tenant_id = match &job.req {
        ShardRequest::Upsert { tenant, .. }
        | ShardRequest::Delete { tenant, .. }
        | ShardRequest::Count { tenant, .. }
        | ShardRequest::Sum { tenant, .. } => *tenant,
    };
    let reply = match tenants.get_mut(&tenant_id) {
        None => ShardReply::Error(
            ErrorCode::UnknownTenant,
            format!("tenant {tenant_id} is not configured"),
        ),
        Some(local) => match job.req {
            ShardRequest::Upsert { rows, .. } => upsert(shared, tenant_id, local, rows),
            ShardRequest::Delete { keys, .. } => delete(local, keys),
            ShardRequest::Count { lo, hi, .. } => {
                let start = Instant::now();
                let n = ParScan::new(&local.smc, pool)
                    .filter_count(|row: &Row| row.value >= lo && row.value < hi);
                shared.query_latency.record_duration(start.elapsed());
                ShardReply::Counted(n)
            }
            ShardRequest::Sum { lo, hi, .. } => {
                let start = Instant::now();
                let (count, sum) = ParScan::new(&local.smc, pool).filter_fold(
                    || (0u64, 0u64),
                    |row: &Row| row.value >= lo && row.value < hi,
                    |acc, row| {
                        acc.0 += 1;
                        acc.1 = acc.1.wrapping_add(row.value);
                    },
                    |acc, part| {
                        acc.0 += part.0;
                        acc.1 = acc.1.wrapping_add(part.1);
                    },
                );
                shared.query_latency.record_duration(start.elapsed());
                ShardReply::Summed { count, sum }
            }
        },
    };

    let exec_ns = exec_start.elapsed().as_nanos() as u64;
    if let Some(id) = job.trace {
        trace::emit_stage(id, "shard", exec_ns);
    }
    let timing = ShardTiming {
        ring_wait_ns: ring_wait.as_nanos() as u64,
        exec_ns,
        spill_faults: MemoryStats::get(&stats.blocks_faulted_in).saturating_sub(faults0),
        budget_rungs: (MemoryStats::get(&stats.alloc_retries)
            + MemoryStats::get(&stats.oom_recoveries))
        .saturating_sub(rungs0),
        epoch_stalls: MemoryStats::get(&stats.emergency_epoch_advances).saturating_sub(stalls0),
        maint_active: coordinator.passes_active() > 0,
    };
    job.reply.fill(reply, timing);
}

fn upsert(
    shared: &ShardShared,
    tenant_id: u16,
    local: &mut TenantLocal,
    rows: Vec<(u64, u64)>,
) -> ShardReply {
    let mut applied = 0u64;
    for (key, value) in rows {
        if let Some(&r) = local.index.get(&key) {
            let guard = shared.runtime.pin();
            if local
                .smc
                .update(r, &guard, |row: &mut Row| row.value = value)
                .is_some()
            {
                applied += 1;
                continue;
            }
            // The reference went stale (removed behind the index, which
            // only drain paths can cause); fall through to reinsert.
            local.index.remove(&key);
        }
        match local.smc.try_add(Row { key, value }) {
            Ok(r) => {
                local.index.insert(key, r);
                applied += 1;
            }
            Err(MemError::OutOfMemory) => {
                shared.tenants[tenant_id as usize]
                    .over_budget_errors
                    .fetch_add(1, Ordering::Relaxed);
                return ShardReply::Error(
                    ErrorCode::TenantOverBudget,
                    format!(
                        "tenant {tenant_id} over memory budget on shard {} \
                         ({applied} of batch applied)",
                        shared.index
                    ),
                );
            }
            Err(e) => {
                return ShardReply::Error(
                    ErrorCode::Internal,
                    format!("upsert failed on shard {}: {e}", shared.index),
                );
            }
        }
    }
    ShardReply::Upserted(applied)
}

fn delete(local: &mut TenantLocal, keys: Vec<u64>) -> ShardReply {
    let mut deleted = 0u64;
    for key in keys {
        if let Some(r) = local.index.remove(&key) {
            if matches!(local.smc.try_remove(r), Ok(true)) {
                deleted += 1;
            }
        }
    }
    ShardReply::Deleted(deleted)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_of_spreads_sequential_keys() {
        let shards = 4;
        let mut hit = vec![0usize; shards];
        for k in 0..4000u64 {
            hit[shard_of(k, shards)] += 1;
        }
        for (i, &n) in hit.iter().enumerate() {
            assert!(
                n > 500,
                "shard {i} got only {n}/4000 sequential keys: {hit:?}"
            );
        }
    }

    #[test]
    fn reply_cell_rendezvous() {
        let cell = ReplyCell::new();
        let c2 = cell.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            c2.fill(
                ShardReply::Counted(5),
                ShardTiming {
                    ring_wait_ns: 7,
                    ..ShardTiming::default()
                },
            );
        });
        match cell.wait(Duration::from_secs(5)) {
            Some((ShardReply::Counted(5), timing)) => assert_eq!(timing.ring_wait_ns, 7),
            other => panic!("unexpected reply {other:?}"),
        }
        t.join().unwrap();
    }

    #[test]
    fn reply_cell_times_out_without_a_shard() {
        let cell = ReplyCell::new();
        assert!(cell.wait(Duration::from_millis(20)).is_none());
    }
}
