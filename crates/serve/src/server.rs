//! The TCP front: nonblocking acceptor, thread-per-connection framing, and
//! the scatter-gather router between connections and shards.
//!
//! A connection thread owns its socket and one `ShardSender` per shard.
//! Ingest batches are partitioned by key hash and fan out only to the
//! shards that own keys in the batch; `COUNT`/`SUM` scatter to every shard
//! and the connection thread merges the partial aggregates. The server
//! never shares mutable state across shards — the only cross-shard
//! structure is this routing layer, and it is per-connection.
//!
//! Shutdown runs in strict order: stop the acceptor, let connection threads
//! finish their in-flight request and exit (dropping their rings), then
//! stop each shard, which drains leftover jobs, quiesces its maintenance
//! coordinator, and verifies every tenant collection plus its runtime
//! ([`Server::shutdown`] returns the combined [`DrainReport`]).

use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use std::time::Instant;

use smc::Runtime;
use smc_maint::{MaintConfig, MaintPolicy};
use smc_memory::inspect::HeapSnapshot;
use smc_memory::stats::MemoryStats;
use smc_obs::trace::{self, RequestId, RequestScope};
use smc_obs::{flight, JsonValue};

use crate::attr::{Attribution, OpClass, SlowBreakdown};
use crate::shard::{
    run_shard, shard_of, ReplyCell, SendOutcome, ShardConfig, ShardDrain, ShardJob, ShardReply,
    ShardRequest, ShardSender, ShardShared, ShardTiming,
};
use crate::wire::{
    write_frame, ErrorCode, FrameError, FrameReader, Request, Response, ShardStats, StatsBody,
    TenantStats, MAX_FRAME,
};

/// One tenant as configured at server start. Tenant ids on the wire are the
/// index of the tenant in [`ServerConfig::tenants`].
#[derive(Debug, Clone)]
pub struct TenantConfig {
    /// Human-readable name (reports, error messages).
    pub name: String,
    /// Total byte budget across all shards, `None` for unlimited. Split
    /// evenly per shard and enforced by each shard's `MemoryContext`.
    pub budget_bytes: Option<u64>,
}

/// Server tunables.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:0` for an ephemeral port.
    pub addr: String,
    /// Number of shards (one runtime + worker set + coordinator each).
    pub shards: usize,
    /// Scan workers per shard.
    pub workers_per_shard: usize,
    /// Tenants, in wire-id order.
    pub tenants: Vec<TenantConfig>,
    /// How long a connection leans on a full shard ring before answering
    /// with backpressure (`Internal` error) instead of queueing.
    pub ring_patience: Duration,
    /// How long a connection waits for a shard reply before declaring the
    /// shard wedged.
    pub reply_timeout: Duration,
    /// Maintenance coordinator tunables applied to every shard.
    pub maint: MaintConfig,
    /// Maintenance policy registered for every tenant collection.
    pub maint_policy: MaintPolicy,
    /// Persistence root, `None` to run purely in memory. When set, each
    /// shard recovers every tenant from
    /// `<dir>/shard-<i>/tenant-<id>/snapshot/` at start (starting empty
    /// when no snapshot exists yet), attaches a spill file so tenant
    /// budgets smaller than the dataset evict instead of rejecting, and
    /// writes a fresh snapshot of the verified state at drain.
    pub persist_dir: Option<PathBuf>,
    /// Requests completing at or over this threshold record a tail-latency
    /// breakdown into the per-op-class [`Attribution`] (surfaced via the
    /// `SCRAPE` op and `BENCH_fig16.json`). `Duration::ZERO` records every
    /// request.
    pub slow_request_threshold: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            shards: 2,
            workers_per_shard: 2,
            tenants: vec![TenantConfig {
                name: "default".to_string(),
                budget_bytes: None,
            }],
            ring_patience: Duration::from_millis(200),
            reply_timeout: Duration::from_secs(10),
            maint: MaintConfig::default(),
            maint_policy: MaintPolicy::default(),
            persist_dir: None,
            slow_request_threshold: Duration::from_millis(1),
        }
    }
}

/// Everything [`Server::shutdown`] learned while draining.
#[derive(Debug)]
pub struct DrainReport {
    /// Per-shard drain results, in shard order.
    pub shards: Vec<ShardDrain>,
}

impl DrainReport {
    /// True when every shard drained and verified clean.
    pub fn clean(&self) -> bool {
        self.shards.iter().all(|s| s.verify_errors.is_empty())
    }

    /// Total requests served across shards.
    pub fn requests(&self) -> u64 {
        self.shards.iter().map(|s| s.requests).sum()
    }

    /// Total tenant snapshots written at drain (0 without a persist dir).
    pub fn snapshots_written(&self) -> usize {
        self.shards.iter().map(|s| s.snapshots_written).sum()
    }

    /// All verification failures, across shards.
    pub fn verify_errors(&self) -> Vec<&str> {
        self.shards
            .iter()
            .flat_map(|s| s.verify_errors.iter().map(String::as_str))
            .collect()
    }
}

/// A running shard-per-core SMC server.
pub struct Server {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
    shards: Vec<Arc<ShardShared>>,
    shard_joins: Vec<JoinHandle<ShardDrain>>,
    attr: Arc<Attribution>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("local_addr", &self.local_addr)
            .field("shards", &self.shards.len())
            .finish()
    }
}

impl Server {
    /// Binds, spawns the shard threads and the acceptor, and returns.
    pub fn start(config: ServerConfig) -> std::io::Result<Server> {
        assert!(config.shards >= 1, "a server needs at least one shard");
        assert!(!config.tenants.is_empty(), "a server needs tenants");
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));

        let mut shards = Vec::with_capacity(config.shards);
        let mut shard_joins = Vec::with_capacity(config.shards);
        for index in 0..config.shards {
            let shared = Arc::new(ShardShared::new(
                index,
                Runtime::new(),
                &config.tenants,
                config.shards,
            ));
            let cfg = ShardConfig {
                workers: config.workers_per_shard.max(1),
                maint: config.maint.clone(),
                maint_policy: config.maint_policy,
                persist_dir: config.persist_dir.clone(),
            };
            let s = shared.clone();
            let join = std::thread::Builder::new()
                .name(format!("smc-shard-{index}"))
                .spawn(move || run_shard(s, cfg))?;
            shards.push(shared);
            shard_joins.push(join);
        }

        let attr = Arc::new(Attribution::new(config.slow_request_threshold));
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let stop = stop.clone();
            let conns = conns.clone();
            let shards = shards.clone();
            let config = config.clone();
            let attr = attr.clone();
            std::thread::Builder::new()
                .name("smc-acceptor".to_string())
                .spawn(move || {
                    while !stop.load(Ordering::Acquire) {
                        match listener.accept() {
                            Ok((stream, _peer)) => {
                                let stop = stop.clone();
                                let shards = shards.clone();
                                let config = config.clone();
                                let attr = attr.clone();
                                let handle = std::thread::Builder::new()
                                    .name("smc-conn".to_string())
                                    .spawn(move || {
                                        handle_conn(stream, &shards, &config, &attr, &stop)
                                    });
                                match handle {
                                    Ok(h) => {
                                        conns.lock().unwrap_or_else(|e| e.into_inner()).push(h)
                                    }
                                    Err(_) => { /* spawn failed: drop the socket */ }
                                }
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                std::thread::sleep(Duration::from_millis(5));
                            }
                            Err(_) => std::thread::sleep(Duration::from_millis(5)),
                        }
                    }
                })?
        };

        Ok(Server {
            local_addr,
            stop,
            acceptor: Some(acceptor),
            conns,
            shards,
            shard_joins,
            attr,
        })
    }

    /// The bound address (resolves `:0` to the real port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Requests from all shards the counters behind the `STATS` op. Usable
    /// while the server runs (the loadgen polls it between windows).
    pub fn stats(&self) -> StatsBody {
        gather_stats(&self.shards)
    }

    /// The server's tail-latency attribution (embedded harnesses read it
    /// directly; external ones get the same data via `SCRAPE`).
    pub fn attribution(&self) -> &Arc<Attribution> {
        &self.attr
    }

    /// The `smc-scrape/v1` document the `SCRAPE` op answers with, built
    /// in-process (no socket round-trip).
    pub fn scrape_json(&self) -> JsonValue {
        gather_scrape(&self.shards, &self.attr)
    }

    /// Stops accepting, drains connections, then drains, quiesces, and
    /// verifies every shard. Idempotent; the second call returns an empty
    /// report.
    pub fn shutdown(&mut self) -> DrainReport {
        self.stop.store(true, Ordering::Release);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        let conns: Vec<JoinHandle<()>> = self
            .conns
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .drain(..)
            .collect();
        for c in conns {
            let _ = c.join();
        }
        // Every producer ring is dropped now; shards can drain to closure.
        for s in &self.shards {
            s.request_stop();
        }
        let mut report = DrainReport { shards: Vec::new() };
        for join in self.shard_joins.drain(..) {
            match join.join() {
                Ok(d) => report.shards.push(d),
                Err(_) => report.shards.push(ShardDrain {
                    shard: usize::MAX,
                    requests: 0,
                    tenants_verified: 0,
                    snapshots_written: 0,
                    verify_errors: vec!["shard thread panicked".to_string()],
                }),
            }
        }
        if !report.clean() {
            // A failed drain verify is one of the flight recorder's trigger
            // conditions: preserve the event window before the process
            // exits. No-op unless the recorder is armed.
            let _ = flight::dump("drain-verify-failed");
        }
        report
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.acceptor.is_some() || !self.shard_joins.is_empty() {
            let _ = self.shutdown();
        }
    }
}

/// Collects the `STATS` body from shard shared state (no shard round-trip:
/// every field is an atomic or an `Arc<MemoryContext>` accessor).
fn gather_stats(shards: &[Arc<ShardShared>]) -> StatsBody {
    let mut body = StatsBody::default();
    for s in shards {
        body.shards.push(ShardStats {
            requests: s.requests_served.load(Ordering::Relaxed),
            pins_taken: MemoryStats::get(&s.runtime.stats.pins_taken),
            blocks_scanned: MemoryStats::get(&s.runtime.stats.blocks_scanned),
            morsels_dispatched: MemoryStats::get(&s.runtime.stats.morsels_dispatched),
        });
    }
    let ntenants = shards.first().map_or(0, |s| s.tenants.len());
    for id in 0..ntenants {
        let mut t = TenantStats {
            tenant: id as u16,
            budget_bytes: 0,
            used_bytes: 0,
            live_objects: 0,
            over_budget_errors: 0,
        };
        let mut unlimited = false;
        for s in shards {
            let ts = &s.tenants[id];
            match ts.budget_bytes {
                Some(b) => t.budget_bytes = t.budget_bytes.saturating_add(b),
                None => unlimited = true,
            }
            if let Some(ctx) = ts.ctx.get() {
                t.used_bytes += ctx.bytes() as u64;
                t.live_objects += ctx.live_objects();
            }
            t.over_budget_errors += ts.over_budget_errors.load(Ordering::Relaxed);
        }
        if unlimited {
            t.budget_bytes = u64::MAX;
        }
        body.tenants.push(t);
    }
    body
}

/// Builds the `smc-scrape/v1` JSON document: wire stats, tail-latency
/// attribution, tracer health, flight-recorder status, and per-shard heap
/// snapshots. The heap section is elided (with an explicit marker) when
/// the serialized document would not fit in one wire frame.
fn gather_scrape(shards: &[Arc<ShardShared>], attr: &Attribution) -> JsonValue {
    let stats = gather_stats(shards);
    let mut doc = JsonValue::obj();
    doc.set("schema", JsonValue::from("smc-scrape/v1"));

    let mut stats_json = JsonValue::obj();
    let shard_rows = stats
        .shards
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let mut o = JsonValue::obj();
            o.set("shard", JsonValue::from(i));
            o.set("requests", JsonValue::from(s.requests));
            o.set("pins_taken", JsonValue::from(s.pins_taken));
            o.set("blocks_scanned", JsonValue::from(s.blocks_scanned));
            o.set("morsels_dispatched", JsonValue::from(s.morsels_dispatched));
            o
        })
        .collect();
    stats_json.set("shards", JsonValue::Arr(shard_rows));
    let tenant_rows = stats
        .tenants
        .iter()
        .map(|t| {
            let mut o = JsonValue::obj();
            o.set("tenant", JsonValue::from(u64::from(t.tenant)));
            o.set("budget_bytes", JsonValue::from(t.budget_bytes));
            o.set("used_bytes", JsonValue::from(t.used_bytes));
            o.set("live_objects", JsonValue::from(t.live_objects));
            o.set("over_budget_errors", JsonValue::from(t.over_budget_errors));
            o
        })
        .collect();
    stats_json.set("tenants", JsonValue::Arr(tenant_rows));
    doc.set("stats", stats_json);

    doc.set("attribution", attr.to_json());

    let mut tracer = JsonValue::obj();
    tracer.set("enabled", JsonValue::from(trace::is_enabled()));
    let by_thread = trace::dropped_by_thread();
    tracer.set(
        "dropped",
        JsonValue::from(by_thread.iter().map(|&(_, n)| n).sum::<u64>()),
    );
    tracer.set(
        "dropped_by_thread",
        JsonValue::Arr(
            by_thread
                .iter()
                .map(|&(thread, dropped)| {
                    let mut o = JsonValue::obj();
                    o.set("thread", JsonValue::from(thread));
                    o.set("dropped", JsonValue::from(dropped));
                    o
                })
                .collect(),
        ),
    );
    doc.set("tracer", tracer);

    let mut flight_json = JsonValue::obj();
    flight_json.set("enabled", JsonValue::from(flight::is_enabled()));
    flight_json.set("dropped", JsonValue::from(flight::dropped()));
    flight_json.set("capacity", JsonValue::from(flight::FLIGHT_CAPACITY));
    doc.set("flight", flight_json);

    let heaps = shards
        .iter()
        .filter_map(|s| {
            let ctx_arcs: Vec<_> = s.tenants.iter().filter_map(|t| t.ctx.get()).collect();
            let ctxs: Vec<&smc_memory::MemoryContext> =
                ctx_arcs.iter().map(|a| a.as_ref()).collect();
            // Capture can fail (epoch registry full); a scrape never does.
            let snap = HeapSnapshot::try_capture(&s.runtime, &ctxs).ok()?;
            let mut o = JsonValue::obj();
            o.set("shard", JsonValue::from(s.index));
            o.set("snapshot", snap.to_json());
            Some(o)
        })
        .collect();
    doc.set("heap", JsonValue::Arr(heaps));
    doc.set("heap_elided", JsonValue::Bool(false));
    if doc.to_json().len() >= MAX_FRAME as usize {
        doc.set("heap", JsonValue::Arr(Vec::new()));
        doc.set("heap_elided", JsonValue::Bool(true));
    }
    doc
}

/// The connection loop: frame in, route, frame out.
fn handle_conn(
    stream: TcpStream,
    shards: &[Arc<ShardShared>],
    config: &ServerConfig,
    attr: &Attribution,
    stop: &AtomicBool,
) {
    let mut stream = stream;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let senders: Vec<ShardSender> = shards.iter().map(|s| s.connect()).collect();
    let mut reader = FrameReader::new();
    loop {
        let payload = match reader.read_frame(&mut stream, || stop.load(Ordering::Acquire)) {
            Ok(p) => p,
            Err(FrameError::Closed) | Err(FrameError::Truncated) => break,
            Err(FrameError::Stopped) => {
                // Draining: tell a peer mid-conversation why we hang up.
                let resp = Response::err(ErrorCode::Shutdown, "server draining");
                let _ = write_frame(&mut stream, &resp.encode());
                break;
            }
            Err(FrameError::Oversized(len)) => {
                // The stream cannot be resynchronized after a bogus prefix:
                // answer, then close.
                let resp = Response::err(
                    ErrorCode::BadFrame,
                    format!("frame length {len} exceeds {}", crate::wire::MAX_FRAME),
                );
                let _ = write_frame(&mut stream, &resp.encode());
                break;
            }
            Err(FrameError::Io(_)) => break,
        };
        let conn_start = Instant::now();
        let response = match Request::decode_traced(&payload) {
            Ok((req, raw_id)) => {
                let id = raw_id.and_then(RequestId::new);
                // Hold the span context for the whole connection-side
                // handling so anything emitted below carries the id.
                let _scope = id.map(RequestScope::enter);
                let resp = dispatch(req, shards, &senders, config, attr, id);
                if let Some(id) = id {
                    trace::emit_stage(id, "conn", conn_start.elapsed().as_nanos() as u64);
                }
                resp
            }
            // Framing is still intact (the prefix was honest), so a decode
            // error answers and keeps the connection.
            Err(e) => Response::err(e.code(), e.message()),
        };
        if write_frame(&mut stream, &response.encode()).is_err() {
            break;
        }
    }
    let _ = stream.flush();
    // Dropping `senders` closes the rings; shards prune them once drained.
}

/// The attribution class a request belongs to; `None` for the local ops
/// that never touch a shard (`PING`/`STATS`/`SCRAPE`).
fn op_class(req: &Request) -> Option<OpClass> {
    match req {
        Request::Upsert { .. } | Request::Delete { .. } => Some(OpClass::Ingest),
        Request::Count { .. } | Request::Sum { .. } => Some(OpClass::Query),
        Request::Ping | Request::Stats | Request::Scrape => None,
    }
}

/// Routes one request and, for shard-bound ops, records its tail-latency
/// breakdown when it completes at or over the slow-request threshold.
fn dispatch(
    req: Request,
    shards: &[Arc<ShardShared>],
    senders: &[ShardSender],
    config: &ServerConfig,
    attr: &Attribution,
    trace: Option<RequestId>,
) -> Response {
    let class = op_class(&req);
    let start = Instant::now();
    let mut breakdown = SlowBreakdown::default();
    let resp = dispatch_inner(req, shards, senders, config, attr, trace, &mut breakdown);
    if let Some(class) = class {
        attr.observe(class, start.elapsed().as_nanos() as u64, &breakdown);
    }
    resp
}

/// Routes one request: single-shard for ingest partitions, scatter-gather
/// for queries, local for `PING`/`STATS`/`SCRAPE`.
#[allow(clippy::too_many_arguments)]
fn dispatch_inner(
    req: Request,
    shards: &[Arc<ShardShared>],
    senders: &[ShardSender],
    config: &ServerConfig,
    attr: &Attribution,
    trace: Option<RequestId>,
    breakdown: &mut SlowBreakdown,
) -> Response {
    let ntenants = shards.first().map_or(0, |s| s.tenants.len());
    match req {
        Request::Ping => Response::Ok(Vec::new()),
        Request::Stats => Response::Ok(gather_stats(shards).encode()),
        Request::Scrape => Response::Ok(gather_scrape(shards, attr).to_json().into_bytes()),
        Request::Upsert { tenant, rows } => {
            if tenant as usize >= ntenants {
                return unknown_tenant(tenant);
            }
            let mut parts: Vec<Vec<(u64, u64)>> = vec![Vec::new(); shards.len()];
            for (k, v) in rows {
                parts[shard_of(k, shards.len())].push((k, v));
            }
            let sent = scatter(shards, senders, config, trace, breakdown, |shard| {
                let rows = std::mem::take(&mut parts[shard]);
                if rows.is_empty() {
                    None
                } else {
                    Some(ShardRequest::Upsert { tenant, rows })
                }
            });
            merge_ingest(sent, |r| match r {
                ShardReply::Upserted(n) => Some(*n),
                _ => None,
            })
        }
        Request::Delete { tenant, keys } => {
            if tenant as usize >= ntenants {
                return unknown_tenant(tenant);
            }
            let mut parts: Vec<Vec<u64>> = vec![Vec::new(); shards.len()];
            for k in keys {
                parts[shard_of(k, shards.len())].push(k);
            }
            let sent = scatter(shards, senders, config, trace, breakdown, |shard| {
                let keys = std::mem::take(&mut parts[shard]);
                if keys.is_empty() {
                    None
                } else {
                    Some(ShardRequest::Delete { tenant, keys })
                }
            });
            merge_ingest(sent, |r| match r {
                ShardReply::Deleted(n) => Some(*n),
                _ => None,
            })
        }
        Request::Count { tenant, lo, hi } => {
            if tenant as usize >= ntenants {
                return unknown_tenant(tenant);
            }
            let sent = scatter(shards, senders, config, trace, breakdown, |_| {
                Some(ShardRequest::Count { tenant, lo, hi })
            });
            let mut total = 0u64;
            for outcome in sent {
                match outcome {
                    Ok(ShardReply::Counted(n)) => total += n,
                    Ok(ShardReply::Error(code, msg)) => return Response::Err(code, msg),
                    Ok(other) => return internal(format!("mismatched reply {other:?}")),
                    Err(resp) => return resp,
                }
            }
            Response::Ok(total.to_le_bytes().to_vec())
        }
        Request::Sum { tenant, lo, hi } => {
            if tenant as usize >= ntenants {
                return unknown_tenant(tenant);
            }
            let sent = scatter(shards, senders, config, trace, breakdown, |_| {
                Some(ShardRequest::Sum { tenant, lo, hi })
            });
            let (mut count, mut sum) = (0u64, 0u64);
            for outcome in sent {
                match outcome {
                    Ok(ShardReply::Summed { count: c, sum: s }) => {
                        count += c;
                        sum = sum.wrapping_add(s);
                    }
                    Ok(ShardReply::Error(code, msg)) => return Response::Err(code, msg),
                    Ok(other) => return internal(format!("mismatched reply {other:?}")),
                    Err(resp) => return resp,
                }
            }
            let mut body = count.to_le_bytes().to_vec();
            body.extend_from_slice(&sum.to_le_bytes());
            Response::Ok(body)
        }
    }
}

fn unknown_tenant(tenant: u16) -> Response {
    Response::err(
        ErrorCode::UnknownTenant,
        format!("tenant {tenant} is not configured"),
    )
}

fn internal(msg: String) -> Response {
    Response::err(ErrorCode::Internal, msg)
}

/// Sends one job per shard (where `make` yields one), then collects every
/// reply. Send-then-collect keeps the shards working in parallel during a
/// scatter-gather query.
///
/// Per-shard [`ShardTiming`]s fold into `breakdown` as they arrive: max
/// for ring wait and execution (shards run in parallel, so the slowest one
/// *is* the request's critical path), sum for the event counters, any for
/// the maintenance overlap.
fn scatter(
    shards: &[Arc<ShardShared>],
    senders: &[ShardSender],
    config: &ServerConfig,
    trace: Option<RequestId>,
    breakdown: &mut SlowBreakdown,
    mut make: impl FnMut(usize) -> Option<ShardRequest>,
) -> Vec<Result<ShardReply, Response>> {
    let mut cells: Vec<Option<Arc<ReplyCell>>> = Vec::with_capacity(shards.len());
    let mut failures: Vec<Option<Response>> = vec![None; shards.len()];
    for (i, sender) in senders.iter().enumerate() {
        let Some(req) = make(i) else {
            cells.push(None);
            continue;
        };
        let cell = ReplyCell::new();
        let job = ShardJob {
            req,
            reply: cell.clone(),
            trace,
            enqueued: Instant::now(),
        };
        match sender.send(&shards[i], job, config.ring_patience) {
            SendOutcome::Queued => cells.push(Some(cell)),
            SendOutcome::Saturated => {
                cells.push(None);
                failures[i] = Some(internal(format!("shard {i} ring saturated")));
            }
        }
    }
    let mut out = Vec::with_capacity(shards.len());
    for (i, cell) in cells.into_iter().enumerate() {
        if let Some(resp) = failures[i].take() {
            out.push(Err(resp));
            continue;
        }
        let Some(cell) = cell else { continue };
        match cell.wait(config.reply_timeout) {
            Some((reply, timing)) => {
                fold_timing(breakdown, &timing);
                out.push(Ok(reply));
            }
            None => out.push(Err(internal(format!("shard {i} reply timed out")))),
        }
    }
    out
}

/// Folds one shard's timing into the request-level breakdown.
fn fold_timing(breakdown: &mut SlowBreakdown, t: &ShardTiming) {
    breakdown.ring_wait_ns = breakdown.ring_wait_ns.max(t.ring_wait_ns);
    breakdown.exec_ns = breakdown.exec_ns.max(t.exec_ns);
    breakdown.spill_faults += t.spill_faults;
    breakdown.budget_rungs += t.budget_rungs;
    breakdown.epoch_stalls += t.epoch_stalls;
    breakdown.maint_active |= t.maint_active;
}

/// Merges per-shard ingest acks: totals on success. On mixed outcomes the
/// budget error wins over transport noise — it is the one the tenant can
/// act on — and the message carries how much of the batch still applied.
fn merge_ingest(
    sent: Vec<Result<ShardReply, Response>>,
    extract: impl Fn(&ShardReply) -> Option<u64>,
) -> Response {
    let mut total = 0u64;
    let mut budget_err: Option<Response> = None;
    let mut first_err: Option<Response> = None;
    for outcome in sent {
        match outcome {
            Ok(reply) => {
                if let Some(n) = extract(&reply) {
                    total += n;
                } else {
                    let resp = match reply {
                        ShardReply::Error(code, msg) => Response::Err(code, msg),
                        other => internal(format!("mismatched reply {other:?}")),
                    };
                    match &resp {
                        Response::Err(ErrorCode::TenantOverBudget, _) if budget_err.is_none() => {
                            budget_err = Some(resp);
                        }
                        _ if first_err.is_none() => first_err = Some(resp),
                        _ => {}
                    }
                }
            }
            Err(resp) => {
                if first_err.is_none() {
                    first_err = Some(resp);
                }
            }
        }
    }
    match budget_err.or(first_err) {
        Some(resp) => resp,
        None => Response::Ok(total.to_le_bytes().to_vec()),
    }
}
