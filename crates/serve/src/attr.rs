//! Tail-latency attribution: where slow requests spent their time.
//!
//! Every dispatched request is timed end to end on its connection thread;
//! one that completes at or over the configured threshold
//! ([`ServerConfig::slow_request_threshold`](crate::ServerConfig::slow_request_threshold))
//! records a structured breakdown — ring wait, shard execution, spill
//! faults, budget-ladder rungs, emergency epoch advances, and whether a
//! maintenance pass was running — into per-op-class histograms and
//! counters. The two classes are **ingest** (`UPSERT`/`DELETE`) and
//! **query** (`COUNT`/`SUM`): the paper's workloads tail out for different
//! reasons on each (budget ladders vs. scan interference), so mixing them
//! in one histogram hides exactly the signal an operator needs.
//!
//! The breakdown is surfaced twice: in the `SCRAPE` wire op's JSON
//! document ([`Attribution::to_json`]) and, via `smc-loadgen`, as
//! `attr_*` histogram summaries in `BENCH_fig16.json`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use smc_obs::{Histogram, JsonValue};

/// The two request classes attribution is kept for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpClass {
    /// `UPSERT` and `DELETE`: the write path (budget ladder, index upkeep).
    Ingest,
    /// `COUNT` and `SUM`: the morsel-parallel scan path.
    Query,
}

impl OpClass {
    /// Stable lowercase name used in JSON documents and report keys.
    pub fn name(self) -> &'static str {
        match self {
            OpClass::Ingest => "ingest",
            OpClass::Query => "query",
        }
    }
}

/// One slow request's structured breakdown, aggregated across the shards
/// it touched (max for the serial waits, sum for the event counters).
#[derive(Debug, Clone, Copy, Default)]
pub struct SlowBreakdown {
    /// Longest time any shard-bound job of this request sat in its SPSC
    /// ring before the shard thread picked it up.
    pub ring_wait_ns: u64,
    /// Longest shard-side execution time (the scatter-gather critical
    /// path; shards run in parallel, so max — not sum — is the tail).
    pub exec_ns: u64,
    /// Blocks faulted in from the spill tier during execution.
    pub spill_faults: u64,
    /// Budget-ladder rungs climbed (allocation retries + OOM recoveries)
    /// during execution.
    pub budget_rungs: u64,
    /// Emergency epoch advances forced during execution (epoch-pin
    /// stalls resolved the hard way).
    pub epoch_stalls: u64,
    /// True when a background maintenance pass was in flight on at least
    /// one touched shard while the request executed.
    pub maint_active: bool,
}

/// Histograms and counters for one [`OpClass`].
#[derive(Debug)]
pub struct ClassAttribution {
    /// Requests of this class that crossed the threshold.
    slow_requests: AtomicU64,
    /// End-to-end latency of slow requests (ns).
    total: Histogram,
    /// Ring-wait component of slow requests (ns).
    ring_wait: Histogram,
    /// Shard-execution component of slow requests (ns).
    exec: Histogram,
    /// Spill-tier faults summed over slow requests.
    spill_faults: AtomicU64,
    /// Budget-ladder rungs summed over slow requests.
    budget_rungs: AtomicU64,
    /// Emergency epoch advances summed over slow requests.
    epoch_stalls: AtomicU64,
    /// Slow requests that overlapped a maintenance pass.
    maint_overlaps: AtomicU64,
}

impl ClassAttribution {
    const fn new() -> ClassAttribution {
        ClassAttribution {
            slow_requests: AtomicU64::new(0),
            total: Histogram::new(),
            ring_wait: Histogram::new(),
            exec: Histogram::new(),
            spill_faults: AtomicU64::new(0),
            budget_rungs: AtomicU64::new(0),
            epoch_stalls: AtomicU64::new(0),
            maint_overlaps: AtomicU64::new(0),
        }
    }

    /// Slow requests recorded so far.
    pub fn slow_requests(&self) -> u64 {
        self.slow_requests.load(Ordering::Relaxed)
    }

    /// End-to-end latency histogram of slow requests.
    pub fn total(&self) -> &Histogram {
        &self.total
    }

    /// Ring-wait histogram of slow requests.
    pub fn ring_wait(&self) -> &Histogram {
        &self.ring_wait
    }

    /// Shard-execution histogram of slow requests.
    pub fn exec(&self) -> &Histogram {
        &self.exec
    }

    fn to_json(&self) -> JsonValue {
        let mut obj = JsonValue::obj();
        obj.set("slow_requests", JsonValue::from(self.slow_requests()));
        obj.set("total_ns", summary_json(&self.total));
        obj.set("ring_wait_ns", summary_json(&self.ring_wait));
        obj.set("exec_ns", summary_json(&self.exec));
        obj.set(
            "spill_faults",
            JsonValue::from(self.spill_faults.load(Ordering::Relaxed)),
        );
        obj.set(
            "budget_rungs",
            JsonValue::from(self.budget_rungs.load(Ordering::Relaxed)),
        );
        obj.set(
            "epoch_stalls",
            JsonValue::from(self.epoch_stalls.load(Ordering::Relaxed)),
        );
        obj.set(
            "maint_overlaps",
            JsonValue::from(self.maint_overlaps.load(Ordering::Relaxed)),
        );
        obj
    }
}

/// A histogram summary in the same field shape `Report::histogram` writes,
/// so gate tooling can apply one schema to both.
fn summary_json(h: &Histogram) -> JsonValue {
    let s = h.summary();
    let mut obj = JsonValue::obj();
    obj.set("count", JsonValue::from(s.count));
    obj.set("sum_ns", JsonValue::from(s.sum));
    obj.set("min_ns", JsonValue::from(s.min));
    obj.set("max_ns", JsonValue::from(s.max));
    obj.set("mean_ns", JsonValue::from(s.mean));
    obj.set("p50_ns", JsonValue::from(s.p50));
    obj.set("p95_ns", JsonValue::from(s.p95));
    obj.set("p99_ns", JsonValue::from(s.p99));
    obj
}

/// Server-wide tail-latency attribution, shared by every connection
/// thread. All recording is lock-free (atomic counters + the lock-free
/// [`Histogram`]s), so attribution adds no serialization to the data path.
#[derive(Debug)]
pub struct Attribution {
    threshold_ns: u64,
    ingest: ClassAttribution,
    query: ClassAttribution,
}

impl Attribution {
    /// Attribution with the given slow-request threshold. A zero threshold
    /// records every request — what the load harness uses so fig16 always
    /// carries a populated breakdown.
    pub fn new(threshold: Duration) -> Attribution {
        Attribution {
            threshold_ns: threshold.as_nanos().min(u64::MAX as u128) as u64,
            ingest: ClassAttribution::new(),
            query: ClassAttribution::new(),
        }
    }

    /// The configured threshold in nanoseconds.
    pub fn threshold_ns(&self) -> u64 {
        self.threshold_ns
    }

    /// One class's histograms and counters.
    pub fn class(&self, class: OpClass) -> &ClassAttribution {
        match class {
            OpClass::Ingest => &self.ingest,
            OpClass::Query => &self.query,
        }
    }

    /// Records one completed request; a no-op below the threshold.
    pub fn observe(&self, class: OpClass, total_ns: u64, breakdown: &SlowBreakdown) {
        if total_ns < self.threshold_ns {
            return;
        }
        let c = self.class(class);
        c.slow_requests.fetch_add(1, Ordering::Relaxed);
        c.total.record(total_ns);
        c.ring_wait.record(breakdown.ring_wait_ns);
        c.exec.record(breakdown.exec_ns);
        c.spill_faults
            .fetch_add(breakdown.spill_faults, Ordering::Relaxed);
        c.budget_rungs
            .fetch_add(breakdown.budget_rungs, Ordering::Relaxed);
        c.epoch_stalls
            .fetch_add(breakdown.epoch_stalls, Ordering::Relaxed);
        c.maint_overlaps
            .fetch_add(breakdown.maint_active as u64, Ordering::Relaxed);
    }

    /// The attribution section of the `SCRAPE` document.
    pub fn to_json(&self) -> JsonValue {
        let mut obj = JsonValue::obj();
        obj.set("threshold_ns", JsonValue::from(self.threshold_ns));
        obj.set("ingest", self.ingest.to_json());
        obj.set("query", self.query.to_json());
        obj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_gates_recording() {
        let attr = Attribution::new(Duration::from_micros(100));
        attr.observe(OpClass::Query, 99_999, &SlowBreakdown::default());
        assert_eq!(attr.class(OpClass::Query).slow_requests(), 0);
        attr.observe(
            OpClass::Query,
            100_000,
            &SlowBreakdown {
                ring_wait_ns: 40_000,
                exec_ns: 55_000,
                spill_faults: 2,
                budget_rungs: 0,
                epoch_stalls: 1,
                maint_active: true,
            },
        );
        let q = attr.class(OpClass::Query);
        assert_eq!(q.slow_requests(), 1);
        assert_eq!(q.total().count(), 1);
        assert_eq!(q.ring_wait().max(), 40_000);
        assert_eq!(attr.class(OpClass::Ingest).slow_requests(), 0);
    }

    #[test]
    fn json_shape_matches_report_histograms() {
        let attr = Attribution::new(Duration::ZERO);
        attr.observe(
            OpClass::Ingest,
            5_000,
            &SlowBreakdown {
                ring_wait_ns: 1_000,
                exec_ns: 3_000,
                ..SlowBreakdown::default()
            },
        );
        let doc = attr.to_json();
        let ingest = doc.get("ingest").expect("ingest section");
        assert_eq!(
            ingest.get("slow_requests").and_then(JsonValue::as_u64),
            Some(1)
        );
        for hist in ["total_ns", "ring_wait_ns", "exec_ns"] {
            let h = ingest.get(hist).expect("histogram section");
            for field in [
                "count", "sum_ns", "min_ns", "max_ns", "mean_ns", "p50_ns", "p95_ns", "p99_ns",
            ] {
                assert!(h.get(field).is_some(), "{hist} missing {field}");
            }
        }
        assert_eq!(
            doc.get("query")
                .and_then(|q| q.get("slow_requests"))
                .and_then(JsonValue::as_u64),
            Some(0)
        );
    }
}
