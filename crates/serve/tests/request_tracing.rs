//! End-to-end request tracing: a `RequestId` minted at the client crosses
//! the wire header, the connection thread, every shard's SPSC ring, and
//! the morsel workers — and every span on that path carries the id.
//!
//! One test function on purpose: the tracer is process-global, and a
//! single linear scenario keeps the ring contents deterministic.

use std::collections::HashSet;
use std::time::Duration;

use smc_obs::trace::{self, Event};
use smc_obs::{ChromeTrace, JsonValue};
use smc_serve::{Client, Server, ServerConfig, TenantConfig};

const TRACED_QUERY_ID: u64 = 0xbeef_0001;
const TRACED_INGEST_ID: u64 = 0xbeef_0002;

#[test]
fn request_id_propagates_across_shards_and_exec_workers() {
    let shards = 4;
    let mut server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        shards,
        workers_per_shard: 2,
        tenants: vec![TenantConfig {
            name: "alpha".to_string(),
            budget_bytes: None,
        }],
        ..ServerConfig::default()
    })
    .expect("server binds");
    let mut client = Client::connect(server.local_addr()).unwrap();
    client.set_timeout(Some(Duration::from_secs(10))).unwrap();
    assert!(
        client.negotiate_tracing().unwrap(),
        "a current server accepts trace headers"
    );

    // Enough rows that every shard owns blocks and every worker claims at
    // least one morsel during the traced scan.
    let rows: Vec<(u64, u64)> = (0..20_000u64).map(|k| (k, k % 1000)).collect();
    client.upsert(0, rows).unwrap();

    trace::enable();
    client.trace_next(TRACED_INGEST_ID);
    client
        .upsert(0, (20_000..20_128u64).map(|k| (k, 7)).collect())
        .unwrap();
    client.trace_next(TRACED_QUERY_ID);
    let n = client.count(0, 0, 1000).unwrap();
    assert_eq!(n, 20_128); // 20k seeded rows + the 128 traced-ingest rows
    trace::disable();

    let events = trace::snapshot();
    let report = server.shutdown();
    assert!(report.clean(), "{:?}", report.verify_errors());

    // Every shard-side span of the traced query carries the originating
    // id: a COUNT scatters to all shards, so there must be exactly one
    // `shard` stage per shard, each tagged with the query's id.
    let mut stages_by_label: Vec<(u64, String, u64)> = Vec::new(); // (req, stage, thread)
    for t in &events {
        if let Event::ReqStage { req, stage, .. } = &t.event {
            stages_by_label.push((*req, stage.as_str().to_string(), t.thread));
        }
    }
    let query_stages: Vec<_> = stages_by_label
        .iter()
        .filter(|(req, _, _)| *req == TRACED_QUERY_ID)
        .collect();
    let shard_spans = query_stages.iter().filter(|(_, s, _)| s == "shard").count();
    assert_eq!(
        shard_spans, shards,
        "one shard-side span per scattered shard, all tagged with the id: {query_stages:?}"
    );
    let ring_spans = query_stages.iter().filter(|(_, s, _)| s == "ring").count();
    assert_eq!(ring_spans, shards, "one ring-wait span per shard");
    assert!(
        query_stages.iter().any(|(_, s, _)| s == "conn"),
        "the connection thread's span carries the id"
    );
    assert!(
        query_stages.iter().any(|(_, s, _)| s == "exec"),
        "at least one morsel worker's span carries the id"
    );

    // The traced ingest got its own spans under its own id (fanned out to
    // the shards owning its keys — at least one).
    assert!(
        stages_by_label
            .iter()
            .any(|(req, s, _)| *req == TRACED_INGEST_ID && s == "shard"),
        "the traced ingest's shard execution is tagged too"
    );

    // The per-request flow is linkable across at least three distinct
    // thread tracks: connection, shard, and exec worker.
    let query_threads: HashSet<u64> = query_stages.iter().map(|(_, _, t)| *t).collect();
    assert!(
        query_threads.len() >= 3,
        "expected conn + shard + worker tracks, got {} threads",
        query_threads.len()
    );

    // And the Chrome export renders them as `req.<stage>` complete spans
    // whose args carry the id, spread over those tid tracks.
    let mut export = ChromeTrace::new();
    export.add_events(&events);
    let doc = export.to_json();
    let records = doc
        .get("traceEvents")
        .and_then(JsonValue::as_arr)
        .expect("chrome document has traceEvents");
    let mut req_span_tids: HashSet<u64> = HashSet::new();
    for r in records {
        let name = r.get("name").and_then(JsonValue::as_str).unwrap_or("");
        if !name.starts_with("req.") {
            continue;
        }
        assert_eq!(
            r.get("ph").and_then(JsonValue::as_str),
            Some("X"),
            "request stages render as complete spans"
        );
        let req = r
            .get("args")
            .and_then(|a| a.get("req"))
            .and_then(JsonValue::as_u64)
            .expect("req.* spans carry an integer args.req");
        if req == TRACED_QUERY_ID {
            req_span_tids.insert(r.get("tid").and_then(JsonValue::as_u64).unwrap_or(0));
        }
    }
    assert!(
        req_span_tids.len() >= 3,
        "chrome export links the request across >= 3 tid tracks, got {}",
        req_span_tids.len()
    );
}
