//! The persistence tier end-to-end: drain writes snapshots, a cold start
//! recovers them (including the rebuilt key index, exercised by updating
//! recovered keys), and a tenant budget smaller than the dataset completes
//! ingest and full scans by spilling to the per-tenant page file instead
//! of answering `TenantOverBudget`.

use std::path::PathBuf;
use std::time::Duration;

use smc_memory::BLOCK_SIZE;
use smc_serve::{Client, Server, ServerConfig, TenantConfig};

const SHARDS: usize = 2;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("smc-serve-persist-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn server_at(dir: &std::path::Path, budget_bytes: Option<u64>) -> Server {
    Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        shards: SHARDS,
        workers_per_shard: 2,
        tenants: vec![TenantConfig {
            name: "persisted".to_string(),
            budget_bytes,
        }],
        persist_dir: Some(dir.to_path_buf()),
        ..ServerConfig::default()
    })
    .expect("server binds an ephemeral port")
}

fn connect(server: &Server) -> Client {
    let mut c = Client::connect(server.local_addr()).unwrap();
    c.set_timeout(Some(Duration::from_secs(30))).unwrap();
    c
}

#[test]
fn drain_snapshots_and_cold_start_recovers_exactly() {
    let dir = tmpdir("roundtrip");
    const N: u64 = 10_000;

    // Generation 1: ingest, remember the aggregates, drain.
    let (count1, sum1) = {
        let mut server = server_at(&dir, None);
        let mut client = connect(&server);
        let rows: Vec<(u64, u64)> = (0..N).map(|k| (k, k * 7)).collect();
        for batch in rows.chunks(512) {
            assert_eq!(
                client.upsert(0, batch.to_vec()).unwrap(),
                batch.len() as u64
            );
        }
        let agg = client.sum(0, 0, u64::MAX).unwrap();
        drop(client);
        let report = server.shutdown();
        assert!(report.clean(), "drain errors: {:?}", report.verify_errors());
        assert_eq!(
            report.snapshots_written(),
            SHARDS,
            "one snapshot per shard-tenant pair"
        );
        agg
    };
    assert_eq!(count1, N);

    // Cold start: the aggregates come back bit-exact.
    let mut server = server_at(&dir, None);
    let mut client = connect(&server);
    assert_eq!(client.count(0, 0, u64::MAX).unwrap(), count1);
    assert_eq!(client.sum(0, 0, u64::MAX).unwrap(), (count1, sum1));

    // The key index was rebuilt, not just the rows: updating a recovered
    // key must overwrite in place (same count, shifted sum), not insert.
    assert_eq!(client.upsert(0, vec![(0, 1_000_000)]).unwrap(), 1);
    assert_eq!(
        client.sum(0, 0, u64::MAX).unwrap(),
        (count1, sum1.wrapping_add(1_000_000)),
        "recovered key 0 must be updated, not duplicated"
    );
    // And deletes through the recovered index work too.
    assert_eq!(client.delete(0, vec![1, 2, 3]).unwrap(), 3);
    assert_eq!(client.count(0, 0, u64::MAX).unwrap(), count1 - 3);

    drop(client);
    let report = server.shutdown();
    assert!(report.clean(), "drain errors: {:?}", report.verify_errors());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn budget_smaller_than_dataset_spills_instead_of_rejecting() {
    let dir = tmpdir("spill");
    // One block per shard; without the spill rung this dataset trips
    // TenantOverBudget (that path is pinned by the multi_tenant test).
    let budget = Some((SHARDS * BLOCK_SIZE) as u64);
    let n = (SHARDS * 4 * BLOCK_SIZE / 16) as u64;

    let mut server = server_at(&dir, budget);
    let mut client = connect(&server);
    let mut expected_sum = 0u64;
    for start in (0..n).step_by(512) {
        let batch: Vec<(u64, u64)> = (start..(start + 512).min(n)).map(|k| (k, k * 3)).collect();
        for (_, v) in &batch {
            expected_sum = expected_sum.wrapping_add(*v);
        }
        assert_eq!(
            client.upsert(0, batch.to_vec()).unwrap(),
            batch.len() as u64,
            "with a spill store attached the budget must evict, not reject"
        );
    }
    // A full scan faults spilled pages back in transparently.
    assert_eq!(client.sum(0, 0, u64::MAX).unwrap(), (n, expected_sum));

    drop(client);
    let report = server.shutdown();
    assert!(report.clean(), "drain errors: {:?}", report.verify_errors());

    // And the whole larger-than-memory state survives a cold restart.
    let mut server = server_at(&dir, budget);
    let mut client = connect(&server);
    assert_eq!(client.sum(0, 0, u64::MAX).unwrap(), (n, expected_sum));
    drop(client);
    assert!(server.shutdown().clean());
    std::fs::remove_dir_all(&dir).ok();
}
