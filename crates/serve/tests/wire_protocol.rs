//! Fuzz-ish wire-protocol abuse: broken frames, bogus prefixes, unknown
//! opcodes, and mid-frame disconnects must come back as typed protocol
//! errors (or a clean close) — never a panic — and the server must still
//! drain and verify clean afterwards (no leaked contexts, no stuck epochs).

use std::time::Duration;

use smc_serve::wire::ErrorCode;
use smc_serve::{Client, Server, ServerConfig, TenantConfig};

fn test_server(shards: usize) -> Server {
    Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        shards,
        workers_per_shard: 2,
        tenants: vec![
            TenantConfig {
                name: "alpha".to_string(),
                budget_bytes: None,
            },
            TenantConfig {
                name: "beta".to_string(),
                budget_bytes: None,
            },
        ],
        ..ServerConfig::default()
    })
    .expect("server binds an ephemeral port")
}

fn expect_err(client: &mut Client, code: ErrorCode) {
    match client.read_response().expect("server answers with a frame") {
        smc_serve::wire::Response::Err(c, msg) => {
            assert_eq!(c, code, "unexpected error class: {msg}");
        }
        smc_serve::wire::Response::Ok(_) => panic!("expected {code:?}, got OK"),
    }
}

#[test]
fn unknown_opcode_answers_and_keeps_the_connection() {
    let mut server = test_server(2);
    let mut client = Client::connect(server.local_addr()).unwrap();
    client.set_timeout(Some(Duration::from_secs(10))).unwrap();

    // Properly framed, structurally plausible, unassigned opcode.
    client.send_raw(&[0x7f, 0, 0]).unwrap();
    expect_err(&mut client, ErrorCode::UnknownOp);

    // The connection survives and serves real work afterwards.
    client.ping().expect("connection still usable");

    let report = server.shutdown();
    assert!(
        report.clean(),
        "drain failures: {:?}",
        report.verify_errors()
    );
}

#[test]
fn malformed_bodies_answer_bad_frame_without_panicking() {
    let mut server = test_server(2);
    let mut client = Client::connect(server.local_addr()).unwrap();
    client.set_timeout(Some(Duration::from_secs(10))).unwrap();

    // Empty payload: not even an opcode.
    client.send_raw(&[]).unwrap();
    expect_err(&mut client, ErrorCode::BadFrame);

    // Upsert whose count field promises 4 billion rows the body never
    // carries — must be rejected without allocating for the claim.
    let mut p = vec![0x02, 0, 0];
    p.extend_from_slice(&u32::MAX.to_le_bytes());
    client.send_raw(&p).unwrap();
    expect_err(&mut client, ErrorCode::BadFrame);

    // A complete request followed by trailing garbage.
    let mut p = smc_serve::wire::Request::Ping.encode();
    p.push(0xee);
    client.send_raw(&p).unwrap();
    expect_err(&mut client, ErrorCode::BadFrame);

    client.ping().expect("connection still usable after abuse");

    let report = server.shutdown();
    assert!(
        report.clean(),
        "drain failures: {:?}",
        report.verify_errors()
    );
}

#[test]
fn oversized_length_prefix_is_refused_then_the_connection_closes() {
    let mut server = test_server(2);
    let mut client = Client::connect(server.local_addr()).unwrap();
    client.set_timeout(Some(Duration::from_secs(10))).unwrap();

    // A prefix claiming 512 MiB: the server must answer BadFrame without
    // buffering and hang up (the stream cannot be resynchronized).
    client.send_bytes(&((512u32 << 20).to_le_bytes())).unwrap();
    expect_err(&mut client, ErrorCode::BadFrame);

    // The server closed this connection; fresh connections still work.
    let mut fresh = Client::connect(server.local_addr()).unwrap();
    fresh.set_timeout(Some(Duration::from_secs(10))).unwrap();
    fresh.ping().expect("server accepts new connections");

    let report = server.shutdown();
    assert!(
        report.clean(),
        "drain failures: {:?}",
        report.verify_errors()
    );
}

#[test]
fn mid_frame_disconnects_leave_the_server_healthy() {
    let mut server = test_server(2);

    // Ten connections, each dying at a different point mid-frame.
    for i in 0..10u32 {
        let mut client = Client::connect(server.local_addr()).unwrap();
        // A frame header promising 100 bytes, then only `i` of them.
        client.send_bytes(&100u32.to_le_bytes()).unwrap();
        client.send_bytes(&vec![0xab; i as usize]).unwrap();
        drop(client);
    }

    // Interleave a disconnect with real traffic on another connection.
    let mut client = Client::connect(server.local_addr()).unwrap();
    client.set_timeout(Some(Duration::from_secs(10))).unwrap();
    client.upsert(0, vec![(1, 10), (2, 20)]).unwrap();
    assert_eq!(client.count(0, 0, u64::MAX).unwrap(), 2);

    let report = server.shutdown();
    assert!(
        report.clean(),
        "drain failures: {:?}",
        report.verify_errors()
    );
    assert!(report.requests() >= 2);
}

#[test]
fn malformed_trace_headers_degrade_to_untraced_requests() {
    let mut server = test_server(2);
    let mut client = Client::connect(server.local_addr()).unwrap();
    client.set_timeout(Some(Duration::from_secs(10))).unwrap();

    // Traced PING whose hlen claims 255 header bytes the frame never
    // carries: the impossible header is ignored, the request answers OK.
    client.send_raw(&[0x81, 0xff, 0, 0]).unwrap();
    match client.read_response().unwrap() {
        smc_serve::wire::Response::Ok(_) => {}
        other => panic!("oversized hlen should fall back to untraced Ping, got {other:?}"),
    }

    // Short header (3 of the 9 v1 bytes): consumed, request still serves.
    client.send_raw(&[0x81, 3, 1, 0xaa, 0xbb, 0, 0]).unwrap();
    match client.read_response().unwrap() {
        smc_serve::wire::Response::Ok(_) => {}
        other => panic!("short trace header should degrade, got {other:?}"),
    }

    // Unknown header version on a real COUNT: the query still executes.
    let mut p = vec![0x04 | smc_serve::wire::TRACE_FLAG, 9, 77];
    p.extend_from_slice(&123u64.to_le_bytes()); // id under bogus version
    p.extend_from_slice(&0u16.to_le_bytes()); // tenant
    p.extend_from_slice(&0u64.to_le_bytes()); // lo
    p.extend_from_slice(&u64::MAX.to_le_bytes()); // hi
    client.send_raw(&p).unwrap();
    match client.read_response().unwrap() {
        smc_serve::wire::Response::Ok(body) => assert_eq!(body.len(), 8),
        other => panic!("unknown trace version should degrade, got {other:?}"),
    }

    // A well-formed traced request round-trips end to end.
    client.trace_next(0x51ab);
    client.upsert(0, vec![(1, 10)]).unwrap();
    assert!(client.negotiate_tracing().unwrap());

    let report = server.shutdown();
    assert!(
        report.clean(),
        "drain failures: {:?}",
        report.verify_errors()
    );
}

#[test]
fn scrape_answers_a_live_observability_document() {
    let mut server = test_server(2);
    let mut client = Client::connect(server.local_addr()).unwrap();
    client.set_timeout(Some(Duration::from_secs(10))).unwrap();

    client
        .upsert(0, (0..64).map(|k| (k, k * 2)).collect())
        .unwrap();
    client.count(0, 0, u64::MAX).unwrap();

    let doc = client.scrape().expect("scrape parses");
    let shards = doc
        .get("stats")
        .and_then(|s| s.get("shards"))
        .and_then(|s| s.as_arr())
        .expect("scrape carries per-shard stats");
    assert_eq!(shards.len(), 2);
    assert!(doc.get("attribution").is_some());
    assert!(doc.get("tracer").is_some());
    assert!(doc.get("flight").is_some());

    let report = server.shutdown();
    assert!(report.clean());
}

#[test]
fn unknown_tenants_are_rejected_per_request() {
    let mut server = test_server(2);
    let mut client = Client::connect(server.local_addr()).unwrap();
    client.set_timeout(Some(Duration::from_secs(10))).unwrap();

    match client.upsert(999, vec![(1, 1)]) {
        Err(smc_serve::ClientError::Server(ErrorCode::UnknownTenant, _)) => {}
        other => panic!("expected UnknownTenant, got {other:?}"),
    }
    match client.count(999, 0, 10) {
        Err(smc_serve::ClientError::Server(ErrorCode::UnknownTenant, _)) => {}
        other => panic!("expected UnknownTenant, got {other:?}"),
    }
    client.ping().unwrap();

    let report = server.shutdown();
    assert!(
        report.clean(),
        "drain failures: {:?}",
        report.verify_errors()
    );
}
