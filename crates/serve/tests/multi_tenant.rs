//! Multi-tenant isolation and scatter-gather correctness.
//!
//! The headline acceptance test lives here: a tenant that blows through its
//! memory budget gets a clean `TenantOverBudget` wire error while the other
//! tenant keeps ingesting and querying, and the server still drains and
//! verifies clean afterwards.

use std::time::Duration;

use smc_memory::BLOCK_SIZE;
use smc_serve::wire::ErrorCode;
use smc_serve::{Client, ClientError, Server, ServerConfig, TenantConfig};

const SHARDS: usize = 2;

fn budgeted_server() -> Server {
    Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        shards: SHARDS,
        workers_per_shard: 2,
        tenants: vec![
            TenantConfig {
                name: "capped".to_string(),
                // One block per shard: a few thousand 16-byte rows, then
                // the OOM ladder answers.
                budget_bytes: Some((SHARDS * BLOCK_SIZE) as u64),
            },
            TenantConfig {
                name: "roomy".to_string(),
                budget_bytes: None,
            },
        ],
        ..ServerConfig::default()
    })
    .expect("server binds an ephemeral port")
}

fn connect(server: &Server) -> Client {
    let mut c = Client::connect(server.local_addr()).unwrap();
    c.set_timeout(Some(Duration::from_secs(30))).unwrap();
    c
}

#[test]
fn over_budget_tenant_errors_while_others_keep_answering() {
    let mut server = budgeted_server();
    let mut client = connect(&server);

    // Tenant 0: ingest until its budget rejects. One block holds at most
    // BLOCK_SIZE/16 rows, so 4 blocks' worth of distinct keys must trip it.
    let mut over_budget_seen = false;
    let mut applied_before_error = 0u64;
    let limit = (SHARDS * 4 * BLOCK_SIZE / 16) as u64;
    let mut key = 0u64;
    while key < limit {
        let batch: Vec<(u64, u64)> = (key..key + 512).map(|k| (k, k * 3)).collect();
        key += 512;
        match client.upsert(0, batch) {
            Ok(n) => applied_before_error += n,
            Err(ClientError::Server(ErrorCode::TenantOverBudget, msg)) => {
                over_budget_seen = true;
                assert!(
                    msg.contains("over memory budget"),
                    "budget error should say so: {msg}"
                );
                break;
            }
            Err(other) => panic!("expected a budget error, got {other:?}"),
        }
    }
    assert!(
        over_budget_seen,
        "tenant 0 ingested {applied_before_error} rows without tripping its \
         {}-byte budget",
        SHARDS * BLOCK_SIZE
    );
    assert!(
        applied_before_error > 0,
        "some rows must land before the cap"
    );

    // Tenant 1 is unaffected: ingest and query straddle the same shards.
    let rows: Vec<(u64, u64)> = (0..1000u64).map(|k| (k, k)).collect();
    assert_eq!(client.upsert(1, rows).unwrap(), 1000);
    assert_eq!(client.count(1, 0, 1000).unwrap(), 1000);
    let (n, total) = client.sum(1, 0, 500).unwrap();
    assert_eq!(n, 500);
    assert_eq!(total, (0..500u64).sum::<u64>());

    // Tenant 0 still answers queries over what it managed to ingest. The
    // erroring batch applies partially (the wire error reports how far it
    // got), so the live count may exceed the fully-acked rows by up to one
    // batch.
    let counted = client.count(0, 0, u64::MAX).unwrap();
    assert!(
        counted >= applied_before_error && counted <= applied_before_error + 512,
        "live count {counted} inconsistent with {applied_before_error} acked rows"
    );

    // The stats op reports the rejection and the budget.
    let stats = client.stats().unwrap();
    assert_eq!(stats.shards.len(), SHARDS);
    assert_eq!(stats.tenants.len(), 2);
    let capped = &stats.tenants[0];
    assert_eq!(capped.budget_bytes, (SHARDS * BLOCK_SIZE) as u64);
    assert!(capped.over_budget_errors >= 1);
    assert!(capped.used_bytes > 0);
    assert_eq!(stats.tenants[1].budget_bytes, u64::MAX);

    let report = server.shutdown();
    assert!(
        report.clean(),
        "drain failures: {:?}",
        report.verify_errors()
    );
}

#[test]
fn scatter_gather_aggregates_match_a_local_model() {
    let mut server = budgeted_server();
    let mut client = connect(&server);

    // Ingest into the unlimited tenant with values we can model exactly.
    let rows: Vec<(u64, u64)> = (0..5000u64).map(|k| (k, k % 97)).collect();
    assert_eq!(client.upsert(1, rows.clone()).unwrap(), 5000);

    // Overwrite a slice of them (upsert semantics).
    let rewrites: Vec<(u64, u64)> = (100..200u64).map(|k| (k, 1_000_000)).collect();
    assert_eq!(client.upsert(1, rewrites).unwrap(), 100);

    // Delete another slice (including keys never inserted).
    let mut doomed: Vec<u64> = (300..400u64).collect();
    doomed.extend(9_000_000..9_000_010);
    assert_eq!(client.delete(1, doomed).unwrap(), 100);

    // Local model of the same operations.
    let mut model: std::collections::HashMap<u64, u64> = rows.into_iter().collect();
    for k in 100..200u64 {
        model.insert(k, 1_000_000);
    }
    for k in 300..400u64 {
        model.remove(&k);
    }

    for (lo, hi) in [
        (0u64, 97u64),
        (10, 50),
        (0, u64::MAX),
        (1_000_000, 1_000_001),
    ] {
        let expect_count = model.values().filter(|&&v| v >= lo && v < hi).count() as u64;
        let expect_sum: u64 = model.values().filter(|&&v| v >= lo && v < hi).sum();
        assert_eq!(
            client.count(1, lo, hi).unwrap(),
            expect_count,
            "count [{lo}, {hi})"
        );
        let (n, s) = client.sum(1, lo, hi).unwrap();
        assert_eq!(n, expect_count, "sum count [{lo}, {hi})");
        assert_eq!(s, expect_sum, "sum total [{lo}, {hi})");
    }

    // Both shards did real work (the hash spreads 5000 sequential keys).
    let stats = client.stats().unwrap();
    for (i, s) in stats.shards.iter().enumerate() {
        assert!(s.requests > 0, "shard {i} served nothing");
    }

    let report = server.shutdown();
    assert!(
        report.clean(),
        "drain failures: {:?}",
        report.verify_errors()
    );
}

#[test]
fn concurrent_clients_see_consistent_totals() {
    let mut server = budgeted_server();
    let addr = server.local_addr();

    // Four writers, disjoint key ranges, same tenant.
    let mut joins = Vec::new();
    for w in 0..4u64 {
        joins.push(std::thread::spawn(move || {
            let mut c = Client::connect(addr).unwrap();
            c.set_timeout(Some(Duration::from_secs(30))).unwrap();
            let base = w * 10_000;
            let rows: Vec<(u64, u64)> = (base..base + 2500).map(|k| (k, 1)).collect();
            c.upsert(1, rows).unwrap()
        }));
    }
    let applied: u64 = joins.into_iter().map(|j| j.join().unwrap()).sum();
    assert_eq!(applied, 10_000);

    let mut client = connect(&server);
    assert_eq!(client.count(1, 0, u64::MAX).unwrap(), 10_000);
    let (n, s) = client.sum(1, 1, 2).unwrap();
    assert_eq!((n, s), (10_000, 10_000));

    let report = server.shutdown();
    assert!(
        report.clean(),
        "drain failures: {:?}",
        report.verify_errors()
    );
    assert_eq!(report.shards.len(), SHARDS);
    for d in &report.shards {
        assert_eq!(d.tenants_verified, 2);
    }
}
