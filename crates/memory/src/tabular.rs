//! The `tabular` class modifier (§2), rendered as a Rust marker trait.
//!
//! The paper introduces a `tabular` modifier for classes that may be backed
//! by self-managed collections and statically enforces:
//!
//! 1. tabular classes only reference other tabular classes (never managed
//!    objects — otherwise the GC could not skip the collection's memory);
//! 2. collections are not defined on base classes or interfaces, so every
//!    object in a collection has the same size and layout;
//! 3. strings are part of the object and share its lifetime;
//! 4. objects carry no variable-sized data in-place.
//!
//! In Rust these obligations map onto an `unsafe` marker trait. The
//! `Copy + 'static` supertraits give us (2)–(4) mechanically: a `Copy` type
//! has a fixed size, no drop glue, and cannot own heap data, so relocating or
//! reclaiming its bytes never leaks or double-frees. Obligation (1) — "fields
//! may be primitives, [`InlineStr`](crate::inline_str::InlineStr),
//! [`Decimal`](crate::decimal::Decimal), or references to other tabular
//! types" — cannot be expressed structurally in stable Rust, so it is the
//! contract the implementor affirms by writing `unsafe impl`.

/// Marker for types that may live inside self-managed memory blocks.
///
/// # Safety
///
/// Implementors affirm the paper's tabular restrictions:
///
/// * the type contains no pointers or references to garbage-collected /
///   Rust-heap data (no `Box`, `Vec`, `String`, `Arc`, raw pointers into the
///   heap, ...) — only primitives, [`Decimal`](crate::Decimal),
///   [`InlineStr`](crate::InlineStr), arrays of those, and SMC reference
///   types (`Ref<T>` / `DirectRef<T>` from the `smc` crate);
/// * all values of the type are valid for any bit pattern the memory manager
///   may expose through a stale read *after* an incarnation check has passed
///   (in practice: the type tolerates being `memcpy`'d by compaction).
///
/// `Copy + Send + Sync + 'static` are supertraits: objects are moved by
/// `memcpy` during compaction, shared across threads by queries, and never
/// carry lifetimes into the block.
pub unsafe trait Tabular: Copy + Send + Sync + 'static {}

// Primitives are trivially tabular: fixed-size, no references.
macro_rules! impl_tabular_prim {
    ($($t:ty),* $(,)?) => {
        $(unsafe impl Tabular for $t {})*
    };
}

impl_tabular_prim!(
    u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64, bool, char
);

unsafe impl Tabular for crate::decimal::Decimal {}
unsafe impl<const N: usize> Tabular for crate::inline_str::InlineStr<N> {}
unsafe impl<T: Tabular, const N: usize> Tabular for [T; N] {}
unsafe impl<T: Tabular> Tabular for Option<T> {}
unsafe impl<A: Tabular, B: Tabular> Tabular for (A, B) {}
unsafe impl<A: Tabular, B: Tabular, C: Tabular> Tabular for (A, B, C) {}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_tabular<T: Tabular>() {}

    #[test]
    fn primitive_impls_exist() {
        assert_tabular::<u64>();
        assert_tabular::<i128>();
        assert_tabular::<bool>();
        assert_tabular::<crate::Decimal>();
        assert_tabular::<crate::InlineStr<25>>();
        assert_tabular::<[u32; 4]>();
        assert_tabular::<Option<u32>>();
        assert_tabular::<(u32, crate::Decimal)>();
    }

    #[test]
    fn user_struct_can_opt_in() {
        #[derive(Clone, Copy)]
        struct Row {
            _key: u64,
            _price: crate::Decimal,
            _name: crate::InlineStr<16>,
        }
        unsafe impl Tabular for Row {}
        assert_tabular::<Row>();
    }
}
