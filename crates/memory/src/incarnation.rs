//! Incarnation numbers — the use-after-free detector of §3.1, extended with
//! the compaction flag bits of §5.1 and the forwarding flag of §6.
//!
//! Every object slot header and every indirection-table entry carries one
//! 32-bit *incarnation word*. The low 29 bits are a counter that is
//! incremented each time the slot (or entry) is freed; references embed the
//! counter value observed at assignment time, and every dereference verifies
//! that the stored counter still matches (§3.1). The top three bits are flags
//! used by the concurrent compaction protocol:
//!
//! * [`FLAG_FROZEN`] — the object is scheduled for relocation in the next
//!   relocation epoch (§5.1);
//! * [`FLAG_LOCK`] — a thread is currently moving the object or recording a
//!   bailed-out relocation (§5.1);
//! * [`FLAG_FORWARD`] — the slot is a tombstone: the object has moved and the
//!   slot's back-pointer leads to the indirection entry holding the new
//!   location (§6).
//!
//! The fast path of a dereference is a single equality comparison between the
//! reference's incarnation and the whole word — when no flags are set (the
//! common case outside compaction), a match proves liveness and the flags are
//! never inspected (§6: "checking the forwarding flag is performed during
//! incarnation number checking and, hence, does not penalize the common
//! case").

use std::sync::atomic::Ordering;

use crate::sync::AtomicU32;

/// Frozen flag: object scheduled for relocation (§5.1).
pub const FLAG_FROZEN: u32 = 1 << 31;
/// Lock flag: relocation (or bail-out) of this object is in progress (§5.1).
pub const FLAG_LOCK: u32 = 1 << 30;
/// Forwarding flag: the slot is a tombstone left behind by relocation (§6).
pub const FLAG_FORWARD: u32 = 1 << 29;
/// Mask selecting all three flag bits.
pub const FLAG_MASK: u32 = FLAG_FROZEN | FLAG_LOCK | FLAG_FORWARD;
/// Mask selecting the incarnation counter (the paper's `FL_MASK` complement).
pub const INC_MASK: u32 = !FLAG_MASK;

/// Largest representable incarnation counter value. Slots whose counter
/// reaches this value are quarantined rather than reused (§3.1: "we stop
/// reusing these memory slots" on overflow).
pub const INC_LIMIT: u32 = INC_MASK;

/// An atomic incarnation word: 29-bit counter plus three flag bits.
///
/// All mutating operations use compare-and-swap because the compaction
/// protocol requires `free` to race safely against freeze/lock transitions
/// (§5.1 footnote: "this requires free to also use CAS to increment
/// incarnation numbers").
#[derive(Debug)]
#[repr(transparent)]
pub struct IncWord(AtomicU32);

impl IncWord {
    /// A fresh word: incarnation zero, no flags.
    #[inline]
    pub const fn new(value: u32) -> Self {
        IncWord(AtomicU32::new(value))
    }

    /// Loads the raw word (counter plus flags).
    #[inline]
    pub fn load(&self, order: Ordering) -> u32 {
        self.0.load(order)
    }

    /// Stores a raw word. Only used during slot initialization and when a
    /// relocated object's incarnation is installed at its destination slot,
    /// both of which are single-writer situations.
    #[inline]
    pub fn store(&self, value: u32, order: Ordering) {
        self.0.store(value, order)
    }

    /// Returns just the counter of the current word.
    #[inline]
    pub fn incarnation(&self) -> u32 {
        self.load(Ordering::Acquire) & INC_MASK
    }

    /// Increments the counter, clearing all flags. Used by `free`: after this,
    /// every outstanding reference fails its incarnation check. Runs as a CAS
    /// loop so it serializes correctly with concurrent freeze/lock attempts.
    ///
    /// Returns the *new* counter value.
    pub fn bump(&self) -> u32 {
        let mut cur = self.0.load(Ordering::Acquire);
        loop {
            let next = (cur & INC_MASK).wrapping_add(1) & INC_MASK;
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return next,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Frees an object: increments the counter if it still equals
    /// `expected`, clearing all flags. Spins while the word is locked by a
    /// relocation (§5.1 footnote: free serializes with freeze/lock via CAS).
    ///
    /// Returns the new counter on success, `None` if the counter no longer
    /// matches (someone else freed the object first).
    pub fn try_bump_from(&self, expected: u32) -> Option<u32> {
        loop {
            let cur = self.0.load(Ordering::Acquire);
            if cur & INC_MASK != expected & INC_MASK {
                return None;
            }
            if cur & FLAG_LOCK != 0 {
                // A mover holds the object; wait for the move to settle so we
                // free the object's *current* location afterwards.
                crate::sync::cpu_relax();
                continue;
            }
            let next = (expected & INC_MASK).wrapping_add(1) & INC_MASK;
            if self
                .0
                .compare_exchange_weak(cur, next, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return Some(next);
            }
        }
    }

    /// Like [`bump`](Self::bump) but refuses to race a held lock bit.
    pub fn bump_unlocked(&self) -> u32 {
        loop {
            let cur = self.0.load(Ordering::Acquire);
            if cur & FLAG_LOCK != 0 {
                crate::sync::cpu_relax();
                continue;
            }
            let next = (cur & INC_MASK).wrapping_add(1) & INC_MASK;
            if self
                .0
                .compare_exchange_weak(cur, next, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return next;
            }
        }
    }

    /// Attempts to set a flag, failing if the counter part of the word is no
    /// longer `expected_inc` (e.g. the object was freed concurrently).
    pub fn try_set_flag(&self, expected_inc: u32, flag: u32) -> bool {
        let mut cur = self.0.load(Ordering::Acquire);
        loop {
            if cur & INC_MASK != expected_inc & INC_MASK {
                return false;
            }
            let next = cur | flag;
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return true,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Clears a flag if the counter still equals `expected_inc`. A counter
    /// change means a concurrent free already bumped the word — and a bump
    /// clears every flag — so there is nothing left to undo either way.
    /// Used by `freeze_group` to retract a freeze whose slot re-check failed.
    pub fn clear_flag(&self, expected_inc: u32, flag: u32) {
        let mut cur = self.0.load(Ordering::Acquire);
        loop {
            if cur & INC_MASK != expected_inc & INC_MASK {
                return;
            }
            let next = cur & !flag;
            if next == cur {
                return;
            }
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Atomically acquires the [`FLAG_LOCK`] bit, spinning while another
    /// thread holds it. Returns the word observed at acquisition (with the
    /// lock bit set), or `None` if the counter changed from `expected_inc`
    /// (object freed under us).
    pub fn lock(&self, expected_inc: u32) -> Option<u32> {
        loop {
            let cur = self.0.load(Ordering::Acquire);
            if cur & INC_MASK != expected_inc & INC_MASK {
                return None;
            }
            if cur & FLAG_LOCK != 0 {
                crate::sync::cpu_relax();
                continue;
            }
            let next = cur | FLAG_LOCK;
            if self
                .0
                .compare_exchange_weak(cur, next, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return Some(next);
            }
        }
    }

    /// Releases flags: stores `new_flags` as the entire flag set while leaving
    /// the counter untouched. The caller must hold [`FLAG_LOCK`].
    pub fn unlock_with_flags(&self, new_flags: u32) {
        debug_assert_eq!(new_flags & INC_MASK, 0, "flags only");
        let mut cur = self.0.load(Ordering::Acquire);
        loop {
            debug_assert_ne!(cur & FLAG_LOCK, 0, "unlock without lock");
            let next = (cur & INC_MASK) | new_flags;
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Spin-waits until the lock bit is clear and returns the settled word.
    /// Used by readers that encounter a locked relocation entry (§5.1: "we
    /// spin until it is unset and then recheck the object's status").
    pub fn wait_unlocked(&self) -> u32 {
        loop {
            let cur = self.0.load(Ordering::Acquire);
            if cur & FLAG_LOCK == 0 {
                return cur;
            }
            crate::sync::cpu_relax();
        }
    }
}

/// True if `reference_inc` matches `word` exactly — the common fast path.
#[inline(always)]
pub fn matches_exact(reference_inc: u32, word: u32) -> bool {
    reference_inc == word
}

/// True if `reference_inc` matches `word` once flags are masked out — the
/// §5.1 second test that distinguishes "frozen/forwarded but alive" from
/// "freed".
#[inline(always)]
pub fn matches_masked(reference_inc: u32, word: u32) -> bool {
    reference_inc & INC_MASK == word & INC_MASK
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering::*;

    #[test]
    fn flags_do_not_overlap_counter() {
        assert_eq!(FLAG_MASK & INC_MASK, 0);
        assert_eq!(FLAG_MASK | INC_MASK, u32::MAX);
        assert_eq!(FLAG_FROZEN & FLAG_LOCK, 0);
        assert_eq!(FLAG_FROZEN & FLAG_FORWARD, 0);
        assert_eq!(FLAG_LOCK & FLAG_FORWARD, 0);
    }

    #[test]
    fn bump_increments_and_clears_flags() {
        let w = IncWord::new(0);
        assert!(w.try_set_flag(0, FLAG_FROZEN));
        assert_eq!(w.load(Acquire), FLAG_FROZEN);
        assert_eq!(w.bump(), 1);
        assert_eq!(w.load(Acquire), 1);
    }

    #[test]
    fn bump_wraps_within_counter_bits() {
        let w = IncWord::new(INC_MASK); // counter at max
        assert_eq!(w.bump(), 0);
    }

    #[test]
    fn try_set_flag_fails_on_stale_incarnation() {
        let w = IncWord::new(5);
        assert!(!w.try_set_flag(4, FLAG_FROZEN));
        assert_eq!(w.load(Acquire), 5);
        assert!(w.try_set_flag(5, FLAG_FROZEN));
        assert_eq!(w.load(Acquire), 5 | FLAG_FROZEN);
    }

    #[test]
    fn lock_then_unlock_preserves_counter() {
        let w = IncWord::new(7);
        assert!(w.try_set_flag(7, FLAG_FROZEN));
        let observed = w.lock(7).expect("live");
        assert_eq!(observed & INC_MASK, 7);
        assert_ne!(observed & FLAG_LOCK, 0);
        // Relocation completed: leave a forwarding tombstone.
        w.unlock_with_flags(FLAG_FORWARD);
        let settled = w.wait_unlocked();
        assert_eq!(settled, 7 | FLAG_FORWARD);
    }

    #[test]
    fn lock_fails_after_free() {
        let w = IncWord::new(3);
        w.bump();
        assert!(w.lock(3).is_none());
    }

    #[test]
    fn clear_flag_respects_counter() {
        let w = IncWord::new(4);
        assert!(w.try_set_flag(4, FLAG_FROZEN));
        w.clear_flag(4, FLAG_FROZEN);
        assert_eq!(w.load(Acquire), 4);
        // Stale counter: the bump already cleared every flag; nothing to undo.
        assert!(w.try_set_flag(4, FLAG_FROZEN));
        w.bump();
        w.clear_flag(4, FLAG_FROZEN);
        assert_eq!(w.load(Acquire), 5);
    }

    #[test]
    fn matchers() {
        assert!(matches_exact(9, 9));
        assert!(!matches_exact(9, 9 | FLAG_FROZEN));
        assert!(matches_masked(9, 9 | FLAG_FROZEN));
        assert!(!matches_masked(9, 10));
    }

    #[test]
    fn concurrent_bump_and_flag_race_is_coherent() {
        // free() racing with freeze: either the freeze lands before the bump
        // (and the bump clears it) or the freeze observes the new counter and
        // fails. In both outcomes the final counter is 1 and no flags leak.
        for _ in 0..200 {
            let w = std::sync::Arc::new(IncWord::new(0));
            let w2 = w.clone();
            let t = std::thread::spawn(move || {
                let _ = w2.try_set_flag(0, FLAG_FROZEN);
            });
            w.bump();
            t.join().unwrap();
            let end = w.load(Acquire);
            assert_eq!(end & INC_MASK, 1);
            // A frozen flag set before the bump has been cleared by it; one
            // set after the bump is impossible (stale expected counter).
            assert_eq!(end & FLAG_LOCK, 0);
            assert_eq!(end & FLAG_FORWARD, 0);
        }
    }
}
