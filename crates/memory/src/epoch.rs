//! Epoch-based memory reclamation (§3.4).
//!
//! Threads access self-managed objects inside *critical sections* (the
//! paper's grace periods). The system maintains a continuously increasing
//! global epoch plus one thread-local epoch per registered thread; a thread
//! entering a critical section copies the global epoch into its slot and
//! raises an `in_critical` flag, with a full fence so the publication is
//! visible before any object access. The global epoch may be advanced from
//! `e` to `e + 1` only when every thread currently inside a critical section
//! has reached `e`; consequently memory freed in epoch `e` can be reused in
//! epoch `e + 2`, when no thread can still be reading it.
//!
//! Deviations from Fraser's original scheme follow the paper (§3.4): epochs
//! are a continuous counter (not modulo 3), and epoch advancement happens
//! lazily inside the allocator when reclaimable blocks are waiting, not on
//! critical-section exit.
//!
//! ## Entry race and why it is safe here
//!
//! A thread can read the global epoch `e`, stall, and publish `e` after the
//! global already moved past `e`. Classic EBR implementations close this
//! with a publish-recheck loop; we do the same (`EpochManager::enter`),
//! and additionally every object access re-validates an incarnation number
//! *after* entering, so even a stale-epoch entry can at worst observe limbo
//! memory that is still block-resident — never unmapped memory, because
//! blocks are returned to the OS only after a [`EpochManager::quiesce`]
//! barrier.

use std::cell::RefCell;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Weak};

use crate::error::MemError;
use crate::fault::{FaultInjector, FaultSite};
use crate::mutation::{self, Mutation};
use crate::sync::{fence, AtomicBool, AtomicU32, AtomicU64, AtomicUsize};

/// Maximum number of threads that may concurrently use one manager.
#[cfg(not(smc_check))]
pub const MAX_THREADS: usize = 128;
/// Maximum number of threads that may concurrently use one manager (reduced
/// under the model checker: `all_threads_at` walks every slot, and each walk
/// is a chain of interleaving points that would explode the state space).
#[cfg(smc_check)]
pub const MAX_THREADS: usize = 8;

/// Sentinel for "no thread holds the advance reservation".
const NO_RESERVATION: usize = usize::MAX;

/// Per-thread epoch slot (the paper's `sectionCtx[threadId]`).
#[derive(Debug)]
struct ThreadSlot {
    /// Thread-local epoch, meaningful while `depth > 0`.
    epoch: AtomicU64,
    /// Critical-section nesting depth; non-zero means "in critical section".
    depth: AtomicU32,
    /// Slot ownership: 0 free, 1 claimed.
    claimed: AtomicU32,
    /// Monotonic nanos at which the current outermost critical section was
    /// entered. Observability-only, so deliberately a *plain* std atomic —
    /// the instrumented `crate::sync` types would add model-checker switch
    /// points to every pin and blow up the `smc_check` state space.
    pin_start: std::sync::atomic::AtomicU64,
}

impl ThreadSlot {
    const fn new() -> Self {
        ThreadSlot {
            epoch: AtomicU64::new(0),
            depth: AtomicU32::new(0),
            claimed: AtomicU32::new(0),
            pin_start: std::sync::atomic::AtomicU64::new(0),
        }
    }
}

/// Monotonic nanoseconds for pin hold-time accounting (process-wide base).
fn now_nanos() -> u64 {
    use std::sync::OnceLock;
    use std::time::Instant;
    static BASE: OnceLock<Instant> = OnceLock::new();
    BASE.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// The global epoch state shared by all threads of one runtime.
#[derive(Debug)]
pub struct EpochManager {
    global: AtomicU64,
    slots: Box<[ThreadSlot]>,
    /// Unique id used to key thread-local registrations.
    id: u64,
    /// Advance reservation: during compaction only the compaction thread may
    /// advance the global epoch (§5.1: "no other but the compaction thread
    /// can increment the global epoch until the compaction is finished").
    reserved_by: AtomicUsize,
    /// The relocation epoch announced by an in-flight compaction, or 0
    /// (§5.1's `nextRelocationEpoch`). Lives here so a dereference slow path
    /// can reach it through its [`Guard`] alone.
    next_relocation_epoch: AtomicU64,
    /// True during the moving phase of the relocation epoch (§5.1's
    /// `inMovingPhase`).
    in_moving_phase: AtomicBool,
    /// Failpoint registry shared with the owning runtime (a detached,
    /// permanently-disarmed one for bare managers).
    faults: Arc<FaultInjector>,
    /// Distribution of outermost critical-section hold times in
    /// nanoseconds, fed on every [`Guard`] drop. Long pins are what stall
    /// epoch advancement (and therefore reclamation and compaction), so the
    /// observatory surfaces this next to [`epoch_lag`](Self::epoch_lag).
    pin_hold_ns: smc_obs::Histogram,
}

static NEXT_MANAGER_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

struct Registration {
    mgr_id: u64,
    idx: usize,
    mgr: Weak<EpochManager>,
}

/// Thread-local registration table; the drop releases slots when the thread
/// exits so slots can be reused by later threads.
struct TlsRegistry {
    regs: Vec<Registration>,
}

impl Drop for TlsRegistry {
    fn drop(&mut self) {
        for reg in &self.regs {
            if let Some(mgr) = reg.mgr.upgrade() {
                mgr.release_slot(reg.idx);
            }
        }
    }
}

thread_local! {
    static REGISTRY: RefCell<TlsRegistry> = const { RefCell::new(TlsRegistry { regs: Vec::new() }) };
}

impl EpochManager {
    /// Creates a manager with epoch 0 and no registered threads.
    pub fn new() -> Arc<Self> {
        Self::with_faults(Arc::new(FaultInjector::detached()))
    }

    /// Creates a manager whose failpoints report to `faults` (used by
    /// [`Runtime`](crate::runtime::Runtime) so one registry covers the whole
    /// memory system).
    pub fn with_faults(faults: Arc<FaultInjector>) -> Arc<Self> {
        let slots = (0..MAX_THREADS)
            .map(|_| ThreadSlot::new())
            .collect::<Vec<_>>();
        Arc::new(EpochManager {
            global: AtomicU64::new(0),
            slots: slots.into_boxed_slice(),
            id: NEXT_MANAGER_ID.fetch_add(1, Ordering::Relaxed),
            reserved_by: AtomicUsize::new(NO_RESERVATION),
            next_relocation_epoch: AtomicU64::new(0),
            in_moving_phase: AtomicBool::new(false),
            faults,
            pin_hold_ns: smc_obs::Histogram::new(),
        })
    }

    /// Current global epoch.
    #[inline]
    pub fn global_epoch(&self) -> u64 {
        self.global.load(Ordering::SeqCst)
    }

    /// Index of the calling thread's slot, registering on first use.
    pub fn thread_index(self: &Arc<Self>) -> Result<usize, MemError> {
        REGISTRY.with(|r| {
            let mut reg = r.borrow_mut();
            if let Some(existing) = reg.regs.iter().find(|x| x.mgr_id == self.id) {
                return Ok(existing.idx);
            }
            let idx = self.claim_slot()?;
            reg.regs.push(Registration {
                mgr_id: self.id,
                idx,
                mgr: Arc::downgrade(self),
            });
            Ok(idx)
        })
    }

    fn claim_slot(&self) -> Result<usize, MemError> {
        if self.faults.should_fail(FaultSite::ThreadClaim) {
            return Err(MemError::TooManyThreads);
        }
        for (i, slot) in self.slots.iter().enumerate() {
            if slot
                .claimed
                .compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                slot.depth.store(0, Ordering::Release);
                return Ok(i);
            }
        }
        Err(MemError::TooManyThreads)
    }

    fn release_slot(&self, idx: usize) {
        debug_assert_eq!(self.slots[idx].depth.load(Ordering::Acquire), 0);
        self.slots[idx].claimed.store(0, Ordering::Release);
    }

    /// Enters a critical section (the paper's `enter_critical_section`) and
    /// returns a [`Guard`] whose drop exits it. Re-entrant: nested guards
    /// share the outermost guard's epoch.
    ///
    /// Panics if the thread registry is full; use [`try_pin`](Self::try_pin)
    /// where that must surface as an error instead.
    pub fn pin(self: &Arc<Self>) -> Guard<'_> {
        self.try_pin().expect("epoch thread registry full")
    }

    /// Fallible [`pin`](Self::pin): `Err(MemError::TooManyThreads)` when the
    /// calling thread cannot register (registry exhausted, or an injected
    /// [`FaultSite::ThreadClaim`] failure).
    pub fn try_pin(self: &Arc<Self>) -> Result<Guard<'_>, MemError> {
        let idx = self.thread_index()?;
        self.enter(idx);
        Ok(Guard { mgr: self, idx })
    }

    fn enter(&self, idx: usize) {
        let slot = &self.slots[idx];
        let depth = slot.depth.load(Ordering::Relaxed);
        if depth == 0 {
            if mutation::enabled(Mutation::NoPublishRecheck) {
                // Re-introduced bug: publish once without rechecking, leaving
                // the entry race open against a concurrent advance.
                let e = self.global.load(Ordering::SeqCst);
                slot.epoch.store(e, Ordering::SeqCst);
                slot.depth.store(1, Ordering::SeqCst);
                fence(Ordering::SeqCst);
                slot.pin_start.store(now_nanos(), Ordering::Relaxed);
                return;
            }
            // Publish-recheck loop: republish until the global epoch is
            // stable across our publication, closing the entry race.
            let mut e = self.global.load(Ordering::SeqCst);
            loop {
                slot.epoch.store(e, Ordering::SeqCst);
                slot.depth.store(1, Ordering::SeqCst);
                fence(Ordering::SeqCst);
                let now = self.global.load(Ordering::SeqCst);
                if now == e {
                    break;
                }
                e = now;
            }
            slot.pin_start.store(now_nanos(), Ordering::Relaxed);
        } else {
            slot.depth.store(depth + 1, Ordering::Relaxed);
        }
    }

    fn exit(&self, idx: usize) {
        let slot = &self.slots[idx];
        let depth = slot.depth.load(Ordering::Relaxed);
        debug_assert!(depth > 0, "exit without matching enter");
        if depth == 1 {
            let held = now_nanos().saturating_sub(slot.pin_start.load(Ordering::Relaxed));
            fence(Ordering::SeqCst); // order object accesses before the clear
            slot.depth.store(0, Ordering::SeqCst);
            // Recorded after the clear so the histogram update never
            // extends the critical section it measures.
            self.pin_hold_ns.record(held);
        } else {
            slot.depth.store(depth - 1, Ordering::Relaxed);
        }
    }

    /// True if every thread currently in a critical section — except
    /// `exclude`, if given — has reached global epoch `e`.
    fn all_threads_at(&self, e: u64, exclude: Option<usize>) -> bool {
        for (i, slot) in self.slots.iter().enumerate() {
            if Some(i) == exclude {
                continue;
            }
            if slot.claimed.load(Ordering::Acquire) == 0 {
                continue;
            }
            if slot.depth.load(Ordering::SeqCst) > 0 && slot.epoch.load(Ordering::SeqCst) != e {
                return false;
            }
        }
        true
    }

    /// Attempts to advance the global epoch by one. Fails if some in-critical
    /// thread lags behind, or if another thread holds the advance
    /// reservation. Returns the new epoch on success.
    pub fn try_advance(&self) -> Option<u64> {
        self.try_advance_from(None)
    }

    /// [`try_advance`](Self::try_advance) on behalf of thread slot `idx`,
    /// ignoring that thread's own pinned epoch (used by the compaction
    /// thread, which sits in a critical section at `e` while driving the
    /// global epoch forward, §5.1).
    pub fn try_advance_excluding(&self, idx: usize) -> Option<u64> {
        self.try_advance_from(Some(idx))
    }

    fn try_advance_from(&self, me: Option<usize>) -> Option<u64> {
        if self.faults.should_fail(FaultSite::EpochAdvance) {
            return None;
        }
        let reserved = self.reserved_by.load(Ordering::Acquire);
        if reserved != NO_RESERVATION && Some(reserved) != me {
            return None;
        }
        let e = self.global.load(Ordering::SeqCst);
        // Re-introduced bug (`AdvanceIgnoresPinned`): skip the "all pinned
        // threads reached e" check, reclaiming memory under live readers.
        if !mutation::enabled(Mutation::AdvanceIgnoresPinned) && !self.all_threads_at(e, me) {
            return None;
        }
        match self
            .global
            .compare_exchange(e, e + 1, Ordering::SeqCst, Ordering::SeqCst)
        {
            Ok(_) => {
                smc_obs::trace::emit(smc_obs::Event::EpochAdvance { epoch: e + 1 });
                Some(e + 1)
            }
            Err(_) => None,
        }
    }

    /// True if every in-critical thread other than `idx` has reached
    /// `epoch` — the §5.1 condition for the compaction thread to conclude
    /// that "all other threads are in the relocation epoch".
    pub fn can_advance_excluding(&self, idx: usize, epoch: u64) -> bool {
        self.all_threads_at(epoch, Some(idx))
    }

    /// The announced relocation epoch, 0 if no compaction is pending (§5.1).
    #[inline]
    pub fn next_relocation_epoch(&self) -> u64 {
        self.next_relocation_epoch.load(Ordering::SeqCst)
    }

    /// Announces (or clears, with 0) the relocation epoch.
    pub fn set_relocation_epoch(&self, e: u64) {
        self.next_relocation_epoch.store(e, Ordering::SeqCst);
    }

    /// True while the in-flight compaction is moving objects.
    #[inline]
    pub fn in_moving_phase(&self) -> bool {
        self.in_moving_phase.load(Ordering::SeqCst)
    }

    /// Opens or closes the moving phase.
    pub fn set_moving_phase(&self, on: bool) {
        self.in_moving_phase.store(on, Ordering::SeqCst);
    }

    /// Reserves epoch advancement for thread slot `idx`. Returns false if
    /// another reservation is active.
    pub fn reserve_advance(&self, idx: usize) -> bool {
        self.reserved_by
            .compare_exchange(NO_RESERVATION, idx, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Releases an advance reservation taken by `idx`.
    pub fn release_advance(&self, idx: usize) {
        let _ = self.reserved_by.compare_exchange(
            idx,
            NO_RESERVATION,
            Ordering::AcqRel,
            Ordering::Acquire,
        );
    }

    /// Blocks until the global epoch has advanced at least two steps past
    /// `from`, guaranteeing that no critical section that was active at
    /// `from` is still running. Used before returning blocks to the OS.
    pub fn quiesce(self: &Arc<Self>, from: u64) {
        let mut spins = 0u32;
        while self.global_epoch() < from + 2 {
            if self.try_advance().is_none() {
                spins += 1;
                if spins > 64 {
                    crate::sync::thread_yield();
                } else {
                    crate::sync::cpu_relax();
                }
            }
        }
    }

    /// Histogram of outermost critical-section (pin) hold times in
    /// nanoseconds. Lock-free to read at any time; drives the observatory's
    /// pin hold-time percentiles ([`inspect`](crate::inspect)).
    pub fn pin_hold_ns(&self) -> &smc_obs::Histogram {
        &self.pin_hold_ns
    }

    /// The oldest epoch any thread currently inside a critical section is
    /// pinned at, or `None` when no thread is pinned.
    ///
    /// This is a racy observability read — threads keep entering and
    /// exiting while the slots are walked — but it is *conservatively*
    /// racy in the direction that matters: a slot observed in-critical at
    /// epoch `e` really was pinned at `e` at the moment of the read, and
    /// by the advance invariant the global epoch was then at most `e + 1`.
    pub fn min_pinned_epoch(&self) -> Option<u64> {
        let mut min = None;
        for slot in self.slots.iter() {
            if slot.claimed.load(Ordering::Acquire) == 0 {
                continue;
            }
            if slot.depth.load(Ordering::SeqCst) == 0 {
                continue;
            }
            let e = slot.epoch.load(Ordering::SeqCst);
            min = Some(match min {
                None => e,
                Some(m) if e < m => e,
                Some(m) => m,
            });
        }
        min
    }

    /// How far the global epoch has run ahead of the oldest pinned reader
    /// (0 when nothing is pinned). The §3.4 advance invariant bounds this
    /// at 1 for a consistent observation; values read while readers churn
    /// are still useful as a stall indicator (a reader stuck at lag ≥ 1
    /// for a long interval is what blocks reclamation).
    pub fn epoch_lag(&self) -> u64 {
        match self.min_pinned_epoch() {
            Some(m) => self.global_epoch().saturating_sub(m),
            None => 0,
        }
    }

    /// The epoch the calling thread is pinned at, if it is in a critical
    /// section.
    pub fn current_thread_epoch(self: &Arc<Self>) -> Option<u64> {
        let idx = self.thread_index().ok()?;
        let slot = &self.slots[idx];
        if slot.depth.load(Ordering::Acquire) > 0 {
            Some(slot.epoch.load(Ordering::Acquire))
        } else {
            None
        }
    }
}

/// An active critical section. Object dereferences require a `&Guard`; the
/// guard's lifetime bounds every reference obtained through it, which is the
/// Rust rendering of "all accesses to objects are valid as long as the
/// incarnation numbers matched at the time they were checked" within a grace
/// period (§3.4).
#[derive(Debug)]
pub struct Guard<'e> {
    mgr: &'e Arc<EpochManager>,
    idx: usize,
}

impl<'e> Guard<'e> {
    /// The epoch this guard's thread is pinned at.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.mgr.slots[self.idx].epoch.load(Ordering::Acquire)
    }

    /// The thread-slot index of this guard (used by compaction).
    #[inline]
    pub fn thread_index(&self) -> usize {
        self.idx
    }

    /// The manager this guard pins.
    #[inline]
    pub fn manager(&self) -> &Arc<EpochManager> {
        self.mgr
    }

    /// True if this guard's thread is pinned in the announced relocation
    /// epoch — the precondition for the §5.1 slow-path cases b and c.
    #[inline]
    pub fn in_relocation_epoch(&self) -> bool {
        let r = self.mgr.next_relocation_epoch();
        r != 0 && self.epoch() == r
    }

    /// Momentarily exits and re-enters the critical section, letting epoch
    /// advancement (and therefore reclamation and compaction) make progress
    /// during long-running queries. Any references previously obtained from
    /// this guard are invalidated by the borrow checker, as required.
    pub fn repin(&mut self) {
        self.mgr.exit(self.idx);
        self.mgr.enter(self.idx);
    }
}

impl Drop for Guard<'_> {
    fn drop(&mut self) {
        self.mgr.exit(self.idx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn pin_publishes_epoch() {
        let mgr = EpochManager::new();
        let g = mgr.pin();
        assert_eq!(g.epoch(), 0);
        assert_eq!(mgr.current_thread_epoch(), Some(0));
        drop(g);
        assert_eq!(mgr.current_thread_epoch(), None);
    }

    #[test]
    fn advance_without_pinned_threads() {
        let mgr = EpochManager::new();
        assert_eq!(mgr.try_advance(), Some(1));
        assert_eq!(mgr.try_advance(), Some(2));
        assert_eq!(mgr.global_epoch(), 2);
    }

    #[test]
    fn pinned_thread_blocks_advance() {
        let mgr = EpochManager::new();
        let _g = mgr.pin();
        // Own pinned epoch (0) equals global (0), so one advance succeeds...
        assert_eq!(mgr.try_advance(), Some(1));
        // ...but a second would leave us two behind, so it must fail.
        assert_eq!(mgr.try_advance(), None);
    }

    #[test]
    fn repin_unblocks_advance() {
        let mgr = EpochManager::new();
        let mut g = mgr.pin();
        assert_eq!(mgr.try_advance(), Some(1));
        assert_eq!(mgr.try_advance(), None);
        g.repin();
        assert_eq!(g.epoch(), 1);
        assert_eq!(mgr.try_advance(), Some(2));
    }

    #[test]
    fn nested_guards_share_epoch_and_exit_once() {
        let mgr = EpochManager::new();
        let g1 = mgr.pin();
        let g2 = mgr.pin();
        assert_eq!(g1.epoch(), g2.epoch());
        drop(g2);
        // Still pinned: advance twice must fail.
        assert_eq!(mgr.try_advance(), Some(1));
        assert_eq!(mgr.try_advance(), None);
        drop(g1);
        assert_eq!(mgr.try_advance(), Some(2));
    }

    #[test]
    fn reservation_gates_other_threads() {
        let mgr = EpochManager::new();
        let idx = mgr.thread_index().unwrap();
        assert!(mgr.reserve_advance(idx));
        assert!(!mgr.reserve_advance(idx + 1));
        // Other threads (None = anonymous) cannot advance.
        assert_eq!(mgr.try_advance(), None);
        // The reserving thread can, excluding itself.
        assert_eq!(mgr.try_advance_excluding(idx), Some(1));
        mgr.release_advance(idx);
        assert_eq!(mgr.try_advance(), Some(2));
    }

    #[test]
    fn cross_thread_pin_blocks_then_releases() {
        let mgr = EpochManager::new();
        let entered = Arc::new(AtomicBool::new(false));
        let release = Arc::new(AtomicBool::new(false));
        let m2 = mgr.clone();
        let (e2, r2) = (entered.clone(), release.clone());
        let t = std::thread::spawn(move || {
            let _g = m2.pin();
            e2.store(true, Ordering::SeqCst);
            while !r2.load(Ordering::SeqCst) {
                std::hint::spin_loop();
            }
        });
        while !entered.load(Ordering::SeqCst) {
            std::hint::spin_loop();
        }
        // Remote thread pinned at 0: one advance ok, second blocked.
        assert_eq!(mgr.try_advance(), Some(1));
        assert_eq!(mgr.try_advance(), None);
        release.store(true, Ordering::SeqCst);
        t.join().unwrap();
        assert_eq!(mgr.try_advance(), Some(2));
    }

    #[test]
    fn quiesce_advances_past_target() {
        let mgr = EpochManager::new();
        mgr.quiesce(0);
        assert!(mgr.global_epoch() >= 2);
    }

    #[test]
    fn thread_slots_are_reused_after_thread_exit() {
        let mgr = EpochManager::new();
        let mut first_idx = None;
        for _ in 0..MAX_THREADS + 10 {
            let m = mgr.clone();
            let idx = std::thread::spawn(move || m.thread_index().unwrap())
                .join()
                .unwrap();
            match first_idx {
                None => first_idx = Some(idx),
                // All sequential threads should land on a freed slot.
                Some(_) => assert!(idx < MAX_THREADS),
            }
        }
    }

    #[test]
    fn registry_exhaustion_errors_then_recovers() {
        use std::sync::Barrier;
        let mgr = EpochManager::new();
        let barrier = Arc::new(Barrier::new(MAX_THREADS + 1));
        let mut handles = Vec::new();
        for _ in 0..MAX_THREADS {
            let m = mgr.clone();
            let b = barrier.clone();
            handles.push(std::thread::spawn(move || {
                let idx = m.thread_index();
                b.wait(); // all slots taken
                b.wait(); // exhaustion verified by the main thread
                idx.is_ok()
            }));
        }
        barrier.wait();
        // Registrant MAX_THREADS + 1: must fail, not panic.
        assert!(matches!(mgr.thread_index(), Err(MemError::TooManyThreads)));
        assert!(matches!(mgr.try_pin(), Err(MemError::TooManyThreads)));
        barrier.wait();
        for h in handles {
            assert!(h.join().unwrap(), "each of the first MAX_THREADS registers");
        }
        // Exited threads released their slots: registration works again.
        assert!(mgr.thread_index().is_ok());
        assert!(mgr.try_pin().is_ok());
    }

    #[test]
    fn injected_thread_claim_fault_surfaces_as_error() {
        let faults = Arc::new(FaultInjector::detached());
        faults.enable(11);
        faults.set_rate(FaultSite::ThreadClaim, crate::fault::RATE_DENOMINATOR);
        let mgr = EpochManager::with_faults(faults.clone());
        // This thread is unregistered with the fresh manager, so pinning
        // must claim a slot and hit the failpoint.
        assert!(matches!(mgr.try_pin(), Err(MemError::TooManyThreads)));
        faults.disable();
        assert!(mgr.try_pin().is_ok(), "disarmed registry claims normally");
    }

    #[test]
    fn injected_epoch_advance_fault_blocks_progress() {
        let faults = Arc::new(FaultInjector::detached());
        let mgr = EpochManager::with_faults(faults.clone());
        faults.enable(13);
        faults.set_rate(FaultSite::EpochAdvance, crate::fault::RATE_DENOMINATOR);
        assert_eq!(mgr.try_advance(), None);
        assert_eq!(mgr.global_epoch(), 0);
        faults.disable();
        assert_eq!(mgr.try_advance(), Some(1));
    }

    #[test]
    fn pin_hold_time_is_recorded_on_guard_drop() {
        let mgr = EpochManager::new();
        let before = mgr.pin_hold_ns().count();
        {
            let _g = mgr.pin();
            // Nested guards must not double-count.
            let _g2 = mgr.pin();
        }
        assert_eq!(
            mgr.pin_hold_ns().count(),
            before + 1,
            "one outermost pin = one sample"
        );
    }

    #[test]
    fn min_pinned_epoch_and_lag_track_readers() {
        let mgr = EpochManager::new();
        assert_eq!(mgr.min_pinned_epoch(), None);
        assert_eq!(mgr.epoch_lag(), 0);
        let g = mgr.pin();
        assert_eq!(mgr.min_pinned_epoch(), Some(0));
        assert_eq!(mgr.epoch_lag(), 0);
        // One advance succeeds; the pinned reader now lags by exactly 1.
        assert_eq!(mgr.try_advance(), Some(1));
        assert_eq!(mgr.min_pinned_epoch(), Some(0));
        assert_eq!(mgr.epoch_lag(), 1);
        drop(g);
        assert_eq!(mgr.min_pinned_epoch(), None);
        assert_eq!(mgr.epoch_lag(), 0);
    }

    #[test]
    fn many_threads_pin_concurrently() {
        let mgr = EpochManager::new();
        let mut handles = Vec::new();
        for _ in 0..16 {
            let m = mgr.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..500 {
                    let g = m.pin();
                    std::hint::black_box(g.epoch());
                    drop(g);
                    let _ = m.try_advance();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // With 16 threads pinning/advancing, the epoch made progress.
        assert!(mgr.global_epoch() > 0);
    }
}
