//! Deterministic, seeded fault injection for the memory manager.
//!
//! Robustness work on a manual memory manager needs failures on demand:
//! allocation refusals, stalled epoch advancement, thread-registry
//! exhaustion, and compactions that die mid-relocation. This module provides
//! a [`FaultInjector`] with one *failpoint* per such site
//! ([`FaultSite`]). Sites are compiled in permanently but cost one relaxed
//! atomic load when injection is disabled (the default).
//!
//! ## Determinism
//!
//! Whether call `n` at a site fails is a pure function of `(seed, site, n)`:
//! each site keeps an atomic call counter, and the decision hashes the seed,
//! a per-site salt, and the call index through SplitMix64. Re-running a
//! single-threaded workload with the same seed therefore injects failures at
//! exactly the same calls. Under concurrency the *set* of failing call
//! indices is still fixed by the seed; only which thread draws which index
//! varies with scheduling.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use smc_util::rng::splitmix64;

use crate::stats::MemoryStats;

/// Number of distinct failpoints.
pub const NUM_SITES: usize = 9;

/// The failpoints wired into the memory manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// OS-level block allocation ([`Runtime::allocate_block`](crate::runtime::Runtime::allocate_block)). Injection simulates a hard
    /// allocation failure: the call returns
    /// [`MemError::OutOfMemory`](crate::error::MemError::OutOfMemory)
    /// without touching the recovery ladder.
    BlockAlloc,
    /// Global epoch advancement (`EpochManager::try_advance*`). Injection
    /// makes the attempt report failure, as if a straggling critical section
    /// were pinned behind the current epoch.
    EpochAdvance,
    /// Thread-slot registration (`EpochManager::thread_index` on first use).
    /// Injection returns
    /// [`MemError::TooManyThreads`](crate::error::MemError::TooManyThreads),
    /// as if the registry were full.
    ThreadClaim,
    /// Object relocation during a compaction pass's moving phase. Injection
    /// aborts the group mid-move — the crash-only path: remaining entries
    /// stay `Pending` and are bailed out by the pass epilogue, leaving the
    /// collection valid and the compaction retriable.
    Relocation,
    /// Maintenance-coordinator planning cycle (`smc-maint`). Injection makes
    /// one planning sweep fail transiently — the coordinator must classify
    /// it as retriable and plan again on a later cycle, not wedge.
    MaintPlan,
    /// Maintenance-coordinator pass dispatch (`smc-maint`). Injection fails
    /// a planned pass before it reaches [`MemoryContext::compact`]; the
    /// coordinator retries it with seeded-jitter backoff.
    ///
    /// [`MemoryContext::compact`]: crate::context::MemoryContext::compact
    MaintPass,
    /// Snapshot page write (`smc-persist`). Injection fails the page file
    /// write mid-snapshot — the snapshot aborts, the previous published
    /// generation stays intact, and the temporary files are removed.
    SnapshotPage,
    /// Snapshot manifest write (`smc-persist`). Injection fails the
    /// `MANIFEST.tmp` write after all pages landed; the snapshot is not
    /// published and recovery still sees the previous generation.
    SnapshotManifest,
    /// Snapshot manifest publish (`smc-persist`'s atomic rename). Injection
    /// fails the rename — the last durable step — proving the commit point
    /// is exactly the rename and nothing earlier.
    SnapshotRename,
}

impl FaultSite {
    /// Every site, in index order.
    pub const ALL: [FaultSite; NUM_SITES] = [
        FaultSite::BlockAlloc,
        FaultSite::EpochAdvance,
        FaultSite::ThreadClaim,
        FaultSite::Relocation,
        FaultSite::MaintPlan,
        FaultSite::MaintPass,
        FaultSite::SnapshotPage,
        FaultSite::SnapshotManifest,
        FaultSite::SnapshotRename,
    ];

    /// Dense index of this site.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            FaultSite::BlockAlloc => 0,
            FaultSite::EpochAdvance => 1,
            FaultSite::ThreadClaim => 2,
            FaultSite::Relocation => 3,
            FaultSite::MaintPlan => 4,
            FaultSite::MaintPass => 5,
            FaultSite::SnapshotPage => 6,
            FaultSite::SnapshotManifest => 7,
            FaultSite::SnapshotRename => 8,
        }
    }

    /// Stable per-site hash salt (decorrelates sites under one seed).
    #[inline]
    fn salt(self) -> u64 {
        [
            0x9e37_79b9_0000_0001,
            0x9e37_79b9_0000_0002,
            0x9e37_79b9_0000_0003,
            0x9e37_79b9_0000_0004,
            0x9e37_79b9_0000_0005,
            0x9e37_79b9_0000_0006,
            0x9e37_79b9_0000_0007,
            0x9e37_79b9_0000_0008,
            0x9e37_79b9_0000_0009,
        ][self.index()]
    }

    /// Human-readable site name.
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::BlockAlloc => "block-alloc",
            FaultSite::EpochAdvance => "epoch-advance",
            FaultSite::ThreadClaim => "thread-claim",
            FaultSite::Relocation => "relocation",
            FaultSite::MaintPlan => "maint-plan",
            FaultSite::MaintPass => "maint-pass",
            FaultSite::SnapshotPage => "snapshot-page",
            FaultSite::SnapshotManifest => "snapshot-manifest",
            FaultSite::SnapshotRename => "snapshot-rename",
        }
    }
}

/// Injection rates are expressed out of this denominator.
pub const RATE_DENOMINATOR: u32 = 1024;

/// The per-runtime failpoint registry.
///
/// Disabled by default; every site then reduces to a single relaxed load.
/// Enabled via [`enable`](Self::enable) with a seed, after which each site
/// fails a deterministic, seed-reproducible subset of its calls at the
/// configured rate.
#[derive(Debug)]
pub struct FaultInjector {
    enabled: AtomicBool,
    seed: AtomicU64,
    /// Per-site injection rate out of [`RATE_DENOMINATOR`].
    rates: [AtomicU32; NUM_SITES],
    /// Per-site call counters (the `n` in the `(seed, site, n)` hash).
    calls: [AtomicU64; NUM_SITES],
    /// Per-site injected-failure counters.
    injected: [AtomicU64; NUM_SITES],
    /// Remaining injection allowance; `u64::MAX` means unlimited.
    remaining: AtomicU64,
    stats: Arc<MemoryStats>,
}

impl FaultInjector {
    /// A disabled injector reporting into `stats`.
    pub fn new(stats: Arc<MemoryStats>) -> FaultInjector {
        FaultInjector {
            enabled: AtomicBool::new(false),
            seed: AtomicU64::new(0),
            rates: std::array::from_fn(|_| AtomicU32::new(0)),
            calls: std::array::from_fn(|_| AtomicU64::new(0)),
            injected: std::array::from_fn(|_| AtomicU64::new(0)),
            remaining: AtomicU64::new(u64::MAX),
            stats,
        }
    }

    /// A disabled injector with private stats, for components constructed
    /// without a runtime (e.g. a bare `EpochManager` in tests).
    pub fn detached() -> FaultInjector {
        FaultInjector::new(Arc::new(MemoryStats::new()))
    }

    /// Arms the injector with a seed. Sites only fire once a non-zero rate
    /// is also set ([`set_rate`](Self::set_rate)).
    pub fn enable(&self, seed: u64) {
        self.seed.store(seed, Ordering::Relaxed);
        self.enabled.store(true, Ordering::Relaxed);
    }

    /// Disarms every site (calls still count, for determinism across
    /// enable/disable windows).
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Relaxed);
    }

    /// True once armed.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// The seed the injector was armed with.
    pub fn seed(&self) -> u64 {
        self.seed.load(Ordering::Relaxed)
    }

    /// Sets one site's injection rate, out of [`RATE_DENOMINATOR`].
    pub fn set_rate(&self, site: FaultSite, rate_per_1024: u32) {
        self.rates[site.index()].store(rate_per_1024.min(RATE_DENOMINATOR), Ordering::Relaxed);
    }

    /// Sets every site to the same injection rate.
    pub fn set_all_rates(&self, rate_per_1024: u32) {
        for site in FaultSite::ALL {
            self.set_rate(site, rate_per_1024);
        }
    }

    /// Caps the total number of injections (`None` = unlimited). Useful for
    /// "fail exactly the next allocation" style tests.
    pub fn set_limit(&self, limit: Option<u64>) {
        self.remaining
            .store(limit.unwrap_or(u64::MAX), Ordering::Relaxed);
    }

    /// The failpoint: true when the current call at `site` must fail.
    #[inline]
    pub fn should_fail(&self, site: FaultSite) -> bool {
        if !self.enabled.load(Ordering::Relaxed) {
            return false;
        }
        self.should_fail_armed(site)
    }

    #[cold]
    fn should_fail_armed(&self, site: FaultSite) -> bool {
        let i = site.index();
        let call = self.calls[i].fetch_add(1, Ordering::Relaxed);
        let rate = self.rates[i].load(Ordering::Relaxed);
        if rate == 0 {
            return false;
        }
        let h = splitmix64(self.seed.load(Ordering::Relaxed) ^ site.salt() ^ call);
        if (h % RATE_DENOMINATOR as u64) as u32 >= rate {
            return false;
        }
        // Respect the injection allowance without going negative under races.
        let allowed = self
            .remaining
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |r| match r {
                u64::MAX => Some(u64::MAX),
                0 => None,
                n => Some(n - 1),
            })
            .is_ok();
        if !allowed {
            return false;
        }
        self.injected[i].fetch_add(1, Ordering::Relaxed);
        MemoryStats::inc(&self.stats.faults_injected);
        smc_obs::trace::emit(smc_obs::Event::FailpointTrip {
            site: smc_obs::Label::new(site.name()),
        });
        true
    }

    /// Times this site was reached (failing or not).
    pub fn calls(&self, site: FaultSite) -> u64 {
        self.calls[site.index()].load(Ordering::Relaxed)
    }

    /// Failures injected at this site.
    pub fn injected(&self, site: FaultSite) -> u64 {
        self.injected[site.index()].load(Ordering::Relaxed)
    }

    /// Failures injected across all sites.
    pub fn injected_total(&self) -> u64 {
        FaultSite::ALL.iter().map(|&s| self.injected(s)).sum()
    }
}

impl std::fmt::Display for FaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "faults[{}; seed={}]",
            if self.is_enabled() {
                "armed"
            } else {
                "disarmed"
            },
            self.seed()
        )?;
        for site in FaultSite::ALL {
            write!(
                f,
                " {}={}/{}",
                site.name(),
                self.injected(site),
                self.calls(site)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_injector_never_fails() {
        let inj = FaultInjector::detached();
        inj.set_all_rates(RATE_DENOMINATOR); // would fail every call if armed
        for _ in 0..1000 {
            assert!(!inj.should_fail(FaultSite::BlockAlloc));
        }
        assert_eq!(inj.injected_total(), 0);
    }

    #[test]
    fn same_seed_fails_same_calls() {
        let pattern = |seed: u64| -> Vec<bool> {
            let inj = FaultInjector::detached();
            inj.enable(seed);
            inj.set_rate(FaultSite::Relocation, 128);
            (0..512)
                .map(|_| inj.should_fail(FaultSite::Relocation))
                .collect()
        };
        assert_eq!(pattern(7), pattern(7));
        assert_ne!(pattern(7), pattern(8), "different seeds should differ");
    }

    #[test]
    fn rate_roughly_honored() {
        let inj = FaultInjector::detached();
        inj.enable(42);
        inj.set_rate(FaultSite::EpochAdvance, 256); // 25%
        let hits = (0..4096)
            .filter(|_| inj.should_fail(FaultSite::EpochAdvance))
            .count();
        assert!((700..1350).contains(&hits), "{hits}/4096 at 25%");
        assert_eq!(inj.injected(FaultSite::EpochAdvance) as usize, hits);
        assert_eq!(inj.calls(FaultSite::EpochAdvance), 4096);
    }

    #[test]
    fn sites_are_independent() {
        let inj = FaultInjector::detached();
        inj.enable(1);
        inj.set_rate(FaultSite::BlockAlloc, RATE_DENOMINATOR);
        // Armed site fails every call; others never do.
        assert!(inj.should_fail(FaultSite::BlockAlloc));
        assert!(!inj.should_fail(FaultSite::ThreadClaim));
        assert!(!inj.should_fail(FaultSite::Relocation));
    }

    #[test]
    fn limit_caps_injections() {
        let inj = FaultInjector::detached();
        inj.enable(3);
        inj.set_all_rates(RATE_DENOMINATOR);
        inj.set_limit(Some(2));
        let hits = (0..100)
            .filter(|_| inj.should_fail(FaultSite::BlockAlloc))
            .count();
        assert_eq!(hits, 2);
        inj.set_limit(Some(1));
        assert!(inj.should_fail(FaultSite::BlockAlloc));
        assert!(!inj.should_fail(FaultSite::BlockAlloc));
    }

    #[test]
    fn stats_counter_tracks_injections() {
        let stats = Arc::new(MemoryStats::new());
        let inj = FaultInjector::new(stats.clone());
        inj.enable(5);
        inj.set_rate(FaultSite::BlockAlloc, RATE_DENOMINATOR);
        for _ in 0..7 {
            assert!(inj.should_fail(FaultSite::BlockAlloc));
        }
        assert_eq!(MemoryStats::get(&stats.faults_injected), 7);
    }

    #[test]
    fn display_lists_sites() {
        let inj = FaultInjector::detached();
        inj.enable(9);
        let s = format!("{inj}");
        assert!(s.contains("armed"));
        assert!(s.contains("block-alloc"));
        assert!(s.contains("relocation"));
    }
}
