//! Mutation-testing switchboard: re-introduces known (fixed) protocol bugs at
//! runtime so the `smc-check` model checker can prove it would have caught
//! each of them.
//!
//! The mutations only exist under `cfg(smc_check)`; in a normal build
//! [`enabled`] is a `const false`, so every call site folds away and the
//! shipped protocol is untouched. Under the checker, `smc-check`'s mutation
//! tests flip one mutation on, run the relevant scenario through the bounded
//! explorer, and assert a violation is found within the interleaving budget —
//! printing the failing schedule as a replayable seed.

/// A known protocol bug that can be re-introduced under `cfg(smc_check)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum Mutation {
    /// The PR 1 bug: relocation installs the *indirection-entry* incarnation
    /// at the destination slot instead of the *source slot* incarnation
    /// (slot-side and entry-side counters are independent).
    SlotVsEntryInc = 1 << 0,
    /// Epoch advance skips the "all pinned threads reached the current
    /// epoch" check, so memory can be reclaimed under a live reader.
    AdvanceIgnoresPinned = 1 << 1,
    /// `EpochManager::enter` publishes its epoch once without the
    /// publish-recheck loop, racing with a concurrent advance.
    NoPublishRecheck = 1 << 2,
    /// `bail_out_relocation` forgets to clear `FLAG_FROZEN` on the source
    /// slot, wedging readers that wait for the freeze to resolve.
    BailKeepsFrozen = 1 << 3,
    /// `try_move_object` skips taking the entry lock bit before copying, so
    /// two movers can both believe they won the race.
    MoveSkipsLock = 1 << 4,
    /// `cancel_relocation` (the coordinator's cancel/quiesce rollback) marks
    /// the entry settled without running the locked bail path, so the freeze
    /// never rolls back — and a racing mover can finish the move *after* the
    /// cancel claimed the object stayed put.
    CancelSkipsBailRollback = 1 << 5,
    /// The sharded allocator forgets to drain the owner's remote return
    /// queue (`BlockAllocator::drain_remote` becomes a no-op), so blocks
    /// freed by other threads are stranded: budgeted but never reusable,
    /// and a budget-capped owner OOMs despite memory being available.
    DropRemoteDrain = 1 << 6,
}

#[cfg(smc_check)]
static ACTIVE: std::sync::atomic::AtomicU32 = std::sync::atomic::AtomicU32::new(0);

/// Returns true when `m` is currently switched on. Always false (and
/// const-foldable) outside `cfg(smc_check)` builds.
#[inline(always)]
pub fn enabled(m: Mutation) -> bool {
    #[cfg(smc_check)]
    {
        ACTIVE.load(std::sync::atomic::Ordering::Relaxed) & m as u32 != 0
    }
    #[cfg(not(smc_check))]
    {
        let _ = m;
        false
    }
}

/// Switches a mutation on. No-op outside `cfg(smc_check)` builds.
pub fn set(m: Mutation) {
    #[cfg(smc_check)]
    ACTIVE.fetch_or(m as u32, std::sync::atomic::Ordering::Relaxed);
    #[cfg(not(smc_check))]
    let _ = m;
}

/// Switches all mutations off. No-op outside `cfg(smc_check)` builds.
pub fn clear_all() {
    #[cfg(smc_check)]
    ACTIVE.store(0, std::sync::atomic::Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_outside_checker_builds() {
        set(Mutation::SlotVsEntryInc);
        #[cfg(not(smc_check))]
        assert!(!enabled(Mutation::SlotVsEntryInc));
        #[cfg(smc_check)]
        assert!(enabled(Mutation::SlotVsEntryInc));
        clear_all();
        assert!(!enabled(Mutation::SlotVsEntryInc));
    }
}
