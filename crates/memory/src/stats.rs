//! Lightweight counters for observing the memory manager.
//!
//! The evaluation (Fig 6) reports allocation/removal performance, query
//! performance and *total memory size* as the reclamation threshold varies;
//! these counters make the memory-size series observable without walking
//! every block.

use std::sync::atomic::{AtomicU64, Ordering};

use smc_obs::Histogram;

/// Counters shared by one [`Runtime`](crate::runtime::Runtime).
///
/// All counters are monotonic except the `*_live` gauges. Relaxed ordering is
/// used throughout: the counters inform reporting, never correctness.
#[derive(Debug, Default)]
pub struct MemoryStats {
    /// Blocks currently allocated from the OS (gauge).
    pub blocks_live: AtomicU64,
    /// Blocks ever allocated from the OS.
    pub blocks_allocated: AtomicU64,
    /// Blocks returned to the OS.
    pub blocks_freed: AtomicU64,
    /// Objects ever allocated.
    pub objects_allocated: AtomicU64,
    /// Objects ever freed (entered limbo).
    pub objects_freed: AtomicU64,
    /// Limbo slots reclaimed for new allocations.
    pub slots_reclaimed: AtomicU64,
    /// Slot-directory entries scanned by the allocator (cost proxy, Fig 6).
    pub alloc_scan_steps: AtomicU64,
    /// Global epoch advances.
    pub epoch_advances: AtomicU64,
    /// Objects relocated by compaction.
    pub objects_relocated: AtomicU64,
    /// Relocations that readers bailed out of (§5.1 case b).
    pub relocations_bailed: AtomicU64,
    /// Relocations completed by helping readers (§5.1 case c).
    pub relocations_helped: AtomicU64,
    /// Compaction passes completed.
    pub compactions: AtomicU64,
    /// Direct pointers rewritten by post-compaction fix-up scans (§6).
    pub direct_pointers_fixed: AtomicU64,
    /// Budget-exhausted allocations that eventually succeeded after the
    /// recovery ladder (drain graveyard / emergency advance / retry).
    pub oom_recoveries: AtomicU64,
    /// Epoch advances forced by the allocation recovery ladder, as opposed
    /// to the regular lazy advances.
    pub emergency_epoch_advances: AtomicU64,
    /// Individual allocation retries taken under memory pressure.
    pub alloc_retries: AtomicU64,
    /// Fresh-block requests rejected by a per-context budget
    /// ([`ContextConfig::budget_bytes`](crate::context::ContextConfig::budget_bytes))
    /// — tenant-level pressure, distinct from the runtime-wide budget.
    pub context_budget_rejections: AtomicU64,
    /// Failures injected by the fault registry ([`crate::fault`]).
    pub faults_injected: AtomicU64,
    /// Compaction passes aborted mid-relocation (injected crash or reader
    /// timeout during the moving phase).
    pub compactions_interrupted: AtomicU64,
    /// Epoch guards taken by readers ([`Runtime::pin`](crate::runtime::Runtime::pin)
    /// and `try_pin`).
    pub pins_taken: AtomicU64,
    /// Blocks enumerated by parallel scan workers.
    pub blocks_scanned: AtomicU64,
    /// Morsels (blocks or compaction groups) claimed from a parallel scan's
    /// work-stealing cursor.
    pub morsels_dispatched: AtomicU64,
    /// Blocks evicted to a page store under budget pressure (the spill rung
    /// of the OOM ladder; see [`crate::spill`]).
    pub blocks_spilled: AtomicU64,
    /// Spilled pages brought back to residency on dereference or free.
    pub blocks_faulted_in: AtomicU64,
    /// Fault-in attempts that failed closed (page-store read error or
    /// checksum mismatch; the page stayed spilled).
    pub spill_fault_failures: AtomicU64,
    /// Block handouts served from a shard's recycled free list instead of a
    /// fresh OS allocation ([`crate::alloc`]).
    pub blocks_recycled: AtomicU64,
    /// Blocks freed by a thread other than the owning shard's thread and
    /// pushed onto the owner's remote return queue.
    pub remote_frees: AtomicU64,
    /// Remote-freed blocks drained from a return queue into the owner's
    /// local free list (on the owner's next allocation or maintenance tick).
    pub remote_frees_drained: AtomicU64,
    /// Batched slow-path refills: fresh budget reservations that handed out
    /// one block and parked the rest of the batch in the shard cache.
    pub alloc_batch_refills: AtomicU64,
    /// Shard-cached blocks returned to the OS by the allocation ladder's
    /// trim rung (budget pressure reclaiming idle caches).
    pub blocks_trimmed: AtomicU64,
    /// Variable-size cells handed out by the size-class slab allocator.
    pub slab_cells_allocated: AtomicU64,
    /// Variable-size cells returned to the size-class slab allocator.
    pub slab_cells_freed: AtomicU64,
    /// Wall time of whole compaction passes, in nanoseconds (select through
    /// publish). Report via [`Histogram::summary`] (p50/p95/p99).
    pub compaction_pass_ns: Histogram,
    /// Wall time of compaction *moving phases* only, in nanoseconds — the
    /// window during which readers may hit relocated slots and must follow
    /// forwarding state (§5.1). This is the SMC analogue of a GC pause.
    pub compaction_pause_ns: Histogram,
    /// Wall time of successful spill fault-ins, in nanoseconds (page-store
    /// read through entry repoint) — the cold-access latency tax.
    pub spill_fault_ns: Histogram,
}

impl MemoryStats {
    /// Fresh, zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bump a counter by one.
    #[inline]
    pub fn inc(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Bump a counter by `n`.
    #[inline]
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Read a counter.
    #[inline]
    pub fn get(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }

    /// Current number of live objects (allocated minus freed).
    pub fn objects_live(&self) -> u64 {
        Self::get(&self.objects_allocated).saturating_sub(Self::get(&self.objects_freed))
    }

    /// Total off-heap bytes currently held, given the block size.
    pub fn bytes_live(&self, block_size: usize) -> u64 {
        Self::get(&self.blocks_live) * block_size as u64
    }

    /// A point-in-time copy of every counter, for reporting.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            blocks_live: Self::get(&self.blocks_live),
            blocks_allocated: Self::get(&self.blocks_allocated),
            blocks_freed: Self::get(&self.blocks_freed),
            objects_allocated: Self::get(&self.objects_allocated),
            objects_freed: Self::get(&self.objects_freed),
            slots_reclaimed: Self::get(&self.slots_reclaimed),
            alloc_scan_steps: Self::get(&self.alloc_scan_steps),
            epoch_advances: Self::get(&self.epoch_advances),
            objects_relocated: Self::get(&self.objects_relocated),
            relocations_bailed: Self::get(&self.relocations_bailed),
            relocations_helped: Self::get(&self.relocations_helped),
            compactions: Self::get(&self.compactions),
            direct_pointers_fixed: Self::get(&self.direct_pointers_fixed),
            oom_recoveries: Self::get(&self.oom_recoveries),
            emergency_epoch_advances: Self::get(&self.emergency_epoch_advances),
            alloc_retries: Self::get(&self.alloc_retries),
            context_budget_rejections: Self::get(&self.context_budget_rejections),
            faults_injected: Self::get(&self.faults_injected),
            compactions_interrupted: Self::get(&self.compactions_interrupted),
            pins_taken: Self::get(&self.pins_taken),
            blocks_scanned: Self::get(&self.blocks_scanned),
            morsels_dispatched: Self::get(&self.morsels_dispatched),
            blocks_spilled: Self::get(&self.blocks_spilled),
            blocks_faulted_in: Self::get(&self.blocks_faulted_in),
            spill_fault_failures: Self::get(&self.spill_fault_failures),
            blocks_recycled: Self::get(&self.blocks_recycled),
            remote_frees: Self::get(&self.remote_frees),
            remote_frees_drained: Self::get(&self.remote_frees_drained),
            alloc_batch_refills: Self::get(&self.alloc_batch_refills),
            blocks_trimmed: Self::get(&self.blocks_trimmed),
            slab_cells_allocated: Self::get(&self.slab_cells_allocated),
            slab_cells_freed: Self::get(&self.slab_cells_freed),
        }
    }
}

/// Plain-value copy of [`MemoryStats`] (scalar counters only; the pause
/// histograms are read directly off the live struct).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Blocks currently allocated from the OS (gauge).
    pub blocks_live: u64,
    /// Blocks ever allocated from the OS.
    pub blocks_allocated: u64,
    /// Blocks returned to the OS.
    pub blocks_freed: u64,
    /// Objects ever allocated.
    pub objects_allocated: u64,
    /// Objects ever freed (entered limbo).
    pub objects_freed: u64,
    /// Limbo slots reclaimed for new allocations.
    pub slots_reclaimed: u64,
    /// Slot-directory entries scanned by the allocator (cost proxy, Fig 6).
    pub alloc_scan_steps: u64,
    /// Global epoch advances.
    pub epoch_advances: u64,
    /// Objects relocated by compaction.
    pub objects_relocated: u64,
    /// Relocations that readers bailed out of (§5.1 case b).
    pub relocations_bailed: u64,
    /// Relocations completed by helping readers (§5.1 case c).
    pub relocations_helped: u64,
    /// Compaction passes completed.
    pub compactions: u64,
    /// Direct pointers rewritten by post-compaction fix-up scans (§6).
    pub direct_pointers_fixed: u64,
    /// Budget-exhausted allocations rescued by the recovery ladder.
    pub oom_recoveries: u64,
    /// Epoch advances forced by the allocation recovery ladder.
    pub emergency_epoch_advances: u64,
    /// Individual allocation retries taken under memory pressure.
    pub alloc_retries: u64,
    /// Fresh-block requests rejected by a per-context budget.
    pub context_budget_rejections: u64,
    /// Failures injected by the fault registry ([`crate::fault`]).
    pub faults_injected: u64,
    /// Compaction passes aborted mid-relocation.
    pub compactions_interrupted: u64,
    /// Epoch guards taken by readers.
    pub pins_taken: u64,
    /// Blocks enumerated by parallel scan workers.
    pub blocks_scanned: u64,
    /// Morsels claimed from a parallel scan's work-stealing cursor.
    pub morsels_dispatched: u64,
    /// Blocks evicted to a page store under budget pressure.
    pub blocks_spilled: u64,
    /// Spilled pages brought back to residency.
    pub blocks_faulted_in: u64,
    /// Fault-in attempts that failed closed.
    pub spill_fault_failures: u64,
    /// Block handouts served from a shard's recycled free list.
    pub blocks_recycled: u64,
    /// Blocks pushed onto another shard's remote return queue.
    pub remote_frees: u64,
    /// Remote-freed blocks drained into an owner's local free list.
    pub remote_frees_drained: u64,
    /// Batched slow-path refills of a shard cache.
    pub alloc_batch_refills: u64,
    /// Shard-cached blocks returned to the OS by the trim rung.
    pub blocks_trimmed: u64,
    /// Variable-size cells handed out by the slab allocator.
    pub slab_cells_allocated: u64,
    /// Variable-size cells returned to the slab allocator.
    pub slab_cells_freed: u64,
}

impl std::fmt::Display for StatsSnapshot {
    /// One `key=value` line per counter, for stress-harness dumps and logs.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "blocks_live={}", self.blocks_live)?;
        writeln!(f, "blocks_allocated={}", self.blocks_allocated)?;
        writeln!(f, "blocks_freed={}", self.blocks_freed)?;
        writeln!(f, "objects_allocated={}", self.objects_allocated)?;
        writeln!(f, "objects_freed={}", self.objects_freed)?;
        writeln!(f, "slots_reclaimed={}", self.slots_reclaimed)?;
        writeln!(f, "alloc_scan_steps={}", self.alloc_scan_steps)?;
        writeln!(f, "epoch_advances={}", self.epoch_advances)?;
        writeln!(f, "objects_relocated={}", self.objects_relocated)?;
        writeln!(f, "relocations_bailed={}", self.relocations_bailed)?;
        writeln!(f, "relocations_helped={}", self.relocations_helped)?;
        writeln!(f, "compactions={}", self.compactions)?;
        writeln!(f, "direct_pointers_fixed={}", self.direct_pointers_fixed)?;
        writeln!(f, "oom_recoveries={}", self.oom_recoveries)?;
        writeln!(
            f,
            "emergency_epoch_advances={}",
            self.emergency_epoch_advances
        )?;
        writeln!(f, "alloc_retries={}", self.alloc_retries)?;
        writeln!(
            f,
            "context_budget_rejections={}",
            self.context_budget_rejections
        )?;
        writeln!(f, "faults_injected={}", self.faults_injected)?;
        writeln!(
            f,
            "compactions_interrupted={}",
            self.compactions_interrupted
        )?;
        writeln!(f, "pins_taken={}", self.pins_taken)?;
        writeln!(f, "blocks_scanned={}", self.blocks_scanned)?;
        writeln!(f, "morsels_dispatched={}", self.morsels_dispatched)?;
        writeln!(f, "blocks_spilled={}", self.blocks_spilled)?;
        writeln!(f, "blocks_faulted_in={}", self.blocks_faulted_in)?;
        writeln!(f, "spill_fault_failures={}", self.spill_fault_failures)?;
        writeln!(f, "blocks_recycled={}", self.blocks_recycled)?;
        writeln!(f, "remote_frees={}", self.remote_frees)?;
        writeln!(f, "remote_frees_drained={}", self.remote_frees_drained)?;
        writeln!(f, "alloc_batch_refills={}", self.alloc_batch_refills)?;
        writeln!(f, "blocks_trimmed={}", self.blocks_trimmed)?;
        writeln!(f, "slab_cells_allocated={}", self.slab_cells_allocated)?;
        write!(f, "slab_cells_freed={}", self.slab_cells_freed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = MemoryStats::new();
        MemoryStats::inc(&s.objects_allocated);
        MemoryStats::add(&s.objects_allocated, 4);
        MemoryStats::inc(&s.objects_freed);
        assert_eq!(MemoryStats::get(&s.objects_allocated), 5);
        assert_eq!(s.objects_live(), 4);
    }

    #[test]
    fn bytes_live_scales_with_block_size() {
        let s = MemoryStats::new();
        MemoryStats::add(&s.blocks_live, 3);
        assert_eq!(s.bytes_live(1 << 16), 3 << 16);
    }

    #[test]
    fn snapshot_copies_all_fields() {
        let s = MemoryStats::new();
        MemoryStats::add(&s.compactions, 2);
        MemoryStats::add(&s.direct_pointers_fixed, 7);
        MemoryStats::add(&s.oom_recoveries, 3);
        MemoryStats::add(&s.faults_injected, 4);
        let snap = s.snapshot();
        assert_eq!(snap.compactions, 2);
        assert_eq!(snap.direct_pointers_fixed, 7);
        assert_eq!(snap.oom_recoveries, 3);
        assert_eq!(snap.faults_injected, 4);
        assert_eq!(snap.objects_allocated, 0);
    }

    #[test]
    fn snapshot_display_dumps_every_counter() {
        let s = MemoryStats::new();
        MemoryStats::add(&s.alloc_retries, 5);
        MemoryStats::inc(&s.compactions_interrupted);
        MemoryStats::add(&s.pins_taken, 9);
        MemoryStats::add(&s.morsels_dispatched, 2);
        let dump = s.snapshot().to_string();
        assert!(dump.contains("alloc_retries=5"));
        assert!(dump.contains("compactions_interrupted=1"));
        assert!(dump.contains("emergency_epoch_advances=0"));
        assert!(dump.contains("pins_taken=9"));
        assert!(dump.contains("blocks_scanned=0"));
        assert!(dump.contains("morsels_dispatched=2"));
        assert!(dump.contains("context_budget_rejections=0"));
        assert!(dump.contains("blocks_spilled=0"));
        assert!(dump.contains("spill_fault_failures=0"));
        assert!(dump.contains("blocks_recycled=0"));
        assert!(dump.contains("remote_frees_drained=0"));
        assert!(dump.contains("slab_cells_allocated=0"));
        // One key=value pair per snapshot field.
        assert_eq!(dump.lines().count(), 32);
    }
}
