//! A 16-byte fixed-point decimal, standing in for C#'s `decimal`.
//!
//! The paper's Q1 result hinges on `decimal` being a 16-byte type whose
//! arithmetic is function-call-based, so that passing operands by pointer and
//! mutating in place (possible only over self-managed memory) is a large win
//! (§7, "Query processing"). This type reproduces the operand width and the
//! call-based arithmetic: a 128-bit mantissa with a fixed scale of 4 decimal
//! digits, which is exact for all TPC-H money and rate arithmetic used in
//! Q1–Q6.

use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Number of decimal fraction digits carried by every [`Decimal`].
pub const SCALE: u32 = 4;
/// `10^SCALE`: the mantissa units per integral one.
pub const ONE_MANTISSA: i128 = 10_000;

/// Fixed-point decimal: `value = mantissa / 10^4`, stored in 16 bytes.
///
/// All arithmetic is exact integer arithmetic on the mantissa, so sums are
/// associative — which is what lets parallel query plans produce
/// bit-identical answers to sequential ones.
///
/// ```
/// use smc_memory::Decimal;
///
/// let price = Decimal::parse("19.99").unwrap();
/// let discount = Decimal::parse("0.06").unwrap();
/// let charged = price * (Decimal::ONE - discount);
/// assert_eq!(charged, Decimal::parse("18.7906").unwrap());
/// assert_eq!(charged.to_string(), "18.7906");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[repr(transparent)]
pub struct Decimal(i128);

impl Decimal {
    /// Zero.
    pub const ZERO: Decimal = Decimal(0);
    /// One.
    pub const ONE: Decimal = Decimal(ONE_MANTISSA);

    /// Builds a decimal from an integer.
    #[inline]
    pub const fn from_int(v: i64) -> Decimal {
        Decimal(v as i128 * ONE_MANTISSA)
    }

    /// Builds a decimal from an integral number of hundredths (cents),
    /// the natural unit for TPC-H money columns.
    #[inline]
    pub const fn from_cents(cents: i64) -> Decimal {
        Decimal(cents as i128 * (ONE_MANTISSA / 100))
    }

    /// Builds a decimal from a raw scaled mantissa (`v / 10^4`).
    #[inline]
    pub const fn from_mantissa(v: i128) -> Decimal {
        Decimal(v)
    }

    /// The raw scaled mantissa.
    #[inline]
    pub const fn mantissa(self) -> i128 {
        self.0
    }

    /// Lossy conversion to `f64`, for reporting only.
    #[inline]
    pub fn to_f64(self) -> f64 {
        self.0 as f64 / ONE_MANTISSA as f64
    }

    /// Parses decimal text such as `"0.0600"` or `"-12.5"`.
    pub fn parse(s: &str) -> Option<Decimal> {
        let s = s.trim();
        let (neg, s) = match s.strip_prefix('-') {
            Some(rest) => (true, rest),
            None => (false, s),
        };
        let (int_part, frac_part) = match s.split_once('.') {
            Some((i, f)) => (i, f),
            None => (s, ""),
        };
        if int_part.is_empty() && frac_part.is_empty() {
            return None;
        }
        let mut mantissa: i128 = 0;
        if !int_part.is_empty() {
            mantissa = int_part.parse::<i128>().ok()?.checked_mul(ONE_MANTISSA)?;
        }
        let mut frac: i128 = 0;
        let mut weight = ONE_MANTISSA / 10;
        for c in frac_part.chars() {
            let d = c.to_digit(10)? as i128;
            frac += d * weight;
            weight /= 10;
            if weight == 0 {
                break; // extra digits beyond the scale are truncated
            }
        }
        let total = mantissa + frac;
        Some(Decimal(if neg { -total } else { total }))
    }

    /// In-place addition through a pointer — the operation the paper's
    /// "compiled unsafe C#" performs on decimals stored inside self-managed
    /// objects ("use direct pointers to primitive types in an object ... as
    /// arguments to functions that operate on them", §7).
    ///
    /// # Safety
    /// `target` must point at a valid, exclusively-writable `Decimal`.
    #[inline]
    pub unsafe fn add_in_place(target: *mut Decimal, rhs: Decimal) {
        (*target).0 += rhs.0;
    }

    /// Absolute value.
    #[inline]
    pub fn abs(self) -> Decimal {
        Decimal(self.0.abs())
    }

    /// Rounds toward zero to an integer value, returned as `i64`.
    #[inline]
    pub fn trunc_to_i64(self) -> i64 {
        (self.0 / ONE_MANTISSA) as i64
    }
}

impl Add for Decimal {
    type Output = Decimal;
    #[inline]
    fn add(self, rhs: Decimal) -> Decimal {
        Decimal(self.0 + rhs.0)
    }
}

impl Sub for Decimal {
    type Output = Decimal;
    #[inline]
    fn sub(self, rhs: Decimal) -> Decimal {
        Decimal(self.0 - rhs.0)
    }
}

impl Mul for Decimal {
    type Output = Decimal;
    #[inline]
    fn mul(self, rhs: Decimal) -> Decimal {
        Decimal(self.0 * rhs.0 / ONE_MANTISSA)
    }
}

impl Div for Decimal {
    type Output = Decimal;
    #[inline]
    fn div(self, rhs: Decimal) -> Decimal {
        Decimal(self.0 * ONE_MANTISSA / rhs.0)
    }
}

impl Neg for Decimal {
    type Output = Decimal;
    #[inline]
    fn neg(self) -> Decimal {
        Decimal(-self.0)
    }
}

impl AddAssign for Decimal {
    #[inline]
    fn add_assign(&mut self, rhs: Decimal) {
        self.0 += rhs.0;
    }
}

impl SubAssign for Decimal {
    #[inline]
    fn sub_assign(&mut self, rhs: Decimal) {
        self.0 -= rhs.0;
    }
}

impl Sum for Decimal {
    fn sum<I: Iterator<Item = Decimal>>(iter: I) -> Decimal {
        iter.fold(Decimal::ZERO, Add::add)
    }
}

impl PartialOrd for Decimal {
    #[inline]
    fn partial_cmp(&self, other: &Decimal) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Decimal {
    #[inline]
    fn cmp(&self, other: &Decimal) -> Ordering {
        self.0.cmp(&other.0)
    }
}

impl fmt::Display for Decimal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let neg = self.0 < 0;
        let abs = self.0.unsigned_abs();
        let int = abs / ONE_MANTISSA as u128;
        let frac = abs % ONE_MANTISSA as u128;
        if neg {
            write!(f, "-{int}.{frac:04}")
        } else {
            write!(f, "{int}.{frac:04}")
        }
    }
}

impl From<i64> for Decimal {
    fn from(v: i64) -> Decimal {
        Decimal::from_int(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_display() {
        assert_eq!(Decimal::from_int(3).to_string(), "3.0000");
        assert_eq!(Decimal::from_cents(1234).to_string(), "12.3400");
        assert_eq!((-Decimal::from_cents(5)).to_string(), "-0.0500");
        assert_eq!(Decimal::ZERO.to_string(), "0.0000");
    }

    #[test]
    fn parse_round_trips() {
        for s in ["0.0000", "12.3400", "-0.0500", "99999.9999"] {
            assert_eq!(Decimal::parse(s).unwrap().to_string(), s);
        }
        assert_eq!(Decimal::parse("7"), Some(Decimal::from_int(7)));
        assert_eq!(Decimal::parse(".5"), Some(Decimal::from_mantissa(5_000)));
        assert_eq!(
            Decimal::parse("1.23456789"),
            Some(Decimal::from_mantissa(12_345))
        );
        assert_eq!(Decimal::parse(""), None);
        assert_eq!(Decimal::parse("abc"), None);
    }

    #[test]
    fn arithmetic_is_exact_for_tpch_expressions() {
        // extended_price * (1 - discount) * (1 + tax), the Q1 kernel.
        let price = Decimal::parse("901.00").unwrap();
        let discount = Decimal::parse("0.06").unwrap();
        let tax = Decimal::parse("0.02").unwrap();
        let disc_price = price * (Decimal::ONE - discount);
        assert_eq!(disc_price.to_string(), "846.9400");
        let charge = disc_price * (Decimal::ONE + tax);
        assert_eq!(charge.to_string(), "863.8788");
    }

    #[test]
    fn division_and_ordering() {
        let a = Decimal::from_int(10);
        let b = Decimal::from_int(4);
        assert_eq!((a / b).to_string(), "2.5000");
        assert!(b < a);
        assert_eq!(a.trunc_to_i64(), 10);
        assert_eq!((a / b).trunc_to_i64(), 2);
    }

    #[test]
    fn sum_and_in_place_add() {
        let total: Decimal = (1..=4).map(Decimal::from_int).sum();
        assert_eq!(total, Decimal::from_int(10));
        let mut cell = Decimal::from_int(1);
        unsafe { Decimal::add_in_place(&mut cell, Decimal::from_cents(50)) };
        assert_eq!(cell.to_string(), "1.5000");
    }

    #[test]
    fn layout_is_sixteen_bytes() {
        assert_eq!(std::mem::size_of::<Decimal>(), 16);
    }
}
