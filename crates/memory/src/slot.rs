//! The slot directory: per-slot lifecycle state, packed into 32 bits (§3.2).
//!
//! Each data block carries a dense array with one [`SlotWord`] per object
//! slot. Queries iterate this array to find valid slots without touching
//! object data ("As each entry in the slot directory is only four bytes wide
//! and stored in a consecutive memory area, it is fairly cheap to iterate
//! over the slot directory to check for valid slots", §4).
//!
//! Following the paper, a slot is in one of three states:
//!
//! * [`SlotState::Free`] — never used since the block was (re)initialized;
//! * [`SlotState::Valid`] — holds live object data;
//! * [`SlotState::Limbo`] — the object was removed, but the slot cannot be
//!   reused until two global epochs have passed (§3.5).
//!
//! The remaining 30 bits of the word store the removal epoch, truncated. The
//! reclamation check only ever asks "have at least two epochs passed since
//! removal", and epochs advance by single increments, so comparing truncated
//! values with wrapping arithmetic is exact as long as fewer than 2^29 epochs
//! elapse between a removal and its reclamation attempt — the block-level
//! reclamation queue retries long before that.

use std::sync::atomic::Ordering;

use crate::sync::AtomicU32;

/// Identifier of a slot within one block (dense, starting at zero).
pub type SlotId = u32;

/// Lifecycle state of an object slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u32)]
pub enum SlotState {
    /// Never used since block initialization.
    Free = 0,
    /// Contains live object data.
    Valid = 1,
    /// Object removed; awaiting epoch-safe reclamation.
    Limbo = 2,
}

const STATE_SHIFT: u32 = 30;
const STATE_MASK: u32 = 0b11 << STATE_SHIFT;
const EPOCH_MASK: u32 = !STATE_MASK;

/// Packs a state and a (truncated) removal epoch into one word.
#[inline]
pub fn pack(state: SlotState, epoch: u64) -> u32 {
    ((state as u32) << STATE_SHIFT) | (epoch as u32 & EPOCH_MASK)
}

/// Extracts the state from a packed word.
#[inline]
pub fn state_of(word: u32) -> SlotState {
    match (word & STATE_MASK) >> STATE_SHIFT {
        0 => SlotState::Free,
        1 => SlotState::Valid,
        _ => SlotState::Limbo,
    }
}

/// Extracts the truncated removal epoch from a packed word.
#[inline]
pub fn epoch_of(word: u32) -> u32 {
    word & EPOCH_MASK
}

/// True if a `Limbo` slot removed at `removal` (truncated) may be reused at
/// global epoch `now`: at least two epochs have passed (§3.4: "Memory freed
/// in some global epoch e can safely be reclaimed in epoch e + 2").
#[inline]
pub fn reclaimable(removal_truncated: u32, now: u64) -> bool {
    let now_t = now as u32 & EPOCH_MASK;
    now_t.wrapping_sub(removal_truncated) & EPOCH_MASK >= 2
}

/// One atomic slot-directory word.
#[derive(Debug)]
#[repr(transparent)]
pub struct SlotWord(AtomicU32);

impl SlotWord {
    /// A fresh `Free` slot.
    pub const fn free() -> Self {
        SlotWord(AtomicU32::new(0))
    }

    /// Loads the packed word.
    #[inline]
    pub fn load(&self, order: Ordering) -> u32 {
        self.0.load(order)
    }

    /// Current state.
    #[inline]
    pub fn state(&self) -> SlotState {
        state_of(self.load(Ordering::Acquire))
    }

    /// Marks the slot `Valid`. Called by the (single) allocating thread.
    #[inline]
    pub fn set_valid(&self) {
        self.0.store(pack(SlotState::Valid, 0), Ordering::Release);
    }

    /// Marks the slot `Limbo`, recording the removal epoch. Removals can race
    /// with the allocator scanning the directory; a plain store is fine
    /// because only the owner of a live object may remove it, and the
    /// allocator never reuses a `Valid` slot.
    #[inline]
    pub fn set_limbo(&self, removal_epoch: u64) {
        self.0
            .store(pack(SlotState::Limbo, removal_epoch), Ordering::Release);
    }

    /// Resets the slot to `Free`. Only used when a block is wiped for reuse.
    #[inline]
    pub fn reset(&self) {
        self.0.store(0, Ordering::Release);
    }

    /// Attempts to transition a reclaimable `Limbo` slot (or a `Free` slot)
    /// to `Valid` for a new allocation. Single allocating thread per block,
    /// so a store suffices; kept as a CAS for defense in depth against
    /// protocol bugs (it is not on the enumeration fast path).
    pub fn try_claim(&self, now: u64) -> bool {
        let cur = self.0.load(Ordering::Acquire);
        let ok = match state_of(cur) {
            SlotState::Free => true,
            SlotState::Limbo => reclaimable(epoch_of(cur), now),
            SlotState::Valid => false,
        };
        if !ok {
            return false;
        }
        self.0
            .compare_exchange(
                cur,
                pack(SlotState::Valid, 0),
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_round_trips() {
        for state in [SlotState::Free, SlotState::Valid, SlotState::Limbo] {
            for epoch in [0u64, 1, 2, 1 << 20, (1 << 30) - 1, u64::MAX] {
                let w = pack(state, epoch);
                assert_eq!(state_of(w), state);
                assert_eq!(epoch_of(w), epoch as u32 & EPOCH_MASK);
            }
        }
    }

    #[test]
    fn reclaimable_requires_two_epochs() {
        assert!(!reclaimable(10, 10));
        assert!(!reclaimable(10, 11));
        assert!(reclaimable(10, 12));
        assert!(reclaimable(10, 500));
    }

    #[test]
    fn reclaimable_handles_truncation_wrap() {
        // Removal just below the 30-bit boundary, now just above it.
        let removal = (1u64 << 30) - 1;
        let w = pack(SlotState::Limbo, removal);
        assert!(!reclaimable(epoch_of(w), removal));
        assert!(!reclaimable(epoch_of(w), removal + 1));
        assert!(reclaimable(epoch_of(w), removal + 2));
        assert!(reclaimable(epoch_of(w), removal + 3));
    }

    #[test]
    fn slot_word_lifecycle() {
        let s = SlotWord::free();
        assert_eq!(s.state(), SlotState::Free);
        assert!(s.try_claim(0));
        assert_eq!(s.state(), SlotState::Valid);
        assert!(!s.try_claim(100), "valid slots are never reclaimed");
        s.set_limbo(5);
        assert_eq!(s.state(), SlotState::Limbo);
        assert!(!s.try_claim(6), "one epoch is not enough");
        assert!(s.try_claim(7));
        assert_eq!(s.state(), SlotState::Valid);
    }

    #[test]
    fn reset_returns_to_free() {
        let s = SlotWord::free();
        s.set_valid();
        s.reset();
        assert_eq!(s.state(), SlotState::Free);
    }
}
