//! Fixed-capacity inline strings for tabular objects.
//!
//! The paper requires that variable-sized data is never stored in-place in a
//! memory block (§3.1) and that strings referenced by tabular classes share
//! the lifetime of their object (§2). We satisfy both at once by inlining
//! strings at a per-column maximum width: the bytes live inside the object's
//! slot, die with the object, and keep every slot the same size.
//!
//! TPC-H column widths are all statically known, so this loses nothing for
//! the paper's workload; the type documents truncation behaviour for other
//! uses.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A UTF-8 string stored inline in at most `N` bytes plus a 2-byte length.
///
/// ```
/// use smc_memory::InlineStr;
///
/// let name: InlineStr<16> = "Adam".into();
/// assert_eq!(name.as_str(), "Adam");
/// // Oversized input truncates at the last UTF-8 boundary that fits.
/// let clipped = InlineStr::<3>::new("héllo");
/// assert_eq!(clipped.as_str(), "hé");
/// ```
#[derive(Clone, Copy)]
pub struct InlineStr<const N: usize> {
    len: u16,
    bytes: [u8; N],
}

impl<const N: usize> InlineStr<N> {
    /// The empty string.
    pub const fn empty() -> Self {
        InlineStr {
            len: 0,
            bytes: [0; N],
        }
    }

    /// Builds from `s`, truncating at the last UTF-8 boundary that fits.
    pub fn new(s: &str) -> Self {
        let mut end = s.len().min(N);
        while end > 0 && !s.is_char_boundary(end) {
            end -= 1;
        }
        let mut bytes = [0u8; N];
        bytes[..end].copy_from_slice(&s.as_bytes()[..end]);
        InlineStr {
            len: end as u16,
            bytes,
        }
    }

    /// View as `&str`.
    #[inline]
    pub fn as_str(&self) -> &str {
        // SAFETY: constructors only store prefixes of valid UTF-8 cut at
        // char boundaries.
        unsafe { std::str::from_utf8_unchecked(&self.bytes[..self.len as usize]) }
    }

    /// Length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True if empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Capacity in bytes.
    #[inline]
    pub const fn capacity() -> usize {
        N
    }

    /// Whether `s` would fit without truncation.
    pub fn fits(s: &str) -> bool {
        s.len() <= N
    }
}

impl<const N: usize> Default for InlineStr<N> {
    fn default() -> Self {
        Self::empty()
    }
}

impl<const N: usize> fmt::Debug for InlineStr<N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_str(), f)
    }
}

impl<const N: usize> fmt::Display for InlineStr<N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl<const N: usize> PartialEq for InlineStr<N> {
    fn eq(&self, other: &Self) -> bool {
        self.as_str() == other.as_str()
    }
}

impl<const N: usize> Eq for InlineStr<N> {}

impl<const N: usize> PartialEq<str> for InlineStr<N> {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl<const N: usize> PartialEq<&str> for InlineStr<N> {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl<const N: usize> PartialOrd for InlineStr<N> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<const N: usize> Ord for InlineStr<N> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_str().cmp(other.as_str())
    }
}

impl<const N: usize> Hash for InlineStr<N> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_str().hash(state)
    }
}

impl<const N: usize> Borrow<str> for InlineStr<N> {
    fn borrow(&self) -> &str {
        self.as_str()
    }
}

impl<const N: usize> From<&str> for InlineStr<N> {
    fn from(s: &str) -> Self {
        InlineStr::new(s)
    }
}

impl<const N: usize> AsRef<str> for InlineStr<N> {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_round_trip() {
        let s: InlineStr<16> = InlineStr::new("hello");
        assert_eq!(s.as_str(), "hello");
        assert_eq!(s.len(), 5);
        assert!(!s.is_empty());
        assert_eq!(s, "hello");
        assert_eq!(InlineStr::<16>::capacity(), 16);
    }

    #[test]
    fn empty_and_default() {
        let e = InlineStr::<8>::empty();
        assert!(e.is_empty());
        assert_eq!(e, InlineStr::<8>::default());
        assert_eq!(e.as_str(), "");
    }

    #[test]
    fn truncates_at_capacity() {
        let s: InlineStr<4> = InlineStr::new("abcdef");
        assert_eq!(s.as_str(), "abcd");
        assert!(!InlineStr::<4>::fits("abcdef"));
        assert!(InlineStr::<4>::fits("abcd"));
    }

    #[test]
    fn truncates_at_char_boundary() {
        // 'é' is two bytes; cutting mid-char must back off.
        let s: InlineStr<3> = InlineStr::new("aéb");
        assert_eq!(s.as_str(), "aé");
        let s2: InlineStr<2> = InlineStr::new("éé");
        assert_eq!(s2.as_str(), "é");
    }

    #[test]
    fn ordering_matches_str() {
        let a: InlineStr<8> = InlineStr::new("apple");
        let b: InlineStr<8> = InlineStr::new("banana");
        assert!(a < b);
        assert_eq!(a.cmp(&a), std::cmp::Ordering::Equal);
    }

    #[test]
    fn usable_as_hashmap_key_via_borrow_str() {
        let mut m = std::collections::HashMap::new();
        m.insert(InlineStr::<8>::new("key"), 1);
        assert_eq!(m.get("key"), Some(&1));
    }

    #[test]
    fn never_panics_and_preserves_prefix() {
        // Seeded sweep over strings of 0..=40 chars drawn from a pool that
        // mixes 1-, 2-, 3-, and 4-byte UTF-8 sequences, so truncation lands
        // on every kind of char boundary.
        const POOL: &[char] = &[
            'a',
            'Z',
            '0',
            ' ',
            'é',
            'ß',
            '\u{3042}',
            '\u{4e2d}',
            '🦀',
            '\u{10348}',
        ];
        let mut rng = smc_util::Pcg32::seed_from_u64(0xD1CE);
        for _ in 0..2000 {
            let n = rng.gen_range(0..=40usize);
            let s: String = (0..n).map(|_| POOL[rng.gen_range(0..POOL.len())]).collect();
            let inl: InlineStr<25> = InlineStr::new(&s);
            assert!(inl.len() <= 25);
            assert!(s.starts_with(inl.as_str()), "{s:?} vs {:?}", inl.as_str());
            if s.len() <= 25 {
                assert_eq!(inl.as_str(), s.as_str());
            }
        }
    }
}
