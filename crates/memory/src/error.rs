//! Error types for the manual memory manager.

use std::fmt;

/// The Rust rendering of the paper's `NullReferenceException`: a reference
/// whose target was removed from its host collection was dereferenced.
///
/// Per §2, all references to a self-managed object implicitly become null
/// after the object is removed from its collection; dereferencing them fails
/// with this error (APIs that prefer `Option` return `None` instead).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NullReference;

impl fmt::Display for NullReference {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("null reference: object was removed from its collection")
    }
}

impl std::error::Error for NullReference {}

/// Errors surfaced by memory-manager operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemError {
    /// Dereference of a removed (or never-valid) object.
    Null(NullReference),
    /// The requested object type does not fit a memory block
    /// (object stride plus per-slot metadata exceeds the block payload).
    ObjectTooLarge {
        /// Size of the object type in bytes.
        size: usize,
        /// Largest supported size for the current block geometry.
        max: usize,
    },
    /// The process ran out of memory while allocating a block.
    OutOfMemory,
    /// Thread registry is full: more concurrent threads touched the runtime
    /// than `epoch::MAX_THREADS`.
    TooManyThreads,
    /// A spilled page could not be brought back to residency: the page store
    /// failed the read, the page failed its checksum, or the operation was
    /// attempted from inside a spill-page scan. The page stays spilled and
    /// the heap stays intact — spill I/O always fails closed.
    SpillFault,
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::Null(e) => e.fmt(f),
            MemError::ObjectTooLarge { size, max } => {
                write!(
                    f,
                    "object of {size} bytes exceeds block payload of {max} bytes"
                )
            }
            MemError::OutOfMemory => f.write_str("out of memory allocating a block"),
            MemError::TooManyThreads => f.write_str("epoch thread registry is full"),
            MemError::SpillFault => f.write_str("spilled page could not be faulted in"),
        }
    }
}

impl std::error::Error for MemError {}

impl From<NullReference> for MemError {
    fn from(e: NullReference) -> Self {
        MemError::Null(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert!(NullReference.to_string().contains("null reference"));
        assert!(MemError::OutOfMemory.to_string().contains("out of memory"));
        assert!(MemError::ObjectTooLarge { size: 10, max: 5 }
            .to_string()
            .contains("10"));
        assert!(MemError::TooManyThreads.to_string().contains("registry"));
        assert!(MemError::SpillFault.to_string().contains("spilled"));
    }

    #[test]
    fn null_reference_converts() {
        let e: MemError = NullReference.into();
        assert_eq!(e, MemError::Null(NullReference));
    }
}
