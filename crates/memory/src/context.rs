//! Memory contexts (§3.3) — per-collection block groups with allocation,
//! epoch-safe reclamation (§3.5), and the concurrent compaction driver (§5).
//!
//! A [`MemoryContext`] owns the memory blocks of one collection. All objects
//! allocated through a context land in blocks private to it, which gives the
//! collection control over object placement: enumeration order equals block
//! order equals (roughly) insertion order, the spatial-locality property the
//! paper's query performance rests on (§3.3, §4).
//!
//! ## Allocation (§3.5)
//!
//! Allocations are performed from *thread-local blocks*: each thread owns at
//! most one block per context and is the only thread claiming slots in it
//! (removals from the same block may still happen concurrently). The
//! allocator scans the slot directory from the previous allocation's cursor
//! until it finds a `Free` slot or a `Limbo` slot whose removal epoch lies
//! at least two epochs in the past. Exhausted blocks are abandoned; new
//! thread blocks come from the *reclamation queue* — blocks whose limbo
//! fraction crossed the configured threshold — or, if the queue has nothing
//! ready, from the OS. When queued blocks are not yet reclaimable the
//! allocator lazily attempts to advance the global epoch, which is where
//! epoch progress happens in this system (§3.4: "we do not increment the
//! global epoch ... when exiting critical sections, but in the memory
//! manager's allocation function").
//!
//! ## Compaction (§5)
//!
//! [`MemoryContext::compact`] implements the epoch-extended compaction
//! protocol: a freezing epoch that schedules relocations, a relocation epoch
//! with waiting and moving phases, reader cooperation via bail-out/help (in
//! [`crate::reloc`]), compaction groups whose sources are always emptied
//! into fresh blocks (§5.2), and query counters that let in-flight
//! enumerations pin a group's pre-relocation state.

use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::sync::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Mutex, RwLock};

use crate::block::{BlockLayout, BlockRef};
use crate::epoch::Guard;
use crate::error::MemError;
use crate::fault::FaultSite;
use crate::incarnation::{IncWord, FLAG_FROZEN, FLAG_LOCK, FLAG_MASK};
use crate::indirection::EntryRef;
use crate::reloc::{
    cancel_relocation, try_move_object, MoveOutcome, RelocEntry, RelocStatus, RelocationList,
};
use crate::runtime::Runtime;
use crate::slot::{self, SlotId, SlotState};
use crate::spill::{
    self, PageStore, SpillScanGuard, SpillState, SpillStub, SpilledPage, SPILL_TAG,
};
use crate::stats::MemoryStats;

/// Tunables of a context.
#[derive(Debug, Clone, Copy)]
pub struct ContextConfig {
    /// Fraction of limbo slots above which a block joins the reclamation
    /// queue. The paper sweeps this in Fig 6 and settles on 5 %.
    pub reclamation_threshold: f64,
    /// Occupancy below which a block participates in compaction (§5.2's
    /// example uses 30 %).
    pub compaction_occupancy: f64,
    /// How long the compaction thread waits for epoch transitions or query
    /// counters before bailing out (§5.2: "bails out of compacting a certain
    /// group after waiting for a predefined amount of time").
    pub compaction_patience: Duration,
    /// Per-context footprint budget in bytes, `None` for unlimited. When the
    /// next fresh block would push [`MemoryContext::bytes`] past this cap,
    /// allocation falls back to reclaimable blocks only and surfaces
    /// [`MemError::OutOfMemory`] once those run dry. This is how the serve
    /// layer bounds one tenant without starving its neighbours: the
    /// runtime-wide budget stays shared, the context budget is the tenant's
    /// slice. Compaction destination blocks are exempt — compaction is the
    /// mechanism that gets an over-budget context *back under* its cap.
    pub budget_bytes: Option<u64>,
}

impl Default for ContextConfig {
    fn default() -> Self {
        ContextConfig {
            reclamation_threshold: 0.05,
            compaction_occupancy: 0.30,
            compaction_patience: Duration::from_millis(100),
            budget_bytes: None,
        }
    }
}

/// Row-wise or columnar object store (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayoutMode {
    /// Objects stored contiguously per slot.
    Rows,
    /// The object store is a bundle of parallel column arrays; the first
    /// `4 * capacity` bytes hold the per-slot incarnation words and the
    /// collection owns the remaining column geometry.
    Columnar,
}

/// A claimed slot, ready to carry a new object.
#[derive(Debug, Clone, Copy)]
pub struct Allocation {
    /// The object's indirection entry (already pointing at the slot).
    pub entry: EntryRef,
    /// Incarnation counter of the entry, to embed in references.
    pub entry_inc: u32,
    /// Incarnation counter of the slot, to embed in direct pointers.
    pub slot_inc: u32,
    /// Host block.
    pub block: BlockRef,
    /// Slot within the block.
    pub slot: SlotId,
}

/// One §5.2 compaction group: sources being emptied into a fresh block.
#[derive(Debug)]
pub struct CompactionGroup {
    /// Blocks whose live objects are being moved out.
    pub sources: Vec<BlockRef>,
    /// The block receiving them.
    pub dest: BlockRef,
    /// Pre-relocation read pins held by queries (§5.2's query counter).
    pub query_counter: AtomicU32,
    /// Set (before the final query-counter check) when relocation of this
    /// group begins; queries that observe it must read the post-state.
    pub started: AtomicBool,
    /// Set once the compaction pass that created this group has finished
    /// (successfully or not) and the group has been disbanded.
    pub settled: AtomicBool,
}

impl CompactionGroup {
    /// Attempts to pin the group's pre-relocation state for reading.
    /// Returns false if relocation of this group already started — the
    /// caller must use the post-state (help-then-read-dest) path instead
    /// (§5.2). The counter-increment-then-flag-check here pairs with the
    /// flag-set-then-counter-wait in [`MemoryContext::compact`]'s mover:
    /// either the mover sees our pin and waits, or we see its start flag.
    pub fn try_pin_pre_state(&self, _runtime: &Runtime) -> bool {
        self.query_counter.fetch_add(1, Ordering::SeqCst);
        if self.started.load(Ordering::SeqCst) {
            self.query_counter.fetch_sub(1, Ordering::SeqCst);
            false
        } else {
            true
        }
    }

    /// True once relocation of this group has begun (or finished).
    pub fn relocation_started(&self) -> bool {
        self.started.load(Ordering::SeqCst)
    }

    /// Waits until no query holds the group's pre-relocation state pinned.
    /// Required before *any* thread — the compaction thread or a helping
    /// query — relocates objects of this group: the §5.2 counter "prevents
    /// other threads from compacting the group until the query decremented
    /// the counter again", and helping is compacting.
    pub fn wait_pre_readers(&self) {
        while self.query_counter.load(Ordering::SeqCst) != 0 {
            crate::sync::thread_yield();
        }
    }

    /// Releases a pre-state pin.
    pub fn unpin_pre_state(&self) {
        self.query_counter.fetch_sub(1, Ordering::SeqCst);
    }

    /// Helps relocate every pending object of the group (§5.1 case c /
    /// §5.2: "the query first helps performing the relocation of the
    /// compaction group and then uses the compacted memory block").
    ///
    /// Blocks until pre-state readers have drained: moving objects while a
    /// query reads the group's pre-relocation state would make that query
    /// miss them.
    pub fn help_relocate(&self, stats: &MemoryStats) {
        self.wait_pre_readers();
        for &src in &self.sources {
            let list = src.header().reloc_list.load(Ordering::Acquire);
            if list.is_null() {
                continue;
            }
            let list = unsafe { &*list };
            for entry in &list.entries {
                if entry.status() == RelocStatus::Pending {
                    let outcome = unsafe { try_move_object(src, entry) };
                    if outcome == MoveOutcome::MovedByUs {
                        MemoryStats::inc(&stats.objects_relocated);
                        MemoryStats::inc(&stats.relocations_helped);
                    }
                }
            }
        }
    }
}

/// Result summary of one compaction pass.
#[derive(Debug, Default)]
pub struct CompactionReport {
    /// Groups formed.
    pub groups: usize,
    /// Objects moved to new blocks.
    pub moved: usize,
    /// Relocations bailed out by readers (will be retried by a later pass).
    pub bailed: usize,
    /// Source blocks fully emptied and retired, by base address. Used by the
    /// direct-pointer fix-up scan (§6) to identify stale pointers cheaply.
    pub retired_bases: Vec<usize>,
    /// The pass was aborted (e.g. a reader held a critical section longer
    /// than the configured patience); the context is unchanged.
    pub aborted: bool,
    /// The moving phase died mid-relocation (injected
    /// [`FaultSite::Relocation`] crash). Unmoved objects were bailed out;
    /// the context is valid and a later pass will retry them.
    pub interrupted: bool,
    /// The pass was cancelled mid-flight via
    /// [`request_compaction_cancel`](MemoryContext::request_compaction_cancel):
    /// every still-pending relocation was rolled back through the §5.1 bail
    /// path, so the context is valid and a later pass can retry.
    pub cancelled: bool,
}

/// Atomic view of which blocks and groups an enumeration must visit.
#[derive(Debug, Default, Clone)]
pub struct Membership {
    /// Regular blocks, in collection order.
    pub blocks: Vec<BlockRef>,
    /// In-flight compaction groups.
    pub groups: Vec<Arc<CompactionGroup>>,
}

/// One unit of parallel scan work: a single block, or a whole in-flight
/// compaction group.
///
/// A group is deliberately one morsel, not one morsel per member block: the
/// §5.2 protocol reads a group either entirely in its pre-relocation state
/// (sources only, query counter held) or entirely post-relocation (dest plus
/// bailed-out sources), so exactly one worker must make that choice for the
/// whole group.
#[derive(Debug, Clone)]
pub enum Morsel {
    /// A regular membership block.
    Block(BlockRef),
    /// An in-flight compaction group, visited via the §5.2 protocol.
    Group(Arc<CompactionGroup>),
}

/// A per-collection group of typed memory blocks.
#[derive(Debug)]
pub struct MemoryContext {
    runtime: Arc<Runtime>,
    id: u64,
    type_id: u64,
    layout: BlockLayout,
    mode: LayoutMode,
    /// Bytes copied when relocating one object (row layouts).
    obj_size: u32,
    config: ContextConfig,
    membership: RwLock<Membership>,
    /// Current allocation block per thread slot (block header address).
    thread_blocks: Box<[AtomicUsize]>,
    /// Blocks with enough limbo slots to be worth reusing, with the epoch at
    /// which they become reclaimable.
    reclaim_queue: Mutex<VecDeque<(BlockRef, u64)>>,
    /// Fully-emptied compaction sources awaiting direct-pointer fix-up and
    /// burial (released by [`release_retired`](Self::release_retired)).
    pending_retired: Mutex<Vec<BlockRef>>,
    /// Set by [`request_compaction_cancel`](Self::request_compaction_cancel);
    /// the in-flight pass checks it between relocations and winds down via
    /// the bail path. Cleared when the pass finishes.
    cancel_requested: AtomicBool,
    /// Spill state ([`crate::spill`]): the page store, the spilled-page
    /// list, and a weak self-handle for stubs. One mutex covers spill,
    /// fault-in and spilled-page scans — the holder is the only possible
    /// writer of a tagged entry payload.
    spill: Mutex<SpillState>,
    /// Blocks currently spilled to the page store (gauge).
    spilled_blocks_gauge: AtomicU64,
    /// Objects living in spilled pages (gauge); lets
    /// [`live_objects`](Self::live_objects) answer without the spill mutex.
    spilled_objects_gauge: AtomicU64,
}

impl MemoryContext {
    /// Creates a row-layout context for objects of the given size/alignment.
    pub fn new_rows(
        runtime: Arc<Runtime>,
        obj_size: usize,
        obj_align: usize,
        type_id: u64,
        config: ContextConfig,
    ) -> Result<MemoryContext, MemError> {
        let layout = BlockLayout::rows(obj_size, obj_align)?;
        Ok(Self::with_layout(
            runtime,
            layout,
            LayoutMode::Rows,
            obj_size as u32,
            type_id,
            config,
        ))
    }

    /// Creates a columnar context; `store_bytes_per_slot` must include the
    /// 4-byte incarnation column.
    pub fn new_columnar(
        runtime: Arc<Runtime>,
        store_bytes_per_slot: usize,
        type_id: u64,
        config: ContextConfig,
    ) -> Result<MemoryContext, MemError> {
        let layout = BlockLayout::columnar(store_bytes_per_slot, 16)?;
        Ok(Self::with_layout(
            runtime,
            layout,
            LayoutMode::Columnar,
            0,
            type_id,
            config,
        ))
    }

    fn with_layout(
        runtime: Arc<Runtime>,
        layout: BlockLayout,
        mode: LayoutMode,
        obj_size: u32,
        type_id: u64,
        config: ContextConfig,
    ) -> MemoryContext {
        let id = runtime.next_context_id();
        let thread_blocks = (0..crate::epoch::MAX_THREADS)
            .map(|_| AtomicUsize::new(0))
            .collect::<Vec<_>>();
        MemoryContext {
            runtime,
            id,
            type_id,
            layout,
            mode,
            obj_size,
            config,
            membership: RwLock::new(Membership::default()),
            thread_blocks: thread_blocks.into_boxed_slice(),
            reclaim_queue: Mutex::new(VecDeque::new()),
            pending_retired: Mutex::new(Vec::new()),
            cancel_requested: AtomicBool::new(false),
            spill: Mutex::new(SpillState::default()),
            spilled_blocks_gauge: AtomicU64::new(0),
            spilled_objects_gauge: AtomicU64::new(0),
        }
    }

    /// The owning runtime.
    pub fn runtime(&self) -> &Arc<Runtime> {
        &self.runtime
    }

    /// This context's identifier.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Identity of the object type hosted by this context's blocks.
    pub fn type_id(&self) -> u64 {
        self.type_id
    }

    /// Block geometry used by this context.
    pub fn layout(&self) -> &BlockLayout {
        &self.layout
    }

    /// Row or columnar store.
    pub fn mode(&self) -> LayoutMode {
        self.mode
    }

    /// The configuration in effect.
    pub fn config(&self) -> &ContextConfig {
        &self.config
    }

    /// Asks an in-flight compaction pass to stop as soon as possible.
    ///
    /// The moving phase checks the flag between relocations; on observing it
    /// the pass abandons further moves and its epilogue rolls every
    /// still-pending relocation back through the §5.1 bail path, leaving the
    /// context bit-exact valid (the pass reports `cancelled`). Safe to call
    /// from any thread, including when no pass is running — the flag is
    /// consumed and cleared by the next pass to finish.
    pub fn request_compaction_cancel(&self) {
        self.cancel_requested.store(true, Ordering::Release);
    }

    /// Whether a cancel has been requested and not yet consumed by a pass.
    pub fn compaction_cancel_requested(&self) -> bool {
        self.cancel_requested.load(Ordering::Acquire)
    }

    /// Atomic snapshot of the blocks and groups an enumeration must visit.
    pub fn membership_snapshot(&self) -> Membership {
        self.membership.read().clone()
    }

    /// The membership snapshot flattened into parallel scan work units.
    ///
    /// The caller must pin an epoch guard *before* taking the snapshot and
    /// hold it until the scan completes: while any reader sits in epoch `e`
    /// the global epoch can reach at most `e + 1`, and a compaction announced
    /// after the snapshot needs the global epoch to reach its relocation
    /// epoch plus one (`≥ e + 2`) before it may move objects — so no block in
    /// the snapshot can have objects relocated out from under the scan.
    pub fn morsels(&self) -> Vec<Morsel> {
        let m = self.membership.read();
        let mut out = Vec::with_capacity(m.blocks.len() + m.groups.len());
        out.extend(m.blocks.iter().copied().map(Morsel::Block));
        out.extend(m.groups.iter().cloned().map(Morsel::Group));
        out
    }

    /// Like [`morsels`](Self::morsels), but first visits every spilled
    /// record (same callback contract and atomicity as
    /// [`scan_spilled_then_snapshot`](Self::scan_spilled_then_snapshot)):
    /// the morsel list comes from the membership snapshot taken under the
    /// spill mutex, so a page faulted in mid-scan is never seen both as a
    /// page and as a block, or missed entirely. This is the primitive
    /// parallel scans use to keep larger-than-memory contexts complete.
    pub fn morsels_spilled_then_snapshot(
        &self,
        visit: &mut dyn FnMut(usize, *const u8),
    ) -> Result<Vec<Morsel>, MemError> {
        let m = self.scan_spilled_then_snapshot(visit)?;
        let mut out = Vec::with_capacity(m.blocks.len() + m.groups.len());
        out.extend(m.blocks.iter().copied().map(Morsel::Block));
        out.extend(m.groups.iter().cloned().map(Morsel::Group));
        Ok(out)
    }

    /// Number of blocks currently owned (regular + group sources + dests).
    pub fn block_count(&self) -> usize {
        let m = self.membership.read();
        m.blocks.len() + m.groups.iter().map(|g| g.sources.len() + 1).sum::<usize>()
    }

    /// Total off-heap bytes owned by this context (excludes retired blocks
    /// already handed to the graveyard).
    pub fn bytes(&self) -> usize {
        self.block_count() * crate::block::BLOCK_SIZE
    }

    /// The slot-header incarnation word of `slot` in `block`, respecting the
    /// layout mode (§4.1: columnar stores keep the incarnation column at the
    /// start of the object store).
    #[inline]
    pub fn slot_inc<'b>(&self, block: &'b BlockRef, slot: SlotId) -> &'b IncWord {
        match self.mode {
            LayoutMode::Rows => block.slot_inc(slot),
            LayoutMode::Columnar => unsafe {
                &*block.store_base().add(slot as usize * 4).cast::<IncWord>()
            },
        }
    }

    /// The payload stored in indirection entries for `slot` of `block`: the
    /// object data address for rows, the incarnation-cell address for
    /// columnar stores (equivalent to the paper's packed block/slot locator,
    /// recoverable by the same block-mask arithmetic).
    #[inline]
    pub fn payload_of(&self, block: &BlockRef, slot: SlotId) -> usize {
        match self.mode {
            LayoutMode::Rows => block.obj_ptr(slot) as usize,
            LayoutMode::Columnar => unsafe { block.store_base().add(slot as usize * 4) as usize },
        }
    }

    /// Maps an entry payload back to `(block, slot)`.
    ///
    /// # Safety
    /// `payload` must have been produced by `payload_of` on a block that is
    /// still allocated (epoch protection guarantees this for checked refs).
    #[inline]
    pub unsafe fn locate(&self, payload: usize) -> (BlockRef, SlotId) {
        let block = BlockRef::from_interior_ptr(payload as *const u8);
        let slot = match self.mode {
            LayoutMode::Rows => block.slot_of_obj_ptr(payload as *const u8),
            LayoutMode::Columnar => ((payload - block.store_base() as usize) / 4) as SlotId,
        };
        (block, slot)
    }

    // ------------------------------------------------------------------
    // Allocation and free (§3.5)
    // ------------------------------------------------------------------

    /// Allocates a slot and wires its indirection entry. `init` runs after
    /// the slot is claimed but *before* it becomes visible to enumerations,
    /// so it must fully initialize the object's bytes.
    pub fn alloc_with(&self, init: impl FnOnce(&BlockRef, SlotId)) -> Result<Allocation, MemError> {
        let tid = self.runtime.epochs.thread_index()?;
        let stats = &self.runtime.stats;
        loop {
            let block = match self.current_thread_block(tid) {
                Some(b) => b,
                None => self.acquire_block(tid)?,
            };
            let header = block.header();
            let now = self.runtime.global_epoch();
            let mut cursor = header.alloc_cursor.load(Ordering::Relaxed);
            let mut scanned = 0u64;
            let claimed = loop {
                if cursor >= header.capacity {
                    break None;
                }
                scanned += 1;
                let word = block.slot_word(cursor).load(Ordering::Acquire);
                match slot::state_of(word) {
                    SlotState::Free => break Some(cursor),
                    SlotState::Limbo if slot::reclaimable(slot::epoch_of(word), now) => {
                        header.limbo_count.fetch_sub(1, Ordering::Relaxed);
                        MemoryStats::inc(&stats.slots_reclaimed);
                        break Some(cursor);
                    }
                    _ => cursor += 1,
                }
            };
            MemoryStats::add(&stats.alloc_scan_steps, scanned);
            match claimed {
                Some(slot_id) => {
                    header.alloc_cursor.store(slot_id + 1, Ordering::Relaxed);
                    return Ok(self.wire_slot(tid, block, slot_id, init));
                }
                None => {
                    // Block exhausted: abandon it and fetch another.
                    header
                        .alloc_cursor
                        .store(header.capacity, Ordering::Relaxed);
                    self.abandon_thread_block(tid, block);
                }
            }
        }
    }

    fn wire_slot(
        &self,
        tid: usize,
        block: BlockRef,
        slot_id: SlotId,
        init: impl FnOnce(&BlockRef, SlotId),
    ) -> Allocation {
        let stats = &self.runtime.stats;
        let entry = self.runtime.indirection.allocate(tid);
        let slot_inc = self.slot_inc(&block, slot_id).incarnation();
        let entry_inc = entry.get().inc().incarnation();
        // Initialize object bytes before publishing the slot as Valid.
        init(&block, slot_id);
        block
            .back_ptr(slot_id)
            .store(entry.addr(), Ordering::Release);
        entry
            .get()
            .store_payload(self.payload_of(&block, slot_id), Ordering::Release);
        block.slot_word(slot_id).set_valid();
        block.header().valid_count.fetch_add(1, Ordering::Relaxed);
        MemoryStats::inc(&stats.objects_allocated);
        Allocation {
            entry,
            entry_inc,
            slot_inc,
            block,
            slot: slot_id,
        }
    }

    fn current_thread_block(&self, tid: usize) -> Option<BlockRef> {
        let addr = self.thread_blocks[tid].load(Ordering::Acquire);
        if addr == 0 {
            None
        } else {
            Some(unsafe { BlockRef::from_interior_ptr(addr as *const u8) })
        }
    }

    fn abandon_thread_block(&self, tid: usize, block: BlockRef) {
        self.thread_blocks[tid].store(0, Ordering::Release);
        block.header().active_owner.store(0, Ordering::Release);
        // A full block may already deserve a spot in the reclamation queue
        // (its removals were deferred while we owned it).
        self.maybe_enqueue_for_reclamation(block);
    }

    fn adopt_thread_block(&self, tid: usize, block: BlockRef) {
        block
            .header()
            .active_owner
            .store(tid as u32 + 1, Ordering::Release);
        self.thread_blocks[tid].store(block.base() as usize, Ordering::Release);
    }

    fn acquire_block(&self, tid: usize) -> Result<BlockRef, MemError> {
        self.runtime.drain_graveyard();
        self.runtime
            .indirection
            .drain_deferred(self.runtime.global_epoch());
        // Prefer a reclaimable block from the queue (§3.5).
        if let Some(block) = self.pop_reclaimable(tid) {
            return Ok(block);
        }
        // Blocks may be waiting on epochs: lazily advance (§3.5), unless a
        // compaction holds the advance reservation, and look again.
        if !self.reclaim_queue.lock().is_empty() && self.runtime.next_relocation_epoch() == 0 {
            if self.runtime.epochs.try_advance().is_some() {
                MemoryStats::inc(&self.runtime.stats.epoch_advances);
            }
            if let Some(block) = self.pop_reclaimable(tid) {
                return Ok(block);
            }
        }
        // Per-context budget gate: reclaimable blocks recycled above do not
        // grow the footprint, but a fresh block would. The spill rung runs
        // first — evicting one cold block to the page store frees exactly
        // the footprint the fresh block needs, turning budget pressure into
        // a larger-than-memory context instead of an error. Contexts without
        // a page store keep the PR 1 behavior: a clean error here — never a
        // crash, and never a runtime-wide stall.
        if let Some(budget) = self.config.budget_bytes {
            if (self.bytes() + crate::block::BLOCK_SIZE) as u64 > budget && !self.try_spill_one() {
                MemoryStats::inc(&self.runtime.stats.context_budget_rejections);
                return self.pop_reclaimable(tid).ok_or(MemError::OutOfMemory);
            }
        }
        // Nothing reclaimable: a fresh block from the OS, subject to the
        // runtime's budget, failpoints and recovery ladder.
        match self
            .runtime
            .allocate_block(&self.layout, self.type_id, self.id)
        {
            Ok(block) => {
                self.adopt_thread_block(tid, block);
                self.membership.write().blocks.push(block);
                Ok(block)
            }
            Err(e) => {
                // The recovery ladder advanced epochs while the budget stayed
                // exhausted — queued limbo blocks may have matured during the
                // retries, and spilling a resident block may free runtime
                // budget once its burial ripens. One last sweep before
                // surfacing the error.
                if self.try_spill_one() {
                    if let Ok(block) =
                        self.runtime
                            .allocate_block(&self.layout, self.type_id, self.id)
                    {
                        self.adopt_thread_block(tid, block);
                        self.membership.write().blocks.push(block);
                        return Ok(block);
                    }
                }
                self.pop_reclaimable(tid).ok_or(e)
            }
        }
    }

    /// Pops the reclaim queue's front block if its epoch has matured, resets
    /// its allocation cursor, and adopts it for `tid`.
    ///
    /// Adoption happens *while holding the queue lock*: compaction's
    /// candidate selection takes the same lock and requires
    /// `active_owner == 0`, so releasing the lock before claiming ownership
    /// would let a concurrent pass freeze — and later retire and free — the
    /// block this thread is about to allocate from.
    fn pop_reclaimable(&self, tid: usize) -> Option<BlockRef> {
        let mut q = self.reclaim_queue.lock();
        let &(block, ready_at) = q.front()?;
        if ready_at > self.runtime.global_epoch() {
            return None;
        }
        q.pop_front();
        debug_assert_eq!(
            block.header().compacting.load(Ordering::Acquire),
            0,
            "a queued block cannot be mid-compaction"
        );
        block.header().in_reclaim_queue.store(0, Ordering::Release);
        block.header().alloc_cursor.store(0, Ordering::Relaxed);
        self.adopt_thread_block(tid, block);
        drop(q);
        Some(block)
    }

    fn maybe_enqueue_for_reclamation(&self, block: BlockRef) {
        let header = block.header();
        if header.active_owner.load(Ordering::Acquire) != 0 {
            return; // the owning thread will enqueue on abandon
        }
        if header.compacting.load(Ordering::Acquire) != 0 {
            return; // compaction will empty it anyway
        }
        let limbo = header.limbo_count.load(Ordering::Relaxed) as f64;
        if limbo / header.capacity as f64 <= self.config.reclamation_threshold {
            return;
        }
        let mut q = self.reclaim_queue.lock();
        // Re-check under the lock candidate selection also holds: a pass
        // that claimed this block between the screen above and the lock
        // acquisition must not find it (re)enqueued behind its back — it
        // may be about to retire, bury and free it.
        if header.compacting.load(Ordering::Acquire) != 0 {
            return;
        }
        if header
            .in_reclaim_queue
            .compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            let ready_at = self.runtime.global_epoch() + 2;
            q.push_back((block, ready_at));
        }
    }

    /// Frees the object behind `entry` if its entry incarnation still equals
    /// `expected_entry_inc`. Returns false when the object was already
    /// removed (remove is idempotent per reference, §2). Panics if the
    /// calling thread cannot register with the epoch system or the object
    /// sits in a spilled page that cannot be faulted back in; use
    /// [`try_free`](Self::try_free) where those must be errors.
    pub fn free(&self, entry: EntryRef, expected_entry_inc: u32) -> bool {
        self.try_free(entry, expected_entry_inc)
            .expect("thread registry full or spill fault failed")
    }

    /// Fallible [`free`](Self::free): `Err(MemError::TooManyThreads)` when
    /// the calling thread cannot claim an epoch slot,
    /// `Err(MemError::SpillFault)` when the object lives in a spilled page
    /// that cannot be read back (the free does not happen — fail closed).
    pub fn try_free(&self, entry: EntryRef, expected_entry_inc: u32) -> Result<bool, MemError> {
        // Pin for the whole slot surgery: the moment our decrement below
        // empties the block, a concurrent pass may retire and bury it, and a
        // buried block is freed once the global epoch advances past its
        // grace period — the pin keeps the epoch from getting there while we
        // still write into the block.
        let _guard = self.runtime.try_pin()?;
        // Winning the entry lock is what makes us *the* remover (§5.1
        // footnote: free serializes with freeze/lock through the incarnation
        // word). Holding the lock bit — rather than bumping up front — keeps
        // movers out for the whole surgery: a relocation frozen at this
        // incarnation spins at its entry lock until the bump below retires
        // the counter, then dies with `MoveOutcome::Freed`. If a mover got
        // the lock first we spin here instead, and afterwards the payload
        // points at the object's *new* home, which is the one we free.
        let payload = loop {
            let Some(observed) = entry.get().inc().lock(expected_entry_inc) else {
                return Ok(false);
            };
            let payload = entry.get().load_payload(Ordering::Acquire);
            if !spill::is_spill_tagged(payload) {
                break payload;
            }
            // The object lives in a spilled page. Bring the page home first
            // — every record in a page is live, so this keeps the invariant
            // that spilled pages never carry dead objects — then retry the
            // lock: the fault-in repointed the entry at a resident slot.
            entry
                .get()
                .inc()
                .unlock_with_flags(observed & FLAG_MASK & !FLAG_LOCK);
            let block_id = unsafe { (*((payload & !SPILL_TAG) as *const SpillStub)).block_id };
            self.fault_in_block(block_id)?;
        };
        debug_assert_ne!(payload, 0, "live entry without payload");
        let (block, slot_id) = unsafe { self.locate(payload) };
        // Invalidate direct pointers.
        self.slot_inc(&block, slot_id).bump_unlocked();
        let epoch = self.runtime.global_epoch();
        block.slot_word(slot_id).set_limbo(epoch);
        block.header().valid_count.fetch_sub(1, Ordering::Relaxed);
        block.header().limbo_count.fetch_add(1, Ordering::Relaxed);
        MemoryStats::inc(&self.runtime.stats.objects_freed);
        // The bump both retires the incarnation — failing every outstanding
        // reference — and releases the lock bit (a bump clears all flags).
        // Its release ordering publishes the slot surgery above, which is
        // what `freeze_group`'s post-freeze slot re-check relies on.
        entry.get().inc().bump();
        self.maybe_enqueue_for_reclamation(block);
        // Entry reuse is deferred two epochs: a direct pointer chasing a
        // forwarding tombstone (§6) may still read this entry until every
        // critical section that could hold such a pointer has ended.
        self.runtime.indirection.release_at(entry, epoch + 2);
        Ok(true)
    }

    // ------------------------------------------------------------------
    // Compaction (§5)
    // ------------------------------------------------------------------

    /// Runs one compaction pass over this context, emptying every block with
    /// occupancy below `config.compaction_occupancy` into fresh blocks.
    ///
    /// Must not be called while the calling thread holds a [`Guard`]; the
    /// pass pins its own critical section and drives the global epoch.
    pub fn compact(&self) -> CompactionReport {
        let _exclusive = self.runtime.compaction_mutex.lock();
        let mut report = CompactionReport::default();

        // Select candidate source blocks. They stay in the regular
        // membership until their groups are registered — the swap below is
        // atomic under one write lock, so no enumeration snapshot can catch
        // a block in neither list.
        let candidates: Vec<BlockRef> = {
            let m = self.membership.read();
            // Hold the reclamation queue lock across selection so a block
            // cannot be handed to an allocator while we pull it out.
            let mut q = self.reclaim_queue.lock();
            m.blocks
                .iter()
                .filter(|b| {
                    let h = b.header();
                    let eligible = b.occupancy() < self.config.compaction_occupancy
                        && h.active_owner.load(Ordering::Acquire) == 0
                        && h.compacting
                            .compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire)
                            .is_ok();
                    if eligible && h.in_reclaim_queue.load(Ordering::Acquire) == 1 {
                        // Compaction supersedes slot-level reclamation: the
                        // block is about to be emptied wholesale.
                        q.retain(|(qb, _)| qb != *b);
                        h.in_reclaim_queue.store(0, Ordering::Release);
                    }
                    eligible
                })
                .copied()
                .collect()
        };
        if candidates.is_empty() {
            return report;
        }
        let pass_start = std::time::Instant::now();
        smc_obs::trace::emit(smc_obs::Event::CompactionSelect {
            context: self.id,
            candidates: candidates.len() as u64,
        });

        let tid = match self.runtime.epochs.thread_index() {
            Ok(t) => t,
            Err(_) => return report,
        };
        let guard = self.runtime.pin();
        if !self.runtime.epochs.reserve_advance(tid) {
            drop(guard);
            self.requeue_candidates(candidates);
            return report;
        }
        let e = guard.epoch();

        // --- Freezing epoch: advance to e + 1, announce relocation at e + 2.
        if !self.advance_to(e + 1, tid) {
            self.runtime.epochs.release_advance(tid);
            drop(guard);
            self.requeue_candidates(candidates);
            report.aborted = true;
            return report;
        }
        self.runtime.set_relocation_epoch(e + 2);

        // Build compaction groups and relocation lists (freeze objects).
        let groups = self.build_groups(candidates);
        if groups.is_empty() {
            self.runtime.set_relocation_epoch(0);
            self.runtime.epochs.release_advance(tid);
            drop(guard);
            return report;
        }
        // Atomic membership swap: grouped sources leave the block list and
        // appear in the group list in one step.
        {
            let grouped: std::collections::HashSet<BlockRef> = groups
                .iter()
                .flat_map(|g| g.sources.iter().copied())
                .collect();
            let mut m = self.membership.write();
            m.blocks.retain(|b| !grouped.contains(b));
            m.groups.extend(groups.iter().cloned());
        }

        // --- Relocation epoch: advance to e + 2.
        let entered_relocation = self.advance_to(e + 2, tid);
        if entered_relocation {
            // Waiting phase: wait for every other in-critical thread to reach
            // the relocation epoch, then open the moving phase.
            let ready = self.wait_all_at(e + 2, tid);
            if ready {
                let pause_start = std::time::Instant::now();
                self.runtime.set_moving_phase(true);
                for group in &groups {
                    if !self.move_group(group, &mut report) {
                        // The mover "crashed" (injected fault): the rest of
                        // the phase dies with it; the epilogue below bails
                        // every still-pending relocation.
                        break;
                    }
                }
                self.runtime.set_moving_phase(false);
                let pause_ns = pause_start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
                self.runtime.stats.compaction_pause_ns.record(pause_ns);
                smc_obs::trace::emit(smc_obs::Event::CompactionRelocate {
                    context: self.id,
                    moved: report.moved as u64,
                    bailed: report.bailed as u64,
                    nanos: pause_ns,
                });
            }
        }

        // --- Close: advance to e + 3 and clear relocation state.
        let _ = self.advance_to(e + 3, tid);
        self.runtime.set_relocation_epoch(0);
        self.runtime.epochs.release_advance(tid);
        drop(guard);

        // Roll back anything still pending (aborted, cancelled, or timed-out
        // groups) through the cancel/bail path.
        for group in &groups {
            for &src in &group.sources {
                let list = src.header().reloc_list.load(Ordering::Acquire);
                if list.is_null() {
                    continue;
                }
                let list = unsafe { &*list };
                for entry in &list.entries {
                    if entry.status() == RelocStatus::Pending {
                        unsafe { cancel_relocation(src, entry) };
                        report.bailed += 1;
                        MemoryStats::inc(&self.runtime.stats.relocations_bailed);
                    }
                }
            }
        }

        // A cancel request is consumed by the pass that observed it (or, if
        // it arrived too late to stop anything, by this pass completing).
        self.cancel_requested.store(false, Ordering::Release);

        self.publish_groups(&groups, &mut report);
        MemoryStats::inc(&self.runtime.stats.compactions);
        report.groups = groups.len();
        smc_obs::trace::emit(smc_obs::Event::CompactionRetire {
            context: self.id,
            retired: report.retired_bases.len() as u64,
        });
        self.runtime
            .stats
            .compaction_pass_ns
            .record(pass_start.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        report
    }

    /// Releases candidate blocks that will not be compacted this pass.
    /// They never left the membership, so only the flag is cleared.
    fn requeue_candidates(&self, candidates: Vec<BlockRef>) {
        for b in candidates {
            b.header().compacting.store(0, Ordering::Release);
        }
    }

    /// Greedily packs candidate blocks into groups whose live objects fit a
    /// single fresh destination block, freezing every scheduled object.
    fn build_groups(&self, candidates: Vec<BlockRef>) -> Vec<Arc<CompactionGroup>> {
        let capacity = self.layout.capacity;
        let mut groups = Vec::new();
        let mut current: Vec<BlockRef> = Vec::new();
        let mut current_live = 0u32;
        let mut leftovers: Vec<BlockRef> = Vec::new();

        let flush = |sources: &mut Vec<BlockRef>,
                     groups: &mut Vec<Arc<CompactionGroup>>,
                     leftovers: &mut Vec<BlockRef>| {
            if sources.len() < 2 {
                // Compacting a single block would only shuffle it; skip.
                leftovers.append(sources);
                return;
            }
            if let Some(group) = self.freeze_group(std::mem::take(sources)) {
                groups.push(group);
            }
        };

        for block in candidates {
            let live = block.header().valid_count.load(Ordering::Relaxed);
            if current_live + live > capacity && !current.is_empty() {
                flush(&mut current, &mut groups, &mut leftovers);
                current_live = 0;
            }
            current.push(block);
            current_live += live;
        }
        flush(&mut current, &mut groups, &mut leftovers);

        // Blocks that did not fit a group go back to regular membership.
        if !leftovers.is_empty() {
            self.requeue_candidates(leftovers);
        }
        groups
    }

    /// Allocates the destination block and freezes every live object of the
    /// group's sources, building their relocation lists.
    fn freeze_group(&self, sources: Vec<BlockRef>) -> Option<Arc<CompactionGroup>> {
        // Destination blocks also count against the budget: a compaction
        // under memory pressure degrades gracefully to "no groups formed"
        // rather than pushing the runtime over its cap.
        let dest = match self
            .runtime
            .allocate_block(&self.layout, self.type_id, self.id)
        {
            Ok(d) => d,
            Err(_) => {
                self.requeue_candidates(sources);
                return None;
            }
        };
        // Destinations are born mid-pass: a free of a just-moved object must
        // not hand the block to the reclamation queue while the pass still
        // writes into it — `publish_groups` may even bury it (fully-freed
        // dest) and a queued-but-buried block is a use-after-free waiting in
        // `pop_reclaimable`. The flag comes off when the block enters
        // regular membership.
        dest.header().compacting.store(1, Ordering::Release);
        let mut next_dest_slot: SlotId = 0;
        for &src in &sources {
            let mut entries = Vec::new();
            for slot_id in 0..src.header().capacity {
                if src.slot_word(slot_id).state() != SlotState::Valid {
                    continue;
                }
                let back = src.back_ptr(slot_id).load(Ordering::Acquire);
                if back == 0 {
                    continue;
                }
                let entry = unsafe { EntryRef::from_addr(back) };
                // Sample the slot incarnation *before* freezing the entry: if
                // the object is freed (and the slot possibly reused) between
                // the two freezes, the slot counter has moved on and the
                // flag-set below fails instead of freezing an unrelated
                // object. The stale reloc entry then dies at the mover's
                // entry lock.
                let slot_inc = self.slot_inc(&src, slot_id).incarnation();
                let inc = entry.get().inc().incarnation();
                // Freeze the indirection entry first (authoritative), then
                // the slot word for direct-pointer readers. A failure means
                // the object was freed concurrently — skip it.
                if !entry.get().inc().try_set_flag(inc, FLAG_FROZEN) {
                    continue;
                }
                // Re-check the slot now that the entry is frozen: a racing
                // free bumps the entry only *after* its slot surgery, so if
                // the `inc` we froze was the post-free counter, the slot is
                // observably limbo by now (the bump's release ordering
                // publishes the surgery, and source slots cannot be reused
                // mid-pass — the block is marked compacting and the epoch is
                // held). Retract the freeze and skip; without this the pass
                // would relocate a mid-free object and the freer would write
                // into a block the pass then retires and frees.
                if src.slot_word(slot_id).state() != SlotState::Valid {
                    entry.get().inc().clear_flag(inc, FLAG_FROZEN);
                    continue;
                }
                let _ = self
                    .slot_inc(&src, slot_id)
                    .try_set_flag(slot_inc, FLAG_FROZEN);
                let dest_slot = next_dest_slot;
                next_dest_slot += 1;
                let dest_addr = self.payload_of(&dest, dest_slot);
                entries.push(RelocEntry::new(slot_id, back, inc, dest_addr, dest_slot));
            }
            let list = Box::new(RelocationList::new(self.obj_size, entries));
            let old = src
                .header()
                .reloc_list
                .swap(Box::into_raw(list), Ordering::AcqRel);
            if !old.is_null() {
                drop(unsafe { Box::from_raw(old) });
            }
        }
        Some(Arc::new(CompactionGroup {
            sources,
            dest,
            query_counter: AtomicU32::new(0),
            started: AtomicBool::new(false),
            settled: AtomicBool::new(false),
        }))
    }

    /// Executes the moving phase for one group, honoring pre-state query
    /// pins (§5.2).
    /// Returns false if an injected fault killed the mover — the caller must
    /// abandon the rest of the moving phase, as a crashed thread would.
    fn move_group(&self, group: &CompactionGroup, report: &mut CompactionReport) -> bool {
        // Announce the relocation *before* the final counter check, then
        // wait for pre-state readers to drain; a reader either pins before
        // our announcement (we wait for it) or observes the announcement
        // and takes the post-state path.
        group.started.store(true, Ordering::SeqCst);
        let deadline = Instant::now() + self.config.compaction_patience;
        while group.query_counter.load(Ordering::SeqCst) != 0 {
            if Instant::now() >= deadline {
                // §5.2: bail out of compacting this group — a query returned
                // control to the application while holding the read pin.
                // `started` stays set: late readers take the post-state
                // union, which still covers unmoved objects in the sources.
                return true;
            }
            crate::sync::thread_yield();
        }
        for &src in &group.sources {
            let list = src.header().reloc_list.load(Ordering::Acquire);
            if list.is_null() {
                continue;
            }
            let list = unsafe { &*list };
            for entry in &list.entries {
                // Crash-only compaction failpoint: an injected fault kills
                // the mover mid-group, as an OS failure would. Entries still
                // `Pending` are bailed out by the pass epilogue, so the
                // context stays valid and a later pass retries them.
                if self.runtime.faults().should_fail(FaultSite::Relocation) {
                    report.interrupted = true;
                    MemoryStats::inc(&self.runtime.stats.compactions_interrupted);
                    return false;
                }
                // Cooperative cancel (watchdog / quiesce): stop moving and
                // let the epilogue roll the remaining entries back through
                // the bail path.
                if self.cancel_requested.load(Ordering::Acquire) {
                    report.cancelled = true;
                    return false;
                }
                match unsafe { try_move_object(src, entry) } {
                    MoveOutcome::MovedByUs => {
                        report.moved += 1;
                        MemoryStats::inc(&self.runtime.stats.objects_relocated);
                    }
                    MoveOutcome::AlreadyMoved => report.moved += 1,
                    MoveOutcome::BailedOut => {}
                    MoveOutcome::Freed => {}
                }
            }
        }
        true
    }

    /// Disbands groups after a pass: publishes destinations, retires emptied
    /// sources, and returns partially-moved sources to regular membership.
    fn publish_groups(&self, groups: &[Arc<CompactionGroup>], report: &mut CompactionReport) {
        let mut m = self.membership.write();
        for group in groups {
            m.groups.retain(|g| !Arc::ptr_eq(g, group));
            if group.dest.header().valid_count.load(Ordering::Relaxed) > 0 {
                // Joining regular membership lifts the mid-pass reclamation
                // embargo set at allocation (see `freeze_group`).
                group.dest.header().compacting.store(0, Ordering::Release);
                m.blocks.push(group.dest);
            } else {
                // `compacting` stays set on the discarded dest, same as on
                // retired sources below: the block is headed for the
                // graveyard and must stay un-enqueueable.
                // Nothing moved (fully bailed/aborted): discard the dest.
                self.runtime
                    .bury_block(group.dest, self.runtime.global_epoch() + 2);
            }
            for &src in &group.sources {
                if src.header().valid_count.load(Ordering::Relaxed) == 0 {
                    // `compacting` stays set on retired sources: it is what
                    // keeps a straggling `free` (which sampled the block
                    // before the move) from re-enqueueing a block that is
                    // headed for the graveyard. The flag is reinitialized
                    // with the rest of the header if the memory is reused.
                    report.retired_bases.push(src.base() as usize);
                    self.pending_retired.lock().push(src);
                } else {
                    src.header().compacting.store(0, Ordering::Release);
                    m.blocks.push(src);
                }
            }
            group.settled.store(true, Ordering::Release);
        }
    }

    /// Buries retired source blocks once the caller has finished fixing up
    /// direct pointers into them (§6). Tombstones stay readable until every
    /// epoch that could observe them has passed.
    pub fn release_retired(&self) {
        let retired: Vec<BlockRef> = self.pending_retired.lock().drain(..).collect();
        let free_at = self.runtime.global_epoch() + 2;
        for block in retired {
            self.runtime.bury_block(block, free_at);
        }
    }

    /// Number of retired blocks awaiting [`release_retired`](Self::release_retired).
    pub fn pending_retired_len(&self) -> usize {
        self.pending_retired.lock().len()
    }

    fn advance_to(&self, target: u64, tid: usize) -> bool {
        let deadline = Instant::now() + self.config.compaction_patience;
        while self.runtime.global_epoch() < target {
            if self.runtime.epochs.try_advance_excluding(tid).is_none() {
                if Instant::now() >= deadline {
                    return false;
                }
                crate::sync::thread_yield();
            }
        }
        true
    }

    fn wait_all_at(&self, epoch: u64, tid: usize) -> bool {
        let deadline = Instant::now() + self.config.compaction_patience;
        loop {
            // "All other threads in the relocation epoch" is exactly the
            // condition under which the epoch could advance past it.
            if self.runtime.epochs.can_advance_excluding(tid, epoch) {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            crate::sync::thread_yield();
        }
    }

    /// Iterates every valid slot of every block for debugging/assertions.
    /// Requires a guard; returns (block, slot) pairs at snapshot time.
    pub fn debug_valid_slots(&self, _guard: &Guard<'_>) -> Vec<(BlockRef, SlotId)> {
        let m = self.membership_snapshot();
        let mut out = Vec::new();
        for b in m
            .blocks
            .iter()
            .chain(m.groups.iter().flat_map(|g| g.sources.iter()))
        {
            for s in 0..b.header().capacity {
                if b.slot_word(s).state() == SlotState::Valid {
                    out.push((*b, s));
                }
            }
        }
        out
    }

    /// Live objects across all blocks, resident and spilled.
    pub fn live_objects(&self) -> u64 {
        let m = self.membership_snapshot();
        let count = |b: &BlockRef| b.header().valid_count.load(Ordering::Relaxed) as u64;
        m.blocks.iter().map(count).sum::<u64>()
            + m.groups
                .iter()
                .map(|g| g.sources.iter().map(count).sum::<u64>() + count(&g.dest))
                .sum::<u64>()
            // The gauge, not the page list: `len()` must stay callable from
            // inside a spilled-page scan callback, which holds the spill
            // mutex.
            + self.spilled_objects_gauge.load(Ordering::Relaxed)
    }

    // ------------------------------------------------------------------
    // Spill and fault-in (persistence tier)
    // ------------------------------------------------------------------

    /// Attaches a page store, enabling the spill rung of the OOM ladder and
    /// fault-in on dereference. Returns false for columnar contexts (their
    /// entry payloads point into the incarnation column, whose cells the
    /// relocation protocol reads unconditionally — spill tagging is a
    /// row-store feature).
    pub fn enable_spill(self: &Arc<Self>, store: Arc<dyn PageStore>) -> bool {
        if self.mode != LayoutMode::Rows {
            return false;
        }
        let mut s = self.spill.lock();
        s.store = Some(store);
        s.this = Arc::downgrade(self);
        true
    }

    /// True once [`enable_spill`](Self::enable_spill) has attached a store.
    pub fn spill_enabled(&self) -> bool {
        self.spill.lock().store.is_some()
    }

    /// Blocks currently spilled to the page store.
    pub fn spilled_blocks(&self) -> u64 {
        self.spilled_blocks_gauge.load(Ordering::Relaxed)
    }

    /// Objects currently living in spilled pages.
    pub fn spilled_objects(&self) -> u64 {
        self.spilled_objects_gauge.load(Ordering::Relaxed)
    }

    /// Runs `f` over the spilled-page directory under the spill mutex.
    /// Used by the validator and the persistence tier, which must observe
    /// a page list that cannot race fault-in.
    pub(crate) fn with_spill_pages<R>(&self, f: impl FnOnce(&[SpilledPage]) -> R) -> R {
        let s = self.spill.lock();
        f(&s.pages)
    }

    /// Evicts one cold resident block to the page store. Returns true when a
    /// block was spilled; false when spill is disabled, no block qualifies,
    /// the store failed (rolled back), or the caller is inside a
    /// spilled-page scan (the mutex is already held above us).
    pub fn try_spill_one(&self) -> bool {
        if spill::in_spill_scan() {
            return false;
        }
        let mut s = self.spill.lock();
        if s.store.is_none() {
            return false;
        }
        self.try_spill_one_locked(&mut s)
    }

    /// Spill body; requires the spill mutex. Victim selection mirrors
    /// compaction's candidate selection (owner-free, not compacting, pulled
    /// out of the reclamation queue), minus the occupancy ceiling — any
    /// resident block with live objects is a candidate, coldest-first being
    /// approximated by collection order.
    fn try_spill_one_locked(&self, s: &mut SpillState) -> bool {
        let store = s.store.as_ref().expect("spill store attached").clone();
        let victim = {
            let m = self.membership.read();
            let mut q = self.reclaim_queue.lock();
            let found = m.blocks.iter().find(|b| {
                let h = b.header();
                h.valid_count.load(Ordering::Relaxed) > 0
                    && h.active_owner.load(Ordering::Acquire) == 0
                    && h.compacting
                        .compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
            });
            match found {
                Some(b) => {
                    let h = b.header();
                    if h.in_reclaim_queue.load(Ordering::Acquire) == 1 {
                        q.retain(|(qb, _)| qb != b);
                        h.in_reclaim_queue.store(0, Ordering::Release);
                    }
                    *b
                }
                None => return false,
            }
        };
        // Remove the victim from membership before touching entries: scans
        // snapshot membership under this same spill mutex, so no enumeration
        // can miss the block (it is either in their snapshot or in the page
        // list, never neither, never both).
        self.membership.write().blocks.retain(|b| *b != victim);
        let header = victim.header();
        let block_id = header.block_id;
        let stub = Box::new(SpillStub {
            ctx: s.this.clone(),
            block_id,
        });
        let tag = Box::into_raw(stub) as usize | SPILL_TAG;
        let obj_size = self.obj_size as usize;
        let mut entries: Vec<(usize, SlotId)> = Vec::new();
        let mut objs: Vec<u8> = Vec::new();
        for slot_id in 0..header.capacity {
            if victim.slot_word(slot_id).state() != SlotState::Valid {
                continue;
            }
            let back = victim.back_ptr(slot_id).load(Ordering::Acquire);
            if back == 0 {
                continue;
            }
            let entry = unsafe { EntryRef::from_addr(back) };
            let inc = entry.get().inc().incarnation();
            let Some(observed) = entry.get().inc().lock(inc) else {
                continue; // freed concurrently between state check and lock
            };
            if entry.get().load_payload(Ordering::Acquire) != self.payload_of(&victim, slot_id) {
                // The entry moved on (freed and reused); not ours to spill.
                entry
                    .get()
                    .inc()
                    .unlock_with_flags(observed & FLAG_MASK & !FLAG_LOCK);
                continue;
            }
            let src = self.payload_of(&victim, slot_id) as *const u8;
            let at = objs.len();
            objs.resize(at + obj_size, 0);
            unsafe { std::ptr::copy_nonoverlapping(src, objs[at..].as_mut_ptr(), obj_size) };
            // Retire direct pointers into the page — a spilled slot must not
            // satisfy a §6 direct dereference against stale memory.
            self.slot_inc(&victim, slot_id).bump_unlocked();
            entry.get().store_payload(tag, Ordering::Release);
            entry
                .get()
                .inc()
                .unlock_with_flags(observed & FLAG_MASK & !FLAG_LOCK);
            entries.push((back, slot_id));
        }
        if entries.is_empty() {
            // Raced empty: undo and report no progress.
            drop(unsafe { Box::from_raw((tag & !SPILL_TAG) as *mut SpillStub) });
            self.membership.write().blocks.push(victim);
            header.compacting.store(0, Ordering::Release);
            self.maybe_enqueue_for_reclamation(victim);
            return false;
        }
        let page = spill::encode_page(block_id, obj_size, &entries, &objs);
        let ticket = match store.store_page(block_id, &page) {
            Ok(t) => t,
            Err(_) => {
                // Store failed: restore every tagged entry. We still hold
                // the spill mutex, so nothing else can have repointed them.
                for &(back, slot_id) in &entries {
                    let entry = unsafe { EntryRef::from_addr(back) };
                    let inc = entry.get().inc().incarnation();
                    if let Some(observed) = entry.get().inc().lock(inc) {
                        if entry.get().load_payload(Ordering::Acquire) == tag {
                            entry.get().store_payload(
                                self.payload_of(&victim, slot_id),
                                Ordering::Release,
                            );
                        }
                        entry
                            .get()
                            .inc()
                            .unlock_with_flags(observed & FLAG_MASK & !FLAG_LOCK);
                    }
                }
                drop(unsafe { Box::from_raw((tag & !SPILL_TAG) as *mut SpillStub) });
                self.membership.write().blocks.push(victim);
                header.compacting.store(0, Ordering::Release);
                self.maybe_enqueue_for_reclamation(victim);
                MemoryStats::inc(&self.runtime.stats.spill_fault_failures);
                return false;
            }
        };
        self.spilled_blocks_gauge.fetch_add(1, Ordering::Relaxed);
        self.spilled_objects_gauge
            .fetch_add(entries.len() as u64, Ordering::Relaxed);
        MemoryStats::inc(&self.runtime.stats.blocks_spilled);
        s.pages.push(SpilledPage {
            block_id,
            ticket,
            tag,
            entries,
        });
        // The victim's slots stay Valid with intact data until burial ripens:
        // a reader that loaded the resident payload just before our tag store
        // reads the old copy safely for two more epochs. (In-place writes in
        // that window are lost on fault-in — the same isolation caveat as a
        // §5 relocation mid-copy; mutate through `try_update`-style replace,
        // not in place, when spill is enabled.)
        self.runtime
            .bury_block(victim, self.runtime.global_epoch() + 2);
        smc_obs::trace::emit(smc_obs::Event::BlockSpilled {
            context: self.id,
            block_id,
        });
        true
    }

    /// Brings the spilled page `block_id` back to residency. `Ok(true)` when
    /// this call faulted the page in, `Ok(false)` when the page was not
    /// spilled (typically: another thread won the race). Fails closed with
    /// [`MemError::SpillFault`] on any store or integrity failure — the page
    /// stays spilled and the heap intact — and when called from inside a
    /// spilled-page scan callback (the scan already streams the data).
    pub fn fault_in_block(&self, block_id: u64) -> Result<bool, MemError> {
        if spill::in_spill_scan() {
            return Err(MemError::SpillFault);
        }
        let start = Instant::now();
        let mut s = self.spill.lock();
        // Make room first if the budget is hot: faulting one page in while
        // over budget should displace another page, not grow the footprint.
        if let Some(budget) = self.config.budget_bytes {
            if s.store.is_some() && (self.bytes() + crate::block::BLOCK_SIZE) as u64 > budget {
                let _ = self.try_spill_one_locked(&mut s);
            }
        }
        let Some(idx) = s.pages.iter().position(|p| p.block_id == block_id) else {
            return Ok(false);
        };
        let store = s.store.as_ref().expect("page without store").clone();
        let ticket = s.pages[idx].ticket;
        let mut bytes = Vec::new();
        if store.load_page(ticket, block_id, &mut bytes).is_err() {
            MemoryStats::inc(&self.runtime.stats.spill_fault_failures);
            return Err(MemError::SpillFault);
        }
        let records = match spill::decode_page(&bytes, block_id, self.obj_size as u64) {
            Ok(r) => r,
            Err(_) => {
                MemoryStats::inc(&self.runtime.stats.spill_fault_failures);
                return Err(MemError::SpillFault);
            }
        };
        if records.len() != s.pages[idx].entries.len() {
            MemoryStats::inc(&self.runtime.stats.spill_fault_failures);
            return Err(MemError::SpillFault);
        }
        // Fresh block, new block id: fault-in is a relocation, not a revival.
        // Allocation bypasses the runtime budget gate — the faulting thread
        // may be pinned (dereference path) and so can never ripen its own
        // victim's burial; see `Runtime::allocate_block_unbudgeted`.
        let fresh = self
            .runtime
            .allocate_block_unbudgeted(&self.layout, self.type_id, self.id)?;
        let page = s.pages.swap_remove(idx);
        let obj_size = self.obj_size as usize;
        let mut live: u32 = 0;
        for (i, (entry_addr, obj)) in records.iter().enumerate() {
            let slot_id = i as SlotId;
            debug_assert_eq!(*entry_addr as usize, page.entries[i].0);
            let entry = unsafe { EntryRef::from_addr(*entry_addr as usize) };
            // Object bytes, back pointer and slot state land before the
            // payload repoint publishes the slot to retrying readers.
            unsafe {
                std::ptr::copy_nonoverlapping(obj.as_ptr(), fresh.obj_ptr(slot_id), obj_size)
            };
            fresh
                .back_ptr(slot_id)
                .store(*entry_addr as usize, Ordering::Release);
            fresh.slot_word(slot_id).set_valid();
            if entry.get().load_payload(Ordering::Acquire) == page.tag {
                entry
                    .get()
                    .store_payload(self.payload_of(&fresh, slot_id), Ordering::Release);
                live += 1;
            } else {
                // Defensive: the entry no longer references this page (it
                // should be impossible — frees fault in first). Unpublish.
                fresh.slot_word(slot_id).reset();
                fresh.back_ptr(slot_id).store(0, Ordering::Release);
            }
        }
        fresh.header().valid_count.store(live, Ordering::Relaxed);
        fresh
            .header()
            .alloc_cursor
            .store(records.len() as SlotId, Ordering::Relaxed);
        self.membership.write().blocks.push(fresh);
        store.discard_page(page.ticket);
        // The stub outlives the repoint by two epochs: a reader pinned now
        // may still hold the tagged payload it loaded before us.
        self.runtime
            .bury_stub(page.tag & !SPILL_TAG, self.runtime.global_epoch() + 2);
        self.spilled_blocks_gauge.fetch_sub(1, Ordering::Relaxed);
        self.spilled_objects_gauge
            .fetch_sub(page.entries.len() as u64, Ordering::Relaxed);
        MemoryStats::inc(&self.runtime.stats.blocks_faulted_in);
        let nanos = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        self.runtime.stats.spill_fault_ns.record(nanos);
        smc_obs::trace::emit(smc_obs::Event::BlockFaulted {
            context: self.id,
            block_id,
            nanos,
        });
        Ok(true)
    }

    /// Streams every spilled record through `visit` *without* promoting
    /// pages to residency, then returns a membership snapshot taken under
    /// the same spill mutex — the scan-without-thrashing primitive behind
    /// `Smc::for_each`. A page and its resident reincarnation can never both
    /// be visited: pages faulted in after this walk hold blocks that are not
    /// in the returned snapshot, and blocks spilled after the snapshot keep
    /// their (still live, epoch-protected) resident copies.
    ///
    /// `visit` receives `(entry_addr, object_ptr)` per record and runs with
    /// the spill mutex held: it may free resident objects, allocate, and
    /// call [`live_objects`](Self::live_objects), but freeing a *spilled*
    /// object or nesting another spilled scan fails with
    /// [`MemError::SpillFault`].
    pub fn scan_spilled_then_snapshot(
        &self,
        visit: &mut dyn FnMut(usize, *const u8),
    ) -> Result<Membership, MemError> {
        if self.mode != LayoutMode::Rows || spill::in_spill_scan() {
            return Ok(self.membership_snapshot());
        }
        let s = self.spill.lock();
        if s.pages.is_empty() {
            return Ok(self.membership_snapshot());
        }
        let store = s.store.as_ref().expect("pages without store").clone();
        let _scan = SpillScanGuard::enter();
        let mut bytes = Vec::new();
        for page in &s.pages {
            if store
                .load_page(page.ticket, page.block_id, &mut bytes)
                .is_err()
            {
                MemoryStats::inc(&self.runtime.stats.spill_fault_failures);
                return Err(MemError::SpillFault);
            }
            let records = match spill::decode_page(&bytes, page.block_id, self.obj_size as u64) {
                Ok(r) => r,
                Err(_) => {
                    MemoryStats::inc(&self.runtime.stats.spill_fault_failures);
                    return Err(MemError::SpillFault);
                }
            };
            for (entry_addr, obj) in records {
                visit(entry_addr as usize, obj.as_ptr());
            }
        }
        Ok(self.membership_snapshot())
    }
}

impl Drop for MemoryContext {
    fn drop(&mut self) {
        // Invalidate every live object so stale references dereference to
        // null rather than into recycled blocks, then hand all blocks to the
        // runtime graveyard for epoch-safe burial.
        let free_at = self.runtime.global_epoch() + 2;
        // Spilled pages first: retire their entries (stale refs upgrade the
        // stub's weak context handle and get null), release the store pages,
        // and bury the stubs like any other epoch-protected object.
        let s = self.spill.get_mut();
        let store = s.store.clone();
        for page in s.pages.drain(..) {
            for &(entry_addr, _) in &page.entries {
                let entry = unsafe { EntryRef::from_addr(entry_addr) };
                if entry.get().load_payload(Ordering::Acquire) == page.tag {
                    entry.get().inc().bump_unlocked();
                    self.runtime.indirection.release(entry, 0);
                    MemoryStats::inc(&self.runtime.stats.objects_freed);
                }
            }
            if let Some(store) = &store {
                store.discard_page(page.ticket);
            }
            self.runtime.bury_stub(page.tag & !SPILL_TAG, free_at);
        }
        self.spilled_blocks_gauge.store(0, Ordering::Relaxed);
        self.spilled_objects_gauge.store(0, Ordering::Relaxed);
        let m = self.membership.get_mut();
        let all_blocks = m
            .blocks
            .drain(..)
            .chain(m.groups.drain(..).flat_map(|g| {
                let mut v = g.sources.clone();
                v.push(g.dest);
                v
            }))
            .chain(self.pending_retired.get_mut().drain(..))
            .collect::<Vec<_>>();
        for block in all_blocks {
            for slot_id in 0..block.header().capacity {
                if block.slot_word(slot_id).state() == SlotState::Valid {
                    let back = block.back_ptr(slot_id).load(Ordering::Acquire);
                    if back != 0 {
                        let entry = unsafe { EntryRef::from_addr(back) };
                        entry.get().inc().bump_unlocked();
                        self.runtime.indirection.release(entry, 0);
                    }
                    self.slot_inc(&block, slot_id).bump_unlocked();
                    MemoryStats::inc(&self.runtime.stats.objects_freed);
                }
            }
            self.runtime.bury_block(block, free_at);
        }
        self.runtime.drain_graveyard();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::type_id_of;

    fn ctx(rt: &Arc<Runtime>) -> MemoryContext {
        MemoryContext::new_rows(
            rt.clone(),
            8,
            8,
            type_id_of::<u64>(),
            ContextConfig::default(),
        )
        .unwrap()
    }

    fn ctx_with(rt: &Arc<Runtime>, config: ContextConfig) -> MemoryContext {
        MemoryContext::new_rows(rt.clone(), 8, 8, type_id_of::<u64>(), config).unwrap()
    }

    fn alloc_u64(c: &MemoryContext, v: u64) -> Allocation {
        c.alloc_with(|block, slot| unsafe { block.obj_ptr(slot).cast::<u64>().write(v) })
            .unwrap()
    }

    fn read_u64(entry: EntryRef) -> u64 {
        let payload = entry.get().load_payload(Ordering::Acquire);
        unsafe { (payload as *const u64).read() }
    }

    #[test]
    fn alloc_writes_before_publishing() {
        let rt = Runtime::new();
        let c = ctx(&rt);
        let a = alloc_u64(&c, 42);
        assert_eq!(read_u64(a.entry), 42);
        assert_eq!(a.block.slot_word(a.slot).state(), SlotState::Valid);
        assert_eq!(
            a.block.back_ptr(a.slot).load(Ordering::Acquire),
            a.entry.addr()
        );
        assert_eq!(c.live_objects(), 1);
    }

    #[test]
    fn free_bumps_both_incarnations() {
        let rt = Runtime::new();
        let c = ctx(&rt);
        let a = alloc_u64(&c, 7);
        assert!(c.free(a.entry, a.entry_inc));
        assert_ne!(a.entry.get().inc().incarnation(), a.entry_inc);
        assert_ne!(c.slot_inc(&a.block, a.slot).incarnation(), a.slot_inc);
        assert_eq!(a.block.slot_word(a.slot).state(), SlotState::Limbo);
        assert_eq!(c.live_objects(), 0);
    }

    #[test]
    fn double_free_is_rejected() {
        let rt = Runtime::new();
        let c = ctx(&rt);
        let a = alloc_u64(&c, 1);
        assert!(c.free(a.entry, a.entry_inc));
        assert!(!c.free(a.entry, a.entry_inc), "second remove must fail");
        assert_eq!(MemoryStats::get(&rt.stats.objects_freed), 1);
    }

    #[test]
    fn slots_fill_one_block_before_growing() {
        let rt = Runtime::new();
        let c = ctx(&rt);
        let cap = c.layout().capacity as usize;
        for i in 0..cap {
            alloc_u64(&c, i as u64);
        }
        assert_eq!(c.block_count(), 1);
        alloc_u64(&c, 999);
        assert_eq!(c.block_count(), 2);
    }

    #[test]
    fn limbo_slot_reused_only_after_two_epochs() {
        let rt = Runtime::new();
        // Aggressive threshold so a single removal queues the block.
        let config = ContextConfig {
            reclamation_threshold: 0.0,
            ..ContextConfig::default()
        };
        let c = ctx_with(&rt, config);
        let cap = c.layout().capacity as usize;
        let mut allocs = Vec::new();
        for i in 0..cap {
            allocs.push(alloc_u64(&c, i as u64));
        }
        // Remove one object: slot enters limbo at epoch 0. Note: the block
        // is still the thread's active block, so it is not queued yet.
        let victim = allocs[3];
        assert!(c.free(victim.entry, victim.entry_inc));
        // The next allocation abandons the (full) block and acquires a new
        // one: the limbo slot is not reclaimable yet at epoch 0.
        let a = alloc_u64(&c, 1000);
        assert_ne!((a.block, a.slot), (victim.block, victim.slot));
        assert_eq!(c.block_count(), 2);
        // After two epoch advances the queued block becomes reclaimable; the
        // allocator's lazy advance plus queue pop should eventually reuse
        // the limbo slot rather than growing again.
        rt.epochs.try_advance().unwrap();
        rt.epochs.try_advance().unwrap();
        // Fill the second block to force a block acquisition.
        for i in 0..cap {
            alloc_u64(&c, 2000 + i as u64);
        }
        assert!(
            MemoryStats::get(&rt.stats.slots_reclaimed) >= 1,
            "limbo slot should be reclaimed once epochs passed"
        );
    }

    #[test]
    fn reclamation_respects_threshold() {
        let rt = Runtime::new();
        // Half the block must be limbo before it queues.
        let config = ContextConfig {
            reclamation_threshold: 0.5,
            ..ContextConfig::default()
        };
        let c = ctx_with(&rt, config);
        let cap = c.layout().capacity as usize;
        let mut allocs = Vec::new();
        for i in 0..cap * 2 {
            allocs.push(alloc_u64(&c, i as u64));
        }
        // Remove 25% of the first block: below threshold, no queueing.
        for a in allocs.iter().take(cap / 4) {
            assert!(c.free(a.entry, a.entry_inc));
        }
        assert_eq!(c.reclaim_queue.lock().len(), 0);
        // Remove up to 60% of the first block: crosses threshold.
        for a in allocs.iter().take(cap * 6 / 10).skip(cap / 4) {
            assert!(c.free(a.entry, a.entry_inc));
        }
        assert_eq!(c.reclaim_queue.lock().len(), 1);
    }

    #[test]
    fn context_budget_rejects_growth_then_recovers_via_reclaim() {
        let rt = Runtime::new();
        let config = ContextConfig {
            // One block exactly: the second fresh block breaches the budget.
            budget_bytes: Some(crate::block::BLOCK_SIZE as u64),
            reclamation_threshold: 0.0,
            ..ContextConfig::default()
        };
        let c = ctx_with(&rt, config);
        let cap = c.layout().capacity as usize;
        let mut allocs = Vec::new();
        for i in 0..cap {
            allocs.push(alloc_u64(&c, i as u64));
        }
        assert_eq!(
            c.alloc_with(|_, _| {}).unwrap_err(),
            MemError::OutOfMemory,
            "growth past the context budget must fail cleanly"
        );
        assert_eq!(c.block_count(), 1, "no block may leak past the budget");
        assert!(MemoryStats::get(&rt.stats.context_budget_rejections) >= 1);
        // Free half the block: it joins the reclamation queue, and once its
        // limbo epochs mature the same context allocates again — budget
        // pressure degrades to reuse, not to a stuck tenant.
        for a in allocs.drain(..cap / 2) {
            assert!(c.free(a.entry, a.entry_inc));
        }
        rt.epochs.try_advance().unwrap();
        rt.epochs.try_advance().unwrap();
        let a = alloc_u64(&c, 9999);
        assert_eq!(read_u64(a.entry), 9999);
        assert_eq!(c.block_count(), 1, "recovery must reuse, not grow");
    }

    #[test]
    fn stale_entry_payload_not_followed_after_free() {
        let rt = Runtime::new();
        let c = ctx(&rt);
        let a = alloc_u64(&c, 5);
        let old_inc = a.entry_inc;
        c.free(a.entry, old_inc);
        // Any dereference must observe the incarnation mismatch.
        assert_ne!(a.entry.get().inc().incarnation(), old_inc);
    }

    #[test]
    fn columnar_context_allocates_and_locates() {
        let rt = Runtime::new();
        // 4 bytes inc column + 8 bytes value column per slot.
        let c = MemoryContext::new_columnar(
            rt.clone(),
            12,
            type_id_of::<u64>(),
            ContextConfig::default(),
        )
        .unwrap();
        let cap = c.layout().capacity as usize;
        let a = c
            .alloc_with(|block, slot| unsafe {
                // Value column starts after the inc column.
                let col_base = block.store_base().add(cap * 4).cast::<u64>();
                col_base.add(slot as usize).write(777);
            })
            .unwrap();
        let payload = a.entry.get().load_payload(Ordering::Acquire);
        let (block, slot) = unsafe { c.locate(payload) };
        assert_eq!((block, slot), (a.block, a.slot));
        let v = unsafe {
            block
                .store_base()
                .add(cap * 4)
                .cast::<u64>()
                .add(slot as usize)
                .read()
        };
        assert_eq!(v, 777);
        assert!(c.free(a.entry, a.entry_inc));
    }

    #[test]
    fn compaction_empties_sparse_blocks() {
        let rt = Runtime::new();
        // Never queue: isolate compaction.
        let config = ContextConfig {
            reclamation_threshold: 1.1,
            ..ContextConfig::default()
        };
        let c = ctx_with(&rt, config);
        let cap = c.layout().capacity as usize;
        // Fill four blocks, then delete 90% of each.
        let mut allocs = Vec::new();
        for i in 0..cap * 4 {
            allocs.push(alloc_u64(&c, i as u64));
        }
        let mut kept = Vec::new();
        for (i, a) in allocs.iter().enumerate() {
            if i % 10 == 0 {
                kept.push((*a, i as u64));
            } else {
                assert!(c.free(a.entry, a.entry_inc));
            }
        }
        let blocks_before = c.block_count();
        let report = c.compact();
        assert!(!report.aborted);
        assert!(report.groups >= 1, "sparse blocks should form groups");
        assert!(report.moved > 0);
        assert!(!report.retired_bases.is_empty());
        assert!(c.pending_retired_len() > 0);
        // Every kept object survives, reachable through its entry, with the
        // same entry incarnation (references stay valid across compaction).
        for (a, v) in &kept {
            assert_eq!(a.entry.get().inc().incarnation(), a.entry_inc);
            assert_eq!(read_u64(a.entry), *v);
        }
        c.release_retired();
        rt.drain_graveyard_blocking();
        assert!(
            c.block_count() < blocks_before,
            "compaction should shrink the context"
        );
        // Relocation state fully cleared.
        assert_eq!(rt.next_relocation_epoch(), 0);
        assert!(!rt.in_moving_phase());
        assert!(c.membership_snapshot().groups.is_empty());
    }

    #[test]
    fn compaction_leaves_dense_blocks_alone() {
        let rt = Runtime::new();
        let c = ctx(&rt);
        let cap = c.layout().capacity as usize;
        for i in 0..cap * 2 {
            alloc_u64(&c, i as u64);
        }
        let report = c.compact();
        assert_eq!(report.groups, 0);
        assert_eq!(report.moved, 0);
    }

    #[test]
    fn compaction_tombstones_carry_forward_flag() {
        let rt = Runtime::new();
        let config = ContextConfig {
            reclamation_threshold: 1.1,
            ..ContextConfig::default()
        };
        let c = ctx_with(&rt, config);
        let cap = c.layout().capacity as usize;
        let mut allocs = Vec::new();
        for i in 0..cap * 3 {
            allocs.push(alloc_u64(&c, i as u64));
        }
        let survivor = allocs[0];
        for a in allocs.iter().skip(1) {
            c.free(a.entry, a.entry_inc);
        }
        let report = c.compact();
        assert!(report.moved >= 1);
        // The survivor's old slot is now a forwarding tombstone.
        let word = c
            .slot_inc(&survivor.block, survivor.slot)
            .load(Ordering::Acquire);
        assert_ne!(word & crate::incarnation::FLAG_FORWARD, 0);
        // Its entry points at the new location, which holds the value.
        assert_eq!(read_u64(survivor.entry), 0);
    }

    #[test]
    fn concurrent_alloc_free_stress() {
        let rt = Runtime::new();
        let c = Arc::new(ctx(&rt));
        let mut handles = Vec::new();
        for t in 0..4 {
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                let mut live = Vec::new();
                for i in 0..3000u64 {
                    live.push(alloc_u64(&c, t * 1_000_000 + i));
                    if live.len() > 64 {
                        let a: Allocation = live.swap_remove((i as usize * 7) % live.len());
                        assert!(c.free(a.entry, a.entry_inc));
                    }
                }
                // Everything left must still read back correctly.
                for a in &live {
                    let v = read_u64(a.entry);
                    assert_eq!(v / 1_000_000, t);
                }
                live.len() as u64
            }));
        }
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(c.live_objects(), total);
        assert_eq!(rt.stats.objects_live(), total);
    }

    #[test]
    fn drop_invalidates_survivors_and_buries_blocks() {
        let rt = Runtime::new();
        let entry;
        let inc;
        {
            let c = ctx(&rt);
            let a = alloc_u64(&c, 11);
            entry = a.entry;
            inc = a.entry_inc;
            assert_eq!(MemoryStats::get(&rt.stats.blocks_live), 1);
        }
        // Entry incarnation bumped by drop: stale refs are null.
        assert_ne!(entry.get().inc().incarnation(), inc);
        rt.drain_graveyard_blocking();
        assert_eq!(MemoryStats::get(&rt.stats.blocks_freed), 1);
    }

    #[test]
    fn group_pre_state_pin_blocks_moves() {
        let rt = Runtime::new();
        let group = CompactionGroup {
            sources: vec![],
            dest: BlockRef::allocate(&BlockLayout::rows_of::<u64>().unwrap(), 1, 1).unwrap(),
            query_counter: AtomicU32::new(0),
            started: AtomicBool::new(false),
            settled: AtomicBool::new(false),
        };
        assert!(group.try_pin_pre_state(&rt));
        assert_eq!(group.query_counter.load(Ordering::SeqCst), 1);
        group.unpin_pre_state();
        // Once this group's relocation has started, pinning must fail.
        group.started.store(true, Ordering::SeqCst);
        assert!(!group.try_pin_pre_state(&rt));
        assert_eq!(group.query_counter.load(Ordering::SeqCst), 0);
        assert!(group.relocation_started());
        unsafe { group.dest.deallocate() };
    }

    // ---- spill tier -----------------------------------------------------

    fn spill_ctx(rt: &Arc<Runtime>) -> (Arc<MemoryContext>, Arc<crate::spill::MemoryPageStore>) {
        let c = Arc::new(ctx(rt));
        let store = Arc::new(crate::spill::MemoryPageStore::new());
        assert!(c.enable_spill(store.clone()));
        (c, store)
    }

    /// Fills exactly two blocks and spills the first (cold) one.
    fn fill_two_blocks_and_spill(
        rt: &Arc<Runtime>,
        c: &Arc<MemoryContext>,
    ) -> (Vec<Allocation>, Vec<Allocation>) {
        let cap = c.layout().capacity as usize;
        let first: Vec<_> = (0..cap).map(|i| alloc_u64(c, i as u64)).collect();
        let second: Vec<_> = (cap..cap + 4).map(|i| alloc_u64(c, i as u64)).collect();
        assert_eq!(c.block_count(), 2);
        assert!(c.try_spill_one(), "a full cold block must be spillable");
        assert_eq!(c.spilled_blocks(), 1);
        assert_eq!(c.spilled_objects(), cap as u64);
        assert_eq!(c.block_count(), 1, "the victim leaves membership");
        let _ = rt;
        (first, second)
    }

    #[test]
    fn spill_then_free_faults_the_page_back_in() {
        let rt = Runtime::new();
        let (c, store) = spill_ctx(&rt);
        let (first, _second) = fill_two_blocks_and_spill(&rt, &c);
        assert_eq!(store.len(), 1);
        // live_objects counts spilled objects; verify balances.
        let cap = c.layout().capacity as u64;
        assert_eq!(c.live_objects(), cap + 4);
        let report = c.verify().unwrap();
        assert_eq!(report.spilled_slots, cap);
        assert_eq!(report.valid_slots + report.spilled_slots, cap + 4);
        // Freeing a spilled object transparently faults its page in.
        let victim = &first[3];
        assert!(c.try_free(victim.entry, victim.entry_inc).unwrap());
        assert_eq!(c.spilled_blocks(), 0);
        assert_eq!(c.spilled_objects(), 0);
        assert_eq!(store.len(), 0, "the page ticket is discarded");
        assert_eq!(c.live_objects(), cap + 3);
        assert_eq!(MemoryStats::get(&rt.stats.blocks_spilled), 1);
        assert_eq!(MemoryStats::get(&rt.stats.blocks_faulted_in), 1);
        // The faulted-in copies carry the original values.
        for (i, a) in first.iter().enumerate() {
            if i == 3 {
                continue;
            }
            assert_eq!(
                read_u64(a.entry),
                i as u64,
                "object {i} survives the round trip"
            );
        }
        c.verify().unwrap();
    }

    #[test]
    fn budget_pressure_spills_instead_of_rejecting() {
        let rt = Runtime::new();
        let config = ContextConfig {
            // One resident block: growth must spill, not reject.
            budget_bytes: Some(crate::block::BLOCK_SIZE as u64),
            ..ContextConfig::default()
        };
        let c = Arc::new(ctx_with(&rt, config));
        let store = Arc::new(crate::spill::MemoryPageStore::new());
        assert!(c.enable_spill(store.clone()));
        let cap = c.layout().capacity as usize;
        // Allocate three blocks' worth under a one-block budget.
        let allocs: Vec<_> = (0..cap * 3).map(|i| alloc_u64(&c, i as u64)).collect();
        assert!(c.spilled_blocks() >= 2, "growth rode the spill rung");
        assert_eq!(c.block_count(), 1, "resident footprint stays at budget");
        assert_eq!(c.live_objects(), (cap * 3) as u64);
        assert_eq!(MemoryStats::get(&rt.stats.context_budget_rejections), 0);
        // Every object — resident or spilled — still reads back (reading a
        // spilled one faults it in, which may spill another block in turn).
        for (i, a) in allocs.iter().enumerate() {
            let payload = loop {
                let p = a.entry.get().load_payload(Ordering::Acquire);
                if !spill::is_spill_tagged(p) {
                    break p;
                }
                let block_id = unsafe { (*((p & !SPILL_TAG) as *const SpillStub)).block_id };
                c.fault_in_block(block_id).unwrap();
            };
            assert_eq!(unsafe { (payload as *const u64).read() }, i as u64);
        }
        c.verify().unwrap();
    }

    #[test]
    fn spill_store_failure_rolls_back_cleanly() {
        let rt = Runtime::new();
        let (c, store) = spill_ctx(&rt);
        let cap = c.layout().capacity as usize;
        let _allocs: Vec<_> = (0..cap + 4).map(|i| alloc_u64(&c, i as u64)).collect();
        store.fail_next_store();
        assert!(!c.try_spill_one(), "a failed store must report no spill");
        assert_eq!(c.spilled_blocks(), 0);
        assert_eq!(c.block_count(), 2, "the victim rejoins membership");
        assert_eq!(MemoryStats::get(&rt.stats.spill_fault_failures), 1);
        c.verify().unwrap();
        // The store works again: the next attempt succeeds.
        assert!(c.try_spill_one());
        c.verify().unwrap();
    }

    #[test]
    fn fault_in_load_failure_fails_closed() {
        let rt = Runtime::new();
        let (c, store) = spill_ctx(&rt);
        let (first, _second) = fill_two_blocks_and_spill(&rt, &c);
        store.set_fail_loads(true);
        let victim = &first[0];
        assert_eq!(
            c.try_free(victim.entry, victim.entry_inc).unwrap_err(),
            MemError::SpillFault,
            "an unreadable page must fail closed, never panic"
        );
        // The page stays spilled; nothing was partially materialized.
        assert_eq!(c.spilled_blocks(), 1);
        c.verify().unwrap();
        store.set_fail_loads(false);
        assert!(c.try_free(victim.entry, victim.entry_inc).unwrap());
        c.verify().unwrap();
    }

    #[test]
    fn fault_in_corrupted_page_fails_closed() {
        let rt = Runtime::new();
        let (c, store) = spill_ctx(&rt);
        let (first, _second) = fill_two_blocks_and_spill(&rt, &c);
        store.corrupt_page(0);
        let victim = &first[0];
        assert_eq!(
            c.try_free(victim.entry, victim.entry_inc).unwrap_err(),
            MemError::SpillFault
        );
        assert!(MemoryStats::get(&rt.stats.spill_fault_failures) >= 1);
        assert_eq!(c.spilled_blocks(), 1, "the corrupt page is not dropped");
    }

    #[test]
    fn spilled_scan_visits_every_object_exactly_once() {
        let rt = Runtime::new();
        let (c, _store) = spill_ctx(&rt);
        let (_first, _second) = fill_two_blocks_and_spill(&rt, &c);
        let cap = c.layout().capacity as usize;
        let mut seen = Vec::new();
        let snapshot = c
            .scan_spilled_then_snapshot(&mut |_entry_addr, obj| {
                seen.push(unsafe { obj.cast::<u64>().read() });
            })
            .unwrap();
        // The page walk yielded the spilled objects; the membership
        // snapshot holds the resident remainder — no overlap.
        assert_eq!(seen.len(), cap);
        seen.sort_unstable();
        let expect: Vec<u64> = (0..cap as u64).collect();
        assert_eq!(seen, expect);
        let resident: usize = snapshot
            .blocks
            .iter()
            .map(|b| b.header().valid_count.load(Ordering::Relaxed) as usize)
            .sum();
        assert_eq!(resident, 4);
    }

    #[test]
    fn context_drop_releases_spilled_entries() {
        let rt = Runtime::new();
        let store = Arc::new(crate::spill::MemoryPageStore::new());
        {
            let (c, _) = {
                let c = Arc::new(ctx(&rt));
                assert!(c.enable_spill(store.clone()));
                (c, ())
            };
            let _kept = fill_two_blocks_and_spill(&rt, &c);
        }
        rt.drain_graveyard_blocking();
        assert_eq!(store.len(), 0, "dropping the context discards its pages");
        assert_eq!(rt.indirection.live_entries(), 0);
        rt.verify().unwrap();
    }

    #[test]
    fn spill_disabled_for_columnar_contexts() {
        let rt = Runtime::new();
        let c = Arc::new(
            MemoryContext::new_columnar(
                rt.clone(),
                12,
                type_id_of::<u64>(),
                ContextConfig::default(),
            )
            .unwrap(),
        );
        let store = Arc::new(crate::spill::MemoryPageStore::new());
        assert!(!c.enable_spill(store), "columnar layouts cannot spill");
        assert!(!c.spill_enabled());
    }
}
