//! Typed memory blocks (§3.1–§3.2).
//!
//! The memory manager allocates objects from unmanaged memory blocks, where
//! each block serves objects of exactly one type. Blocks are aligned to
//! their own size so the block header is recoverable from any interior
//! pointer with a single mask — this is how per-type information is stored
//! "only once per block rather than with every object" (§3.1).
//!
//! Block layout (§3.2, Figure 1), in address order:
//!
//! ```text
//! +--------------+-----------------+------------------+------------------+
//! | BlockHeader  | slot directory  | back-pointers    | object store     |
//! |              | capacity x u32  | capacity x usize | capacity x slot  |
//! +--------------+-----------------+------------------+------------------+
//! ```
//!
//! * The **slot directory** holds each slot's `Free`/`Valid`/`Limbo` state
//!   and removal epoch ([`crate::slot`]). Placing it right after the header
//!   keeps enumeration's skip-dead-slots scan within a dense prefix.
//! * **Back-pointers** store, per slot, the address of the slot's
//!   indirection-table entry; queries use them to materialize references to
//!   qualifying objects and compaction uses them to find the entry to
//!   repoint (§3.2).
//! * The **object store** holds one fixed-size *slot* per object: a 4-byte
//!   incarnation word (the object header of §6's refined layout, see
//!   [`crate::incarnation`]) followed by the object's bytes, padded to the
//!   object type's alignment.
//!
//! Row-wise layouts use a constant slot stride; columnar layouts (§4.1)
//! reinterpret the object store as parallel column arrays — the block only
//! records the store's bounds, and the collection owns the column geometry.

use std::alloc::{alloc_zeroed, dealloc, handle_alloc_error, Layout};
use std::ptr::NonNull;
use std::sync::atomic::Ordering;

use crate::sync::{AtomicPtr, AtomicU32, AtomicUsize};

use crate::error::MemError;
use crate::incarnation::IncWord;
use crate::reloc::RelocationList;
use crate::slot::{SlotId, SlotWord};

/// Size of every memory block in bytes. 64 KiB holds a few hundred TPC-H
/// lineitem-sized objects, matching the paper's "blocks host ~100 objects"
/// working example (§3.5) at realistic row widths.
pub const BLOCK_SIZE: usize = 1 << 16;
/// Blocks are aligned to their size so headers are mask-recoverable.
pub const BLOCK_ALIGN: usize = BLOCK_SIZE;

const MAGIC: u32 = 0x534d_4342; // "SMCB"

/// Geometry of a block for one object type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockLayout {
    /// Number of object slots per block.
    pub capacity: u32,
    /// Byte offset of the slot directory from the block base.
    pub slotdir_offset: u32,
    /// Byte offset of the back-pointer array from the block base.
    pub backptr_offset: u32,
    /// Byte offset of the object store from the block base.
    pub store_offset: u32,
    /// Bytes consumed by the whole object store.
    pub store_len: u32,
    /// Distance between consecutive slots (0 for columnar stores, whose
    /// geometry the collection owns).
    pub slot_stride: u32,
    /// Offset of object data within a slot, past the incarnation word
    /// (row layouts only).
    pub obj_offset: u32,
}

const fn align_up(x: usize, align: usize) -> usize {
    (x + align - 1) & !(align - 1)
}

impl BlockLayout {
    /// Layout for a row-wise store of objects of the given size/alignment.
    pub fn rows(obj_size: usize, obj_align: usize) -> Result<BlockLayout, MemError> {
        assert!(obj_align.is_power_of_two());
        let align = obj_align.max(4);
        let obj_offset = align_up(4, obj_align.max(1)); // inc word, then data
        let stride = align_up(obj_offset + obj_size.max(1), align);
        Self::build(stride, align, obj_offset as u32)
    }

    /// Layout for [`rows`](Self::rows) of a concrete type.
    pub fn rows_of<T>() -> Result<BlockLayout, MemError> {
        Self::rows(std::mem::size_of::<T>(), std::mem::align_of::<T>())
    }

    /// Layout for a columnar store that needs `bytes_per_slot` bytes of
    /// store space per object (including the 4-byte incarnation column).
    /// The collection computes the per-column offsets itself.
    pub fn columnar(bytes_per_slot: usize, store_align: usize) -> Result<BlockLayout, MemError> {
        let mut layout = Self::build(bytes_per_slot.max(1), store_align.max(16), 0)?;
        layout.slot_stride = 0;
        Ok(layout)
    }

    fn build(
        per_slot: usize,
        store_align: usize,
        obj_offset: u32,
    ) -> Result<BlockLayout, MemError> {
        let header = align_up(std::mem::size_of::<BlockHeader>(), 64);
        // Each slot costs: store bytes + 4 (slot directory) + 8 (back-pointer).
        let budget = BLOCK_SIZE - header;
        let mut cap = budget / (per_slot + 4 + std::mem::size_of::<usize>());
        loop {
            if cap == 0 {
                return Err(MemError::ObjectTooLarge {
                    size: per_slot,
                    max: budget.saturating_sub(4 + std::mem::size_of::<usize>() + store_align),
                });
            }
            let slotdir_offset = header;
            let backptr_offset = align_up(slotdir_offset + cap * 4, std::mem::align_of::<usize>());
            let store_offset = align_up(
                backptr_offset + cap * std::mem::size_of::<usize>(),
                store_align,
            );
            let store_len = cap * per_slot;
            if store_offset + store_len <= BLOCK_SIZE {
                return Ok(BlockLayout {
                    capacity: cap as u32,
                    slotdir_offset: slotdir_offset as u32,
                    backptr_offset: backptr_offset as u32,
                    store_offset: store_offset as u32,
                    store_len: store_len as u32,
                    slot_stride: per_slot as u32,
                    obj_offset,
                });
            }
            cap -= 1;
        }
    }
}

/// The header at the base of every block.
///
/// `repr(C)` plain data plus atomics; lives inside the raw allocation.
#[derive(Debug)]
#[repr(C)]
pub struct BlockHeader {
    magic: u32,
    /// Identity of the hosted object type; checked when blocks change hands.
    pub type_id: u64,
    /// Identity of the owning memory context (collection).
    pub context_id: u64,
    /// Globally unique block number.
    pub block_id: u64,
    /// Geometry (copied from [`BlockLayout`]).
    pub capacity: u32,
    slot_stride: u32,
    obj_offset: u32,
    slotdir_offset: u32,
    backptr_offset: u32,
    store_offset: u32,
    /// Live objects in this block.
    pub valid_count: AtomicU32,
    /// Limbo (freed, unreclaimed) slots in this block.
    pub limbo_count: AtomicU32,
    /// Allocation scan cursor (§3.5: scans resume "from the slot of the last
    /// allocation").
    pub alloc_cursor: AtomicU32,
    /// 1 while the block sits in its context's reclamation queue.
    pub in_reclaim_queue: AtomicU32,
    /// Thread-slot index + 1 of the thread currently allocating from this
    /// block, or 0 (§3.5: "All allocations are performed from thread-local
    /// blocks so that only one thread allocates slots in a block at a time").
    pub active_owner: AtomicU32,
    /// 1 while the block is scheduled for (or undergoing) compaction.
    pub compacting: AtomicU32,
    /// Relocation list for the in-flight compaction, if any (§5.1: "This
    /// list is accessible through the block's header").
    pub reloc_list: AtomicPtr<RelocationList>,
    /// Pre-relocation read pins taken by queries processing this block's
    /// compaction group (§5.2's query counter).
    pub query_counter: AtomicU32,
    /// Allocation-shard ownership ([`crate::alloc`]): `0` for blocks
    /// allocated outside the budgeted runtime path (tests, hand-built
    /// fixtures), `thread_index + 1` for blocks handed out by a shard, or
    /// `u32::MAX` for budgeted blocks with no owning shard (allocating
    /// thread could not register, or sharding disabled). Determines where
    /// the block goes when freed: the owner's free list or straight back to
    /// the OS. Survives [`wipe`](BlockRef::wipe); ownership outlives tenancy.
    pub owner_shard: AtomicU32,
}

static NEXT_BLOCK_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

/// A copyable handle to a block. The context owns the allocation; handles
/// are valid until the context deallocates the block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockRef(NonNull<BlockHeader>);

unsafe impl Send for BlockRef {}
unsafe impl Sync for BlockRef {}

/// Allocates one raw, zeroed, size-aligned block from the OS and returns its
/// base address. The caller owns the memory; pair with
/// [`raw_dealloc_block`] or promote via [`BlockRef::init_at`].
pub(crate) fn raw_alloc_block() -> usize {
    let alloc_layout = Layout::from_size_align(BLOCK_SIZE, BLOCK_ALIGN).expect("static layout");
    // Zeroed: slot directory all-Free, incarnation words all 0.
    let base = unsafe { alloc_zeroed(alloc_layout) };
    if base.is_null() {
        handle_alloc_error(alloc_layout);
    }
    base as usize
}

/// Returns a raw block allocation (from [`raw_alloc_block`] or
/// [`BlockRef::retire`]) to the OS.
///
/// # Safety
/// `addr` must be the base of a live raw block allocation, and no pointers
/// into it may remain in use.
pub(crate) unsafe fn raw_dealloc_block(addr: usize) {
    let alloc_layout = Layout::from_size_align(BLOCK_SIZE, BLOCK_ALIGN).expect("static layout");
    dealloc(addr as *mut u8, alloc_layout);
}

impl BlockRef {
    /// Allocates and initializes a zeroed, aligned block outside the
    /// budgeted allocator path (`owner_shard` 0): tests and hand-built
    /// fixtures. Runtime handouts go through
    /// `init_at`/`reuse_at` instead.
    pub fn allocate(
        layout: &BlockLayout,
        type_id: u64,
        context_id: u64,
    ) -> Result<BlockRef, MemError> {
        let base = raw_alloc_block();
        Ok(unsafe { Self::init_at(base, layout, type_id, context_id, 0) })
    }

    /// Writes a fresh block header over **zeroed** raw memory and returns
    /// the handle.
    ///
    /// # Safety
    /// `base` must come from [`raw_alloc_block`] (size-aligned, fully
    /// zeroed) and must not be shared with any other thread yet.
    pub(crate) unsafe fn init_at(
        base: usize,
        layout: &BlockLayout,
        type_id: u64,
        context_id: u64,
        owner_shard: u32,
    ) -> BlockRef {
        let header = base as *mut BlockHeader;
        header.write(BlockHeader {
            magic: MAGIC,
            type_id,
            context_id,
            block_id: NEXT_BLOCK_ID.fetch_add(1, Ordering::Relaxed),
            capacity: layout.capacity,
            slot_stride: layout.slot_stride,
            obj_offset: layout.obj_offset,
            slotdir_offset: layout.slotdir_offset,
            backptr_offset: layout.backptr_offset,
            store_offset: layout.store_offset,
            valid_count: AtomicU32::new(0),
            limbo_count: AtomicU32::new(0),
            alloc_cursor: AtomicU32::new(0),
            in_reclaim_queue: AtomicU32::new(0),
            active_owner: AtomicU32::new(0),
            compacting: AtomicU32::new(0),
            reloc_list: AtomicPtr::new(std::ptr::null_mut()),
            query_counter: AtomicU32::new(0),
            owner_shard: AtomicU32::new(owner_shard),
        });
        BlockRef(NonNull::new_unchecked(header))
    }

    /// Re-initializes a **recycled** (retired, possibly dirty) raw block for
    /// a new tenancy without paying a full 64 KiB zeroing: one memset covers
    /// the header, slot directory and back-pointers (everything before the
    /// object store), and the store is only normalized at the new geometry's
    /// incarnation words — flags cleared, counter bits kept, so a stale
    /// direct pointer into the recycled block still fails its incarnation
    /// check (same contract as [`wipe`](Self::wipe)). Payload bytes are left
    /// as-is: reads are gated by the slot directory (all `Free` after the
    /// memset) and the incarnation check.
    ///
    /// # Safety
    /// `base` must be a retired block allocation ([`retire`](Self::retire))
    /// exclusively owned by the caller, with no live pointers into it
    /// (epoch barrier at retirement).
    pub(crate) unsafe fn reuse_at(
        base: usize,
        layout: &BlockLayout,
        type_id: u64,
        context_id: u64,
        owner_shard: u32,
    ) -> BlockRef {
        std::ptr::write_bytes(base as *mut u8, 0, layout.store_offset as usize);
        let block = Self::init_at(base, layout, type_id, context_id, owner_shard);
        let h = block.header();
        if h.slot_stride > 0 {
            for slot in 0..h.capacity {
                let inc = block.slot_inc(slot);
                let cur = inc.load(Ordering::Relaxed);
                inc.store(cur & crate::incarnation::INC_MASK, Ordering::Relaxed);
            }
        } else {
            // Columnar stores keep incarnations in the leading column.
            for slot in 0..h.capacity {
                let inc = block.payload_inc(slot);
                let cur = inc.load(Ordering::Relaxed);
                inc.store(cur & crate::incarnation::INC_MASK, Ordering::Relaxed);
            }
        }
        block
    }

    /// Tears the block down to raw recyclable memory: drops any leftover
    /// relocation list and returns the base address for a free list. The
    /// header bytes are left in place (overwritten on reuse).
    ///
    /// # Safety
    /// Same quiescence contract as [`deallocate`](Self::deallocate); the
    /// handle must not be used afterwards.
    pub(crate) unsafe fn retire(self) -> usize {
        let rl = self
            .header()
            .reloc_list
            .swap(std::ptr::null_mut(), Ordering::AcqRel);
        if !rl.is_null() {
            drop(Box::from_raw(rl));
        }
        self.0.as_ptr() as usize
    }

    /// Frees the block's memory. The caller must guarantee quiescence: no
    /// thread can still hold pointers into the block (epoch barrier).
    ///
    /// # Safety
    /// No live references into the block may exist, and the handle must not
    /// be used afterwards.
    pub unsafe fn deallocate(self) {
        raw_dealloc_block(self.retire());
    }

    /// The header.
    #[inline]
    pub fn header(&self) -> &BlockHeader {
        unsafe { self.0.as_ref() }
    }

    /// True if the header's magic word is intact — the first thing the
    /// invariant validator ([`crate::verify`]) checks per block, since a
    /// corrupted header invalidates every other field.
    #[inline]
    pub fn magic_ok(&self) -> bool {
        self.header().magic == MAGIC
    }

    /// Base address of the block.
    #[inline]
    pub fn base(&self) -> *mut u8 {
        self.0.as_ptr().cast()
    }

    /// Recovers the block handle from any pointer into the block — the §3.1
    /// mask trick enabled by size-alignment.
    ///
    /// # Safety
    /// `ptr` must point into a live block allocated by [`allocate`](Self::allocate).
    #[inline]
    pub unsafe fn from_interior_ptr(ptr: *const u8) -> BlockRef {
        let base = (ptr as usize) & !(BLOCK_SIZE - 1);
        let header = base as *mut BlockHeader;
        debug_assert_eq!((*header).magic, MAGIC, "interior pointer outside any block");
        BlockRef(NonNull::new_unchecked(header))
    }

    /// The slot directory word of `slot`.
    #[inline]
    pub fn slot_word(&self, slot: SlotId) -> &SlotWord {
        let h = self.header();
        debug_assert!(slot < h.capacity);
        unsafe {
            &*self
                .base()
                .add(h.slotdir_offset as usize + slot as usize * 4)
                .cast::<SlotWord>()
        }
    }

    /// The back-pointer cell of `slot` (address of its indirection entry).
    #[inline]
    pub fn back_ptr(&self, slot: SlotId) -> &AtomicUsize {
        let h = self.header();
        debug_assert!(slot < h.capacity);
        unsafe {
            &*self
                .base()
                .add(h.backptr_offset as usize + slot as usize * std::mem::size_of::<usize>())
                .cast::<AtomicUsize>()
        }
    }

    /// Start address of `slot` within the object store (row layouts).
    #[inline]
    pub fn slot_base(&self, slot: SlotId) -> *mut u8 {
        let h = self.header();
        debug_assert!(slot < h.capacity);
        debug_assert!(h.slot_stride > 0, "row accessor on columnar block");
        unsafe {
            self.base()
                .add(h.store_offset as usize + slot as usize * h.slot_stride as usize)
        }
    }

    /// The slot-header incarnation word of `slot` (row layouts).
    #[inline]
    pub fn slot_inc(&self, slot: SlotId) -> &IncWord {
        unsafe { &*self.slot_base(slot).cast::<IncWord>() }
    }

    /// Address of the object data in `slot` (row layouts).
    #[inline]
    pub fn obj_ptr(&self, slot: SlotId) -> *mut u8 {
        unsafe { self.slot_base(slot).add(self.header().obj_offset as usize) }
    }

    /// Maps an object-data pointer back to its slot id (row layouts).
    ///
    /// # Safety
    /// `ptr` must have been produced by [`obj_ptr`](Self::obj_ptr) on this block.
    #[inline]
    pub unsafe fn slot_of_obj_ptr(&self, ptr: *const u8) -> SlotId {
        let h = self.header();
        let rel = ptr as usize - self.base() as usize - h.store_offset as usize;
        (rel / h.slot_stride as usize) as SlotId
    }

    /// Base address of the object store (columnar layouts address into this).
    #[inline]
    pub fn store_base(&self) -> *mut u8 {
        unsafe { self.base().add(self.header().store_offset as usize) }
    }

    /// True if this block hosts a columnar store (§4.1).
    #[inline]
    pub fn is_columnar(&self) -> bool {
        self.header().slot_stride == 0
    }

    /// Maps an indirection-entry payload (object-data address for rows,
    /// incarnation-cell address for columnar stores) back to its slot id.
    ///
    /// # Safety
    /// `payload` must address into this block's object store.
    #[inline]
    pub unsafe fn slot_of_payload(&self, payload: usize) -> SlotId {
        if self.is_columnar() {
            ((payload - self.store_base() as usize) / 4) as SlotId
        } else {
            self.slot_of_obj_ptr(payload as *const u8)
        }
    }

    /// The slot-header incarnation word of `slot`, regardless of layout
    /// (columnar stores keep incarnations in the leading column).
    #[inline]
    pub fn payload_inc(&self, slot: SlotId) -> &IncWord {
        if self.is_columnar() {
            unsafe { &*self.store_base().add(slot as usize * 4).cast::<IncWord>() }
        } else {
            self.slot_inc(slot)
        }
    }

    /// Fraction of slots holding live objects.
    pub fn occupancy(&self) -> f64 {
        let h = self.header();
        h.valid_count.load(Ordering::Relaxed) as f64 / h.capacity as f64
    }

    /// Fraction of slots in limbo.
    pub fn limbo_fraction(&self) -> f64 {
        let h = self.header();
        h.limbo_count.load(Ordering::Relaxed) as f64 / h.capacity as f64
    }

    /// Wipes the block back to the all-free state for reuse. Caller must
    /// guarantee quiescence and exclusivity.
    ///
    /// # Safety
    /// No concurrent access to the block.
    pub unsafe fn wipe(&self) {
        let h = self.header();
        for slot in 0..h.capacity {
            self.slot_word(slot).reset();
            self.back_ptr(slot).store(0, Ordering::Relaxed);
            if h.slot_stride > 0 {
                // Preserve incarnation words across wipes so stale direct
                // pointers to a recycled block still fail their check.
                let inc = self.slot_inc(slot);
                let cur = inc.load(Ordering::Relaxed);
                inc.store(cur & crate::incarnation::INC_MASK, Ordering::Relaxed);
            }
        }
        h.valid_count.store(0, Ordering::Relaxed);
        h.limbo_count.store(0, Ordering::Relaxed);
        h.alloc_cursor.store(0, Ordering::Relaxed);
        h.in_reclaim_queue.store(0, Ordering::Relaxed);
        h.active_owner.store(0, Ordering::Relaxed);
        h.compacting.store(0, Ordering::Relaxed);
    }
}

/// Returns a stable 64-bit identity for a Rust type, stored in block headers
/// to enforce the "one type per block" rule.
pub fn type_id_of<T: 'static>() -> u64 {
    use std::hash::{Hash, Hasher};
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    std::any::TypeId::of::<T>().hash(&mut hasher);
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slot::SlotState;

    #[test]
    fn layout_fits_within_block() {
        for (size, align) in [(1, 1), (8, 8), (56, 8), (144, 16), (1024, 16), (4096, 64)] {
            let l = BlockLayout::rows(size, align).unwrap();
            assert!(l.capacity > 0, "size {size}");
            let end = l.store_offset as usize + l.store_len as usize;
            assert!(end <= BLOCK_SIZE, "size {size}: end {end}");
            assert!(l.slot_stride as usize >= size + 4 || align > 4);
            assert_eq!(l.store_offset as usize % align.max(4), 0);
        }
    }

    #[test]
    fn oversized_object_is_rejected() {
        assert!(matches!(
            BlockLayout::rows(BLOCK_SIZE, 8),
            Err(MemError::ObjectTooLarge { .. })
        ));
    }

    #[test]
    fn hundredish_lineitem_objects_per_block() {
        // A lineitem-like 14-field row is ~150 bytes; the paper's examples
        // assume blocks hosting on the order of a hundred objects (§3.5).
        let l = BlockLayout::rows(152, 16).unwrap();
        assert!(l.capacity >= 100, "capacity {}", l.capacity);
    }

    #[test]
    fn allocate_and_access_slots() {
        let layout = BlockLayout::rows_of::<u64>().unwrap();
        let b = BlockRef::allocate(&layout, type_id_of::<u64>(), 7).unwrap();
        assert_eq!(b.header().context_id, 7);
        assert_eq!(b.header().capacity, layout.capacity);
        // Zeroed block: all slots free, all incarnations zero.
        for slot in [0, 1, layout.capacity - 1] {
            assert_eq!(b.slot_word(slot).state(), SlotState::Free);
            assert_eq!(b.slot_inc(slot).load(Ordering::Relaxed), 0);
        }
        // Write/read an object.
        unsafe { b.obj_ptr(3).cast::<u64>().write(0xfeed) };
        assert_eq!(unsafe { b.obj_ptr(3).cast::<u64>().read() }, 0xfeed);
        // Slot recovery from object pointer.
        assert_eq!(unsafe { b.slot_of_obj_ptr(b.obj_ptr(3)) }, 3);
        unsafe { b.deallocate() };
    }

    #[test]
    fn header_recovered_from_interior_pointer() {
        let layout = BlockLayout::rows_of::<[u8; 100]>().unwrap();
        let b = BlockRef::allocate(&layout, 1, 2).unwrap();
        let p = b.obj_ptr(layout.capacity - 1);
        let b2 = unsafe { BlockRef::from_interior_ptr(p) };
        assert_eq!(b, b2);
        assert_eq!(b2.header().block_id, b.header().block_id);
        unsafe { b.deallocate() };
    }

    #[test]
    fn block_ids_are_unique() {
        let layout = BlockLayout::rows_of::<u32>().unwrap();
        let a = BlockRef::allocate(&layout, 1, 1).unwrap();
        let b = BlockRef::allocate(&layout, 1, 1).unwrap();
        assert_ne!(a.header().block_id, b.header().block_id);
        unsafe {
            a.deallocate();
            b.deallocate();
        }
    }

    #[test]
    fn slots_do_not_overlap() {
        let layout = BlockLayout::rows_of::<[u64; 3]>().unwrap();
        let b = BlockRef::allocate(&layout, 1, 1).unwrap();
        let cap = layout.capacity;
        for slot in 0..cap {
            unsafe { b.obj_ptr(slot).cast::<[u64; 3]>().write([slot as u64; 3]) };
            b.slot_inc(slot).store(slot, Ordering::Relaxed);
        }
        for slot in 0..cap {
            assert_eq!(
                unsafe { b.obj_ptr(slot).cast::<[u64; 3]>().read() },
                [slot as u64; 3]
            );
            assert_eq!(b.slot_inc(slot).load(Ordering::Relaxed), slot);
        }
        unsafe { b.deallocate() };
    }

    #[test]
    fn wipe_preserves_incarnations_but_resets_state() {
        let layout = BlockLayout::rows_of::<u64>().unwrap();
        let b = BlockRef::allocate(&layout, 1, 1).unwrap();
        b.slot_word(0).set_valid();
        b.slot_inc(0).bump();
        b.header().valid_count.store(1, Ordering::Relaxed);
        unsafe { b.wipe() };
        assert_eq!(b.slot_word(0).state(), SlotState::Free);
        assert_eq!(b.slot_inc(0).incarnation(), 1, "incarnation survives wipe");
        assert_eq!(b.header().valid_count.load(Ordering::Relaxed), 0);
        unsafe { b.deallocate() };
    }

    #[test]
    fn columnar_layout_has_no_stride() {
        let l = BlockLayout::columnar(4 + 8 + 16, 16).unwrap();
        assert_eq!(l.slot_stride, 0);
        assert!(l.capacity > 0);
    }

    #[test]
    fn occupancy_and_limbo_fractions() {
        let layout = BlockLayout::rows_of::<u64>().unwrap();
        let b = BlockRef::allocate(&layout, 1, 1).unwrap();
        let cap = b.header().capacity;
        b.header().valid_count.store(cap / 2, Ordering::Relaxed);
        b.header().limbo_count.store(cap / 4, Ordering::Relaxed);
        assert!((b.occupancy() - 0.5).abs() < 0.01);
        assert!((b.limbo_fraction() - 0.25).abs() < 0.01);
        unsafe { b.deallocate() };
    }
}
