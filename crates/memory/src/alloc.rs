//! Sharded lock-free block allocation and size-class slabs.
//!
//! Every `MemoryContext` used to funnel block acquisition through one shared
//! runtime path — a single budget CAS plus a `malloc` per block — which is
//! exactly where the paper's off-heap design (§4) would serialize on
//! multi-core. This module splits the allocation layer into per-thread
//! *allocation shards*:
//!
//! * Each registered thread (epoch thread slot `i`) owns shard `i`: a
//!   **local free list** of recycled 64 KiB blocks with lock-free pop, plus
//!   an **MPSC remote return queue**. A thread allocating a block first pops
//!   its local list; a thread freeing a block it does not own pushes it onto
//!   the owner's remote queue, which the owner drains into its local list on
//!   its next allocation or `Runtime::alloc_maintenance` tick.
//! * The global budget gate (`BlockAllocator::reserve`) is demoted to a
//!   slow path that hands out fresh block ranges in batches of
//!   [`ALLOC_BATCH`]: one budget CAS amortizes over several handouts, and
//!   the extras are parked in the allocating shard's cache.
//! * Under budget pressure the recovery ladder's final rung
//!   (`BlockAllocator::trim`) claws idle shard caches back to the OS.
//!
//! Both stacks use an ownership-transfer discipline that never dereferences
//! a block the thread does not exclusively own: **pop takes the whole chain
//! with one `swap`**, keeps the head, and pushes the remainder back with one
//! CAS. Pushes only write the pushed block's own link word. There is no ABA
//! window and no read of memory another thread could be re-initializing or
//! returning to the OS — which is what keeps the fast paths clean under
//! ThreadSanitizer and exhaustively checkable by `smc-check` (the
//! `remote_free_vs_owner_pop` scenario and the
//! [`Mutation::DropRemoteDrain`]
//! seeded bug).
//!
//! The **size-class slabs** (`SlabAllocator`) serve variable-size payloads
//! (strings, varlen columns) from power-of-two cells (32 B … 4 KiB) carved
//! out of raw budgeted blocks, instead of forcing every byte through one
//! fixed block geometry. Per-class occupancy is surfaced through
//! [`AllocSnapshot`] into `HeapSnapshot`, `Smc::verify`, and `smc-top`.
//!
//! Accounting contract (checked by `Runtime::verify` at quiescence):
//! `budgeted == blocks_live + cached` — every block the allocator holds from
//! the OS is either handed out (`blocks_live`, which includes slab pages) or
//! parked in a shard cache, and the byte budget gates `budgeted`, not just
//! live handouts.

use std::sync::atomic::Ordering;

use crate::block::{raw_dealloc_block, BLOCK_SIZE};
use crate::epoch::MAX_THREADS;
use crate::mutation::{self, Mutation};
use crate::stats::MemoryStats;
use crate::sync::{AtomicBool, AtomicU64, Mutex};

/// Fresh blocks reserved per slow-path budget CAS when sharding is on: one
/// handout plus `ALLOC_BATCH - 1` cache refills (fewer when the budget has
/// less headroom).
pub const ALLOC_BATCH: u64 = 4;

/// Per-shard cap on cached free blocks; frees beyond it go back to the OS.
/// Bounds idle memory at `MAX_SHARD_CACHE * 64 KiB` per allocating thread.
pub const MAX_SHARD_CACHE: u64 = 8;

/// Empty free-list sentinel (no block lives at address 0).
const NO_BLOCK: u64 = 0;

/// The link word threaded through free blocks: the first 8 bytes of a
/// retired block hold the address of the next block in its stack.
///
/// # Safety
/// `addr` must be the base of a raw block allocation exclusively owned by
/// the caller (popped chain) or being pushed by the caller.
unsafe fn link(addr: u64) -> &'static AtomicU64 {
    &*(addr as usize as *const AtomicU64)
}

/// Pushes an owned chain (`first` … `last`, already linked) onto `head`.
/// Lock-free: only the chain's own link word and the head CAS are touched.
fn push_chain(head: &AtomicU64, first: u64, last: u64) {
    loop {
        let cur = head.load(Ordering::Relaxed);
        unsafe { link(last) }.store(cur, Ordering::Relaxed);
        if head
            .compare_exchange_weak(cur, first, Ordering::Release, Ordering::Relaxed)
            .is_ok()
        {
            return;
        }
        crate::sync::cpu_relax();
    }
}

/// Takes the entire chain off `head`, transferring ownership to the caller.
fn take_all(head: &AtomicU64) -> u64 {
    head.swap(NO_BLOCK, Ordering::AcqRel)
}

/// Walks an **owned** chain, returning `(length, tail)`.
fn chain_ends(first: u64) -> (u64, u64) {
    let mut len = 1;
    let mut tail = first;
    loop {
        let next = unsafe { link(tail) }.load(Ordering::Relaxed);
        if next == NO_BLOCK {
            return (len, tail);
        }
        len += 1;
        tail = next;
    }
}

/// One thread's allocation shard. Padded to a cache line so neighbouring
/// shards never false-share.
#[repr(align(64))]
#[derive(Debug)]
struct Shard {
    /// Local free list of recycled blocks (lock-free swap-pop, CAS-push).
    local: AtomicU64,
    /// Remote return queue: blocks freed by non-owner threads (CAS-push),
    /// drained by the owner with one swap.
    remote: AtomicU64,
    /// Blocks parked in this shard (local + remote), advisory gauge for the
    /// cache cap and the trim rung's cheap skip. Uninstrumented: exact only
    /// at quiescence, which is when `Runtime::verify` reads it.
    cached: std::sync::atomic::AtomicU64,
}

impl Shard {
    fn new() -> Shard {
        Shard {
            local: AtomicU64::new(NO_BLOCK),
            remote: AtomicU64::new(NO_BLOCK),
            cached: std::sync::atomic::AtomicU64::new(0),
        }
    }
}

/// The runtime's sharded block allocator (see module docs). One per
/// [`Runtime`](crate::runtime::Runtime); the runtime owns the allocation
/// *policy* (ladder, fault injection, accounting) and this struct owns the
/// shard *mechanics*.
#[derive(Debug)]
pub(crate) struct BlockAllocator {
    shards: Box<[Shard]>,
    /// Blocks currently held from the OS on the budget's account: live
    /// handouts plus shard-cached spares. The byte budget gates this gauge.
    budgeted: AtomicU64,
    /// When false, the allocator degrades to the legacy shared path: batch
    /// size 1, no recycling (frees go straight back to the OS).
    sharded: AtomicBool,
}

impl BlockAllocator {
    pub(crate) fn new() -> BlockAllocator {
        BlockAllocator {
            shards: (0..MAX_THREADS).map(|_| Shard::new()).collect(),
            budgeted: AtomicU64::new(0),
            sharded: AtomicBool::new(true),
        }
    }

    pub(crate) fn is_sharded(&self) -> bool {
        self.sharded.load(Ordering::Relaxed)
    }

    pub(crate) fn set_sharded(&self, on: bool) {
        self.sharded.store(on, Ordering::Relaxed);
    }

    /// Blocks currently reserved against the budget (live + cached).
    pub(crate) fn budgeted_blocks(&self) -> u64 {
        self.budgeted.load(Ordering::Relaxed)
    }

    /// Total blocks parked across all shard caches.
    pub(crate) fn cached_blocks(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.cached.load(Ordering::Relaxed))
            .sum()
    }

    /// Blocks parked in one shard's cache.
    pub(crate) fn shard_cached(&self, idx: usize) -> u64 {
        self.shards[idx].cached.load(Ordering::Relaxed)
    }

    /// Reserves up to `want` fresh blocks against `budget_bytes`
    /// (`u64::MAX` = unlimited). Returns the granted count (0 = budget
    /// exhausted). The CAS makes enforcement exact under concurrent
    /// allocators; partial grants let the batch shrink to the headroom.
    pub(crate) fn reserve(&self, budget_bytes: u64, want: u64) -> u64 {
        loop {
            let cur = self.budgeted.load(Ordering::Relaxed);
            let granted = if budget_bytes == u64::MAX {
                want
            } else {
                want.min((budget_bytes / BLOCK_SIZE as u64).saturating_sub(cur))
            };
            if granted == 0 {
                return 0;
            }
            if self
                .budgeted
                .compare_exchange(cur, cur + granted, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                return granted;
            }
        }
    }

    /// Reserves one block unconditionally (the spill fault-in path, which
    /// must overshoot the budget rather than deadlock; the overshoot
    /// settles as frees route back to the OS while over budget).
    pub(crate) fn force_reserve(&self, n: u64) {
        self.budgeted.fetch_add(n, Ordering::Relaxed);
    }

    /// Returns `n` blocks' worth of budget (memory already freed to OS).
    pub(crate) fn unreserve(&self, n: u64) {
        self.budgeted.fetch_sub(n, Ordering::Relaxed);
    }

    /// Pops one recycled block off shard `idx`'s local free list.
    pub(crate) fn pop_cached(&self, idx: usize) -> Option<u64> {
        let shard = &self.shards[idx];
        let chain = take_all(&shard.local);
        if chain == NO_BLOCK {
            return None;
        }
        let rest = unsafe { link(chain) }.load(Ordering::Relaxed);
        if rest != NO_BLOCK {
            let (_, tail) = chain_ends(rest);
            push_chain(&shard.local, rest, tail);
        }
        shard.cached.fetch_sub(1, Ordering::Relaxed);
        Some(chain)
    }

    /// Parks an owned block on shard `idx`'s local free list (owner-thread
    /// free or batch refill).
    pub(crate) fn push_local(&self, idx: usize, addr: u64) {
        push_chain(&self.shards[idx].local, addr, addr);
        self.shards[idx].cached.fetch_add(1, Ordering::Relaxed);
    }

    /// Pushes a block freed by a non-owner thread onto shard `idx`'s remote
    /// return queue.
    pub(crate) fn push_remote(&self, idx: usize, addr: u64) {
        push_chain(&self.shards[idx].remote, addr, addr);
        self.shards[idx].cached.fetch_add(1, Ordering::Relaxed);
    }

    /// Drains shard `idx`'s remote return queue into its local free list
    /// (owner-only). Returns the number of blocks moved. This is the drain
    /// the seeded [`Mutation::DropRemoteDrain`] bug removes.
    pub(crate) fn drain_remote(&self, idx: usize, stats: &MemoryStats) -> u64 {
        if mutation::enabled(Mutation::DropRemoteDrain) {
            return 0;
        }
        let shard = &self.shards[idx];
        let chain = take_all(&shard.remote);
        if chain == NO_BLOCK {
            return 0;
        }
        let (n, tail) = chain_ends(chain);
        push_chain(&shard.local, chain, tail);
        MemoryStats::add(&stats.remote_frees_drained, n);
        n
    }

    /// The recovery ladder's final rung: returns every shard-cached block to
    /// the OS, freeing their budget reservations. Returns blocks trimmed.
    pub(crate) fn trim(&self, stats: &MemoryStats) -> u64 {
        let mut trimmed = 0u64;
        for shard in self.shards.iter() {
            if shard.cached.load(Ordering::Relaxed) == 0 {
                continue;
            }
            let mut n = 0u64;
            let mut chain = take_all(&shard.local);
            // The mutated protocol loses remote-freed blocks entirely, so
            // the trim rung must not rescue them either.
            if !mutation::enabled(Mutation::DropRemoteDrain) {
                let remote = take_all(&shard.remote);
                if remote != NO_BLOCK {
                    let (_, tail) = chain_ends(remote);
                    unsafe { link(tail) }.store(chain, Ordering::Relaxed);
                    chain = remote;
                }
            }
            while chain != NO_BLOCK {
                let next = unsafe { link(chain) }.load(Ordering::Relaxed);
                unsafe { raw_dealloc_block(chain as usize) };
                chain = next;
                n += 1;
            }
            if n > 0 {
                shard.cached.fetch_sub(n, Ordering::Relaxed);
                self.unreserve(n);
                trimmed += n;
            }
        }
        if trimmed > 0 {
            MemoryStats::add(&stats.blocks_trimmed, trimmed);
        }
        trimmed
    }
}

impl Drop for BlockAllocator {
    fn drop(&mut self) {
        // The runtime is being torn down: no thread can still touch the
        // shards, so every cached block is quiescent.
        for shard in self.shards.iter() {
            for head in [&shard.local, &shard.remote] {
                let mut chain = take_all(head);
                while chain != NO_BLOCK {
                    let next = unsafe { link(chain) }.load(Ordering::Relaxed);
                    unsafe { raw_dealloc_block(chain as usize) };
                    chain = next;
                }
            }
        }
    }
}

// ---- size-class slabs ----------------------------------------------------

/// Smallest slab cell in bytes.
pub const SLAB_MIN_CELL: usize = 32;
/// Largest slab cell in bytes; larger payloads are
/// [`MemError::ObjectTooLarge`](crate::error::MemError::ObjectTooLarge).
pub const SLAB_MAX_CELL: usize = 4096;
/// Number of power-of-two size classes (32, 64, …, 4096).
pub const SLAB_CLASS_COUNT: usize = 8;

/// Cell size of class `class`.
#[inline]
pub(crate) fn slab_cell_size(class: usize) -> usize {
    SLAB_MIN_CELL << class
}

/// Smallest class whose cell fits `len` bytes, or `None` when `len` exceeds
/// [`SLAB_MAX_CELL`].
#[inline]
pub(crate) fn slab_class_for(len: usize) -> Option<usize> {
    if len > SLAB_MAX_CELL {
        return None;
    }
    let cell = len.max(SLAB_MIN_CELL).next_power_of_two();
    Some(cell.trailing_zeros() as usize - SLAB_MIN_CELL.trailing_zeros() as usize)
}

/// Mutable state of one size class, behind its own lock (classes never
/// contend with each other, and the block fast path never touches them).
#[derive(Debug, Default)]
pub(crate) struct ClassState {
    /// Free cell addresses.
    free: Vec<usize>,
    /// Base addresses of the raw budgeted pages this class carved up.
    pages: Vec<usize>,
    /// Cells currently handed out.
    live: u64,
    /// Cells ever handed out (drives the `slab_classes_used` figure).
    allocated_total: u64,
}

/// Power-of-two size-class slab allocator for variable-size payloads (see
/// module docs). Pages are raw budgeted blocks; cells are naturally aligned
/// (page bases are block-aligned, cell sizes are powers of two).
#[derive(Debug)]
pub(crate) struct SlabAllocator {
    classes: [Mutex<ClassState>; SLAB_CLASS_COUNT],
}

impl SlabAllocator {
    pub(crate) fn new() -> SlabAllocator {
        SlabAllocator {
            classes: std::array::from_fn(|_| Mutex::new(ClassState::default())),
        }
    }

    /// Locked access to one class (runtime-side alloc/free policy).
    pub(crate) fn class(&self, class: usize) -> crate::sync::MutexGuard<'_, ClassState> {
        self.classes[class].lock()
    }

    /// Per-class occupancy for snapshots and validators.
    pub(crate) fn occupancy(&self) -> Vec<SlabClassOccupancy> {
        (0..SLAB_CLASS_COUNT)
            .map(|class| {
                let st = self.classes[class].lock();
                let cell = slab_cell_size(class);
                SlabClassOccupancy {
                    cell_size: cell as u32,
                    pages: st.pages.len() as u32,
                    cells_live: st.live,
                    cells_free: st.free.len() as u64,
                    cells_capacity: (st.pages.len() * (BLOCK_SIZE / cell)) as u64,
                    cells_allocated_total: st.allocated_total,
                }
            })
            .collect()
    }
}

impl ClassState {
    /// Carves a fresh raw page into cells of `class`'s size.
    pub(crate) fn add_page(&mut self, class: usize, base: usize) {
        let cell = slab_cell_size(class);
        self.pages.push(base);
        // Reversed so the lowest address pops first.
        for i in (0..BLOCK_SIZE / cell).rev() {
            self.free.push(base + i * cell);
        }
    }

    /// Pops one free cell, if any.
    pub(crate) fn take_cell(&mut self) -> Option<usize> {
        let addr = self.free.pop()?;
        self.live += 1;
        self.allocated_total += 1;
        Some(addr)
    }

    /// Returns a cell to the free list.
    pub(crate) fn put_cell(&mut self, addr: usize) {
        self.free.push(addr);
        self.live -= 1;
    }
}

impl Drop for SlabAllocator {
    fn drop(&mut self) {
        for class in &mut self.classes {
            let st = class.get_mut();
            for &page in &st.pages {
                unsafe { raw_dealloc_block(page) };
            }
        }
    }
}

/// Point-in-time occupancy of one slab size class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlabClassOccupancy {
    /// Cell size in bytes (power of two).
    pub cell_size: u32,
    /// Budgeted pages carved up for this class.
    pub pages: u32,
    /// Cells currently handed out.
    pub cells_live: u64,
    /// Cells on the free list.
    pub cells_free: u64,
    /// Total cells across all pages.
    pub cells_capacity: u64,
    /// Cells ever handed out.
    pub cells_allocated_total: u64,
}

/// Point-in-time view of the allocation layer, carried by
/// [`HeapSnapshot`](crate::inspect::HeapSnapshot) and rendered by `smc-top`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocSnapshot {
    /// Whether the sharded fast path is enabled.
    pub sharded: bool,
    /// Blocks reserved against the budget (live handouts + shard caches).
    pub budgeted_blocks: u64,
    /// Blocks parked across all shard caches.
    pub cached_blocks: u64,
    /// Handouts served from a shard free list (monotonic).
    pub blocks_recycled: u64,
    /// Cross-thread frees pushed to owner return queues (monotonic).
    pub remote_frees: u64,
    /// Remote frees drained by owners (monotonic).
    pub remote_frees_drained: u64,
    /// Per-class slab occupancy.
    pub slab_classes: Vec<SlabClassOccupancy>,
}

impl AllocSnapshot {
    /// Number of slab classes that have ever served a cell.
    pub fn slab_classes_used(&self) -> usize {
        self.slab_classes
            .iter()
            .filter(|c| c.cells_allocated_total > 0)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::MemoryStats;

    #[test]
    fn class_selection_is_tight() {
        assert_eq!(slab_class_for(0), Some(0));
        assert_eq!(slab_class_for(1), Some(0));
        assert_eq!(slab_class_for(32), Some(0));
        assert_eq!(slab_class_for(33), Some(1));
        assert_eq!(slab_class_for(64), Some(1));
        assert_eq!(slab_class_for(2048), Some(6));
        assert_eq!(slab_class_for(2049), Some(7));
        assert_eq!(slab_class_for(4096), Some(7));
        assert_eq!(slab_class_for(4097), None);
        for class in 0..SLAB_CLASS_COUNT {
            assert_eq!(slab_class_for(slab_cell_size(class)), Some(class));
        }
    }

    #[test]
    fn stacks_transfer_ownership_in_lifo_chains() {
        let alloc = BlockAllocator::new();
        let stats = MemoryStats::new();
        let a = crate::block::raw_alloc_block() as u64;
        let b = crate::block::raw_alloc_block() as u64;
        let c = crate::block::raw_alloc_block() as u64;
        alloc.force_reserve(3);
        alloc.push_local(0, a);
        alloc.push_local(0, b);
        alloc.push_remote(0, c);
        assert_eq!(alloc.shard_cached(0), 3);
        assert_eq!(alloc.cached_blocks(), 3);
        // LIFO pop of the local stack.
        assert_eq!(alloc.pop_cached(0), Some(b));
        // Remote drain moves c in front of a.
        assert_eq!(alloc.drain_remote(0, &stats), 1);
        assert_eq!(MemoryStats::get(&stats.remote_frees_drained), 1);
        assert_eq!(alloc.pop_cached(0), Some(c));
        assert_eq!(alloc.pop_cached(0), Some(a));
        assert_eq!(alloc.pop_cached(0), None);
        assert_eq!(alloc.shard_cached(0), 0);
        for addr in [a, b, c] {
            unsafe { crate::block::raw_dealloc_block(addr as usize) };
        }
        alloc.unreserve(3);
        assert_eq!(alloc.budgeted_blocks(), 0);
    }

    #[test]
    fn reserve_grants_partial_batches_exactly() {
        let alloc = BlockAllocator::new();
        let budget = 3 * BLOCK_SIZE as u64;
        assert_eq!(alloc.reserve(budget, ALLOC_BATCH), 3);
        assert_eq!(alloc.reserve(budget, ALLOC_BATCH), 0);
        alloc.unreserve(1);
        assert_eq!(alloc.reserve(budget, ALLOC_BATCH), 1);
        assert_eq!(alloc.reserve(u64::MAX, ALLOC_BATCH), ALLOC_BATCH);
    }

    #[test]
    fn trim_returns_cached_blocks_to_the_budget() {
        let alloc = BlockAllocator::new();
        let stats = MemoryStats::new();
        alloc.force_reserve(2);
        alloc.push_local(1, crate::block::raw_alloc_block() as u64);
        alloc.push_remote(2, crate::block::raw_alloc_block() as u64);
        assert_eq!(alloc.trim(&stats), 2);
        assert_eq!(alloc.budgeted_blocks(), 0);
        assert_eq!(alloc.cached_blocks(), 0);
        assert_eq!(MemoryStats::get(&stats.blocks_trimmed), 2);
        assert_eq!(alloc.trim(&stats), 0, "second trim finds nothing");
    }

    #[test]
    fn allocator_drop_frees_cached_blocks() {
        let alloc = BlockAllocator::new();
        alloc.force_reserve(2);
        alloc.push_local(0, crate::block::raw_alloc_block() as u64);
        alloc.push_remote(3, crate::block::raw_alloc_block() as u64);
        drop(alloc); // must not leak (asserted by miri / leak checkers)
    }

    #[test]
    fn slab_pages_carve_into_cells() {
        let slab = SlabAllocator::new();
        let class = slab_class_for(100).unwrap();
        assert_eq!(slab_cell_size(class), 128);
        {
            let mut st = slab.class(class);
            st.add_page(class, crate::block::raw_alloc_block());
            assert_eq!(st.free.len(), BLOCK_SIZE / 128);
            let a = st.take_cell().unwrap();
            let b = st.take_cell().unwrap();
            assert_eq!(b - a, 128, "cells are contiguous from the page base");
            assert_eq!(a % 128, 0, "cells are naturally aligned");
            st.put_cell(a);
            assert_eq!(st.live, 1);
        }
        let occ = slab.occupancy();
        assert_eq!(occ.len(), SLAB_CLASS_COUNT);
        assert_eq!(occ[class].pages, 1);
        assert_eq!(occ[class].cells_live, 1);
        assert_eq!(occ[class].cells_allocated_total, 2);
        assert_eq!(
            occ[class].cells_free + occ[class].cells_live,
            occ[class].cells_capacity
        );
        // Dropping the slab frees the page.
    }
}
