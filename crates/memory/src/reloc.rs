//! Relocation lists and the cooperative object-move protocol (§5.1).
//!
//! During the *freezing epoch* the compaction thread builds, for every block
//! scheduled for compaction, "a list of all slots that have to be moved and
//! the memory address the slots have to be moved to. This list is accessible
//! through the block's header" (§5.1). During the *moving phase* of the
//! relocation epoch the compaction thread — or any reader that trips over a
//! frozen object and helps (§5.1 case c) — executes the move:
//!
//! 1. atomically acquire the lock bit on the object's indirection-entry
//!    incarnation word;
//! 2. copy the object to its destination slot;
//! 3. install the object's incarnation at the destination, flip the
//!    destination slot to `Valid`, point the destination back-pointer at the
//!    indirection entry and the indirection entry at the destination;
//! 4. turn the source slot into a forwarding tombstone (§6) and mark the
//!    relocation `Succeeded`;
//! 5. release the freeze and lock bits.
//!
//! A reader that cannot yet tolerate relocations (waiting phase, §5.1 case b)
//! instead *bails the relocation out*: it marks the list entry `Failed` and
//! strips the freeze bit, excluding the object from this compaction pass.

use std::sync::atomic::Ordering;

use crate::block::BlockRef;
use crate::incarnation::{FLAG_FORWARD, FLAG_FROZEN, INC_MASK};
use crate::indirection::EntryRef;
use crate::mutation::{self, Mutation};
use crate::slot::SlotId;
use crate::sync::AtomicU32;

/// Outcome state of one scheduled relocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum RelocStatus {
    /// Not yet moved.
    Pending = 0,
    /// Object now lives at its destination.
    Succeeded = 1,
    /// A reader bailed the move out (§5.1 case b); the object stays put for
    /// this pass and will be retried by a later compaction.
    Failed = 2,
}

/// One scheduled object move.
#[derive(Debug)]
pub struct RelocEntry {
    /// Source slot within the block owning this list.
    pub src_slot: SlotId,
    /// Address of the object's indirection entry.
    pub entry_addr: usize,
    /// Incarnation counter of the object at freeze time.
    pub inc: u32,
    /// Address of the destination object data.
    pub dest_obj_addr: usize,
    /// Destination slot id (within the destination block).
    pub dest_slot: SlotId,
    status: AtomicU32,
}

impl RelocEntry {
    /// Creates a pending entry.
    pub fn new(
        src_slot: SlotId,
        entry_addr: usize,
        inc: u32,
        dest_obj_addr: usize,
        dest_slot: SlotId,
    ) -> Self {
        RelocEntry {
            src_slot,
            entry_addr,
            inc,
            dest_obj_addr,
            dest_slot,
            status: AtomicU32::new(RelocStatus::Pending as u32),
        }
    }

    /// Current status.
    pub fn status(&self) -> RelocStatus {
        match self.status.load(Ordering::Acquire) {
            0 => RelocStatus::Pending,
            1 => RelocStatus::Succeeded,
            _ => RelocStatus::Failed,
        }
    }

    fn set_status(&self, s: RelocStatus) {
        self.status.store(s as u32, Ordering::Release);
    }
}

/// The per-block list of scheduled relocations, hung off the block header.
#[derive(Debug)]
pub struct RelocationList {
    /// Size of the object payload being copied, in bytes.
    pub obj_size: u32,
    /// Entries sorted by `src_slot` for binary-search lookup from readers.
    pub entries: Vec<RelocEntry>,
}

impl RelocationList {
    /// Builds a list from entries (sorts them by source slot).
    pub fn new(obj_size: u32, mut entries: Vec<RelocEntry>) -> Self {
        entries.sort_by_key(|e| e.src_slot);
        RelocationList { obj_size, entries }
    }

    /// Finds the relocation entry for `slot`, if that slot is scheduled.
    pub fn find(&self, slot: SlotId) -> Option<&RelocEntry> {
        self.entries
            .binary_search_by_key(&slot, |e| e.src_slot)
            .ok()
            .map(|i| &self.entries[i])
    }

    /// True when every entry has left the `Pending` state.
    pub fn all_settled(&self) -> bool {
        self.entries
            .iter()
            .all(|e| e.status() != RelocStatus::Pending)
    }

    /// Count of entries with the given status.
    pub fn count(&self, s: RelocStatus) -> usize {
        self.entries.iter().filter(|e| e.status() == s).count()
    }
}

/// Result of [`try_move_object`] / [`bail_out_relocation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MoveOutcome {
    /// This call performed the move.
    MovedByUs,
    /// Another thread had already moved the object.
    AlreadyMoved,
    /// The relocation was bailed out; the object remains at the source.
    BailedOut,
    /// The object was freed concurrently; nothing to move.
    Freed,
}

/// Executes (or completes) the relocation described by `reloc` for an object
/// in `src_block`. Called by the compaction thread in the moving phase and
/// by readers that help (§5.1 case c). Idempotent across racing callers: the
/// entry's lock bit serializes them and the status records who won.
///
/// # Safety
/// `src_block` must be the block owning `reloc`; the destination addresses in
/// `reloc` must point into a live destination block of identical object
/// layout; the indirection table must be alive.
pub unsafe fn try_move_object(src_block: BlockRef, reloc: &RelocEntry) -> MoveOutcome {
    let entry = EntryRef::from_addr(reloc.entry_addr);
    let entry_inc = entry.get().inc();
    // Serialize against other movers / bailers / free.
    let locked = if mutation::enabled(Mutation::MoveSkipsLock) {
        // Re-introduced bug: skip the entry lock bit, only checking liveness,
        // so two movers can both believe they won the race.
        if entry_inc.incarnation() != reloc.inc & INC_MASK {
            return MoveOutcome::Freed;
        }
        false
    } else {
        if entry_inc.lock(reloc.inc).is_none() {
            return MoveOutcome::Freed;
        }
        true
    };
    match reloc.status() {
        RelocStatus::Succeeded => {
            // Winner already cleared FROZEN; just drop our lock.
            if locked {
                entry_inc.unlock_with_flags(0);
            }
            MoveOutcome::AlreadyMoved
        }
        RelocStatus::Failed => {
            if locked {
                entry_inc.unlock_with_flags(0);
            }
            MoveOutcome::BailedOut
        }
        RelocStatus::Pending => {
            let src = src_block.obj_ptr(reloc.src_slot);
            let dest = reloc.dest_obj_addr as *mut u8;
            std::ptr::copy_nonoverlapping(src, dest, reloc.obj_size(src_block));
            let dest_block = BlockRef::from_interior_ptr(dest);
            // The slot-side incarnation is an independent counter from the
            // entry's (`reloc.inc`); direct pointers (§6) validate against
            // the slot side, so the *slot* counter is what must survive the
            // move. Holding the entry lock with status Pending pins the
            // source slot (no free, no other mover), so this read is stable.
            let slot_inc = if mutation::enabled(Mutation::SlotVsEntryInc) {
                // Re-introduced PR 1 bug: install the *entry-side* counter at
                // the destination slot; direct pointers then mis-validate.
                reloc.inc & INC_MASK
            } else {
                src_block.slot_inc(reloc.src_slot).load(Ordering::Acquire) & INC_MASK
            };
            // Install identity at the destination: incarnation, back-pointer,
            // slot-directory Valid.
            dest_block
                .slot_inc(reloc.dest_slot)
                .store(slot_inc, Ordering::Release);
            dest_block
                .back_ptr(reloc.dest_slot)
                .store(reloc.entry_addr, Ordering::Release);
            dest_block.slot_word(reloc.dest_slot).set_valid();
            dest_block
                .header()
                .valid_count
                .fetch_add(1, Ordering::Relaxed);
            // Repoint the indirection entry — the single atomic step that
            // redirects every (indirect) reference (§5.1).
            entry.get().store_payload(dest as usize, Ordering::Release);
            // Tombstone the source slot for direct pointers (§6): keep the
            // incarnation, set FORWARD, clear FROZEN.
            src_block
                .slot_inc(reloc.src_slot)
                .store(slot_inc | FLAG_FORWARD, Ordering::Release);
            // The source slot no longer holds the object.
            let epoch_hint = 0; // retired blocks are reclaimed wholesale
            src_block.slot_word(reloc.src_slot).set_limbo(epoch_hint);
            src_block
                .header()
                .valid_count
                .fetch_sub(1, Ordering::Relaxed);
            reloc.set_status(RelocStatus::Succeeded);
            if locked {
                entry_inc.unlock_with_flags(0);
            }
            smc_obs::trace::emit(smc_obs::Event::ObjectRelocated {
                src_slot: reloc.src_slot as u64,
                dest_slot: reloc.dest_slot as u64,
            });
            MoveOutcome::MovedByUs
        }
    }
}

/// Bails out the relocation of one object (§5.1 case b): the reader cannot
/// tolerate a move yet, and the mover is not allowed to proceed either, so
/// the relocation is cancelled for this pass.
///
/// # Safety
/// Same contract as [`try_move_object`].
pub unsafe fn bail_out_relocation(src_block: BlockRef, reloc: &RelocEntry) -> MoveOutcome {
    let entry = EntryRef::from_addr(reloc.entry_addr);
    let entry_inc = entry.get().inc();
    let Some(_locked) = entry_inc.lock(reloc.inc) else {
        return MoveOutcome::Freed;
    };
    match reloc.status() {
        RelocStatus::Succeeded => {
            entry_inc.unlock_with_flags(0);
            MoveOutcome::AlreadyMoved
        }
        RelocStatus::Failed => {
            entry_inc.unlock_with_flags(0);
            MoveOutcome::BailedOut
        }
        RelocStatus::Pending => {
            reloc.set_status(RelocStatus::Failed);
            // Clear freeze on the source slot word too, so direct readers
            // stop taking the slow path. Holding the entry lock with status
            // Pending proves the object still sits in the source slot (a
            // free would have bumped the entry counter and failed our lock;
            // a mover needs the lock we hold), so the slot word is ours to
            // unfreeze regardless of how its counter relates to the entry's
            // — the two incarnations are independent counters.
            if !mutation::enabled(Mutation::BailKeepsFrozen) {
                // Re-introduced bug (`BailKeepsFrozen`) skips this unfreeze,
                // wedging readers that wait for the freeze to resolve.
                let slot_inc = src_block.slot_inc(reloc.src_slot);
                let cur = slot_inc.load(Ordering::Acquire);
                if cur & FLAG_FROZEN != 0 {
                    slot_inc.store(cur & !FLAG_FROZEN, Ordering::Release);
                }
            }
            entry_inc.unlock_with_flags(0);
            smc_obs::trace::emit(smc_obs::Event::RelocationBailed {
                src_slot: reloc.src_slot as u64,
            });
            MoveOutcome::BailedOut
        }
    }
}

/// Cancels one scheduled relocation on behalf of a compaction pass that is
/// being torn down — a watchdog-cancelled pass, a coordinator `cancel()`, or
/// the pass epilogue rolling back entries an interrupted mover left
/// `Pending`. The rollback *is* the §5.1 bail path: the entry lock
/// serializes the cancel against in-flight movers, the entry settles
/// `Failed`, and the freeze is stripped from both incarnation words so the
/// object stays put, fully thawed, and retriable by a later pass.
///
/// # Safety
/// Same contract as [`try_move_object`].
pub unsafe fn cancel_relocation(src_block: BlockRef, reloc: &RelocEntry) -> MoveOutcome {
    if mutation::enabled(Mutation::CancelSkipsBailRollback) {
        // Re-introduced bug (`CancelSkipsBailRollback`): settle the entry
        // without the locked bail rollback. The slot and entry stay frozen
        // (readers wedge on the §5.1 slow path), and a mover holding the
        // entry lock can still complete the move the cancel claims it
        // prevented.
        if reloc.status() == RelocStatus::Pending {
            reloc.set_status(RelocStatus::Failed);
        }
        return MoveOutcome::BailedOut;
    }
    bail_out_relocation(src_block, reloc)
}

impl RelocEntry {
    fn obj_size(&self, src_block: BlockRef) -> usize {
        // The object size travels with the list; reach it through the header.
        let list = src_block.header().reloc_list.load(Ordering::Acquire);
        debug_assert!(!list.is_null());
        unsafe { (*list).obj_size as usize }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{type_id_of, BlockLayout};
    use crate::incarnation::FLAG_LOCK;
    use crate::indirection::IndirectionTable;
    use crate::slot::SlotState;

    fn setup_pair() -> (BlockRef, BlockRef, IndirectionTable) {
        let layout = BlockLayout::rows_of::<u64>().unwrap();
        let src = BlockRef::allocate(&layout, type_id_of::<u64>(), 1).unwrap();
        let dst = BlockRef::allocate(&layout, type_id_of::<u64>(), 1).unwrap();
        (src, dst, IndirectionTable::new())
    }

    /// Puts a value object at src slot `s` and wires up an indirection entry.
    unsafe fn install(src: BlockRef, table: &IndirectionTable, s: SlotId, v: u64) -> EntryRef {
        let e = table.allocate(0);
        src.obj_ptr(s).cast::<u64>().write(v);
        src.slot_word(s).set_valid();
        src.back_ptr(s).store(e.addr(), Ordering::Release);
        src.header().valid_count.fetch_add(1, Ordering::Relaxed);
        e.get()
            .store_payload(src.obj_ptr(s) as usize, Ordering::Release);
        e
    }

    fn freeze(e: EntryRef, src: BlockRef, s: SlotId, inc: u32) {
        assert!(e.get().inc().try_set_flag(inc, FLAG_FROZEN));
        assert!(src.slot_inc(s).try_set_flag(inc, FLAG_FROZEN));
    }

    #[test]
    fn move_relocates_object_and_tombstones_source() {
        let (src, dst, table) = setup_pair();
        unsafe {
            let e = install(src, &table, 5, 12345);
            freeze(e, src, 5, 0);
            let reloc = RelocEntry::new(5, e.addr(), 0, dst.obj_ptr(9) as usize, 9);
            let list = Box::new(RelocationList::new(8, vec![]));
            src.header()
                .reloc_list
                .store(Box::into_raw(list), Ordering::Release);

            assert_eq!(try_move_object(src, &reloc), MoveOutcome::MovedByUs);
            // Destination holds the object, valid, right incarnation/backptr.
            assert_eq!(dst.obj_ptr(9).cast::<u64>().read(), 12345);
            assert_eq!(dst.slot_word(9).state(), SlotState::Valid);
            assert_eq!(dst.back_ptr(9).load(Ordering::Acquire), e.addr());
            // Entry repointed.
            assert_eq!(
                e.get().load_payload(Ordering::Acquire),
                dst.obj_ptr(9) as usize
            );
            // Entry flags cleared; source slot is a forwarding tombstone.
            assert_eq!(e.get().inc().load(Ordering::Acquire), 0);
            let src_word = src.slot_inc(5).load(Ordering::Acquire);
            assert_ne!(src_word & FLAG_FORWARD, 0);
            assert_eq!(src_word & (FLAG_FROZEN | FLAG_LOCK), 0);
            assert_eq!(src.slot_word(5).state(), SlotState::Limbo);
            assert_eq!(reloc.status(), RelocStatus::Succeeded);

            src.deallocate();
            dst.deallocate();
        }
    }

    #[test]
    fn second_mover_sees_already_moved() {
        let (src, dst, table) = setup_pair();
        unsafe {
            let e = install(src, &table, 0, 7);
            freeze(e, src, 0, 0);
            let reloc = RelocEntry::new(0, e.addr(), 0, dst.obj_ptr(0) as usize, 0);
            let list = Box::new(RelocationList::new(8, vec![]));
            src.header()
                .reloc_list
                .store(Box::into_raw(list), Ordering::Release);
            assert_eq!(try_move_object(src, &reloc), MoveOutcome::MovedByUs);
            assert_eq!(try_move_object(src, &reloc), MoveOutcome::AlreadyMoved);
            src.deallocate();
            dst.deallocate();
        }
    }

    #[test]
    fn bail_out_cancels_pending_move() {
        let (src, dst, table) = setup_pair();
        unsafe {
            let e = install(src, &table, 3, 99);
            freeze(e, src, 3, 0);
            let reloc = RelocEntry::new(3, e.addr(), 0, dst.obj_ptr(0) as usize, 0);
            assert_eq!(bail_out_relocation(src, &reloc), MoveOutcome::BailedOut);
            assert_eq!(reloc.status(), RelocStatus::Failed);
            // Freeze bits stripped; object untouched at the source.
            assert_eq!(e.get().inc().load(Ordering::Acquire), 0);
            assert_eq!(src.slot_inc(3).load(Ordering::Acquire), 0);
            assert_eq!(src.obj_ptr(3).cast::<u64>().read(), 99);
            // A later mover must respect the bail-out.
            assert_eq!(try_move_object(src, &reloc), MoveOutcome::BailedOut);
            src.deallocate();
            dst.deallocate();
        }
    }

    #[test]
    fn move_after_concurrent_free_is_refused() {
        let (src, dst, table) = setup_pair();
        unsafe {
            let e = install(src, &table, 1, 1);
            freeze(e, src, 1, 0);
            // Concurrent free: bump the entry incarnation.
            e.get().inc().bump();
            let reloc = RelocEntry::new(1, e.addr(), 0, dst.obj_ptr(0) as usize, 0);
            assert_eq!(try_move_object(src, &reloc), MoveOutcome::Freed);
            src.deallocate();
            dst.deallocate();
        }
    }

    #[test]
    fn list_lookup_by_slot() {
        let entries = vec![
            RelocEntry::new(9, 0x10, 0, 0x100, 0),
            RelocEntry::new(2, 0x20, 0, 0x200, 1),
            RelocEntry::new(5, 0x30, 0, 0x300, 2),
        ];
        let list = RelocationList::new(8, entries);
        assert_eq!(list.find(2).unwrap().entry_addr, 0x20);
        assert_eq!(list.find(5).unwrap().entry_addr, 0x30);
        assert_eq!(list.find(9).unwrap().entry_addr, 0x10);
        assert!(list.find(7).is_none());
        assert!(!list.all_settled());
        assert_eq!(list.count(RelocStatus::Pending), 3);
    }

    #[test]
    fn concurrent_helpers_race_one_winner() {
        for _ in 0..50 {
            let (src, dst, table) = setup_pair();
            unsafe {
                let e = install(src, &table, 4, 4242);
                freeze(e, src, 4, 0);
                let reloc = std::sync::Arc::new(RelocEntry::new(
                    4,
                    e.addr(),
                    0,
                    dst.obj_ptr(7) as usize,
                    7,
                ));
                let list = Box::new(RelocationList::new(8, vec![]));
                src.header()
                    .reloc_list
                    .store(Box::into_raw(list), Ordering::Release);

                let r2 = reloc.clone();
                let src2 = src;
                let t = std::thread::spawn(move || try_move_object(src2, &r2));
                let a = try_move_object(src, &reloc);
                let b = t.join().unwrap();
                let moved = [a, b]
                    .iter()
                    .filter(|o| **o == MoveOutcome::MovedByUs)
                    .count();
                assert_eq!(moved, 1, "exactly one mover wins: {a:?} {b:?}");
                assert_eq!(dst.obj_ptr(7).cast::<u64>().read(), 4242);
                src.deallocate();
                dst.deallocate();
            }
        }
    }
}
