//! # smc-memory — type-safe manual memory management
//!
//! This crate implements the manual memory management system of §3 of
//! *Self-managed collections: Off-heap memory management for scalable
//! query-dominated collections* (Nagel et al., EDBT 2017).
//!
//! The design, mirroring the paper:
//!
//! * **Typed memory blocks** ([`block`]): objects are allocated from
//!   unmanaged, block-size-aligned memory blocks; each block serves objects of
//!   exactly one type, so slot positions are stable for the lifetime of the
//!   block and the block header can be recovered from any interior pointer
//!   with one mask operation.
//! * **Slot directory** ([`slot`]): per-slot state (`Free`/`Valid`/`Limbo`)
//!   plus the removal epoch, packed into 32 bits, stored densely so
//!   enumeration can skip dead slots without touching object data.
//! * **Incarnation numbers** ([`incarnation`]): a 32-bit word per object slot
//!   and per indirection entry that detects use-after-free; its top bits carry
//!   the `FROZEN`, `LOCK` and `FORWARD` flags used by concurrent compaction
//!   (§5) and direct pointers (§6).
//! * **Indirection table** ([`indirection`]): references point at a stable
//!   table entry which in turn points at the object's current slot, allowing
//!   objects to be relocated by a single atomic pointer store.
//! * **Epoch-based reclamation** ([`epoch`]): readers enter *critical
//!   sections* (grace periods); memory freed in global epoch `e` is reused no
//!   earlier than epoch `e + 2`, when no thread can still observe it.
//! * **Memory contexts** ([`context`]): per-collection groups of blocks that
//!   give collections control over object placement and enumeration order.
//! * **Heap introspection** ([`inspect`]): lock-free, epoch-consistent
//!   [`HeapSnapshot`]s of live contexts — per-block occupancy, limbo dead
//!   space, holes, incarnation churn, indirection-table load and epoch lag —
//!   taken without stopping writers (the observatory behind `smc-top`).
//!
//! The self-managed collection type itself lives in the `smc` crate, layered
//! on top of this one.
//!
//! ## Safety model
//!
//! The crate reproduces the paper's guarantee: a reference always refers to
//! an instance of the same type, and that instance is either the one assigned
//! to the reference or, once the instance was removed from its collection,
//! *null* (rendered as `None` in Rust). Dereferencing requires an epoch
//! [`Guard`]; the incarnation check at dereference time is the
//! point at which the guarantee is anchored (§3.4).
//!
//! ## Example: a runtime and an epoch critical section
//!
//! ```
//! use smc_memory::Runtime;
//!
//! let rt = Runtime::new();
//! let before = rt.global_epoch();
//! {
//!     let guard = rt.pin(); // enter a critical section (§3.4)
//!     assert!(guard.epoch() >= before);
//! } // leaving the section lets the global epoch advance past it
//! ```

#![warn(missing_docs)]

pub mod alloc;
pub mod block;
pub mod context;
pub mod decimal;
pub mod epoch;
pub mod error;
pub mod fault;
pub mod incarnation;
pub mod indirection;
pub mod inline_str;
pub mod inspect;
pub mod mutation;
pub mod reloc;
pub mod runtime;
pub mod slot;
pub mod spill;
pub mod stats;
pub mod sync;
pub mod tabular;
pub mod verify;

pub use alloc::{AllocSnapshot, SlabClassOccupancy, ALLOC_BATCH, MAX_SHARD_CACHE, SLAB_MAX_CELL};
pub use block::{BlockHeader, BlockLayout, BLOCK_ALIGN, BLOCK_SIZE};
pub use context::{ContextConfig, MemoryContext, Morsel};
pub use decimal::Decimal;
pub use epoch::{EpochManager, Guard};
pub use error::{MemError, NullReference};
pub use fault::{FaultInjector, FaultSite};
pub use incarnation::{IncWord, FLAG_FORWARD, FLAG_FROZEN, FLAG_LOCK, INC_MASK};
pub use indirection::{EntryRef, IndirEntry, IndirectionTable};
pub use inline_str::InlineStr;
pub use inspect::{BlockSnapshot, CollectionSnapshot, HeapSnapshot, IndirectionLoad, Watermark};
pub use runtime::Runtime;
pub use slot::{SlotId, SlotState};
pub use spill::{MemoryPageStore, PageStore, SpillIoError};
pub use stats::MemoryStats;
pub use tabular::Tabular;
pub use verify::VerifyReport;
