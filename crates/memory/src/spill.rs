//! Block spill and fault-in — the residency layer of the persistence tier.
//!
//! A context with a byte budget smaller than its dataset can *spill* cold
//! blocks to a [`PageStore`] (a heapfile, see `smc-persist`) and *fault*
//! them back in on first touch. Spilling is a new rung on the PR 1 OOM
//! ladder: when the per-context budget gate would reject a fresh block, the
//! allocator first tries to evict one resident block to the store, which
//! frees exactly the footprint the fresh block needs.
//!
//! ## How a spilled object stays reachable
//!
//! The indirection table is the paper's one level of indirection (§3.2), and
//! spill rides it. Row payloads are always 4-byte aligned (`BlockLayout`
//! guarantees stride and object offset are multiples of 4), so bit 0 of an
//! entry payload is free. A spilled object's entry keeps its incarnation —
//! references stay valid — but its payload becomes a *tagged stub pointer*:
//! `Box<SpillStub> | SPILL_TAG`. Dereference ([`Ref::resolve`] in
//! `smc-core`) sees the tag, calls [`fault_in_tagged`], and retries; free
//! ([`MemoryContext::try_free`]) does the same. The stub carries a weak
//! context handle plus the spilled block id, which is all a bare entry
//! payload needs to find its way home.
//!
//! Fault-in loads the page, verifies its checksum (failing **closed** with
//! [`crate::error::MemError::SpillFault`] on any corruption — a torn page never becomes a
//! partial heap), copies every record into a *fresh* block and repoints the
//! entries. Stubs are freed through an epoch graveyard: a reader pinned at
//! epoch `e` may still dereference a stub it loaded before the fault-in, so
//! the box is buried until `e + 2`, exactly like a block.
//!
//! ## Scans
//!
//! Enumerations must not thrash: a scan over a larger-than-budget dataset
//! would otherwise fault every page back in and spill another to make room.
//! `Smc::for_each` therefore walks spilled pages *first*, streaming records
//! out of a transient read buffer without promoting them to residency, and
//! takes its membership snapshot under the same spill mutex — a page and its
//! resident reincarnation can never both be visited.
//!
//! [`Ref::resolve`]: https://docs.rs/smc
//! [`MemoryContext::try_free`]: crate::context::MemoryContext::try_free

use std::cell::Cell;
use std::fmt;
use std::sync::{Arc, Weak};

use crate::context::MemoryContext;
use crate::slot::SlotId;

/// Bit 0 of an indirection-entry payload marks a spilled object. Row object
/// pointers are always 4-byte aligned (see `BlockLayout::rows`), so the bit
/// is never set on a resident payload.
pub const SPILL_TAG: usize = 1;

/// True when an entry payload is a tagged `SpillStub` pointer rather than
/// a resident object address.
#[inline]
pub fn is_spill_tagged(payload: usize) -> bool {
    payload & SPILL_TAG != 0
}

/// An I/O failure reported by a [`PageStore`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpillIoError(pub String);

impl fmt::Display for SpillIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "page store error: {}", self.0)
    }
}

impl std::error::Error for SpillIoError {}

/// Backing storage for spilled pages — implemented by `smc-persist`'s
/// heapfile (`SpillFile`) and by [`MemoryPageStore`] for tests.
///
/// A *page* is an opaque byte string (the encoded record set of one block).
/// `store_page` returns a ticket the context presents to `load_page` and
/// `discard_page`; stores may recycle ticket slots after a discard.
pub trait PageStore: Send + Sync + fmt::Debug {
    /// Persists one page and returns its ticket. Must not return until the
    /// bytes are durably readable back — the context declares the block
    /// spilled (and frees its memory) only after this succeeds.
    fn store_page(&self, block_id: u64, bytes: &[u8]) -> Result<u64, SpillIoError>;

    /// Reads the page behind `ticket` into `out` (replacing its contents).
    fn load_page(&self, ticket: u64, block_id: u64, out: &mut Vec<u8>) -> Result<(), SpillIoError>;

    /// Releases the page behind `ticket`; the ticket may be reused.
    fn discard_page(&self, ticket: u64);
}

/// In-memory [`PageStore`] for tests and benchmarks: pages live in a vector
/// of byte strings, tickets are indices with free-slot recycling.
#[derive(Debug, Default)]
pub struct MemoryPageStore {
    inner: std::sync::Mutex<MemoryPages>,
    /// When true, the next `store_page` fails (exercises rollback paths).
    fail_next_store: std::sync::atomic::AtomicBool,
    /// When true, every `load_page` fails (exercises fail-closed paths).
    fail_loads: std::sync::atomic::AtomicBool,
}

#[derive(Debug, Default)]
struct MemoryPages {
    pages: Vec<Option<(u64, Vec<u8>)>>,
    free: Vec<usize>,
}

impl MemoryPageStore {
    /// An empty store.
    pub fn new() -> MemoryPageStore {
        MemoryPageStore::default()
    }

    /// Number of pages currently stored.
    pub fn len(&self) -> usize {
        let inner = self.inner.lock().unwrap();
        inner.pages.iter().filter(|p| p.is_some()).count()
    }

    /// True when no pages are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Makes the next `store_page` call fail (then auto-rearms to success).
    pub fn fail_next_store(&self) {
        self.fail_next_store
            .store(true, std::sync::atomic::Ordering::Relaxed);
    }

    /// Makes every `load_page` call fail until called with `false`.
    pub fn set_fail_loads(&self, fail: bool) {
        self.fail_loads
            .store(fail, std::sync::atomic::Ordering::Relaxed);
    }

    /// Flips one byte of the stored page behind `ticket` (torn-write test
    /// helper); returns false if the ticket holds no page.
    pub fn corrupt_page(&self, ticket: u64) -> bool {
        let mut inner = self.inner.lock().unwrap();
        match inner
            .pages
            .get_mut(ticket as usize)
            .and_then(|p| p.as_mut())
        {
            Some((_, bytes)) if !bytes.is_empty() => {
                let mid = bytes.len() / 2;
                bytes[mid] ^= 0xff;
                true
            }
            _ => false,
        }
    }
}

impl PageStore for MemoryPageStore {
    fn store_page(&self, block_id: u64, bytes: &[u8]) -> Result<u64, SpillIoError> {
        if self
            .fail_next_store
            .swap(false, std::sync::atomic::Ordering::Relaxed)
        {
            return Err(SpillIoError("injected store failure".into()));
        }
        let mut inner = self.inner.lock().unwrap();
        let page = Some((block_id, bytes.to_vec()));
        match inner.free.pop() {
            Some(i) => {
                inner.pages[i] = page;
                Ok(i as u64)
            }
            None => {
                inner.pages.push(page);
                Ok(inner.pages.len() as u64 - 1)
            }
        }
    }

    fn load_page(&self, ticket: u64, block_id: u64, out: &mut Vec<u8>) -> Result<(), SpillIoError> {
        if self.fail_loads.load(std::sync::atomic::Ordering::Relaxed) {
            return Err(SpillIoError("injected load failure".into()));
        }
        let inner = self.inner.lock().unwrap();
        match inner.pages.get(ticket as usize).and_then(|p| p.as_ref()) {
            Some((id, bytes)) if *id == block_id => {
                out.clear();
                out.extend_from_slice(bytes);
                Ok(())
            }
            Some(_) => Err(SpillIoError(format!(
                "ticket {ticket} holds a different block"
            ))),
            None => Err(SpillIoError(format!("no page behind ticket {ticket}"))),
        }
    }

    fn discard_page(&self, ticket: u64) {
        let mut inner = self.inner.lock().unwrap();
        if let Some(p) = inner.pages.get_mut(ticket as usize) {
            if p.take().is_some() {
                inner.free.push(ticket as usize);
            }
        }
    }
}

/// What a tagged entry payload points at: enough to route a bare
/// dereference back to its context and spilled block. One stub is shared by
/// every entry of a spilled page; it is freed through the runtime's stub
/// graveyard two epochs after the page faults back in.
#[derive(Debug)]
pub(crate) struct SpillStub {
    /// The owning context (weak: a stub must not keep a dropped collection
    /// alive; upgrade failure renders the reference null).
    pub(crate) ctx: Weak<MemoryContext>,
    /// The spilled block's id, key into the context's page list.
    pub(crate) block_id: u64,
}

/// Bookkeeping for one spilled block.
#[derive(Debug)]
pub(crate) struct SpilledPage {
    /// Id of the (now buried) source block.
    pub(crate) block_id: u64,
    /// The store's handle for the page bytes.
    pub(crate) ticket: u64,
    /// The tagged stub pointer installed in every member entry's payload.
    pub(crate) tag: usize,
    /// `(entry_addr, source_slot)` per record, in page order.
    pub(crate) entries: Vec<(usize, SlotId)>,
}

/// Per-context spill state, behind one mutex: the store handle, a weak
/// self-reference (stubs need `Weak<MemoryContext>`), and the page list.
#[derive(Debug, Default)]
pub(crate) struct SpillState {
    pub(crate) store: Option<Arc<dyn PageStore>>,
    pub(crate) this: Weak<MemoryContext>,
    pub(crate) pages: Vec<SpilledPage>,
}

// ---------------------------------------------------------------------
// Page codec
// ---------------------------------------------------------------------

/// Magic prefix of an encoded spill page ("SMCPAGE1").
const PAGE_MAGIC: u64 = 0x534d_4350_4147_4531;

/// FNV-1a 64-bit hash — the checksum of spill pages and snapshot pages
/// (`smc-persist` reuses it so both tiers share one integrity primitive).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Errors from [`decode_page`]. Internal: the fault path maps every variant
/// to [`MemError::SpillFault`](crate::error::MemError::SpillFault).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PageError {
    Truncated,
    BadMagic,
    BadBlockId,
    BadObjSize,
    Checksum,
}

/// Encodes one page: header, `n` records of `entry_addr || obj bytes`, and
/// a trailing FNV-1a checksum over everything before it.
pub(crate) fn encode_page(
    block_id: u64,
    obj_size: usize,
    entry_addrs: &[(usize, SlotId)],
    objs: &[u8],
) -> Vec<u8> {
    debug_assert_eq!(objs.len(), entry_addrs.len() * obj_size);
    let mut out = Vec::with_capacity(32 + entry_addrs.len() * (8 + obj_size) + 8);
    out.extend_from_slice(&PAGE_MAGIC.to_le_bytes());
    out.extend_from_slice(&block_id.to_le_bytes());
    out.extend_from_slice(&(obj_size as u64).to_le_bytes());
    out.extend_from_slice(&(entry_addrs.len() as u64).to_le_bytes());
    for (i, &(addr, _slot)) in entry_addrs.iter().enumerate() {
        out.extend_from_slice(&(addr as u64).to_le_bytes());
        out.extend_from_slice(&objs[i * obj_size..(i + 1) * obj_size]);
    }
    let sum = fnv1a64(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

fn read_u64(bytes: &[u8], off: usize) -> Option<u64> {
    bytes
        .get(off..off + 8)
        .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
}

/// Decodes and verifies one page, returning `(entry_addr, obj_bytes)` per
/// record. Any truncation or corruption is an error — never a partial page.
pub(crate) fn decode_page(
    bytes: &[u8],
    expect_block_id: u64,
    expect_obj_size: u64,
) -> Result<Vec<(u64, &[u8])>, PageError> {
    if bytes.len() < 40 {
        return Err(PageError::Truncated);
    }
    let body_len = bytes.len() - 8;
    let sum = read_u64(bytes, body_len).ok_or(PageError::Truncated)?;
    if fnv1a64(&bytes[..body_len]) != sum {
        return Err(PageError::Checksum);
    }
    if read_u64(bytes, 0) != Some(PAGE_MAGIC) {
        return Err(PageError::BadMagic);
    }
    if read_u64(bytes, 8) != Some(expect_block_id) {
        return Err(PageError::BadBlockId);
    }
    if read_u64(bytes, 16) != Some(expect_obj_size) {
        return Err(PageError::BadObjSize);
    }
    let n = read_u64(bytes, 24).ok_or(PageError::Truncated)? as usize;
    let obj_size = expect_obj_size as usize;
    let rec = 8 + obj_size;
    if body_len != 32 + n * rec {
        return Err(PageError::Truncated);
    }
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let off = 32 + i * rec;
        let addr = read_u64(bytes, off).ok_or(PageError::Truncated)?;
        out.push((addr, &bytes[off + 8..off + rec]));
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Scan re-entrancy guard
// ---------------------------------------------------------------------

thread_local! {
    /// Depth of spill-page walks on this thread. While non-zero, the thread
    /// holds the spill mutex of some context: fault-in and spill must not be
    /// attempted (self-deadlock), and nested scans fall back to
    /// resident-only enumeration.
    static IN_SPILL_SCAN: Cell<u32> = const { Cell::new(0) };
}

/// True while this thread is inside a spill-page walk (and therefore holds
/// a spill mutex).
pub(crate) fn in_spill_scan() -> bool {
    IN_SPILL_SCAN.with(|c| c.get() > 0)
}

/// RAII marker for a spill-page walk.
pub(crate) struct SpillScanGuard;

impl SpillScanGuard {
    pub(crate) fn enter() -> SpillScanGuard {
        IN_SPILL_SCAN.with(|c| c.set(c.get() + 1));
        SpillScanGuard
    }
}

impl Drop for SpillScanGuard {
    fn drop(&mut self) {
        IN_SPILL_SCAN.with(|c| c.set(c.get() - 1));
    }
}

// ---------------------------------------------------------------------
// Dereference hook
// ---------------------------------------------------------------------

/// Faults in the block behind a tagged entry payload. Called by `smc-core`'s
/// `Ref::resolve` when it observes [`SPILL_TAG`]; returns true when the
/// caller should re-read the entry payload (the object may now be resident),
/// false when the reference is dead or the page is unreadable (fail closed).
///
/// # Safety contract (checked by construction, not by this signature)
///
/// `payload` must have been loaded from an indirection entry *while the
/// calling thread holds an epoch guard*: stubs are freed through the epoch
/// graveyard, so a pinned reader's stub pointer stays dereferenceable.
pub fn fault_in_tagged(payload: usize) -> bool {
    debug_assert!(is_spill_tagged(payload));
    let stub = unsafe { &*((payload & !SPILL_TAG) as *const SpillStub) };
    let Some(ctx) = stub.ctx.upgrade() else {
        return false; // collection dropped: the reference is null
    };
    ctx.fault_in_block(stub.block_id).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn page_roundtrip() {
        let objs: Vec<u8> = (0..32u8).collect();
        let entries = vec![(0x1000usize, 0u32), (0x2000, 1), (0x3000, 7), (0x4000, 9)];
        let page = encode_page(42, 8, &entries, &objs);
        let records = decode_page(&page, 42, 8).unwrap();
        assert_eq!(records.len(), 4);
        assert_eq!(records[0].0, 0x1000);
        assert_eq!(records[2].0, 0x3000);
        assert_eq!(records[3].1, &objs[24..32]);
    }

    #[test]
    fn page_decode_fails_closed() {
        let objs = vec![7u8; 16];
        let entries = vec![(0x10usize, 0u32), (0x20, 1)];
        let good = encode_page(5, 8, &entries, &objs);
        // Truncation at every prefix length must error, never panic.
        for cut in 0..good.len() {
            assert!(decode_page(&good[..cut], 5, 8).is_err(), "cut at {cut}");
        }
        // Single-byte corruption anywhere must be caught by the checksum
        // (or by a failed field check — either way, an error).
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x01;
            assert!(decode_page(&bad, 5, 8).is_err(), "corrupt byte {i}");
        }
        // Mismatched expectations are named errors.
        assert_eq!(decode_page(&good, 6, 8), Err(PageError::BadBlockId));
        assert_eq!(decode_page(&good, 5, 16), Err(PageError::BadObjSize));
        assert!(decode_page(&good, 5, 8).is_ok());
    }

    #[test]
    fn memory_store_roundtrip_and_recycling() {
        let store = MemoryPageStore::new();
        let t1 = store.store_page(1, b"page-one").unwrap();
        let t2 = store.store_page(2, b"page-two").unwrap();
        assert_ne!(t1, t2);
        assert_eq!(store.len(), 2);
        let mut buf = Vec::new();
        store.load_page(t1, 1, &mut buf).unwrap();
        assert_eq!(buf, b"page-one");
        // Wrong block id for a ticket is an error.
        assert!(store.load_page(t1, 9, &mut buf).is_err());
        store.discard_page(t1);
        assert!(store.load_page(t1, 1, &mut buf).is_err());
        // Ticket slot is recycled.
        let t3 = store.store_page(3, b"three").unwrap();
        assert_eq!(t3, t1);
        store.discard_page(t2);
        store.discard_page(t3);
        assert!(store.is_empty());
    }

    #[test]
    fn memory_store_failure_switches() {
        let store = MemoryPageStore::new();
        store.fail_next_store();
        assert!(store.store_page(1, b"x").is_err());
        let t = store.store_page(1, b"x").unwrap(); // rearmed
        let mut buf = Vec::new();
        store.set_fail_loads(true);
        assert!(store.load_page(t, 1, &mut buf).is_err());
        store.set_fail_loads(false);
        store.load_page(t, 1, &mut buf).unwrap();
    }

    #[test]
    fn spill_scan_guard_nests() {
        assert!(!in_spill_scan());
        {
            let _g = SpillScanGuard::enter();
            assert!(in_spill_scan());
            {
                let _g2 = SpillScanGuard::enter();
                assert!(in_spill_scan());
            }
            assert!(in_spill_scan());
        }
        assert!(!in_spill_scan());
    }
}
