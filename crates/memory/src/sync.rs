//! Synchronization-primitive shims: `std` types normally, checker-instrumented
//! types under `cfg(smc_check)`.
//!
//! Every atomic, lock, fence, and spin/yield site of the concurrent
//! compaction protocol (§5.1/§5.2) routes through this module instead of
//! touching `std::sync` directly. In a normal build the module is a zero-cost
//! pass-through: the atomic types are re-exports of `std::sync::atomic`, the
//! locks are re-exports of [`smc_util::sync`], and [`yield_point`] /
//! [`cpu_relax`] / [`thread_yield`] / [`backoff`] compile down to the obvious
//! `std` operations (or nothing at all).
//!
//! When the crate is compiled with `RUSTFLAGS='--cfg smc_check'`, the same
//! names resolve to instrumented wrappers that call into a process-global
//! *scheduler hook* before every operation. The `smc-check` crate installs a
//! hook that suspends the calling virtual thread at each such point, which is
//! what lets its bounded model checker exhaustively enumerate interleavings
//! of the pin/epoch/relocation/forwarding state machines over the *real*
//! protocol code, not a hand-written model of it. Threads not managed by a
//! checker (e.g. the test driver) pass through the hook untouched.
//!
//! The instrumented locks never block the OS thread: they spin on `try_lock`
//! and report [`hook::HookEvent::Spin`] between attempts, so the checker can
//! deschedule the waiter until the holder releases — a blocking `lock()`
//! would deadlock the checker's one-runnable-thread-at-a-time world.

#[cfg(smc_check)]
pub use self::instrumented::*;
#[cfg(not(smc_check))]
pub use self::passthrough::*;

/// Scheduler hook registry (only meaningful under `cfg(smc_check)`, but the
/// types exist in both builds so callers can name them unconditionally).
pub mod hook {
    /// What kind of progress point the instrumented site is reporting.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum HookEvent {
        /// A shared-memory operation is about to execute; the scheduler may
        /// switch virtual threads here.
        Op,
        /// The calling thread cannot make progress right now (spin loop,
        /// contended lock); the scheduler should run someone else.
        Spin,
    }

    #[cfg(smc_check)]
    static HOOK: std::sync::OnceLock<fn(HookEvent)> = std::sync::OnceLock::new();

    /// Installs the process-global scheduler hook. Idempotent; the first
    /// installation wins. A no-op in non-checker builds.
    pub fn install(f: fn(HookEvent)) {
        #[cfg(smc_check)]
        let _ = HOOK.set(f);
        #[cfg(not(smc_check))]
        let _ = f;
    }

    /// Reports `event` to the installed hook, if any.
    #[inline]
    pub fn emit(event: HookEvent) {
        #[cfg(smc_check)]
        if let Some(f) = HOOK.get() {
            f(event);
        }
        #[cfg(not(smc_check))]
        let _ = event;
    }
}

#[cfg(not(smc_check))]
mod passthrough {
    //! Normal-build shims: direct re-exports plus inlined no-op yield points.

    pub use smc_util::sync::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};
    pub use std::sync::atomic::{fence, AtomicBool, AtomicPtr, AtomicU32, AtomicU64, AtomicUsize};

    /// Interleaving point for the model checker; nothing in normal builds.
    #[inline(always)]
    pub fn yield_point() {}

    /// One spin-loop pause (`std::hint::spin_loop` in normal builds).
    #[inline(always)]
    pub fn cpu_relax() {
        std::hint::spin_loop();
    }

    /// Cooperative OS-thread yield (`std::thread::yield_now` normally).
    #[inline(always)]
    pub fn thread_yield() {
        std::thread::yield_now();
    }

    /// Exponential-ish backoff used by allocation recovery:
    /// [`smc_util::backoff::spin_bound`] spin pauses followed by a thread
    /// yield, so the ladder shares one envelope with every other retry loop.
    #[inline]
    pub fn backoff(n: u32) {
        for _ in 0..smc_util::backoff::spin_bound(n) {
            std::hint::spin_loop();
        }
        std::thread::yield_now();
    }
}

#[cfg(smc_check)]
mod instrumented {
    //! Checker-build shims: every operation reports to the scheduler hook
    //! *before* executing, so the operation itself is atomic with respect to
    //! the checker's one-thread-at-a-time scheduling — which is exactly the
    //! sequentially-consistent interleaving semantics the checker explores.

    use super::hook::{emit, HookEvent};
    use std::sync::atomic::Ordering;

    /// Interleaving point for the model checker.
    #[inline]
    pub fn yield_point() {
        emit(HookEvent::Op);
    }

    /// One spin-loop pause: tells the checker to run another thread.
    #[inline]
    pub fn cpu_relax() {
        emit(HookEvent::Spin);
    }

    /// Cooperative yield: same as [`cpu_relax`] under the checker.
    #[inline]
    pub fn thread_yield() {
        emit(HookEvent::Spin);
    }

    /// Backoff collapses to a single spin report — the checker runs in
    /// virtual time, so burning host cycles would only bloat the state space.
    #[inline]
    pub fn backoff(_n: u32) {
        emit(HookEvent::Spin);
    }

    /// Instrumented memory fence.
    #[inline]
    pub fn fence(order: Ordering) {
        emit(HookEvent::Op);
        std::sync::atomic::fence(order);
    }

    macro_rules! instrumented_uint {
        ($name:ident, $std:ty, $ty:ty) => {
            /// Checker-instrumented drop-in for the `std` atomic of the same
            /// name: every access is an interleaving point.
            #[derive(Debug, Default)]
            #[repr(transparent)]
            pub struct $name($std);

            impl $name {
                /// A new atomic with the given initial value.
                pub const fn new(v: $ty) -> Self {
                    Self(<$std>::new(v))
                }

                /// Instrumented `load`.
                #[inline]
                pub fn load(&self, order: Ordering) -> $ty {
                    emit(HookEvent::Op);
                    self.0.load(order)
                }

                /// Instrumented `store`.
                #[inline]
                pub fn store(&self, v: $ty, order: Ordering) {
                    emit(HookEvent::Op);
                    self.0.store(v, order)
                }

                /// Instrumented `swap`.
                #[inline]
                pub fn swap(&self, v: $ty, order: Ordering) -> $ty {
                    emit(HookEvent::Op);
                    self.0.swap(v, order)
                }

                /// Instrumented `compare_exchange`.
                #[inline]
                pub fn compare_exchange(
                    &self,
                    cur: $ty,
                    new: $ty,
                    ok: Ordering,
                    err: Ordering,
                ) -> Result<$ty, $ty> {
                    emit(HookEvent::Op);
                    self.0.compare_exchange(cur, new, ok, err)
                }

                /// Instrumented `compare_exchange_weak` (never spuriously
                /// fails under the checker — spurious failures would make
                /// schedules non-deterministic).
                #[inline]
                pub fn compare_exchange_weak(
                    &self,
                    cur: $ty,
                    new: $ty,
                    ok: Ordering,
                    err: Ordering,
                ) -> Result<$ty, $ty> {
                    emit(HookEvent::Op);
                    self.0.compare_exchange(cur, new, ok, err)
                }

                /// Instrumented `fetch_add`.
                #[inline]
                pub fn fetch_add(&self, v: $ty, order: Ordering) -> $ty {
                    emit(HookEvent::Op);
                    self.0.fetch_add(v, order)
                }

                /// Instrumented `fetch_sub`.
                #[inline]
                pub fn fetch_sub(&self, v: $ty, order: Ordering) -> $ty {
                    emit(HookEvent::Op);
                    self.0.fetch_sub(v, order)
                }

                /// Instrumented `fetch_or`.
                #[inline]
                pub fn fetch_or(&self, v: $ty, order: Ordering) -> $ty {
                    emit(HookEvent::Op);
                    self.0.fetch_or(v, order)
                }

                /// Instrumented `fetch_and`.
                #[inline]
                pub fn fetch_and(&self, v: $ty, order: Ordering) -> $ty {
                    emit(HookEvent::Op);
                    self.0.fetch_and(v, order)
                }

                /// Instrumented `fetch_max`.
                #[inline]
                pub fn fetch_max(&self, v: $ty, order: Ordering) -> $ty {
                    emit(HookEvent::Op);
                    self.0.fetch_max(v, order)
                }

                /// Instrumented `fetch_min`.
                #[inline]
                pub fn fetch_min(&self, v: $ty, order: Ordering) -> $ty {
                    emit(HookEvent::Op);
                    self.0.fetch_min(v, order)
                }
            }
        };
    }

    instrumented_uint!(AtomicU32, std::sync::atomic::AtomicU32, u32);
    instrumented_uint!(AtomicU64, std::sync::atomic::AtomicU64, u64);
    instrumented_uint!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);

    /// Checker-instrumented `AtomicBool`.
    #[derive(Debug, Default)]
    #[repr(transparent)]
    pub struct AtomicBool(std::sync::atomic::AtomicBool);

    impl AtomicBool {
        /// A new atomic with the given initial value.
        pub const fn new(v: bool) -> Self {
            Self(std::sync::atomic::AtomicBool::new(v))
        }

        /// Instrumented `load`.
        #[inline]
        pub fn load(&self, order: Ordering) -> bool {
            emit(HookEvent::Op);
            self.0.load(order)
        }

        /// Instrumented `store`.
        #[inline]
        pub fn store(&self, v: bool, order: Ordering) {
            emit(HookEvent::Op);
            self.0.store(v, order)
        }

        /// Instrumented `swap`.
        #[inline]
        pub fn swap(&self, v: bool, order: Ordering) -> bool {
            emit(HookEvent::Op);
            self.0.swap(v, order)
        }
    }

    /// Checker-instrumented `AtomicPtr<T>`.
    #[derive(Debug)]
    #[repr(transparent)]
    pub struct AtomicPtr<T>(std::sync::atomic::AtomicPtr<T>);

    impl<T> AtomicPtr<T> {
        /// A new atomic with the given initial pointer.
        pub const fn new(p: *mut T) -> Self {
            Self(std::sync::atomic::AtomicPtr::new(p))
        }

        /// Instrumented `load`.
        #[inline]
        pub fn load(&self, order: Ordering) -> *mut T {
            emit(HookEvent::Op);
            self.0.load(order)
        }

        /// Instrumented `store`.
        #[inline]
        pub fn store(&self, p: *mut T, order: Ordering) {
            emit(HookEvent::Op);
            self.0.store(p, order)
        }

        /// Instrumented `swap`.
        #[inline]
        pub fn swap(&self, p: *mut T, order: Ordering) -> *mut T {
            emit(HookEvent::Op);
            self.0.swap(p, order)
        }

        /// Instrumented `compare_exchange`.
        #[inline]
        pub fn compare_exchange(
            &self,
            cur: *mut T,
            new: *mut T,
            ok: Ordering,
            err: Ordering,
        ) -> Result<*mut T, *mut T> {
            emit(HookEvent::Op);
            self.0.compare_exchange(cur, new, ok, err)
        }
    }

    /// Guard returned by [`Mutex::lock`].
    pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
    /// Guard returned by [`RwLock::read`].
    pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
    /// Guard returned by [`RwLock::write`].
    pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

    /// Checker-instrumented mutex: spins on `try_lock` (reporting `Spin` so
    /// the scheduler runs the holder) instead of blocking the OS thread.
    /// Poisoning is ignored, matching [`smc_util::sync::Mutex`].
    #[derive(Debug, Default)]
    pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

    impl<T> Mutex<T> {
        /// Creates a new unlocked mutex.
        pub const fn new(value: T) -> Self {
            Mutex(std::sync::Mutex::new(value))
        }

        /// Consumes the mutex, returning the inner value.
        pub fn into_inner(self) -> T {
            self.0.into_inner().unwrap_or_else(|e| e.into_inner())
        }
    }

    impl<T: ?Sized> Mutex<T> {
        /// Acquires the lock without ever blocking the OS thread.
        pub fn lock(&self) -> MutexGuard<'_, T> {
            loop {
                emit(HookEvent::Op);
                match self.0.try_lock() {
                    Ok(g) => return g,
                    Err(std::sync::TryLockError::Poisoned(e)) => return e.into_inner(),
                    Err(std::sync::TryLockError::WouldBlock) => emit(HookEvent::Spin),
                }
            }
        }

        /// Mutable access without locking (requires exclusive ownership).
        pub fn get_mut(&mut self) -> &mut T {
            self.0.get_mut().unwrap_or_else(|e| e.into_inner())
        }
    }

    /// Checker-instrumented reader-writer lock; see [`Mutex`].
    #[derive(Debug, Default)]
    pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

    impl<T> RwLock<T> {
        /// Creates a new unlocked rwlock.
        pub const fn new(value: T) -> Self {
            RwLock(std::sync::RwLock::new(value))
        }

        /// Consumes the rwlock, returning the inner value.
        pub fn into_inner(self) -> T {
            self.0.into_inner().unwrap_or_else(|e| e.into_inner())
        }
    }

    impl<T: ?Sized> RwLock<T> {
        /// Acquires a shared read lock without blocking the OS thread.
        pub fn read(&self) -> RwLockReadGuard<'_, T> {
            loop {
                emit(HookEvent::Op);
                match self.0.try_read() {
                    Ok(g) => return g,
                    Err(std::sync::TryLockError::Poisoned(e)) => return e.into_inner(),
                    Err(std::sync::TryLockError::WouldBlock) => emit(HookEvent::Spin),
                }
            }
        }

        /// Acquires the exclusive write lock without blocking the OS thread.
        pub fn write(&self) -> RwLockWriteGuard<'_, T> {
            loop {
                emit(HookEvent::Op);
                match self.0.try_write() {
                    Ok(g) => return g,
                    Err(std::sync::TryLockError::Poisoned(e)) => return e.into_inner(),
                    Err(std::sync::TryLockError::WouldBlock) => emit(HookEvent::Spin),
                }
            }
        }

        /// Mutable access without locking (requires exclusive ownership).
        pub fn get_mut(&mut self) -> &mut T {
            self.0.get_mut().unwrap_or_else(|e| e.into_inner())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    #[test]
    fn shims_behave_like_std() {
        let a = AtomicU64::new(5);
        assert_eq!(a.load(Ordering::SeqCst), 5);
        a.store(7, Ordering::SeqCst);
        assert_eq!(a.fetch_add(1, Ordering::SeqCst), 7);
        assert_eq!(
            a.compare_exchange(8, 9, Ordering::SeqCst, Ordering::SeqCst),
            Ok(8)
        );
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
        yield_point();
        cpu_relax();
        backoff(0);
        fence(Ordering::SeqCst);
    }

    #[test]
    fn hook_emit_without_install_is_noop() {
        hook::emit(hook::HookEvent::Op);
        hook::emit(hook::HookEvent::Spin);
    }
}
